// Work-stealing scheduler on Snark deques — the deque workload that
// motivated the DCAS deque line of work: each worker owns a deque, pushes
// and pops spawned tasks at its right end (LIFO for locality), and steals
// from other workers' left ends when starved.
//
//   $ ./examples/work_stealing [--workers=4] [--tasks=20000]
//
// The job: compute naive recursive Fibonacci numbers by task decomposition
// (each task either splits into two subtasks or resolves), tallying a global
// checksum. Because every task enters exactly one deque and leaves exactly
// once, the checksum proves no task was lost or duplicated — a liveness and
// conservation demo of the GC-independent deque under real contention.
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "lfrc/lfrc.hpp"
#include "snark/snark_lfrc.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/stopwatch.hpp"

using dom = lfrc::domain;

namespace {

using deque_t = lfrc::snark::snark_deque<dom, std::int64_t>;

}  // namespace

int main(int argc, char** argv) {
    lfrc::util::cli_flags flags(argc, argv);
    const int workers = static_cast<int>(flags.get_u64("workers", 4));
    const int root_tasks = static_cast<int>(flags.get_u64("tasks", 2000));

    std::vector<std::unique_ptr<deque_t>> deques;
    for (int w = 0; w < workers; ++w) deques.push_back(std::make_unique<deque_t>());

    // Seed: root tasks fib(10), distributed round-robin. A task is just the
    // integer n of the fib(n) it must expand.
    std::atomic<std::int64_t> outstanding{root_tasks};
    for (int i = 0; i < root_tasks; ++i) {
        deques[static_cast<std::size_t>(i % workers)]->push_right(10);
    }

    std::atomic<std::int64_t> fib_sum{0};

    lfrc::util::stopwatch clock;
    std::vector<std::thread> pool;
    for (int w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            auto& mine = *deques[static_cast<std::size_t>(w)];
            lfrc::util::xoshiro256 rng{static_cast<std::uint64_t>(w) + 1};
            std::int64_t local_fib = 0;
            for (;;) {
                // Own work first (LIFO end), then steal (victim's FIFO end).
                auto item = mine.pop_right();
                if (!item) {
                    const auto victim = rng.below(static_cast<std::uint64_t>(workers));
                    item = deques[victim]->pop_left();
                }
                if (!item) {
                    if (outstanding.load(std::memory_order_acquire) == 0) break;
                    std::this_thread::yield();
                    continue;
                }
                const std::int64_t n = *item;
                if (n <= 1) {
                    local_fib += n;  // fib via leaf-sum: fib(n) = #(1-leaves)
                    outstanding.fetch_sub(1, std::memory_order_acq_rel);
                } else {
                    // Split into two subtasks: net +1 outstanding.
                    outstanding.fetch_add(1, std::memory_order_acq_rel);
                    mine.push_right(n - 1);
                    mine.push_right(n - 2);
                }
            }
            fib_sum.fetch_add(local_fib, std::memory_order_acq_rel);
        });
    }
    for (auto& t : pool) t.join();
    const double seconds = clock.elapsed_seconds();

    // fib(10) = 55 as computed by leaf-sum (fib(n) = number of 1-leaves).
    const std::int64_t expected = static_cast<std::int64_t>(root_tasks) * 55;
    std::printf("workers            : %d\n", workers);
    std::printf("root tasks         : %d  (each computes fib(10))\n", root_tasks);
    std::printf("leaf checksum      : %lld (expected %lld) -> %s\n",
                static_cast<long long>(fib_sum.load()), static_cast<long long>(expected),
                fib_sum.load() == expected ? "OK" : "MISMATCH");
    std::printf("elapsed            : %.3f s\n", seconds);

    deques.clear();
    lfrc::flush_deferred_frees();
    const auto counters = dom::counters().snapshot();
    std::printf("snodes leaked      : %lld\n",
                static_cast<long long>(counters.objects_created) -
                    static_cast<long long>(counters.objects_destroyed));
    return fib_sum.load() == expected ? 0 : 1;
}
