// The memory-footprint property from the paper's introduction:
//
//   "[our methodology] allows the memory consumption of the implementation
//    to grow and shrink over time, without imposing any restrictions on the
//    underlying memory allocation mechanisms. In contrast, lock-free
//    implementations of dynamic data structures often either require
//    maintenance of a special freelist, whose storage cannot in general be
//    reused for other purposes (e.g. [19, 13]) ..."
//
//   $ ./examples/memory_shrink [--waves=4] [--wave_size=20000]
//
// Runs the same grow/shrink waves through an LFRC stack and a Valois-style
// freelist stack and prints both footprints after every phase: LFRC's
// returns to (near) zero each time; Valois's is a high-water mark forever.
#include <cstdio>

#include "alloc/stats.hpp"
#include "containers/treiber_stack.hpp"
#include "containers/valois_stack.hpp"
#include "lfrc/lfrc.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using dom = lfrc::domain;

int main(int argc, char** argv) {
    lfrc::util::cli_flags flags(argc, argv);
    const int waves = static_cast<int>(flags.get_u64("waves", 4));
    const int wave_size = static_cast<int>(flags.get_u64("wave_size", 20000));

    lfrc::containers::treiber_stack<dom, std::int64_t> lfrc_stack;
    lfrc::containers::valois_stack<std::int64_t> valois_stack;

    lfrc::flush_deferred_frees();
    const auto lfrc_baseline = lfrc::alloc::live_bytes();

    lfrc::util::table table(
        {"phase", "lfrc live bytes", "valois footprint bytes"});

    auto sample = [&](const std::string& phase) {
        lfrc::flush_deferred_frees();  // LFRC defers physical frees briefly
        // live_bytes() is a global counter; subtract the Valois pool's
        // chunks so the first column is the LFRC structure alone.
        const auto lfrc_bytes = lfrc::alloc::live_bytes() - lfrc_baseline -
                                static_cast<std::int64_t>(valois_stack.footprint_bytes());
        table.add_row({phase, std::to_string(lfrc_bytes),
                       std::to_string(valois_stack.footprint_bytes())});
    };

    sample("start");
    for (int w = 1; w <= waves; ++w) {
        const int n = wave_size * w;  // growing waves
        for (int i = 0; i < n; ++i) {
            lfrc_stack.push(i);
            valois_stack.push(i);
        }
        sample("after grow wave " + std::to_string(w) + " (+" + std::to_string(n) + ")");
        for (int i = 0; i < n; ++i) {
            lfrc_stack.pop();
            valois_stack.pop();
        }
        sample("after shrink wave " + std::to_string(w));
    }

    table.print();
    std::printf(
        "\nLFRC returns storage to the allocator after every shrink; the\n"
        "freelist scheme's footprint is a monotone high-water mark — the\n"
        "contrast the paper draws with Valois [19].\n");
    return 0;
}
