// GC pauses vs LFRC, on the same deque workload — the paper's §1 motivation:
//
//   "almost all [GC environments] employ excessive synchronization, such as
//    locking and/or stop-the-world mechanisms, which brings into question
//    their scalability."
//
//   $ ./examples/gc_vs_lfrc [--threads=4] [--ops=30000]
//
// Runs an identical mixed push/pop workload on (a) the GC-dependent Snark
// over the toy stop-the-world collector and (b) the GC-independent LFRC
// Snark, recording per-operation latency. The GC run shows a long pause
// tail (operations stalled behind collections); the LFRC run does not.
#include <cstdio>
#include <thread>
#include <vector>

#include "gc/heap.hpp"
#include "lfrc/lfrc.hpp"
#include "snark/snark_gc.hpp"
#include "snark/snark_lfrc.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using dom = lfrc::domain;

namespace {

template <typename PushPop>
lfrc::util::latency_histogram run_workload(int threads, int ops, PushPop&& make_worker) {
    std::vector<lfrc::util::latency_histogram> hists(static_cast<std::size_t>(threads));
    lfrc::util::spin_barrier barrier{static_cast<std::size_t>(threads)};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            make_worker(t, barrier, hists[static_cast<std::size_t>(t)], ops);
        });
    }
    for (auto& th : pool) th.join();
    lfrc::util::latency_histogram merged;
    for (auto& h : hists) merged.merge(h);
    return merged;
}

void add_row(lfrc::util::table& t, const char* name,
             const lfrc::util::latency_histogram& h) {
    t.add_row({name, lfrc::util::table::fmt(h.mean(), 0),
               std::to_string(h.percentile(0.50)), std::to_string(h.percentile(0.99)),
               std::to_string(h.percentile(0.999)), std::to_string(h.max())});
}

}  // namespace

int main(int argc, char** argv) {
    lfrc::util::cli_flags flags(argc, argv);
    const int threads = static_cast<int>(flags.get_u64("threads", 4));
    const int ops = static_cast<int>(flags.get_u64("ops", 30000));

    lfrc::util::table table({"deque", "mean ns", "p50 ns", "p99 ns", "p99.9 ns", "max ns"});

    // (a) GC-dependent Snark under the stop-the-world collector. A small
    // threshold makes collections frequent enough to see.
    lfrc::gc::heap heap{256 * 1024};
    lfrc::util::latency_histogram gc_hist;
    {
        lfrc::snark::snark_deque_gc<std::int64_t> dq{heap};
        gc_hist = run_workload(
            threads, ops,
            [&](int t, lfrc::util::spin_barrier& barrier,
                lfrc::util::latency_histogram& hist, int n) {
                lfrc::gc::heap::attach_scope attach(heap);
                lfrc::util::xoshiro256 rng{static_cast<std::uint64_t>(t) + 1};
                barrier.arrive_and_wait();
                for (int i = 0; i < n; ++i) {
                    lfrc::util::stopwatch sw;
                    if (rng.below(2) == 0) {
                        dq.push_right(i);
                    } else {
                        dq.pop_left();
                    }
                    hist.record(sw.elapsed_ns() + 1);
                }
            });
    }
    add_row(table, "snark+stw-gc", gc_hist);

    // (b) GC-independent LFRC Snark: same workload, no collector. Run on
    // both engines — the locked engine matches the GC run's DCAS substrate
    // (apples-to-apples on reclamation cost), the MCAS engine adds the
    // price of fully lock-free DCAS emulation.
    auto run_lfrc = [&](auto domain_tag) {
        using D = decltype(domain_tag);
        lfrc::snark::snark_deque<D, std::int64_t> dq;
        return run_workload(
            threads, ops,
            [&](int t, lfrc::util::spin_barrier& barrier,
                lfrc::util::latency_histogram& hist, int n) {
                lfrc::util::xoshiro256 rng{static_cast<std::uint64_t>(t) + 1};
                barrier.arrive_and_wait();
                for (int i = 0; i < n; ++i) {
                    lfrc::util::stopwatch sw;
                    if (rng.below(2) == 0) {
                        dq.push_right(i);
                    } else {
                        dq.pop_left();
                    }
                    hist.record(sw.elapsed_ns() + 1);
                }
            });
    };
    const auto locked_hist = run_lfrc(lfrc::locked_domain{});
    add_row(table, "snark+lfrc (locked dcas)", locked_hist);
    const auto mcas_hist = run_lfrc(dom{});
    add_row(table, "snark+lfrc (mcas dcas)", mcas_hist);

    table.print();

    const auto gc_stats = heap.stats();
    std::printf("\nstop-the-world collections during the GC run: %llu (max pause %.1f us)\n",
                static_cast<unsigned long long>(gc_stats.collections),
                static_cast<double>(gc_stats.max_pause_ns) / 1000.0);
    std::printf("LFRC reclaims incrementally as counts reach zero: no pauses to report.\n");
    return 0;
}
