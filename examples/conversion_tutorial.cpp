// The §3 methodology, end to end, on one algorithm: runs the SAME Treiber
// stack in its GC-dependent form (toy collector) and its LFRC-transformed
// form, side by side, with the transformation steps narrated.
//
//   $ ./examples/conversion_tutorial
//
// This is the paper's workflow in miniature: design against a GC, then
// apply steps 1-6 to become GC-independent.
#include <cstdio>

#include "containers/gc_containers.hpp"
#include "containers/treiber_stack.hpp"
#include "gc/heap.hpp"
#include "lfrc/lfrc.hpp"

using dom = lfrc::domain;

namespace {

constexpr int items = 10000;

}  // namespace

int main() {
    std::printf("== GC-dependent -> GC-independent, per paper section 3 ==\n\n");

    std::printf(
        "The GC-dependent stack (containers::gc_stack) uses plain pointers;\n"
        "popped nodes just become unreachable and the collector finds them.\n\n");
    {
        lfrc::gc::heap heap{64 * 1024};
        lfrc::containers::gc_stack<int> st{heap};
        lfrc::gc::heap::attach_scope attach(heap);
        long long sum = 0;
        for (int i = 1; i <= items; ++i) st.push(i);
        while (auto v = st.pop()) sum += *v;
        heap.collect_now();
        const auto stats = heap.stats();
        std::printf("  gc-stack checksum  : %lld (expected %lld)\n", sum,
                    static_cast<long long>(items) * (items + 1) / 2);
        std::printf("  collections        : %llu, max pause %.1f us\n",
                    static_cast<unsigned long long>(stats.collections),
                    static_cast<double>(stats.max_pause_ns) / 1000.0);
        std::printf("  live after collect : %llu objects\n\n",
                    static_cast<unsigned long long>(heap.live_objects()));
    }

    std::printf(
        "Applying the six steps (see src/containers/treiber_stack.hpp):\n"
        "  1. rc field          -> node derives dom::object\n"
        "  2. LFRCDestroy       -> node::lfrc_visit_children reports `next`\n"
        "  3. cycle-free check  -> popped nodes form chains; nothing to do\n"
        "  4. typed operations  -> basic_domain<Engine> templates\n"
        "  5. replace ptr ops   -> loads/stores/CAS become LFRC ops (Table 1)\n"
        "  6. local pointers    -> local_ptr<> RAII\n\n");
    {
        lfrc::containers::treiber_stack<dom, int> st;
        long long sum = 0;
        for (int i = 1; i <= items; ++i) st.push(i);
        while (auto v = st.pop()) sum += *v;
        lfrc::flush_deferred_frees();
        const auto counters = dom::counters().snapshot();
        std::printf("  lfrc-stack checksum: %lld (expected %lld)\n", sum,
                    static_cast<long long>(items) * (items + 1) / 2);
        std::printf("  collections        : none — counts reclaim as pops retire nodes\n");
        std::printf("  objects leaked     : %lld\n\n",
                    static_cast<long long>(counters.objects_created) -
                        static_cast<long long>(counters.objects_destroyed));
    }

    std::printf(
        "Same algorithm, same results; the LFRC version needs no collector,\n"
        "no stop-the-world pauses, and no type-stable freelist.\n");
    return 0;
}
