// Quickstart: the LFRC public API in five minutes.
//
//   $ ./examples/quickstart
//
// Walks through (1) managed objects and local_ptr, (2) shared pointer
// fields with the Figure 2 operations, (3) the Snark deque built from them,
// and (4) proof that everything was reclaimed.
#include <cstdio>

#include "lfrc/lfrc.hpp"
#include "snark/snark_lfrc.hpp"

// Pick a domain: lfrc::domain uses the lock-free MCAS-emulated DCAS.
using dom = lfrc::domain;

// 1. A managed object: derive from dom::object, add an rc-aware field per
//    child pointer, and report children for recursive destruction.
struct list_node : dom::object {
    dom::ptr_field<list_node> next;
    int payload = 0;

    explicit list_node(int v) : payload(v) {}

    void lfrc_visit_children(dom::child_visitor& v) noexcept override {
        v.on_child(next.exclusive_get());
    }
};

int main() {
    std::printf("== LFRC quickstart ==\n\n");

    {
        // 2. local_ptr automates the paper's step 6: null-init, counted
        //    copies, destroy-on-scope-exit.
        dom::local_ptr<list_node> a = dom::make<list_node>(10);
        dom::local_ptr<list_node> b = a;  // LFRCCopy: count goes to 2
        std::printf("a's reference count with two locals: %lu\n",
                    static_cast<unsigned long>(a->ref_count()));

        // A shared location, accessed only through the Figure 2 operations.
        dom::ptr_field<list_node> shared;
        dom::store(shared, a);  // LFRCStore
        std::printf("after storing into a shared field:   %lu\n",
                    static_cast<unsigned long>(a->ref_count()));

        dom::local_ptr<list_node> c;
        dom::load(shared, c);  // LFRCLoad: DCAS-protected counted load
        std::printf("after one LFRCLoad:                  %lu\n",
                    static_cast<unsigned long>(c->ref_count()));

        // LFRCCAS swaps the shared pointer with full count bookkeeping.
        auto fresh = dom::make<list_node>(20);
        const bool swapped = dom::cas(shared, c.get(), fresh.get());
        std::printf("CAS 10 -> 20 succeeded: %s\n", swapped ? "yes" : "no");

        dom::store(shared, static_cast<list_node*>(nullptr));
    }  // all locals release their counts here

    {
        // 3. The Snark deque (paper §4): a lock-free deque that needs no
        //    garbage collector.
        lfrc::snark::snark_deque<dom, int> deque;
        for (int i = 1; i <= 5; ++i) deque.push_right(i);
        deque.push_left(0);

        std::printf("\ndeque drained from both ends: ");
        while (auto v = deque.pop_left()) {
            std::printf("%d ", *v);
            if (auto w = deque.pop_right()) std::printf("%d ", *w);
        }
        std::printf("\n");
    }

    // 4. Everything reclaimed: flush the deferred frees and read the ledger.
    lfrc::flush_deferred_frees();
    const auto counters = dom::counters().snapshot();
    std::printf("\nobjects created:   %llu\n",
                static_cast<unsigned long long>(counters.objects_created));
    std::printf("objects destroyed: %llu\n",
                static_cast<unsigned long long>(counters.objects_destroyed));
    std::printf("leaked:            %lld\n",
                static_cast<long long>(counters.objects_created) -
                    static_cast<long long>(counters.objects_destroyed));
    return 0;
}
