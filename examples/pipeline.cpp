// Multi-stage pipeline over LFRC Michael-Scott queues.
//
//   $ ./examples/pipeline [--items=50000]
//
// generators -> [queue A] -> transformers -> [queue B] -> aggregator
//
// Demonstrates LFRC containers composing into a larger concurrent system:
// each stage runs on its own threads, hands items downstream through
// lock-free queues, and no stage ever needs a garbage collector. The
// aggregator verifies the end-to-end checksum; the epilogue verifies that
// every queue node was reclaimed.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "containers/ms_queue.hpp"
#include "lfrc/lfrc.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"

using dom = lfrc::domain;
using queue_t = lfrc::containers::ms_queue<dom, std::int64_t>;

namespace {
constexpr std::int64_t poison = -1;
}

int main(int argc, char** argv) {
    lfrc::util::cli_flags flags(argc, argv);
    const std::int64_t items = static_cast<std::int64_t>(flags.get_u64("items", 50000));
    constexpr int generators = 2;
    constexpr int transformers = 2;

    std::atomic<std::int64_t> checksum{0};
    lfrc::util::stopwatch clock;
    {
        queue_t stage_a;
        queue_t stage_b;

        std::vector<std::thread> pool;
        // Stage 1: generators emit [1, items], split between them; the last
        // generator to finish posts one poison pill per transformer.
        std::atomic<int> generators_left{generators};
        for (int g = 0; g < generators; ++g) {
            pool.emplace_back([&, g] {
                for (std::int64_t i = 1 + g; i <= items; i += generators) {
                    stage_a.enqueue(i);
                }
                if (generators_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                    for (int t = 0; t < transformers; ++t) stage_a.enqueue(poison);
                }
            });
        }
        // Stage 2: transformers square each item; on poison, forward it
        // downstream and exit.
        for (int t = 0; t < transformers; ++t) {
            pool.emplace_back([&] {
                for (;;) {
                    auto v = stage_a.dequeue();
                    if (!v) {
                        std::this_thread::yield();
                        continue;
                    }
                    if (*v == poison) {
                        stage_b.enqueue(poison);
                        return;
                    }
                    stage_b.enqueue(*v * *v);
                }
            });
        }
        // Stage 3: single aggregator sums the squares.
        pool.emplace_back([&] {
            int poisons = 0;
            std::int64_t sum = 0;
            while (poisons < transformers) {
                auto v = stage_b.dequeue();
                if (!v) {
                    std::this_thread::yield();
                    continue;
                }
                if (*v == poison) {
                    ++poisons;
                } else {
                    sum += *v;
                }
            }
            checksum.store(sum);
        });
        for (auto& t : pool) t.join();
    }  // queues destroyed at quiescence
    const double seconds = clock.elapsed_seconds();

    // sum of squares 1..n = n(n+1)(2n+1)/6
    const std::int64_t expected = items * (items + 1) * (2 * items + 1) / 6;
    std::printf("items processed : %lld\n", static_cast<long long>(items));
    std::printf("checksum        : %lld (expected %lld) -> %s\n",
                static_cast<long long>(checksum.load()),
                static_cast<long long>(expected),
                checksum.load() == expected ? "OK" : "MISMATCH");
    std::printf("elapsed         : %.3f s  (%.1f items/ms through 3 stages)\n", seconds,
                static_cast<double>(items) / (seconds * 1000.0));

    lfrc::flush_deferred_frees();
    const auto counters = dom::counters().snapshot();
    std::printf("nodes leaked    : %lld\n",
                static_cast<long long>(counters.objects_created) -
                    static_cast<long long>(counters.objects_destroyed));
    return checksum.load() == expected ? 0 : 1;
}
