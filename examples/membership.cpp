// Membership service on the LFRC hash set — a server-ish scenario: session
// tokens are registered, looked up by request handlers, and expired by a
// reaper, all concurrently, with no garbage collector in sight.
//
//   $ ./examples/membership [--handlers=3] [--sessions=20000]
//
// Invariants printed at the end: every registered session was either
// observed active or reaped exactly once, and all memory is reclaimed.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "containers/lfrc_hash_set.hpp"
#include "lfrc/lfrc.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/stopwatch.hpp"

using dom = lfrc::domain;

int main(int argc, char** argv) {
    lfrc::util::cli_flags flags(argc, argv);
    const int handlers = static_cast<int>(flags.get_u64("handlers", 3));
    const std::int64_t sessions = static_cast<std::int64_t>(flags.get_u64("sessions", 20000));

    std::atomic<std::int64_t> registered{0}, reaped{0}, hits{0}, misses{0};
    lfrc::util::stopwatch clock;
    {
        lfrc::containers::lfrc_hash_set<dom, std::int64_t> live_sessions{64};
        std::atomic<std::int64_t> next_session{0};
        std::atomic<bool> registrar_done{false};

        std::vector<std::thread> pool;
        // Registrar: creates sessions.
        pool.emplace_back([&] {
            for (std::int64_t s = 0; s < sessions; ++s) {
                if (live_sessions.insert(s)) registered.fetch_add(1);
                next_session.store(s + 1, std::memory_order_release);
            }
            registrar_done = true;
        });
        // Handlers: look up random sessions (may race with the reaper).
        for (int h = 0; h < handlers; ++h) {
            pool.emplace_back([&, h] {
                lfrc::util::xoshiro256 rng{static_cast<std::uint64_t>(h) + 1};
                while (!registrar_done.load() ||
                       reaped.load() < registered.load()) {
                    const auto horizon = next_session.load(std::memory_order_acquire);
                    if (horizon == 0) continue;
                    const auto id = static_cast<std::int64_t>(
                        rng.below(static_cast<std::uint64_t>(horizon)));
                    if (live_sessions.contains(id)) {
                        hits.fetch_add(1);
                    } else {
                        misses.fetch_add(1);
                    }
                    if (reaped.load() >= sessions) break;
                }
            });
        }
        // Reaper: expires sessions in order, lagging the registrar.
        pool.emplace_back([&] {
            std::int64_t cursor = 0;
            while (cursor < sessions) {
                if (cursor < next_session.load(std::memory_order_acquire)) {
                    if (live_sessions.erase(cursor)) reaped.fetch_add(1);
                    ++cursor;
                } else {
                    std::this_thread::yield();
                }
            }
        });
        for (auto& t : pool) t.join();

        std::printf("sessions registered : %lld\n", static_cast<long long>(registered.load()));
        std::printf("sessions reaped     : %lld\n", static_cast<long long>(reaped.load()));
        std::printf("lookup hits/misses  : %lld / %lld\n",
                    static_cast<long long>(hits.load()),
                    static_cast<long long>(misses.load()));
        std::printf("left in set         : %zu (expected 0)\n", live_sessions.size());
        std::printf("elapsed             : %.3f s\n", clock.elapsed_seconds());
    }
    lfrc::flush_deferred_frees();
    const auto counters = dom::counters().snapshot();
    std::printf("nodes leaked        : %lld\n",
                static_cast<long long>(counters.objects_created) -
                    static_cast<long long>(counters.objects_destroyed));
    return registered.load() == reaped.load() ? 0 : 1;
}
