// plain_store — the GC-dependent baseline KV store for experiment E9.
//
// Same interface shape as lfrc::store::kv_store, but built the way a store
// is written when *something else* reclaims memory: raw atomics, pointer
// CAS exchanges, and a pluggable reclamation policy (epoch / hazard /
// leaky) standing in for the garbage collector the paper's §1 assumes
// away. This is the "what LFRC buys you" contrast:
//
//   * entry nodes are immortal — prepend-only bucket chains, one node per
//     key, freed only in the destructor. Value boxes are the churn: every
//     put/cas/erase retires the displaced box through Policy::retire, and
//     every read holds a Policy::guard across the dereference.
//   * versions live inside the box (a fresh box copies predecessor's
//     version + 1), not beside the pointer — so unlike the LFRC store's
//     LL/SC cell, cas() here compares a version it re-reads through the
//     box pointer. The guard makes the dereference safe; the single CAS on
//     the pointer makes the version check atomic enough because versions
//     are strictly increasing per entry (a box pointer never recurs:
//     retired boxes are not reused while guarded, and a new box always
//     carries a higher version).
//
// No TTL sweeping machinery here: expiry is checked on read, same contract
// as the LFRC store (explicit now_ns, 0 = immortal), because E9 measures
// reclamation cost, not cache policy.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "util/cacheline.hpp"
#include "util/hash.hpp"

namespace lfrc::store {

template <typename Key, typename Value, typename Policy,
          typename Hash = std::hash<Key>>
class plain_store {
  public:
    explicit plain_store(std::size_t buckets = 512) : buckets_(buckets) {}

    plain_store(const plain_store&) = delete;
    plain_store& operator=(const plain_store&) = delete;

    ~plain_store() {
        // Quiesced teardown: nothing guards anything now, free directly.
        for (auto& head : buckets_) {
            node* n = head->load(std::memory_order_relaxed);
            while (n != nullptr) {
                node* next = n->next;
                delete n->val.load(std::memory_order_relaxed);
                delete n;
                n = next;
            }
        }
    }

    std::optional<Value> get(const Key& key, std::uint64_t now_ns = 0) {
        node* n = find(key);
        if (n == nullptr) return std::nullopt;
        typename Policy::guard g;
        vbox* b = g.protect0(n->val);
        if (b == nullptr || expired(b, now_ns)) return std::nullopt;
        return b->payload;
    }

    void put(const Key& key, Value value, std::uint64_t ttl_ns = 0,
             std::uint64_t now_ns = 0) {
        node* n = find_or_insert(key);
        vbox* fresh = new vbox{std::move(value), 0, deadline(ttl_ns, now_ns)};
        typename Policy::guard g;
        for (;;) {
            vbox* old = g.protect0(n->val);
            fresh->version = (old != nullptr ? old->version : 0) + 1;
            if (n->val.compare_exchange_weak(old, fresh, std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
                if (old != nullptr) Policy::retire(old);
                return;
            }
        }
    }

    /// Install iff the entry's current box version equals expected_version;
    /// expected_version 0 is create-if-absent.
    bool cas(const Key& key, std::uint64_t expected_version, Value value,
             std::uint64_t ttl_ns = 0, std::uint64_t now_ns = 0) {
        node* n = find_or_insert(key);
        vbox* fresh = new vbox{std::move(value), expected_version + 1,
                               deadline(ttl_ns, now_ns)};
        typename Policy::guard g;
        for (;;) {
            vbox* old = g.protect0(n->val);
            const std::uint64_t cur = old != nullptr ? old->version : 0;
            if (cur != expected_version) {
                delete fresh;
                return false;
            }
            if (n->val.compare_exchange_weak(old, fresh, std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
                if (old != nullptr) Policy::retire(old);
                return true;
            }
        }
    }

    bool erase(const Key& key, std::uint64_t now_ns = 0) {
        node* n = find(key);
        if (n == nullptr) return false;
        typename Policy::guard g;
        for (;;) {
            vbox* old = g.protect0(n->val);
            if (old == nullptr) return false;
            if (n->val.compare_exchange_weak(old, nullptr, std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
                const bool live = !expired(old, now_ns);
                Policy::retire(old);
                return live;
            }
        }
    }

    /// Current box version for the key (0 = absent); feeds cas().
    std::uint64_t version_of(const Key& key) {
        node* n = find(key);
        if (n == nullptr) return 0;
        typename Policy::guard g;
        vbox* b = g.protect0(n->val);
        return b != nullptr ? b->version : 0;
    }

    std::size_t size(std::uint64_t now_ns = 0) {
        std::size_t count = 0;
        typename Policy::guard g;
        for (auto& head : buckets_) {
            for (node* n = head->load(std::memory_order_acquire); n != nullptr;
                 n = n->next) {
                vbox* b = g.protect0(n->val);
                if (b != nullptr && !expired(b, now_ns)) ++count;
            }
        }
        return count;
    }

    static constexpr const char* policy_name() { return Policy::name(); }

  private:
    struct vbox {
        Value payload;
        std::uint64_t version;
        std::uint64_t expires_at_ns;  ///< 0 = never expires
    };

    struct node {
        explicit node(Key k) : key(std::move(k)) {}
        const Key key;
        std::atomic<vbox*> val{nullptr};
        node* next = nullptr;  ///< immutable after the head-CAS publishes it
    };

    static bool expired(const vbox* b, std::uint64_t now_ns) noexcept {
        return b->expires_at_ns != 0 && b->expires_at_ns <= now_ns;
    }

    static std::uint64_t deadline(std::uint64_t ttl_ns, std::uint64_t now_ns) noexcept {
        return ttl_ns == 0 ? 0 : now_ns + ttl_ns;
    }

    std::atomic<node*>& head_for(const Key& key) {
        return *buckets_[util::mix64(hasher_(key)) % buckets_.size()];
    }

    node* find(const Key& key) {
        // Nodes are immortal and next is frozen at publish: no guard needed
        // for the chain walk itself.
        for (node* n = head_for(key).load(std::memory_order_acquire); n != nullptr;
             n = n->next) {
            if (n->key == key) return n;
        }
        return nullptr;
    }

    node* find_or_insert(const Key& key) {
        std::atomic<node*>& head = head_for(key);
        for (;;) {
            node* h = head.load(std::memory_order_acquire);
            // Walk from the head we'll CAS against: if the key is anywhere,
            // it is at or below h (prepend-only), so a successful CAS on h
            // proves no duplicate raced in — one node per key.
            for (node* n = h; n != nullptr; n = n->next) {
                if (n->key == key) return n;
            }
            node* fresh = new node(key);
            fresh->next = h;
            if (head.compare_exchange_weak(h, fresh, std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
                return fresh;
            }
            delete fresh;  // lost the race; re-scan includes the winner
        }
    }

    Hash hasher_;
    std::vector<util::padded<std::atomic<node*>>> buckets_;
};

}  // namespace lfrc::store
