// lfrc::store — a sharded, GC-independent in-memory key-value store,
// generic over the reclamation policy.
//
// This is the layer that composes the repo's individual containers into a
// serving workload: the shape concurrent-reference-counting systems are
// judged by (Anderson/Blelloch/Wei's store benchmarks; Brown's reclaimer
// comparisons). Everything below is built from existing seams — no new
// synchronization primitives:
//
//   policy        the first template parameter is an lfrc::smr policy (or a
//                 counted domain, which resolves to its borrowed policy for
//                 backward compatibility). The SAME store body runs over
//                 counted, borrowed, ebr, hp and leaky reclamation — the
//                 policy axis E9 benchmarks. smr::gc_heap is excluded: its
//                 guard offers no versioned value slots (the gc-vs-lfrc
//                 comparison is E8's, at container granularity).
//   sharding      N power-of-two shards, each a fixed array of
//                 containers::list_core buckets (the DCAS-deletion list
//                 protocol), so contention and chain length shrink by
//                 shards × buckets.
//   values        each entry owns its current value through a P::vslot: a
//                 (pointer, version) cell pair. For counted policies the
//                 pointer half carries the LFRC count; the version half
//                 makes every write observable, which is what get/cas key
//                 off. Versions are per-entry value-slot versions: 0 means
//                 "no value ever written here" (absent), and an entry
//                 reincarnated after erase restarts at 0 — consistent,
//                 because version 0 *means* absent.
//   reads         get() walks the bucket on the policy's lazy traverse
//                 grade — for `borrowed` that is the epoch-borrowed fast
//                 path, zero refcount traffic per read. get_counted() runs
//                 the same lookup through the strong (helping) search.
//   writes        put = vprotect + vinstall_if_live (version bump,
//                 conditioned on the entry being live); cas = the same with
//                 a version precondition — a CASN on (pointer, version,
//                 dead-flag) is exactly "compare-and-swap on the value
//                 version, iff the entry still holds the key".
//   TTL           value boxes carry an absolute expiry deadline; reads
//                 treat expired boxes as misses and lazily clear them with
//                 a version-tied install (so an expiry sweep can never
//                 clobber a racing fresh put). sweep_expired() does the
//                 same eagerly and then drains the policy so the memory
//                 actually shrinks.
//   shutdown      drain() severs every bucket chain and drives the
//                 policy's bounded drain to completion.
//
// Linearizability around entry removal: erase claims the entry's value AND
// marks the entry dead in ONE atomic step (P::vclaim_mark_dead, a 3-word
// CASN over the value pointer, its version, and the dead flag), and every
// value write (put/cas/expiry) is conditioned on the flag still being false
// in the same step (P::vinstall_if_live). So a value can never land in an
// entry a racing eraser has claimed: the write either linearizes strictly
// before the erase (the eraser's snapshot saw it) or fails and retries
// against the key's current entry. The earlier write-then-recheck protocol
// left a window the sim harness (tests/sim/sim_store_test.cpp) caught; the
// CASN closes it. A dead entry's frozen (null) value slot and chain link
// are released by the policy's teardown/retire paths, so nothing leaks
// either way.
//
// The store never reads a clock: expiry decisions take `now_ns` explicitly
// (callers use util::stopwatch / steady_clock; tests and the sim harness
// pass synthetic times, keeping schedules deterministic).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "containers/list_core.hpp"
#include "lfrc/lfrc.hpp"
#include "smr/smr.hpp"
#include "util/cacheline.hpp"
#include "util/hash.hpp"

namespace lfrc::store {

/// Aggregated operation counters (per-shard striped; see kv_store::stats).
struct store_stats {
    std::uint64_t gets = 0;
    std::uint64_t hits = 0;
    std::uint64_t puts = 0;
    std::uint64_t erases = 0;
    std::uint64_t cas_ok = 0;
    std::uint64_t cas_fail = 0;
    std::uint64_t expired = 0;

    double hit_rate() const {
        return gets > 0 ? static_cast<double>(hits) / static_cast<double>(gets) : 0.0;
    }
};

/// kv_store's first parameter accepts either an smr policy or (for the
/// pre-policy call sites) a counted domain, which maps to its borrowed
/// policy — the configuration the store originally shipped with.
template <typename T>
struct policy_or_domain {
    using type = T;
};
template <typename Engine>
struct policy_or_domain<lfrc::basic_domain<Engine>> {
    using type = smr::borrowed<lfrc::basic_domain<Engine>>;
};
template <typename T>
using policy_or_domain_t = typename policy_or_domain<T>::type;

template <typename PolicyOrDomain, typename Key, typename Value,
          typename Hash = std::hash<Key>>
class kv_store {
  public:
    using policy_t = policy_or_domain_t<PolicyOrDomain>;
    static_assert(lfrc::smr::policy<policy_t>);

    struct config {
        std::size_t shards = 8;             ///< rounded up to a power of two
        std::size_t buckets_per_shard = 64;
    };

    /// A versioned read: `found` distinguishes a live value from absence;
    /// `version` is the entry's value-slot version either way (0 = absent /
    /// never written), usable as the expected version of a later cas().
    struct versioned {
        bool found = false;
        Value value{};
        std::uint64_t version = 0;
    };

    explicit kv_store(config cfg = {}) {
        std::size_t n = 1;
        while (n < cfg.shards) n <<= 1;
        shard_mask_ = n - 1;
        const std::size_t buckets = cfg.buckets_per_shard > 0 ? cfg.buckets_per_shard : 1;
        shards_.reserve(n);
        for (std::size_t s = 0; s < n; ++s) {
            auto sh = std::make_unique<shard_t>();
            sh->buckets.reserve(buckets);
            for (std::size_t b = 0; b < buckets; ++b) {
                sh->buckets.push_back(std::make_unique<bucket_t>(policy_));
            }
            shards_.push_back(std::move(sh));
        }
    }

    kv_store(const kv_store&) = delete;
    kv_store& operator=(const kv_store&) = delete;

    // ---- reads ---------------------------------------------------------

    /// Fast-path read on the policy's lazy traverse grade (for `borrowed`:
    /// one epoch pin, zero refcount traffic). An expired value reads as a
    /// miss and is lazily cleared (version-tied, so the clear can never
    /// race out a fresh put).
    std::optional<Value> get(const Key& key, std::uint64_t now_ns = 0) {
        shard_t& sh = shard_for(key);
        sh.stats->gets.fetch_add(1, std::memory_order_relaxed);
        typename policy_t::guard g(policy_);
        entry_t* entry = bucket_for(sh, key).find(g, key);
        if (entry == nullptr) return std::nullopt;
        std::uint64_t version = 0;
        box_t* box = g.template vtraverse<box_t>(3, entry->val, version);
        if (box == nullptr) return std::nullopt;
        if (expired(box, now_ns)) {
            // Clearing needs a write license on the entry; a failed upgrade
            // means the entry is being destroyed — already a miss.
            if (g.upgrade(1)) lazy_expire(g, sh, entry, now_ns);
            return std::nullopt;
        }
        sh.stats->hits.fetch_add(1, std::memory_order_relaxed);
        return box->payload;
    }

    /// The same read through the strong (helping) search and a strong
    /// value protection: the workload driver's "counted" axis on counted
    /// policies, and the store's only fully-helping read path.
    std::optional<Value> get_counted(const Key& key, std::uint64_t now_ns = 0) {
        shard_t& sh = shard_for(key);
        sh.stats->gets.fetch_add(1, std::memory_order_relaxed);
        typename policy_t::guard g(policy_);
        entry_t* entry = find_strong(g, sh, key);
        if (entry == nullptr) return std::nullopt;
        std::uint64_t version = 0;
        box_t* box = g.template vprotect<box_t>(3, entry->val, version);
        if (box == nullptr) return std::nullopt;
        if (expired(box, now_ns)) {
            lazy_expire(g, sh, entry, now_ns);
            return std::nullopt;
        }
        sh.stats->hits.fetch_add(1, std::memory_order_relaxed);
        return box->payload;
    }

    /// Read returning the value-slot version alongside the value; the
    /// version feeds a later cas(). Absent keys report version 0.
    versioned get_versioned(const Key& key, std::uint64_t now_ns = 0) {
        shard_t& sh = shard_for(key);
        sh.stats->gets.fetch_add(1, std::memory_order_relaxed);
        typename policy_t::guard g(policy_);
        entry_t* entry = bucket_for(sh, key).find(g, key);
        if (entry == nullptr) return {};
        std::uint64_t version = 0;
        box_t* box = g.template vtraverse<box_t>(3, entry->val, version);
        if (box == nullptr || expired(box, now_ns)) {
            if (box != nullptr && expired(box, now_ns)) {
                if (g.upgrade(1)) lazy_expire(g, sh, entry, now_ns);
                // The clear (ours or a racer's) bumped the version past the
                // one we read; report absence at the version we witnessed —
                // a cas from it will fail and re-read, which is correct.
            }
            return versioned{false, Value{}, version};
        }
        sh.stats->hits.fetch_add(1, std::memory_order_relaxed);
        return versioned{true, box->payload, version};
    }

    // ---- writes --------------------------------------------------------

    /// Unconditional upsert. `ttl_ns` of 0 means the value never expires;
    /// otherwise it expires at now_ns + ttl_ns.
    void put(const Key& key, Value value, std::uint64_t ttl_ns = 0,
             std::uint64_t now_ns = 0) {
        shard_t& sh = shard_for(key);
        sh.stats->puts.fetch_add(1, std::memory_order_relaxed);
        typename policy_t::guard g(policy_);
        auto box = policy_.template make_owner<box_t>(std::move(value),
                                                      deadline(ttl_ns, now_ns));
        bucket_t& bucket = bucket_for(sh, key);
        for (;;) {
            auto [entry, inserted] = bucket.get_or_insert(
                g, key, [&] { return policy_.template make_owner<entry_t>(key); });
            while (!policy_.flag_load(entry->dead)) {
                std::uint64_t version = 0;
                box_t* cur = g.template vprotect<box_t>(3, entry->val, version);
                // The install is atomic with "entry still live" (header
                // comment): a racing erase either sees our value in its
                // claim or makes this fail, never both and never neither.
                if (policy_.vinstall_if_live(entry->val, version, cur, box.get(),
                                             entry->dead)) {
                    policy_.publish_ok(box);
                    return;
                }
            }
            // Entry died under us; its value slot is frozen. Re-search: the
            // key's current entry (or a fresh one) takes the value.
        }
    }

    /// Version compare-and-swap: install `value` iff the key's value-slot
    /// version still equals `expected_version`. expected_version 0 is
    /// create-if-absent. The underlying CASN covers the (pointer, version)
    /// pair, so an intervening put/erase/expiry — even an ABA rewrite of
    /// the same pointer — fails the cas.
    bool cas(const Key& key, std::uint64_t expected_version, Value value,
             std::uint64_t ttl_ns = 0, std::uint64_t now_ns = 0) {
        shard_t& sh = shard_for(key);
        typename policy_t::guard g(policy_);
        auto box = policy_.template make_owner<box_t>(std::move(value),
                                                      deadline(ttl_ns, now_ns));
        bucket_t& bucket = bucket_for(sh, key);
        for (;;) {
            auto [entry, inserted] = bucket.get_or_insert(
                g, key, [&] { return policy_.template make_owner<entry_t>(key); });
            while (!policy_.flag_load(entry->dead)) {
                std::uint64_t version = 0;
                box_t* cur = g.template vprotect<box_t>(3, entry->val, version);
                if (policy_.flag_load(entry->dead)) break;  // frozen slot
                if (version != expected_version) {
                    sh.stats->cas_fail.fetch_add(1, std::memory_order_relaxed);
                    return false;
                }
                if (policy_.vinstall_if_live(entry->val, version, cur, box.get(),
                                             entry->dead)) {
                    sh.stats->cas_ok.fetch_add(1, std::memory_order_relaxed);
                    policy_.publish_ok(box);
                    return true;
                }
                // CASN failed: version moved or the entry died. Re-read; the
                // dead checks above route a dead entry back to re-search.
            }
        }
    }

    /// Remove the key. Returns true when a live, unexpired value was
    /// removed. The value claim and the dead-mark are one CASN (header
    /// comment), so the value this call removes is exactly the one it
    /// witnessed — no write can slip in between snapshot and mark.
    bool erase(const Key& key, std::uint64_t now_ns = 0) {
        shard_t& sh = shard_for(key);
        typename policy_t::guard g(policy_);
        bucket_t& bucket = bucket_for(sh, key);
        for (;;) {
            entry_t* entry = find_strong(g, sh, key);
            if (entry == nullptr) return false;
            std::uint64_t version = 0;
            box_t* cur = g.template vprotect<box_t>(3, entry->val, version);
            if (!policy_.vclaim_mark_dead(entry->val, version, cur, entry->dead)) {
                if (policy_.flag_load(entry->dead)) return false;  // racer claimed it
                continue;  // a write moved the value under us; re-decide
            }
            // cur stays protected in slot 3 (the claim retires, never frees,
            // under a live protection), so the expiry check below is safe.
            bucket.help_unlink(g, key);  // eager physical removal
            sh.stats->erases.fetch_add(1, std::memory_order_relaxed);
            return cur != nullptr && !expired(cur, now_ns);
        }
    }

    // ---- maintenance ---------------------------------------------------

    /// Eagerly clear every expired value (version-tied, so racing fresh
    /// puts survive), then drive the policy's deferred reclamation so the
    /// cleared boxes actually leave the heap. Returns the number of values
    /// expired by this call.
    std::size_t sweep_expired(std::uint64_t now_ns, int flush_rounds = 16) {
        std::size_t cleared = 0;
        for (auto& sh : shards_) {
            for (auto& bucket : sh->buckets) {
                typename policy_t::guard g(policy_);
                bucket->for_each(g, [&](entry_t& entry) {
                    std::uint64_t version = 0;
                    box_t* box = g.template vtraverse<box_t>(3, entry.val, version);
                    if (box == nullptr || !expired(box, now_ns)) return;
                    if (!g.upgrade(1)) return;  // entry being destroyed
                    if (lazy_expire(g, *sh, &entry, now_ns)) ++cleared;
                });
            }
        }
        policy_.drain(flush_rounds);
        return cleared;
    }

    /// Graceful shutdown: sever every bucket chain and drain the policy.
    /// Returns the residual pending count (0 = fully quiesced; nonzero
    /// means a pin/hazard elsewhere is still held). Writers must be
    /// quiesced first (clear() contract).
    std::uint64_t drain(int flush_rounds = 64) {
        for (auto& sh : shards_) {
            for (auto& bucket : sh->buckets) bucket->clear();
        }
        return policy_.drain(flush_rounds);
    }

    // ---- introspection -------------------------------------------------

    /// Live, unexpired entries. Exact only at quiescence.
    std::size_t size(std::uint64_t now_ns = 0) {
        std::size_t n = 0;
        for (auto& sh : shards_) {
            for (auto& bucket : sh->buckets) {
                typename policy_t::guard g(policy_);
                bucket->for_each(g, [&](entry_t& entry) {
                    std::uint64_t version = 0;
                    box_t* box = g.template vtraverse<box_t>(3, entry.val, version);
                    if (box != nullptr && !expired(box, now_ns)) ++n;
                });
            }
        }
        return n;
    }

    /// The policy instance this store's guards must come from. The net
    /// server uses it to hold one outer guard across a whole event-loop
    /// tick (per-op guards nest inside it), amortizing the pin/flush cost
    /// over the batch. Only meaningful for policies with re-entrant guards
    /// (counted, borrowed, ebr, deferred, leaky — not hp, whose per-thread
    /// hazard slots forbid nesting).
    policy_t& policy() noexcept { return policy_; }

    std::size_t shard_count() const noexcept { return shard_mask_ + 1; }
    std::size_t bucket_count() const noexcept {
        return shard_count() * shards_.front()->buckets.size();
    }

    /// The reclamation backlog attributable to this store's policy (global
    /// per scheme, not per store — comparable across stores of one policy
    /// only when others are quiescent).
    std::uint64_t reclaimer_pending() const noexcept { return policy_.pending(); }

    static constexpr const char* policy_name() noexcept { return policy_t::name(); }

    /// Aggregate of the per-shard striped counters.
    store_stats stats() const {
        store_stats total;
        for (const auto& sh : shards_) {
            total.gets += sh->stats->gets.load(std::memory_order_relaxed);
            total.hits += sh->stats->hits.load(std::memory_order_relaxed);
            total.puts += sh->stats->puts.load(std::memory_order_relaxed);
            total.erases += sh->stats->erases.load(std::memory_order_relaxed);
            total.cas_ok += sh->stats->cas_ok.load(std::memory_order_relaxed);
            total.cas_fail += sh->stats->cas_fail.load(std::memory_order_relaxed);
            total.expired += sh->stats->expired.load(std::memory_order_relaxed);
        }
        return total;
    }

  private:
    /// The value cell: an immutable payload plus its expiry deadline. A
    /// leaf of the ownership graph — entries point at boxes, never back.
    struct box_t : policy_t::template node_base<box_t> {
        Value payload;
        std::uint64_t expires_at_ns;  ///< 0 = never expires

        box_t(Value v, std::uint64_t dl) : payload(std::move(v)), expires_at_ns(dl) {}

        static constexpr std::size_t smr_link_count = 0;
        template <typename F>
        void smr_children(F&&) {}
    };
    static_assert(lfrc::smr::detail::children_cover_all_links_v<box_t>,
                  "box_t must declare smr_link_count and a visitable "
                  "smr_children enumeration");

    /// A key's slot in its bucket list: the list_core node contract
    /// (next/dead/key) plus the versioned value field.
    struct entry_t : policy_t::template node_base<entry_t> {
        typename policy_t::template link<entry_t> next;
        typename policy_t::flag dead;
        typename policy_t::template vslot<box_t> val;
        Key key{};

        entry_t() = default;
        explicit entry_t(Key k) : key(std::move(k)) {}

        static constexpr std::size_t smr_link_count = 2;
        template <typename F>
        void smr_children(F&& f) {
            f(next);
            f(val);
        }

        /// Quiescent-teardown hook (manual policies' reset_chain): the value
        /// box is a satellite allocation the chain walk cannot see.
        void smr_dispose() {
            if constexpr (!policy_t::counted_links) delete val.exclusive_get();
        }
    };
    static_assert(lfrc::smr::detail::children_cover_all_links_v<entry_t>,
                  "entry_t must declare smr_link_count and a visitable "
                  "smr_children enumeration");

    using bucket_t = containers::list_core<policy_t, entry_t>;

    struct shard_stats_t {
        std::atomic<std::uint64_t> gets{0};
        std::atomic<std::uint64_t> hits{0};
        std::atomic<std::uint64_t> puts{0};
        std::atomic<std::uint64_t> erases{0};
        std::atomic<std::uint64_t> cas_ok{0};
        std::atomic<std::uint64_t> cas_fail{0};
        std::atomic<std::uint64_t> expired{0};
    };

    struct shard_t {
        std::vector<std::unique_ptr<bucket_t>> buckets;
        util::padded<shard_stats_t> stats;
    };

    static bool expired(const box_t* box, std::uint64_t now_ns) noexcept {
        return box->expires_at_ns != 0 && box->expires_at_ns <= now_ns;
    }

    static std::uint64_t deadline(std::uint64_t ttl_ns, std::uint64_t now_ns) noexcept {
        return ttl_ns == 0 ? 0 : now_ns + ttl_ns;
    }

    /// Strong lookup via the helping search: the live entry, protected in
    /// slot 1, or null.
    entry_t* find_strong(typename policy_t::guard& g, shard_t& sh, const Key& key) {
        auto pos = bucket_for(sh, key).search(g, key);
        return (pos.curr != nullptr && pos.curr->key == key) ? pos.curr : nullptr;
    }

    /// Clear an expired value through a version-tied install of null.
    /// Requires `entry` strongly protected (writing an object's cells
    /// requires a write license — docs/ALGORITHMS.md §8). Returns true when
    /// this call did the clearing.
    bool lazy_expire(typename policy_t::guard& g, shard_t& sh, entry_t* entry,
                     std::uint64_t now_ns) {
        std::uint64_t version = 0;
        box_t* cur = g.template vprotect<box_t>(3, entry->val, version);
        if (cur == nullptr || !expired(cur, now_ns)) return false;  // racer acted
        if (!policy_.vinstall_if_live(entry->val, version, cur,
                                      static_cast<box_t*>(nullptr), entry->dead)) {
            return false;  // racing put/erase acted first; nothing to clear
        }
        sh.stats->expired.fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    shard_t& shard_for(const Key& key) {
        return *shards_[util::low_index(util::mix64(hasher_(key)), shard_mask_)];
    }

    bucket_t& bucket_for(shard_t& sh, const Key& key) {
        // Shard index consumes the low bits; buckets key off the high ones.
        return *sh.buckets[util::high_index(util::mix64(hasher_(key)), sh.buckets.size())];
    }

    Hash hasher_;
    policy_t policy_{};
    std::size_t shard_mask_ = 0;
    std::vector<std::unique_ptr<shard_t>> shards_;
};

}  // namespace lfrc::store
