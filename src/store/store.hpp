// lfrc::store — a sharded, GC-independent in-memory key-value store where
// every value is an LFRC-counted object.
//
// This is the layer that composes the repo's individual containers into a
// serving workload: the shape concurrent-reference-counting systems are
// judged by (Anderson/Blelloch/Wei's store benchmarks; Brown's reclaimer
// comparisons). Everything below is built from existing seams — no new
// synchronization primitives:
//
//   sharding      N power-of-two shards, each a fixed array of
//                 containers::lfrc_list_core buckets (the DCAS-deletion
//                 list that backs lfrc_hash_set), so contention and chain
//                 length shrink by shards × buckets.
//   values        每 entry owns its current value through an
//                 ll_field<value_box>: a (pointer, version) cell pair. The
//                 pointer half carries the LFRC count; the version half
//                 makes every write observable, which is what get/cas key
//                 off. Versions are per-entry value-slot versions: 0 means
//                 "no value ever written here" (absent), and an entry
//                 reincarnated after erase restarts at 0 — consistent,
//                 because version 0 *means* absent.
//   reads         get() walks the bucket on the epoch-borrowed fast path
//                 (borrow_ptr end to end: entry and value box) — zero
//                 refcount traffic per read. get_counted() is the same
//                 lookup through counted LFRCLoads, kept as the workload
//                 driver's "counted" reclaimer-policy axis.
//   writes        put = load_linked + store_conditional_if_flag (version
//                 bump, conditioned on the entry being live);
//                 cas = the same with a version precondition — the LL/SC
//                 extension's CASN on (pointer, version, dead-flag) is
//                 exactly "compare-and-swap on the value version, iff the
//                 entry still holds the key".
//   TTL           value boxes carry an absolute expiry deadline; reads
//                 treat expired boxes as misses and lazily clear them with
//                 a version-tied store_conditional (so an expiry sweep can
//                 never clobber a racing fresh put). sweep() does the same
//                 eagerly and pairs with flush_deferred_frees so the
//                 memory actually shrinks.
//   shutdown      drain() severs every bucket chain (the whole structure
//                 unravels through lfrc_visit_children) and drives
//                 flush_deferred_frees to its bounded completion.
//
// Linearizability around entry removal: erase claims the entry's value AND
// marks the entry dead in ONE atomic step (Domain::claim_and_set_flag, a
// 3-word CASN over the value pointer, its version, and the dead flag), and
// every value write (put/cas/expiry) is conditioned on the flag still being
// false in the same step (Domain::store_conditional_if_flag). So a value
// can never land in an entry a racing eraser has claimed: the write either
// linearizes strictly before the erase (the eraser's snapshot saw it) or
// fails and retries against the key's current entry. The earlier
// write-then-recheck protocol left a window where a put's value was
// transiently visible, then vanished with erase reporting false — a lost
// update the sim harness (tests/sim/sim_store_test.cpp) caught; the CASN
// closes it. A dead entry's frozen (null) value slot and chain link are
// released by lfrc_visit_children, so nothing leaks either way.
//
// The store never reads a clock: expiry decisions take `now_ns` explicitly
// (callers use util::stopwatch / steady_clock; tests and the sim harness
// pass synthetic times, keeping schedules deterministic).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "containers/lfrc_list.hpp"
#include "lfrc/lfrc.hpp"
#include "util/cacheline.hpp"
#include "util/hash.hpp"

namespace lfrc::store {

/// Aggregated operation counters (per-shard striped; see kv_store::stats).
struct store_stats {
    std::uint64_t gets = 0;
    std::uint64_t hits = 0;
    std::uint64_t puts = 0;
    std::uint64_t erases = 0;
    std::uint64_t cas_ok = 0;
    std::uint64_t cas_fail = 0;
    std::uint64_t expired = 0;

    double hit_rate() const {
        return gets > 0 ? static_cast<double>(hits) / static_cast<double>(gets) : 0.0;
    }
};

template <typename Domain, typename Key, typename Value, typename Hash = std::hash<Key>>
class kv_store {
  public:
    struct config {
        std::size_t shards = 8;             ///< rounded up to a power of two
        std::size_t buckets_per_shard = 64;
    };

    /// A versioned read: `found` distinguishes a live value from absence;
    /// `version` is the entry's value-slot version either way (0 = absent /
    /// never written), usable as the expected version of a later cas().
    struct versioned {
        bool found = false;
        Value value{};
        std::uint64_t version = 0;
    };

    explicit kv_store(config cfg = {}) {
        std::size_t n = 1;
        while (n < cfg.shards) n <<= 1;
        shard_mask_ = n - 1;
        const std::size_t buckets = cfg.buckets_per_shard > 0 ? cfg.buckets_per_shard : 1;
        shards_.reserve(n);
        for (std::size_t s = 0; s < n; ++s) {
            auto sh = std::make_unique<shard_t>();
            sh->buckets.reserve(buckets);
            for (std::size_t b = 0; b < buckets; ++b) {
                sh->buckets.push_back(std::make_unique<bucket_t>());
            }
            shards_.push_back(std::move(sh));
        }
    }

    kv_store(const kv_store&) = delete;
    kv_store& operator=(const kv_store&) = delete;

    // ---- reads ---------------------------------------------------------

    /// Borrowed fast-path read: one epoch pin, zero refcount traffic. An
    /// expired value reads as a miss and is lazily cleared (version-tied,
    /// so the clear can never race out a fresh put).
    std::optional<Value> get(const Key& key, std::uint64_t now_ns = 0) {
        shard_t& sh = shard_for(key);
        sh.stats->gets.fetch_add(1, std::memory_order_relaxed);
        auto entry = bucket_for(sh, key).find_borrowed(key);
        if (!entry) return std::nullopt;
        std::uint64_t version = 0;
        auto box = Domain::load_borrowed(entry->val, &version);
        if (!box) return std::nullopt;
        if (expired(box.get(), now_ns)) {
            lazy_expire(sh, entry.promote(), now_ns);
            return std::nullopt;
        }
        sh.stats->hits.fetch_add(1, std::memory_order_relaxed);
        return box->payload;
    }

    /// The same read through counted references (LFRCLoad + LL): the
    /// workload driver's "counted" reclaimer-policy axis, and the variant
    /// to use when the returned value must be read without copying while
    /// outliving any pin.
    std::optional<Value> get_counted(const Key& key, std::uint64_t now_ns = 0) {
        shard_t& sh = shard_for(key);
        sh.stats->gets.fetch_add(1, std::memory_order_relaxed);
        auto entry = bucket_for(sh, key).find_counted(key);
        if (!entry) return std::nullopt;
        typename Domain::template local_ptr<box_t> box;
        Domain::load_linked(entry->val, box);
        if (!box) return std::nullopt;
        if (expired(box.get(), now_ns)) {
            lazy_expire(sh, std::move(entry), now_ns);
            return std::nullopt;
        }
        sh.stats->hits.fetch_add(1, std::memory_order_relaxed);
        return box->payload;
    }

    /// Borrowed read returning the value-slot version alongside the value;
    /// the version feeds a later cas(). Absent keys report version 0.
    versioned get_versioned(const Key& key, std::uint64_t now_ns = 0) {
        shard_t& sh = shard_for(key);
        sh.stats->gets.fetch_add(1, std::memory_order_relaxed);
        auto entry = bucket_for(sh, key).find_borrowed(key);
        if (!entry) return {};
        std::uint64_t version = 0;
        auto box = Domain::load_borrowed(entry->val, &version);
        if (!box || expired(box.get(), now_ns)) {
            if (box && expired(box.get(), now_ns)) {
                lazy_expire(sh, entry.promote(), now_ns);
                // The clear (ours or a racer's) bumped the version past the
                // one we read; report absence at the version we witnessed —
                // a cas from it will fail and re-read, which is correct.
            }
            return versioned{false, Value{}, version};
        }
        sh.stats->hits.fetch_add(1, std::memory_order_relaxed);
        return versioned{true, box->payload, version};
    }

    // ---- writes --------------------------------------------------------

    /// Unconditional upsert. `ttl_ns` of 0 means the value never expires;
    /// otherwise it expires at now_ns + ttl_ns.
    void put(const Key& key, Value value, std::uint64_t ttl_ns = 0,
             std::uint64_t now_ns = 0) {
        shard_t& sh = shard_for(key);
        sh.stats->puts.fetch_add(1, std::memory_order_relaxed);
        auto box = Domain::template make<box_t>(std::move(value), deadline(ttl_ns, now_ns));
        bucket_t& bucket = bucket_for(sh, key);
        for (;;) {
            auto [entry, inserted] = bucket.get_or_insert(key, [&] {
                return Domain::template make<entry_t>(key);
            });
            while (!entry->dead.load()) {
                typename Domain::template local_ptr<box_t> cur;
                const auto token = Domain::load_linked(entry->val, cur);
                // The install is atomic with "entry still live" (header
                // comment): a racing erase either sees our value in its
                // claim or makes this fail, never both and never neither.
                if (Domain::store_conditional_if_flag(entry->val, token, cur.get(),
                                                      box.get(), entry->dead,
                                                      /*flag_required=*/false)) {
                    return;
                }
            }
            // Entry died under us; its value slot is frozen. Re-search: the
            // key's current entry (or a fresh one) takes the value.
        }
    }

    /// Version compare-and-swap: install `value` iff the key's value-slot
    /// version still equals `expected_version`. expected_version 0 is
    /// create-if-absent. The underlying store_conditional DCASes the
    /// (pointer, version) pair, so an intervening put/erase/expiry — even an
    /// ABA rewrite of the same pointer — fails the cas.
    bool cas(const Key& key, std::uint64_t expected_version, Value value,
             std::uint64_t ttl_ns = 0, std::uint64_t now_ns = 0) {
        shard_t& sh = shard_for(key);
        auto box = Domain::template make<box_t>(std::move(value), deadline(ttl_ns, now_ns));
        bucket_t& bucket = bucket_for(sh, key);
        for (;;) {
            auto [entry, inserted] = bucket.get_or_insert(key, [&] {
                return Domain::template make<entry_t>(key);
            });
            while (!entry->dead.load()) {
                typename Domain::template local_ptr<box_t> cur;
                const auto token = Domain::load_linked(entry->val, cur);
                if (entry->dead.load()) break;  // frozen slot: judge fresh state
                if (token.version != expected_version) {
                    sh.stats->cas_fail.fetch_add(1, std::memory_order_relaxed);
                    return false;
                }
                if (Domain::store_conditional_if_flag(entry->val, token, cur.get(),
                                                      box.get(), entry->dead,
                                                      /*flag_required=*/false)) {
                    sh.stats->cas_ok.fetch_add(1, std::memory_order_relaxed);
                    return true;
                }
                // CASN failed: version moved or the entry died. Re-read; the
                // dead checks above route a dead entry back to re-search.
            }
        }
    }

    /// Remove the key. Returns true when a live, unexpired value was
    /// removed. The value claim and the dead-mark are one CASN (header
    /// comment), so the value this call removes is exactly the one it
    /// witnessed — no write can slip in between snapshot and mark.
    bool erase(const Key& key, std::uint64_t now_ns = 0) {
        shard_t& sh = shard_for(key);
        bucket_t& bucket = bucket_for(sh, key);
        for (;;) {
            auto entry = bucket.find_counted(key);
            if (!entry) return false;
            typename Domain::template local_ptr<box_t> cur;
            const auto token = Domain::load_linked(entry->val, cur);
            if (!Domain::claim_and_set_flag(entry->val, token, cur.get(), entry->dead)) {
                if (entry->dead.load()) return false;  // racing erase claimed it
                continue;  // a write moved the value under us; re-decide
            }
            bucket.help_unlink(key);  // eager physical removal of the dead node
            sh.stats->erases.fetch_add(1, std::memory_order_relaxed);
            return cur && !expired(cur.get(), now_ns);
        }
    }

    // ---- maintenance ---------------------------------------------------

    /// Eagerly clear every expired value (version-tied, so racing fresh
    /// puts survive), then drive the deferred frees so the reclaimed boxes
    /// actually leave the heap. Returns the number of values expired.
    std::size_t sweep_expired(std::uint64_t now_ns, int flush_rounds = 16) {
        std::size_t cleared = 0;
        for (auto& sh : shards_) {
            for (auto& bucket : sh->buckets) {
                bucket->for_each_borrowed([&](const auto& entry_borrow) {
                    std::uint64_t version = 0;
                    auto box = Domain::load_borrowed(entry_borrow->val, &version);
                    if (!box || !expired(box.get(), now_ns)) return;
                    if (lazy_expire(*sh, entry_borrow.promote(), now_ns)) ++cleared;
                });
            }
        }
        flush_deferred_frees(flush_rounds);
        return cleared;
    }

    /// Graceful shutdown: sever every bucket chain and drain the deferred
    /// frees. Returns the residual pending count (0 = fully quiesced; see
    /// flush_deferred_frees for why nonzero means a pin is still held).
    /// Writers must be quiesced first (clear() contract).
    std::uint64_t drain(int flush_rounds = 64) {
        for (auto& sh : shards_) {
            for (auto& bucket : sh->buckets) bucket->clear();
        }
        return flush_deferred_frees(flush_rounds);
    }

    // ---- introspection -------------------------------------------------

    /// Live, unexpired entries. Exact only at quiescence.
    std::size_t size(std::uint64_t now_ns = 0) {
        std::size_t n = 0;
        for (auto& sh : shards_) {
            for (auto& bucket : sh->buckets) {
                bucket->for_each_borrowed([&](const auto& entry_borrow) {
                    auto box = Domain::load_borrowed(entry_borrow->val);
                    if (box && !expired(box.get(), now_ns)) ++n;
                });
            }
        }
        return n;
    }

    std::size_t shard_count() const noexcept { return shard_mask_ + 1; }
    std::size_t bucket_count() const noexcept {
        return shard_count() * shards_.front()->buckets.size();
    }

    /// Aggregate of the per-shard striped counters.
    store_stats stats() const {
        store_stats total;
        for (const auto& sh : shards_) {
            total.gets += sh->stats->gets.load(std::memory_order_relaxed);
            total.hits += sh->stats->hits.load(std::memory_order_relaxed);
            total.puts += sh->stats->puts.load(std::memory_order_relaxed);
            total.erases += sh->stats->erases.load(std::memory_order_relaxed);
            total.cas_ok += sh->stats->cas_ok.load(std::memory_order_relaxed);
            total.cas_fail += sh->stats->cas_fail.load(std::memory_order_relaxed);
            total.expired += sh->stats->expired.load(std::memory_order_relaxed);
        }
        return total;
    }

  private:
    /// The value cell: an immutable payload plus its expiry deadline. A
    /// leaf of the ownership graph — entries point at boxes, never back.
    struct box_t : Domain::object {
        Value payload;
        std::uint64_t expires_at_ns;  ///< 0 = never expires

        box_t(Value v, std::uint64_t dl) : payload(std::move(v)), expires_at_ns(dl) {}
        void lfrc_visit_children(typename Domain::child_visitor&) noexcept override {}
    };

    /// A key's slot in its bucket list: the lfrc_list_core node contract
    /// (next/dead/key) plus the versioned value field.
    struct entry_t : Domain::object {
        typename Domain::template ptr_field<entry_t> next;
        typename Domain::flag_field dead;
        typename Domain::template ll_field<box_t> val;
        Key key{};

        entry_t() = default;
        explicit entry_t(Key k) : key(std::move(k)) {}

        void lfrc_visit_children(typename Domain::child_visitor& v) noexcept override {
            v.on_child(next.exclusive_get());
            v.on_child(val.exclusive_get());
        }
    };

    using bucket_t = containers::lfrc_list_core<Domain, entry_t>;

    struct shard_stats_t {
        std::atomic<std::uint64_t> gets{0};
        std::atomic<std::uint64_t> hits{0};
        std::atomic<std::uint64_t> puts{0};
        std::atomic<std::uint64_t> erases{0};
        std::atomic<std::uint64_t> cas_ok{0};
        std::atomic<std::uint64_t> cas_fail{0};
        std::atomic<std::uint64_t> expired{0};
    };

    struct shard_t {
        std::vector<std::unique_ptr<bucket_t>> buckets;
        util::padded<shard_stats_t> stats;
    };

    static bool expired(const box_t* box, std::uint64_t now_ns) noexcept {
        return box->expires_at_ns != 0 && box->expires_at_ns <= now_ns;
    }

    static std::uint64_t deadline(std::uint64_t ttl_ns, std::uint64_t now_ns) noexcept {
        return ttl_ns == 0 ? 0 : now_ns + ttl_ns;
    }

    /// Clear an expired value through a version-tied store_conditional.
    /// Takes a *counted* entry (writing an object's cells requires one —
    /// docs/ALGORITHMS.md §8); a null entry (promote lost to a concurrent
    /// erase) is a no-op. Returns true when this call did the clearing.
    bool lazy_expire(shard_t& sh, typename Domain::template local_ptr<entry_t> entry,
                     std::uint64_t now_ns) {
        if (!entry) return false;
        typename Domain::template local_ptr<box_t> cur;
        const auto token = Domain::load_linked(entry->val, cur);
        if (!cur || !expired(cur.get(), now_ns)) return false;  // racer already acted
        if (!Domain::store_conditional_if_flag(entry->val, token, cur.get(),
                                               static_cast<box_t*>(nullptr),
                                               entry->dead, /*flag_required=*/false)) {
            return false;  // racing put/erase acted first; nothing to clear
        }
        sh.stats->expired.fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    shard_t& shard_for(const Key& key) {
        return *shards_[util::mix64(hasher_(key)) & shard_mask_];
    }

    bucket_t& bucket_for(shard_t& sh, const Key& key) {
        const std::uint64_t h = util::mix64(hasher_(key));
        // Shard index consumes the low bits; buckets key off the high ones.
        return *sh.buckets[(h >> 32) % sh.buckets.size()];
    }

    Hash hasher_;
    std::size_t shard_mask_ = 0;
    std::vector<std::unique_ptr<shard_t>> shards_;
};

}  // namespace lfrc::store
