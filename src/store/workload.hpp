// Closed-loop workload driver for the store benchmarks (experiment E9).
//
// Runs N worker threads, each issuing a get/put/erase/cas mix against an
// Ops adapter, with zipf- or uniform-distributed keys (YCSB generator from
// util/random.hpp, ranks scrambled through util::mixed_index so the hot set
// spreads across shards). Closed loop: every worker issues its next op the
// moment the previous one returns, for `duration_seconds`, then the driver
// joins everyone and releases the workers' epoch slots so a subsequent
// drain can reach zero.
//
// Determinism: per-thread RNGs derive from util::mix_seed(global_seed(),
// cfg.seed, thread index), so a run is replayable with LFRC_SEED. The only
// nondeterminism is the duration cutoff (wall clock), which is the point
// of a throughput benchmark.
//
// The Ops concept (duck-typed; adapters below):
//
//   void do_put(std::uint64_t key, std::uint64_t value, std::uint64_t now_ns);
//   bool do_get(std::uint64_t key, std::uint64_t now_ns);   // true = hit
//   bool do_erase(std::uint64_t key, std::uint64_t now_ns);
//   bool do_cas(std::uint64_t key, std::uint64_t value, std::uint64_t now_ns);
//   static constexpr const char* name();
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "reclaim/epoch.hpp"
#include "store/store.hpp"
#include "util/hash.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_registry.hpp"

namespace lfrc::store {

struct workload_config {
    int threads = 4;
    double duration_seconds = 0.4;
    std::uint64_t keyspace = 1ULL << 14;
    int get_percent = 80;  ///< remainder after get/erase/cas goes to put
    int erase_percent = 0;
    int cas_percent = 0;
    double zipf_theta = 0.99;     ///< <= 0 selects uniform keys
    std::uint64_t value_ttl_ns = 0;  ///< 0 = values never expire
    std::uint64_t seed = 1;
    double preload_fraction = 1.0;  ///< fraction of keyspace put() before start
};

struct workload_result {
    std::uint64_t total_ops = 0;
    std::uint64_t gets = 0;
    std::uint64_t hits = 0;
    std::uint64_t puts = 0;
    std::uint64_t erases = 0;
    std::uint64_t cas_tried = 0;
    std::uint64_t cas_ok = 0;
    double seconds = 0.0;

    double mops() const {
        return seconds > 0.0 ? static_cast<double>(total_ops) / seconds / 1e6 : 0.0;
    }
    double hit_rate() const {
        return gets > 0 ? static_cast<double>(hits) / static_cast<double>(gets) : 0.0;
    }
};

/// Run `cfg` against `ops`. Blocks until the run completes. After joining
/// the workers, releases their epoch-domain slots (clear_slot contract:
/// legal exactly because the owning threads have exited and the slot
/// indices were recorded before the join).
template <typename Ops>
workload_result run_workload(Ops& ops, const workload_config& cfg) {
    const int threads = cfg.threads > 0 ? cfg.threads : 1;
    const std::uint64_t keyspace = cfg.keyspace > 0 ? cfg.keyspace : 1;
    const util::zipf_gen zipf(keyspace, cfg.zipf_theta);

    // Preload so gets have something to hit from the first sample.
    {
        auto preload = static_cast<std::uint64_t>(cfg.preload_fraction *
                                                  static_cast<double>(keyspace));
        if (preload > keyspace) preload = keyspace;
        const std::uint64_t now = cfg.value_ttl_ns != 0 ? util::steady_now_ns() : 0;
        for (std::uint64_t rank = 0; rank < preload; ++rank) {
            const std::uint64_t key = util::mixed_index(rank, keyspace);
            ops.do_put(key, rank, now);
        }
    }

    util::spin_barrier barrier(static_cast<std::size_t>(threads) + 1);
    std::atomic<bool> stop{false};
    std::vector<workload_result> partial(static_cast<std::size_t>(threads));
    std::vector<std::size_t> slots(static_cast<std::size_t>(threads));
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));

    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            // Record the slot now: after join it identifies this worker's
            // epoch record for the graceful clear_slot below.
            slots[static_cast<std::size_t>(t)] = util::thread_registry::instance().slot();
            util::xoshiro256 rng(util::mix_seed(util::global_seed(), cfg.seed,
                                                static_cast<std::uint64_t>(t)));
            workload_result local;
            // TTL runs need a clock; cache it and refresh every 256 ops so
            // the clock read stays off the per-op path.
            std::uint64_t now = cfg.value_ttl_ns != 0 ? util::steady_now_ns() : 0;
            std::uint64_t ops_since_clock = 0;
            barrier.arrive_and_wait();
            while (!stop.load(std::memory_order_relaxed)) {
                if (cfg.value_ttl_ns != 0 && ++ops_since_clock >= 256) {
                    ops_since_clock = 0;
                    now = util::steady_now_ns();
                }
                const std::uint64_t key = util::mixed_index(zipf(rng), keyspace);
                const std::uint64_t roll = rng.below(100);
                if (roll < static_cast<std::uint64_t>(cfg.get_percent)) {
                    ++local.gets;
                    if (ops.do_get(key, now)) ++local.hits;
                } else if (roll < static_cast<std::uint64_t>(cfg.get_percent +
                                                             cfg.erase_percent)) {
                    ++local.erases;
                    ops.do_erase(key, now);
                } else if (roll < static_cast<std::uint64_t>(
                                      cfg.get_percent + cfg.erase_percent +
                                      cfg.cas_percent)) {
                    ++local.cas_tried;
                    if (ops.do_cas(key, rng(), now)) ++local.cas_ok;
                } else {
                    ++local.puts;
                    ops.do_put(key, rng(), now);
                }
                ++local.total_ops;
            }
            partial[static_cast<std::size_t>(t)] = local;
        });
    }

    barrier.arrive_and_wait();
    const auto t0 = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::duration<double>(cfg.duration_seconds));
    stop.store(true, std::memory_order_relaxed);
    for (auto& w : workers) w.join();
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

    // Graceful shard-drain path: the workers are joined (can never run
    // again), so clearing their epoch slots is legal and lets a subsequent
    // flush/drain reach zero even though the OS threads — whose
    // thread_local destructors normally reset the slot state — are gone
    // without having exited any still-pinned sections. Slots with a live
    // pin at join time would otherwise stall the epoch forever.
    reclaim::epoch_domain::global().clear_slots(slots.data(), slots.size());

    workload_result total;
    total.seconds = seconds;
    for (const auto& p : partial) {
        total.total_ops += p.total_ops;
        total.gets += p.gets;
        total.hits += p.hits;
        total.puts += p.puts;
        total.erases += p.erases;
        total.cas_tried += p.cas_tried;
        total.cas_ok += p.cas_ok;
    }
    return total;
}

// ---- Ops adapters --------------------------------------------------------

/// LFRC store, epoch-borrowed read fast path (the headline configuration).
template <typename Domain>
struct kv_store_borrow_ops {
    using store_t = kv_store<Domain, std::uint64_t, std::uint64_t>;
    explicit kv_store_borrow_ops(store_t& s, std::uint64_t ttl = 0)
        : store(s), ttl_ns(ttl) {}

    static constexpr const char* name() { return "lfrc-borrow"; }
    bool do_get(std::uint64_t k, std::uint64_t now) {
        return store.get(k, now).has_value();
    }
    void do_put(std::uint64_t k, std::uint64_t v, std::uint64_t now) {
        store.put(k, v, ttl_ns, now);
    }
    bool do_erase(std::uint64_t k, std::uint64_t now) { return store.erase(k, now); }
    bool do_cas(std::uint64_t k, std::uint64_t v, std::uint64_t now) {
        const auto cur = store.get_versioned(k, now);
        return store.cas(k, cur.version, v, ttl_ns, now);
    }

    store_t& store;
    std::uint64_t ttl_ns;
};

/// LFRC store, fully counted reads (every lookup pays LFRCLoad traffic) —
/// the cost of the paper's Figure-2 discipline without the borrow escape.
template <typename Domain>
struct kv_store_counted_ops {
    using store_t = kv_store<Domain, std::uint64_t, std::uint64_t>;
    explicit kv_store_counted_ops(store_t& s, std::uint64_t ttl = 0)
        : store(s), ttl_ns(ttl) {}

    static constexpr const char* name() { return "lfrc-counted"; }
    bool do_get(std::uint64_t k, std::uint64_t now) {
        return store.get_counted(k, now).has_value();
    }
    void do_put(std::uint64_t k, std::uint64_t v, std::uint64_t now) {
        store.put(k, v, ttl_ns, now);
    }
    bool do_erase(std::uint64_t k, std::uint64_t now) { return store.erase(k, now); }
    bool do_cas(std::uint64_t k, std::uint64_t v, std::uint64_t now) {
        const auto cur = store.get_versioned(k, now);
        return store.cas(k, cur.version, v, ttl_ns, now);
    }

    store_t& store;
    std::uint64_t ttl_ns;
};

/// Any kv_store instantiation by its policy name — the generic adapter the
/// E9 policy matrix loops over (counted / borrowed / ebr / hp / leaky all
/// run the identical store body).
template <typename PolicyOrDomain>
struct kv_store_policy_ops {
    using store_t = kv_store<PolicyOrDomain, std::uint64_t, std::uint64_t>;
    explicit kv_store_policy_ops(store_t& s, std::uint64_t ttl = 0)
        : store(s), ttl_ns(ttl) {}

    static constexpr const char* name() { return store_t::policy_name(); }
    bool do_get(std::uint64_t k, std::uint64_t now) {
        return store.get(k, now).has_value();
    }
    void do_put(std::uint64_t k, std::uint64_t v, std::uint64_t now) {
        store.put(k, v, ttl_ns, now);
    }
    bool do_erase(std::uint64_t k, std::uint64_t now) { return store.erase(k, now); }
    bool do_cas(std::uint64_t k, std::uint64_t v, std::uint64_t now) {
        const auto cur = store.get_versioned(k, now);
        return store.cas(k, cur.version, v, ttl_ns, now);
    }

    store_t& store;
    std::uint64_t ttl_ns;
};

}  // namespace lfrc::store
