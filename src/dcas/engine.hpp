// The DCAS engine concept.
//
// An engine provides atomic single-cell read, single-cell CAS, and the
// paper's DCAS: atomically compare two independently chosen cells against
// expected values and, if both match, write both new values. All application
// access to cells in one "domain" must go through the same engine; mixing
// engines on one cell is undefined (the MCAS engine publishes descriptors
// that only it understands).
#pragma once

#include <concepts>
#include <cstdint>

#include "dcas/cell.hpp"

namespace lfrc::dcas {

template <typename E>
concept dcas_engine = requires(cell& c, std::uint64_t v) {
    { E::read(c) } -> std::same_as<std::uint64_t>;
    { E::cas(c, v, v) } -> std::same_as<bool>;
    { E::dcas(c, c, v, v, v, v) } -> std::same_as<bool>;
    { E::name() } -> std::convertible_to<const char*>;
};

}  // namespace lfrc::dcas
