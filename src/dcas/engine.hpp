// The DCAS engine concept.
//
// An engine provides atomic single-cell read, single-cell CAS, the paper's
// DCAS (atomically compare two independently chosen cells against expected
// values and, if both match, write both new values), and the generalized
// N-word casn over its own casn_op record (N <= max_casn >= 2). All
// application access to cells in one "domain" must go through the same
// engine; mixing engines on one cell is undefined (the MCAS engine publishes
// descriptors that only it understands).
//
// clear_slot(s) is the virtual-thread abandonment seam: an engine with
// per-slot state (mcas_engine's permanent descriptors) invalidates slot s's
// share of it; engines without per-slot state provide a no-op. Callers must
// guarantee the slot's owner never runs again.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>

#include "dcas/cell.hpp"

namespace lfrc::dcas {

template <typename E>
concept dcas_engine = requires(cell& c, std::uint64_t v, typename E::casn_op* ops,
                               std::size_t n) {
    { E::read(c) } -> std::same_as<std::uint64_t>;
    { E::cas(c, v, v) } -> std::same_as<bool>;
    { E::dcas(c, c, v, v, v, v) } -> std::same_as<bool>;
    { E::casn(ops, n) } -> std::same_as<bool>;
    { E::clear_slot(n) } -> std::same_as<void>;
    { E::name() } -> std::convertible_to<const char*>;
    requires E::max_casn >= 2;
};

}  // namespace lfrc::dcas
