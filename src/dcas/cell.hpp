// The 64-bit shared cell every DCAS engine operates on, plus the value
// encoding contract.
//
// The paper assumes a hardware DCAS instruction that can atomically
// compare-and-swap two independently chosen memory words (e.g. the Motorola
// 68020 CAS2 it cites). We emulate that in software (see locked_engine and
// mcas_engine); the lock-free emulation publishes *descriptor pointers*
// through the same cells it operates on, so it must be able to distinguish a
// descriptor from an application value. The two low bits of every cell are
// therefore reserved:
//
//   bits 1..0 == 00  application value (pointer or encoded count)
//   bits 1..0 == 01  RDCSS descriptor   (mcas_engine internal)
//   bits 1..0 == 10  MCAS descriptor    (mcas_engine internal)
//
// Applications keep the contract automatically: heap pointers are >= 8-byte
// aligned, and reference counts are stored shifted left by two
// (encode_count / decode_count below).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "sim/instrumented.hpp"

namespace lfrc::dcas {

class cell {
  public:
    // std::atomic in production; the sim harness's scheduled-and-checked
    // atomic under -DLFRC_SIM. Cells are where every cross-thread LFRC race
    // happens, so this is the main instrumentation point.
    using word_type = sim::instrumented_atomic<std::uint64_t>;

    cell() noexcept = default;
    explicit cell(std::uint64_t initial) noexcept : word_(initial) {}

    cell(const cell&) = delete;
    cell& operator=(const cell&) = delete;

    /// Raw access for engines only; application code goes through an engine.
    word_type& raw() noexcept { return word_; }
    const word_type& raw() const noexcept { return word_; }

  private:
    word_type word_{0};
};

inline constexpr std::uint64_t tag_mask = 0x3;
inline constexpr std::uint64_t tag_value = 0x0;
inline constexpr std::uint64_t tag_rdcss = 0x1;
inline constexpr std::uint64_t tag_mcas = 0x2;

inline bool is_clean_value(std::uint64_t v) noexcept { return (v & tag_mask) == tag_value; }
inline bool is_rdcss(std::uint64_t v) noexcept { return (v & tag_mask) == tag_rdcss; }
inline bool is_mcas(std::uint64_t v) noexcept { return (v & tag_mask) == tag_mcas; }

/// Pointer <-> cell value. Heap objects are always >= 8-aligned, so the low
/// tag bits of a pointer value are naturally zero.
template <typename T>
std::uint64_t encode_ptr(T* p) noexcept {
    const auto v = reinterpret_cast<std::uint64_t>(p);
    assert(is_clean_value(v) && "pointers stored in cells must be 4-byte aligned");
    return v;
}

template <typename T>
T* decode_ptr(std::uint64_t v) noexcept {
    assert(is_clean_value(v));
    return reinterpret_cast<T*>(v);
}

/// Count <-> cell value: counts occupy bits 2..63.
inline std::uint64_t encode_count(std::uint64_t c) noexcept { return c << 2; }
inline std::uint64_t decode_count(std::uint64_t v) noexcept {
    assert(is_clean_value(v));
    return v >> 2;
}

// ---- descriptor-word layout (mcas_engine) ---------------------------------
//
// The lock-free engine's descriptors are *permanent* per-thread objects
// (Arbel-Raviv & Brown, "Reuse, don't Recycle"): a tagged cell word does not
// carry a heap pointer but names a descriptor by (registry slot, pool index)
// and embeds the descriptor's sequence number at publication time, so
// helpers detect reuse by tag mismatch instead of relying on reclamation:
//
//   bits  1..0   tag (01 RDCSS / 10 MCAS, as above)
//   bits  3..2   descriptor index within the slot's pool
//   bits 10..4   thread-registry slot (max_threads = 128)
//   bits 63..11  sequence number, modulo 2^53
//
// Sequences are compared for equality only, so 53-bit wraparound is benign
// (an ABA across 2^53 reuses of one descriptor while a helper is stalled is
// out of the model).
inline constexpr std::uint64_t desc_index_bits = 2;
inline constexpr std::uint64_t desc_slot_bits = 7;
inline constexpr std::uint64_t desc_seq_shift = 2 + desc_index_bits + desc_slot_bits;
inline constexpr std::uint64_t desc_seq_mask = ~std::uint64_t{0} >> desc_seq_shift;

inline constexpr std::uint64_t make_desc_word(std::size_t slot, std::size_t index,
                                              std::uint64_t seq, std::uint64_t tag) noexcept {
    return (seq << desc_seq_shift) |
           (static_cast<std::uint64_t>(slot) << (2 + desc_index_bits)) |
           (static_cast<std::uint64_t>(index) << 2) | tag;
}
inline constexpr std::size_t desc_slot_of(std::uint64_t w) noexcept {
    return static_cast<std::size_t>((w >> (2 + desc_index_bits)) &
                                    ((std::uint64_t{1} << desc_slot_bits) - 1));
}
inline constexpr std::size_t desc_index_of(std::uint64_t w) noexcept {
    return static_cast<std::size_t>((w >> 2) & ((std::uint64_t{1} << desc_index_bits) - 1));
}
inline constexpr std::uint64_t desc_seq_of(std::uint64_t w) noexcept {
    return w >> desc_seq_shift;
}

}  // namespace lfrc::dcas
