// Lock-free DCAS emulation: Harris-style RDCSS + 2-entry MCAS.
//
// This engine realizes the hardware DCAS the paper assumes (§1, citing the
// 68020 CAS2) in portable C++ atomics, preserving lock-free progress:
//
//  * dcas(a0,a1,o0,o1,n0,n1) builds an MCAS descriptor with its two entries
//    sorted by cell address, then "helps" it to completion. Installation of
//    the descriptor into each cell is mediated by RDCSS (restricted
//    double-compare single-swap), which atomically checks that the MCAS is
//    still UNDECIDED while swapping the descriptor in. Once both entries
//    hold the descriptor the status is CASed to SUCCEEDED; otherwise to
//    FAILED; phase 2 unrolls each entry to the new (or old) value.
//  * Any thread that encounters a descriptor while reading or CASing a cell
//    helps it finish first — that is where lock-freedom comes from: a
//    stalled operation can always be completed by its obstructor.
//
// Descriptors are pool-allocated per operation and reclaimed through the
// global epoch domain: a helper dereferences a descriptor pointer it pulled
// out of a cell, so descriptors must survive — and their storage must not be
// reused — until every thread that might have seen them has left its
// critical section. Every public entry point pins an epoch guard for its
// whole duration.
//
// The address-ordering of entries prevents two overlapping DCAS operations
// from installing in opposite orders and repeatedly aborting each other.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "alloc/block_pool.hpp"
#include "dcas/cell.hpp"
#include "reclaim/epoch.hpp"

namespace lfrc::dcas {

class mcas_engine {
  public:
    static const char* name() noexcept { return "mcas"; }

    /// Observability counters (relaxed; for tests and benchmarks).
    struct counters {
        std::atomic<std::uint64_t> dcas_started{0};
        std::atomic<std::uint64_t> dcas_succeeded{0};
        std::atomic<std::uint64_t> helps{0};  // descriptor completions by non-owners
    };

    static counters& stats() noexcept {
        static counters c;
        return c;
    }

    static std::uint64_t read(cell& c) {
        reclaim::epoch_domain::guard g(domain());
        return read_pinned(c);
    }

    static bool cas(cell& c, std::uint64_t expected, std::uint64_t desired) {
        assert(is_clean_value(expected) && is_clean_value(desired));
        reclaim::epoch_domain::guard g(domain());
        for (;;) {
            std::uint64_t cur = c.raw().load(std::memory_order_seq_cst);
            if (is_rdcss(cur) || is_mcas(cur)) {
                resolve(c, cur);
                continue;
            }
            if (cur != expected) return false;
            if (c.raw().compare_exchange_strong(cur, desired, std::memory_order_seq_cst)) {
                return true;
            }
            // cur reloaded by the failed CAS; loop classifies it again.
        }
    }

    static bool dcas(cell& c0, cell& c1, std::uint64_t o0, std::uint64_t o1,
                     std::uint64_t n0, std::uint64_t n1) {
        assert(&c0 != &c1 && "DCAS on one cell twice is not defined");
        assert(is_clean_value(o0) && is_clean_value(o1));
        assert(is_clean_value(n0) && is_clean_value(n1));
        reclaim::epoch_domain::guard g(domain());
        stats().dcas_started.fetch_add(1, std::memory_order_relaxed);

        auto* d = ::new (mcas_pool::allocate()) mcas_descriptor;
        d->entry_count = 2;
        if (&c0 < &c1) {
            d->entries[0] = {&c0, o0, n0};
            d->entries[1] = {&c1, o1, n1};
        } else {
            d->entries[0] = {&c1, o1, n1};
            d->entries[1] = {&c0, o0, n0};
        }
        const bool ok = mcas_help(d, /*is_owner=*/true);
        domain().retire(d, [](void* p) { mcas_pool::deallocate(p); });
        if (ok) stats().dcas_succeeded.fetch_add(1, std::memory_order_relaxed);
        return ok;
    }

    /// Generalized N-word CAS (Harris's full MCAS), N <= max_casn. The
    /// paper only needs N == 2, but the descriptor machinery generalizes
    /// for free and other DCAS-hungry algorithms want 3-4 words. Targets
    /// must be distinct cells; values must be clean (untagged).
    static constexpr std::size_t max_casn = 4;

    struct casn_op {
        cell* target;
        std::uint64_t expected;
        std::uint64_t desired;
    };

    static bool casn(casn_op* ops, std::size_t n) {
        assert(n >= 1 && n <= max_casn);
        if (n == 1) return cas(*ops[0].target, ops[0].expected, ops[0].desired);
        reclaim::epoch_domain::guard g(domain());
        auto* d = ::new (mcas_pool::allocate()) mcas_descriptor;
        d->entry_count = static_cast<std::uint32_t>(n);
        for (std::size_t i = 0; i < n; ++i) {
            assert(is_clean_value(ops[i].expected) && is_clean_value(ops[i].desired));
            d->entries[i] = {ops[i].target, ops[i].expected, ops[i].desired};
        }
        // Address-order the entries (insertion sort; n <= 4) so overlapping
        // operations install in a consistent order.
        for (std::uint32_t i = 1; i < d->entry_count; ++i) {
            auto key = d->entries[i];
            std::uint32_t j = i;
            for (; j > 0 && key.addr < d->entries[j - 1].addr; --j) {
                d->entries[j] = d->entries[j - 1];
            }
            d->entries[j] = key;
        }
        for (std::uint32_t i = 1; i < d->entry_count; ++i) {
            assert(d->entries[i].addr != d->entries[i - 1].addr &&
                   "casn targets must be distinct");
        }
        const bool ok = mcas_help(d, /*is_owner=*/true);
        domain().retire(d, [](void* p) { mcas_pool::deallocate(p); });
        return ok;
    }

  private:
    enum : std::uint64_t {
        status_undecided = 0,
        status_succeeded = 1,
        status_failed = 2,
    };

    struct mcas_descriptor {
        struct entry {
            cell* addr;
            std::uint64_t old_val;
            std::uint64_t new_val;
        };
        // Instrumented like the cells: helpers race the owner on the status
        // decision, and the sim scheduler must be able to park a thread
        // between reading a descriptor pointer and reading its status.
        sim::instrumented_atomic<std::uint64_t> status{status_undecided};
        std::uint32_t entry_count = 0;
        entry entries[4] = {};
    };

    struct rdcss_descriptor {
        mcas_descriptor* md;  // control: proceed only while md->status is UNDECIDED
        cell* a2;
        std::uint64_t o2;     // expected data value; n2 is the tagged md
    };

    static_assert(sizeof(mcas_descriptor) <= 112, "mcas_pool block size too small");
    static_assert(sizeof(rdcss_descriptor) <= 24, "rdcss_pool block size too small");

    static reclaim::epoch_domain& domain() { return reclaim::epoch_domain::global(); }

    // Descriptors are recycled through untracked type-stable pools with a
    // thread-local front cache: the epoch grace period guarantees no helper
    // still holds a pointer when a descriptor's storage is reused, and
    // descriptor traffic stays out of the application's allocation
    // statistics. (Both descriptor types are trivially destructible, so
    // deallocate-without-destructor is sound.)
    //
    // The backing pools are intentionally leaked: epoch deleters can run
    // during static destruction (domain drain at exit), which must not race
    // the pools' teardown. The OS reclaims the pages.
    template <std::size_t Size>
    class cached_pool {
      public:
        static void* allocate() {
            auto& cache = local_cache();
            if (!cache.items.empty()) {
                void* p = cache.items.back();
                cache.items.pop_back();
                return p;
            }
            return backing().allocate();
        }
        static void deallocate(void* p) noexcept {
            auto& cache = local_cache();
            if (cache.items.size() < 256) {
                cache.items.push_back(p);
            } else {
                backing().deallocate(p);
            }
        }

      private:
        struct cache_t {
            std::vector<void*> items;
            ~cache_t() {
                for (void* p : items) backing().deallocate(p);  // spill at thread exit
            }
        };
        static cache_t& local_cache() {
            thread_local cache_t cache;
            return cache;
        }
        static alloc::block_pool<Size>& backing() {
            static auto* pool = new alloc::block_pool<Size>{/*track_stats=*/false};
            return *pool;
        }
    };

    using mcas_pool = cached_pool<112>;
    using rdcss_pool = cached_pool<24>;

    static std::uint64_t tag(const rdcss_descriptor* d) noexcept {
        return reinterpret_cast<std::uint64_t>(d) | tag_rdcss;
    }
    static std::uint64_t tag(const mcas_descriptor* d) noexcept {
        return reinterpret_cast<std::uint64_t>(d) | tag_mcas;
    }
    static rdcss_descriptor* untag_rdcss(std::uint64_t v) noexcept {
        return reinterpret_cast<rdcss_descriptor*>(v & ~tag_mask);
    }
    static mcas_descriptor* untag_mcas(std::uint64_t v) noexcept {
        return reinterpret_cast<mcas_descriptor*>(v & ~tag_mask);
    }

    /// Helps whatever descriptor occupies the cell. Caller must be pinned.
    static void resolve(cell& c, std::uint64_t observed) {
        if (is_rdcss(observed)) {
            stats().helps.fetch_add(1, std::memory_order_relaxed);
            rdcss_complete(untag_rdcss(observed));
        } else {
            mcas_help(untag_mcas(observed), /*is_owner=*/false);
        }
        (void)c;
    }

    static std::uint64_t read_pinned(cell& c) {
        for (;;) {
            const std::uint64_t v = c.raw().load(std::memory_order_seq_cst);
            if (!is_rdcss(v) && !is_mcas(v)) return v;
            resolve(c, v);
        }
    }

    /// Finish an installed RDCSS: if the MCAS is still undecided, promote
    /// the cell to the MCAS descriptor; otherwise restore the data value.
    static void rdcss_complete(rdcss_descriptor* rd) {
        const std::uint64_t s = rd->md->status.load(std::memory_order_seq_cst);
        const std::uint64_t desired = (s == status_undecided) ? tag(rd->md) : rd->o2;
        std::uint64_t expected = tag(rd);
        rd->a2->raw().compare_exchange_strong(expected, desired, std::memory_order_seq_cst);
    }

    /// Attempt the RDCSS; returns the data value that was in *a2 (o2 on
    /// success), or a tagged MCAS value if one blocks the cell.
    static std::uint64_t rdcss_install(rdcss_descriptor* rd) {
        for (;;) {
            std::uint64_t expected = rd->o2;
            if (rd->a2->raw().compare_exchange_strong(expected, tag(rd),
                                                      std::memory_order_seq_cst)) {
                rdcss_complete(rd);
                return rd->o2;
            }
            if (is_rdcss(expected)) {
                rdcss_complete(untag_rdcss(expected));
                continue;  // cell now holds a data value or an MCAS tag
            }
            return expected;  // plain mismatch or an MCAS descriptor
        }
    }

    static bool mcas_help(mcas_descriptor* d, bool is_owner) {
        if (!is_owner) stats().helps.fetch_add(1, std::memory_order_relaxed);
        if (d->status.load(std::memory_order_seq_cst) == status_undecided) {
            // Phase 1: install d into each entry, in address order.
            std::uint64_t decided = status_succeeded;
            for (std::uint32_t i = 0; i < d->entry_count; ++i) {
                auto& e = d->entries[i];
                bool entry_done = false;
                while (!entry_done) {
                    auto* rd =
                        ::new (rdcss_pool::allocate()) rdcss_descriptor{d, e.addr, e.old_val};
                    const std::uint64_t v = rdcss_install(rd);
                    domain().retire(rd, [](void* p) { rdcss_pool::deallocate(p); });
                    if (v == e.old_val || v == tag(d)) {
                        entry_done = true;  // installed here, or by another helper
                    } else if (is_mcas(v)) {
                        mcas_help(untag_mcas(v), /*is_owner=*/false);
                    } else {
                        decided = status_failed;  // genuine value mismatch
                        entry_done = true;
                    }
                }
                if (decided == status_failed) break;
                if (d->status.load(std::memory_order_seq_cst) != status_undecided) break;
            }
            std::uint64_t expected = status_undecided;
            d->status.compare_exchange_strong(expected, decided, std::memory_order_seq_cst);
        }
        // Phase 2: unroll entries to their final values.
        const bool succeeded =
            d->status.load(std::memory_order_seq_cst) == status_succeeded;
        for (std::uint32_t i = 0; i < d->entry_count; ++i) {
            auto& e = d->entries[i];
            std::uint64_t expected = tag(d);
            e.addr->raw().compare_exchange_strong(
                expected, succeeded ? e.new_val : e.old_val, std::memory_order_seq_cst);
        }
        return succeeded;
    }
};

}  // namespace lfrc::dcas
