// Lock-free DCAS emulation: Harris-style RDCSS + MCAS over *permanent*,
// sequence-tagged descriptors ("Reuse, don't Recycle", Arbel-Raviv & Brown).
//
// This engine realizes the hardware DCAS the paper assumes (§1, citing the
// 68020 CAS2) in portable C++ atomics, preserving lock-free progress:
//
//  * dcas/casn fill an MCAS descriptor with its entries sorted by cell
//    address, then "help" it to completion. Installation of the descriptor
//    into each cell is mediated by RDCSS (restricted double-compare single-
//    swap), which atomically checks that the MCAS is still UNDECIDED while
//    swapping the descriptor in. Once every entry holds the descriptor the
//    status is CASed to SUCCEEDED; otherwise to FAILED; phase 2 unrolls each
//    entry to the new (or old) value.
//  * Any thread that encounters a descriptor while reading or CASing a cell
//    helps it finish first — that is where lock-freedom comes from: a
//    stalled operation can always be completed by its obstructor.
//
// Descriptor management (this is the part that differs from the classic
// allocate-and-retire construction the repo used through PR 6): every
// thread-registry slot owns a small fixed pool of descriptors that are
// *never freed*. A descriptor is named in a cell by a tagged word packing
// (slot, pool index, sequence number) — see cell.hpp — and its status word
// packs the same sequence next to the UNDECIDED/SUCCEEDED/FAILED state (the
// kcas.h idiom). Owners bump the sequence when they reuse a descriptor for
// a new operation; a helper re-validates the sequence after every read of a
// mutable descriptor word and abandons the help attempt on mismatch (the
// operation it was helping is necessarily already decided), re-reading the
// cell instead. Every CAS a helper performs embeds the sequence it started
// from — in the cell word or in the status word — so a stale helper's CAS
// can never take effect on a recycled descriptor's new operation.
//
// Consequences:
//  * dcas()/casn() perform zero allocations and zero epoch retirements;
//    the epoch-guard pin the old engine needed to keep helped descriptors
//    alive is gone from every public entry point. Helpers dereference only
//    permanent storage, so there is no reclamation to defer.
//  * A virtual-thread harness that abandons a slot mid-schedule must bump
//    that slot's descriptor sequences so stale helpers cannot complete them
//    (clear_slot below, wired into reclaim::epoch_domain::clear_slot).
//
// Why a stale helper cannot strand a cell: an owner only reuses a
// descriptor after its operation decided AND its own phase-2 unroll pass
// returned. Post-decision, the descriptor's tagged word can never be
// (re)installed into a cell — an RDCSS completing after the decision always
// restores the data value, because its control read (validated or not: a
// sequence mismatch implies "decided", owners only recycle terminal
// descriptors) observes a decided status. So once a helper's validation
// fails, the cell it came from has already been unrolled past the stale
// word, and re-reading it makes progress.
//
// The address-ordering of entries prevents two overlapping operations from
// installing in opposite orders and repeatedly aborting each other.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "dcas/cell.hpp"
#include "reclaim/epoch.hpp"
#include "util/cacheline.hpp"
#include "util/thread_registry.hpp"

#if defined(LFRC_SIM)
#include "sim/runtime.hpp"
#endif

namespace lfrc::dcas {

class mcas_engine {
  public:
    static const char* name() noexcept { return "mcas"; }

    /// Observability counters (relaxed; for tests and benchmarks).
    struct counters {
        std::atomic<std::uint64_t> dcas_started{0};
        std::atomic<std::uint64_t> dcas_succeeded{0};
        std::atomic<std::uint64_t> helps{0};  // descriptor completions by non-owners
        std::atomic<std::uint64_t> seq_aborts{0};  // help attempts abandoned on a stale tag
    };

    static counters& stats() noexcept {
        static counters c;
        return c;
    }

#if defined(LFRC_ENABLE_MUTATIONS)
    /// Seeded reuse bug for mutation testing (tests/sim/sim_kcas_reuse_test):
    /// when set, the decision CAS trusts the *current* status word's sequence
    /// instead of the help ticket's — i.e. the helper skips the sequence
    /// re-validation between phase 1 and the decision, the classic
    /// recycled-descriptor completion bug this design exists to exclude.
    static std::atomic<bool>& mutate_strip_seq_validation() noexcept {
        static std::atomic<bool> flag{false};
        return flag;
    }
#endif

    static std::uint64_t read(cell& c) {
        for (;;) {
            const std::uint64_t v = c.raw().load(std::memory_order_seq_cst);
            if (!is_rdcss(v) && !is_mcas(v)) return v;
            resolve(v);
        }
    }

    static bool cas(cell& c, std::uint64_t expected, std::uint64_t desired) {
        assert(is_clean_value(expected) && is_clean_value(desired));
        for (;;) {
            std::uint64_t cur = c.raw().load(std::memory_order_seq_cst);
            if (is_rdcss(cur) || is_mcas(cur)) {
                resolve(cur);
                continue;
            }
            if (cur != expected) return false;
            if (c.raw().compare_exchange_strong(cur, desired, std::memory_order_seq_cst)) {
                return true;
            }
            // cur reloaded by the failed CAS; loop classifies it again.
        }
    }

    /// Generalized N-word CAS (Harris's full MCAS), N <= max_casn. The
    /// paper only needs N == 2, but the descriptor machinery generalizes
    /// for free and other DCAS-hungry algorithms want 3-4 words. Targets
    /// must be distinct cells; values must be clean (untagged).
    static constexpr std::size_t max_casn = 4;

    struct casn_op {
        cell* target;
        std::uint64_t expected;
        std::uint64_t desired;
    };

    static bool casn(casn_op* ops, std::size_t n) {
        assert(n >= 1 && n <= max_casn);
        if (n == 1) return cas(*ops[0].target, ops[0].expected, ops[0].desired);
        const std::uint64_t md_word = begin(ops, n);
        const bool ok = mcas_help(md_word, /*is_owner=*/true);
        release_mcas(md_word);
        return ok;
    }

    static bool dcas(cell& c0, cell& c1, std::uint64_t o0, std::uint64_t o1,
                     std::uint64_t n0, std::uint64_t n1) {
        assert(&c0 != &c1 && "DCAS on one cell twice is not defined");
        stats().dcas_started.fetch_add(1, std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
        casn_op ops[2] = {{&c0, o0, n0}, {&c1, o1, n1}};
        const bool ok = casn(ops, 2);
        if (ok) stats().dcas_succeeded.fetch_add(1, std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
        return ok;
    }

    /// Invalidate an abandoned slot's descriptors: bump every sequence so a
    /// stale helper still holding one of their tagged words can no longer
    /// read a consistent snapshot or land a CAS on them. Registered with
    /// reclaim::epoch_domain::clear_slot (the sim teardown path); callers
    /// must guarantee the slot's owner never runs again. On a non-failed
    /// teardown every descriptor must already be terminal — mid-operation
    /// state is only legal when the schedule was abandoned by a violation.
    static void clear_slot(std::size_t s) noexcept {
        slot_descriptors& sd = *table().slots[s];
        for (std::size_t i = 0; i < pool_size; ++i) {
            mcas_descriptor& d = sd.mcas[i];
            const std::uint64_t w = d.status.load(std::memory_order_seq_cst);
#if defined(LFRC_SIM)
            assert(state_of_status(w) != status_undecided || sim::failure_pending());
#else
            assert(state_of_status(w) != status_undecided &&
                   "clearing a slot whose descriptor is still mid-operation");
#endif
            d.status.store(pack_status(bump_seq(seq_of_status(w)), status_failed),
                           std::memory_order_seq_cst);
            sd.mcas_busy[i] = false;
            rdcss_descriptor& rd = sd.rdcss[i];
            rd.seq.store(bump_seq(rd.seq.load(std::memory_order_relaxed)),  // lfrc-lint: order(unpaired-owner-seq-read)
                         std::memory_order_seq_cst);
            sd.rdcss_busy[i] = false;
        }
        sd.mcas_cursor = 0;
        sd.rdcss_cursor = 0;
    }

    struct testing;  // white-box seams for tests; defined below

  private:
    enum : std::uint64_t {
        status_undecided = 0,
        status_succeeded = 1,
        status_failed = 2,
        status_state_mask = 0x3,
    };

    // Status word: (sequence << 2) | state. The sequence occupies the same
    // 53-bit space as in the cell's descriptor words (desc_seq_mask), so the
    // two compare directly; arithmetic is modulo 2^53 and only equality is
    // ever tested, which makes wraparound benign.
    static constexpr std::uint64_t pack_status(std::uint64_t seq, std::uint64_t state) noexcept {
        return (seq << 2) | state;
    }
    static constexpr std::uint64_t seq_of_status(std::uint64_t w) noexcept {
        return (w >> 2) & desc_seq_mask;
    }
    static constexpr std::uint64_t state_of_status(std::uint64_t w) noexcept {
        return w & status_state_mask;
    }
    static constexpr std::uint64_t bump_seq(std::uint64_t seq) noexcept {
        return (seq + 1) & desc_seq_mask;
    }

    struct mcas_descriptor {
        // Instrumented like the cells: helpers race the owner (and each
        // other) on the sequence/state word, and the sim scheduler must be
        // able to park a thread between reading a tagged cell word and
        // validating the descriptor's sequence. Starts terminal at seq 0;
        // the first acquire bumps to seq 1.
        sim::instrumented_atomic<std::uint64_t> status{pack_status(0, status_failed)};
        // Per-use fields. Plain atomics, relaxed: a stale reader may observe
        // a mix of uses, but every read is followed by an acquire fence and
        // a sequence validation that rejects the snapshot (see
        // snapshot_mcas). Not instrumented — they are immutable within a
        // use, so interleaving on them adds schedules without adding races.
        std::atomic<std::uint32_t> entry_count{0};
        struct entry_words {
            std::atomic<std::uint64_t> addr{0};  // cell*, as an integer
            std::atomic<std::uint64_t> old_val{0};
            std::atomic<std::uint64_t> new_val{0};
        };
        entry_words entries[max_casn];
    };

    struct rdcss_descriptor {
        // Sequence word only (an RDCSS has no decision state of its own);
        // same bump-then-publish discipline as the MCAS status word.
        sim::instrumented_atomic<std::uint64_t> seq{0};
        std::atomic<std::uint64_t> md_word{0};  // control: the tagged MCAS word
        std::atomic<std::uint64_t> a2{0};       // target cell*, as an integer
        std::atomic<std::uint64_t> o2{0};       // expected data value
    };

    // Four descriptors of each kind per slot. The engine itself needs only
    // one MCAS (operations do not nest within a thread — helping another
    // operation uses *its* descriptor) and one RDCSS at a time (each is
    // released as soon as its install attempt returns, before any recursive
    // help), so the pool exists to create reuse distance, not capacity. The
    // busy flags are owner-only and assert the no-nesting invariant.
    static constexpr std::size_t pool_size = std::size_t{1} << desc_index_bits;

    struct slot_descriptors {
        mcas_descriptor mcas[pool_size];
        rdcss_descriptor rdcss[pool_size];
        // Owner-only round-robin cursors and in-use flags.
        std::uint32_t mcas_cursor = 0;
        std::uint32_t rdcss_cursor = 0;
        bool mcas_busy[pool_size] = {};
        bool rdcss_busy[pool_size] = {};
    };

    static_assert(util::thread_registry::max_threads <= (std::size_t{1} << desc_slot_bits),
                  "descriptor words reserve desc_slot_bits for the slot");

    struct descriptor_table_t {
        util::padded<slot_descriptors> slots[util::thread_registry::max_threads];
        descriptor_table_t() {
            // A fiber harness that abandons a slot mid-schedule un-pins it
            // through epoch_domain::clear_slot; hook in so the abandoned
            // slot's descriptors are invalidated at the same point.
            reclaim::epoch_domain::global().register_slot_reset(&mcas_engine::clear_slot);
        }
    };

    // Intentionally leaked: helpers can run during static destruction (a
    // container destructor retiring nodes at exit still routes reads through
    // the engine), which must never race the table's teardown.
    static descriptor_table_t& table() {
        static auto* t = new descriptor_table_t;
        return *t;
    }

    static mcas_descriptor& mcas_of(std::uint64_t w) noexcept {
        return table().slots[desc_slot_of(w)]->mcas[desc_index_of(w)];
    }
    static rdcss_descriptor& rdcss_of(std::uint64_t w) noexcept {
        return table().slots[desc_slot_of(w)]->rdcss[desc_index_of(w)];
    }

    // ---- owner-side acquire/release ---------------------------------------

    /// Take the calling slot's next MCAS descriptor and move it to
    /// (seq+1, UNDECIDED). Bump-then-publish: the sequence moves *before*
    /// the per-use fields are rewritten (release fence in between), so a
    /// stale reader that observes any new-use field and then validates is
    /// guaranteed to see the new sequence and abort.
    static std::uint64_t acquire_mcas() {
        const std::size_t slot = util::thread_registry::instance().slot();
        slot_descriptors& sd = *table().slots[slot];
        const std::size_t idx = sd.mcas_cursor++ % pool_size;
        assert(!sd.mcas_busy[idx] && "per-slot mcas descriptor pool exhausted (nested casn?)");
        sd.mcas_busy[idx] = true;
        mcas_descriptor& d = sd.mcas[idx];
        const std::uint64_t w = d.status.load(std::memory_order_relaxed);  // lfrc-lint: order(unpaired-owner-seq-read)
        assert(state_of_status(w) != status_undecided && "reusing an undecided descriptor");
        const std::uint64_t seq = bump_seq(seq_of_status(w));
        // Plain store, not CAS: the previous use is terminal, so the only
        // competing writes are stale helpers' CASes, which expect the old
        // sequence and lose either way.
        d.status.store(pack_status(seq, status_undecided), std::memory_order_seq_cst);
        std::atomic_thread_fence(std::memory_order_release);  // lfrc-lint: order(desc-reuse-fence)
        return make_desc_word(slot, idx, seq, tag_mcas);
    }

    static void release_mcas(std::uint64_t md_word) noexcept {
        assert(desc_slot_of(md_word) == util::thread_registry::instance().slot());
        table().slots[desc_slot_of(md_word)]->mcas_busy[desc_index_of(md_word)] = false;
    }

    static std::uint64_t acquire_rdcss(std::uint64_t md_word, cell* a2, std::uint64_t o2) {
        const std::size_t slot = util::thread_registry::instance().slot();
        slot_descriptors& sd = *table().slots[slot];
        const std::size_t idx = sd.rdcss_cursor++ % pool_size;
        assert(!sd.rdcss_busy[idx] && "per-slot rdcss descriptor pool exhausted");
        sd.rdcss_busy[idx] = true;
        rdcss_descriptor& rd = sd.rdcss[idx];
        const std::uint64_t seq = bump_seq(rd.seq.load(std::memory_order_relaxed));  // lfrc-lint: order(unpaired-owner-seq-read)
        rd.seq.store(seq, std::memory_order_seq_cst);
        std::atomic_thread_fence(std::memory_order_release);  // lfrc-lint: order(desc-reuse-fence)
        rd.md_word.store(md_word, std::memory_order_relaxed);  // lfrc-lint: seq-owner, order(desc-payload)
        rd.a2.store(reinterpret_cast<std::uint64_t>(a2), std::memory_order_relaxed);  // lfrc-lint: seq-owner, order(desc-payload)
        rd.o2.store(o2, std::memory_order_relaxed);  // lfrc-lint: seq-owner, order(desc-payload)
        return make_desc_word(slot, idx, seq, tag_rdcss);
    }

    static void release_rdcss(std::uint64_t rd_word) noexcept {
        assert(desc_slot_of(rd_word) == util::thread_registry::instance().slot());
        table().slots[desc_slot_of(rd_word)]->rdcss_busy[desc_index_of(rd_word)] = false;
    }

    /// Owner-side operation setup shared by casn() and testing::begin_op:
    /// acquire a descriptor and fill its entries, address-sorted.
    static std::uint64_t begin(const casn_op* ops, std::size_t n) {
        casn_op sorted[max_casn];
        for (std::size_t i = 0; i < n; ++i) {
            assert(is_clean_value(ops[i].expected) && is_clean_value(ops[i].desired));
            sorted[i] = ops[i];
        }
        // Address-order the entries (insertion sort; n <= 4) so overlapping
        // operations install in a consistent order.
        for (std::size_t i = 1; i < n; ++i) {
            const casn_op key = sorted[i];
            std::size_t j = i;
            for (; j > 0 && key.target < sorted[j - 1].target; --j) {
                sorted[j] = sorted[j - 1];
            }
            sorted[j] = key;
        }
        for (std::size_t i = 1; i < n; ++i) {
            assert(sorted[i].target != sorted[i - 1].target && "casn targets must be distinct");
        }
        const std::uint64_t md_word = acquire_mcas();
        mcas_descriptor& d = mcas_of(md_word);
        d.entry_count.store(static_cast<std::uint32_t>(n), std::memory_order_relaxed);  // lfrc-lint: seq-owner, order(desc-payload)
        for (std::size_t i = 0; i < n; ++i) {
            d.entries[i].addr.store(reinterpret_cast<std::uint64_t>(sorted[i].target),  // lfrc-lint: seq-owner, order(desc-payload)
                                    std::memory_order_relaxed);
            d.entries[i].old_val.store(sorted[i].expected, std::memory_order_relaxed);  // lfrc-lint: seq-owner, order(desc-payload)
            d.entries[i].new_val.store(sorted[i].desired, std::memory_order_relaxed);  // lfrc-lint: seq-owner, order(desc-payload)
        }
        return md_word;
    }

    // ---- validated reads ---------------------------------------------------

    struct op_snapshot {
        std::uint32_t n = 0;
        std::uint64_t state = 0;
        struct {
            cell* addr;
            std::uint64_t old_val;
            std::uint64_t new_val;
        } entries[max_casn];
    };

    /// Read the per-use fields of the descriptor `md_word` names, then
    /// validate the sequence (acquire fence between: if any read field
    /// belongs to a later use, the validation is guaranteed to see the later
    /// sequence). Returns false — snapshot unusable — when the descriptor
    /// has been recycled; the operation it named is necessarily decided.
    static bool snapshot_mcas(std::uint64_t md_word, op_snapshot& out) {
        mcas_descriptor& d = mcas_of(md_word);
        const std::uint32_t n = d.entry_count.load(std::memory_order_relaxed);  // lfrc-lint: order(desc-payload)
        assert(n <= max_casn);
        for (std::uint32_t i = 0; i < n; ++i) {
            out.entries[i].addr =
                reinterpret_cast<cell*>(d.entries[i].addr.load(std::memory_order_relaxed));  // lfrc-lint: order(desc-payload)
            out.entries[i].old_val = d.entries[i].old_val.load(std::memory_order_relaxed);  // lfrc-lint: order(desc-payload)
            out.entries[i].new_val = d.entries[i].new_val.load(std::memory_order_relaxed);  // lfrc-lint: order(desc-payload)
        }
        out.n = n;
        std::atomic_thread_fence(std::memory_order_acquire);  // lfrc-lint: order(desc-reuse-fence)
        const std::uint64_t w = d.status.load(std::memory_order_seq_cst);
        if (seq_of_status(w) != desc_seq_of(md_word)) {
            stats().seq_aborts.fetch_add(1, std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
            return false;
        }
        out.state = state_of_status(w);
        return true;
    }

    /// Validated status read (the only mutable MCAS word): false == stale.
    static bool read_status(std::uint64_t md_word, std::uint64_t& state_out) {
        const std::uint64_t w = mcas_of(md_word).status.load(std::memory_order_seq_cst);
        if (seq_of_status(w) != desc_seq_of(md_word)) {
            stats().seq_aborts.fetch_add(1, std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
            return false;
        }
        state_out = state_of_status(w);
        return true;
    }

    // ---- helping -----------------------------------------------------------

    /// Helps whatever descriptor occupies a cell. Progress: if the word is
    /// stale (descriptor recycled), the help no-ops — but then the cell has
    /// already moved past this word (see header), so the caller's re-read
    /// observes a new value.
    static void resolve(std::uint64_t observed) {
        if (is_rdcss(observed)) {
            stats().helps.fetch_add(1, std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
            rdcss_complete(observed);
        } else {
            mcas_help(observed, /*is_owner=*/false);
        }
    }

    /// Finish an installed RDCSS: if the MCAS it serves is still undecided,
    /// promote the cell to the MCAS word; otherwise restore the data value.
    /// Safe on a stale rd_word: the validation aborts, and the removal CAS
    /// expects rd_word itself, which a cell can no longer hold once the
    /// descriptor was reused (owners reuse only after install+complete
    /// returned, which leaves the word out of every cell).
    static void rdcss_complete(std::uint64_t rd_word) {
        rdcss_descriptor& rd = rdcss_of(rd_word);
        const std::uint64_t md_word = rd.md_word.load(std::memory_order_relaxed);  // lfrc-lint: order(desc-payload)
        auto* a2 = reinterpret_cast<cell*>(rd.a2.load(std::memory_order_relaxed));  // lfrc-lint: order(desc-payload)
        const std::uint64_t o2 = rd.o2.load(std::memory_order_relaxed);  // lfrc-lint: order(desc-payload)
        std::atomic_thread_fence(std::memory_order_acquire);  // lfrc-lint: order(desc-reuse-fence)
        if (rd.seq.load(std::memory_order_seq_cst) != desc_seq_of(rd_word)) {
            stats().seq_aborts.fetch_add(1, std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
            return;
        }
        // Control read. A sequence mismatch on the MCAS descriptor means the
        // operation this RDCSS was installing for is already decided (owners
        // only recycle terminal descriptors), so fall through to restore.
        const std::uint64_t sw = mcas_of(md_word).status.load(std::memory_order_seq_cst);
        const bool undecided = seq_of_status(sw) == desc_seq_of(md_word) &&
                               state_of_status(sw) == status_undecided;
        std::uint64_t expected = rd_word;
        a2->raw().compare_exchange_strong(expected, undecided ? md_word : o2,
                                          std::memory_order_seq_cst);
    }

    /// Attempt the RDCSS named by rd_word (caller owns it); returns the data
    /// value that was in *a2 (o2 on success), or a tagged MCAS word if one
    /// blocks the cell.
    static std::uint64_t rdcss_install(std::uint64_t rd_word) {
        rdcss_descriptor& rd = rdcss_of(rd_word);
        auto* a2 = reinterpret_cast<cell*>(rd.a2.load(std::memory_order_relaxed));  // lfrc-lint: seq-owner, order(desc-payload)
        const std::uint64_t o2 = rd.o2.load(std::memory_order_relaxed);  // lfrc-lint: seq-owner, order(desc-payload)
        for (;;) {
            std::uint64_t expected = o2;
            if (a2->raw().compare_exchange_strong(expected, rd_word,
                                                  std::memory_order_seq_cst)) {
                rdcss_complete(rd_word);
                return o2;
            }
            if (is_rdcss(expected)) {
                stats().helps.fetch_add(1, std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
                rdcss_complete(expected);
                continue;  // cell now holds a data value or an MCAS word
            }
            return expected;  // plain mismatch or an MCAS descriptor
        }
    }

    /// Help the operation `md_word` names to completion. Returns true iff
    /// that operation succeeded; false on failure OR on a stale word (the
    /// owner can never observe the latter — it holds the busy flag — and
    /// helpers' callers re-read the cell either way).
    static bool mcas_help(std::uint64_t md_word, bool is_owner) {
        if (!is_owner) stats().helps.fetch_add(1, std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
        op_snapshot snap;
        if (!snapshot_mcas(md_word, snap)) {
            assert(!is_owner);
            return false;
        }
        if (snap.state == status_undecided) {
            // Phase 1: install md_word into each entry, in address order.
            std::uint64_t decided = status_succeeded;
            for (std::uint32_t i = 0; i < snap.n; ++i) {
                const auto& e = snap.entries[i];
                bool entry_done = false;
                while (!entry_done) {
                    // Pre-read fast path: skip the RDCSS acquire entirely
                    // when the cell already holds md_word (another helper
                    // installed it) or visibly cannot match. Besides saving
                    // a descriptor cycle, this keeps the common helping path
                    // to one shared-memory access per already-installed
                    // entry.
                    const std::uint64_t cur = e.addr->raw().load(std::memory_order_seq_cst);
                    if (cur == md_word) {
                        entry_done = true;
                        break;
                    }
                    if (cur != e.old_val) {
                        if (is_mcas(cur)) {
                            mcas_help(cur, /*is_owner=*/false);
                            continue;
                        }
                        if (is_rdcss(cur)) {
                            stats().helps.fetch_add(1, std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
                            rdcss_complete(cur);
                            continue;
                        }
                        decided = status_failed;  // genuine value mismatch
                        entry_done = true;
                        break;
                    }
                    const std::uint64_t rd_word = acquire_rdcss(md_word, e.addr, e.old_val);
                    const std::uint64_t v = rdcss_install(rd_word);
                    // Install+complete returned, so rd_word is out of every
                    // cell and no stale holder can land a CAS with it:
                    // reusable immediately (in particular before the
                    // recursive help below, which bounds the pool).
                    release_rdcss(rd_word);
                    if (v == e.old_val || v == md_word) {
                        entry_done = true;  // installed here, or by another helper
                    } else if (is_mcas(v)) {
                        mcas_help(v, /*is_owner=*/false);
                    } else {
                        decided = status_failed;  // genuine value mismatch
                        entry_done = true;
                    }
                }
                if (decided == status_failed) break;
                // Between entries, bail out early if the operation was
                // decided (or recycled) behind our back. Skipped after the
                // last entry: there is nothing left to install, and the
                // decision CAS below revalidates the sequence anyway.
                if (i + 1 == snap.n) break;
                std::uint64_t st;
                if (!read_status(md_word, st)) {
                    assert(!is_owner);
                    return false;  // recycled underneath us: already decided
                }
                if (st != status_undecided) break;
            }
#if defined(LFRC_ENABLE_MUTATIONS)
            if (mutate_strip_seq_validation().load(std::memory_order_relaxed)) {  // lfrc-lint: order(unpaired-mutation-flag)
                // MUTANT (the classic reuse bug): re-read the status word
                // and trust whatever sequence it carries now, instead of
                // requiring the help ticket's sequence. A helper that
                // stalled across an owner-side reuse imposes its stale
                // phase-1 verdict on the descriptor's *new* operation.
                const std::uint64_t cur =
                    mcas_of(md_word).status.load(std::memory_order_seq_cst);
                std::uint64_t expected =
                    (cur & ~std::uint64_t{status_state_mask}) | status_undecided;
                const std::uint64_t desired =
                    (expected & ~std::uint64_t{status_state_mask}) | decided;
                mcas_of(md_word).status.compare_exchange_strong(expected, desired,  // lfrc-lint: exempt(R7)
                                                                std::memory_order_seq_cst);
            } else
#endif
            {
                // Decision CAS: expected and desired both carry the help
                // ticket's sequence, so a stale helper cannot decide a
                // recycled descriptor's new operation.
                std::uint64_t expected = pack_status(desc_seq_of(md_word), status_undecided);
                mcas_of(md_word).status.compare_exchange_strong(
                    expected, pack_status(desc_seq_of(md_word), decided),
                    std::memory_order_seq_cst);
            }
        }
        // Phase 2: unroll entries to their final values. Every CAS expects
        // md_word (sequence embedded), so stale unrolls are harmless.
        std::uint64_t st;
        if (!read_status(md_word, st)) {
            assert(!is_owner);
            return false;
        }
        const bool succeeded = st == status_succeeded;
        for (std::uint32_t i = 0; i < snap.n; ++i) {
            std::uint64_t expected = md_word;
            snap.entries[i].addr->raw().compare_exchange_strong(  // lfrc-lint: seq-carried
                expected, succeeded ? snap.entries[i].new_val : snap.entries[i].old_val,
                std::memory_order_seq_cst);
        }
        return succeeded;
    }
};

/// White-box seams for tests (tests/test_kcas.cpp,
/// tests/sim/sim_kcas_reuse_test.cpp). Not part of the engine API; nothing
/// here is safe to call concurrently with itself on one slot.
struct mcas_engine::testing {
    /// Acquire the calling slot's next MCAS descriptor, fill it from `ops`,
    /// and directly install its tagged word into every entry cell whose
    /// current value matches — the state of an operation parked mid/post
    /// phase 1, without running any help. Pair with complete_op (or lose the
    /// slot to clear_slot).
    static std::uint64_t begin_op(const casn_op* ops, std::size_t n) {
        assert(n >= 2 && n <= max_casn);
        const std::uint64_t md_word = begin(ops, n);
        // Read entries straight off the descriptor (owner context; per-use
        // fields are immutable within a use) instead of via snapshot_mcas:
        // one fewer instrumented access keeps the race windows this seam
        // exists to stage as tight as possible.
        mcas_descriptor& d = mcas_of(md_word);
        const std::uint32_t cnt = d.entry_count.load(std::memory_order_relaxed);  // lfrc-lint: seq-owner, order(desc-payload)
        for (std::uint32_t i = 0; i < cnt; ++i) {
            auto* target =
                reinterpret_cast<cell*>(d.entries[i].addr.load(std::memory_order_relaxed));  // lfrc-lint: seq-owner, order(desc-payload)
            std::uint64_t expected = d.entries[i].old_val.load(std::memory_order_relaxed);  // lfrc-lint: seq-owner, order(desc-payload)
            target->raw().compare_exchange_strong(expected, md_word,
                                                  std::memory_order_seq_cst);
        }
        return md_word;
    }

    /// Owner-side completion of a begin_op ticket; releases the descriptor.
    static bool complete_op(std::uint64_t md_word) {
        const bool ok = mcas_help(md_word, /*is_owner=*/true);
        release_mcas(md_word);
        return ok;
    }

    /// Non-owner help by tagged word: mcas_help's verdict (false for failed
    /// OR stale).
    static bool help(std::uint64_t md_word) { return mcas_help(md_word, /*is_owner=*/false); }

    /// Live sequence of the descriptor a tagged word names (not the word's
    /// own embedded sequence — compare the two to detect reuse).
    static std::uint64_t live_sequence_of(std::uint64_t desc_word) {
        if (is_rdcss(desc_word)) {
            return rdcss_of(desc_word).seq.load(std::memory_order_seq_cst);
        }
        return seq_of_status(mcas_of(desc_word).status.load(std::memory_order_seq_cst));
    }

    /// Quiescent-only: plant a sequence (terminal state) on a slot's MCAS
    /// descriptor, e.g. just below desc_seq_mask for wraparound tests.
    static void set_mcas_sequence(std::size_t slot, std::size_t index, std::uint64_t seq) {
        table().slots[slot]->mcas[index].status.store(
            pack_status(seq & desc_seq_mask, status_failed), std::memory_order_seq_cst);
    }

    static std::size_t slot_of(std::uint64_t w) noexcept { return desc_slot_of(w); }
    static std::size_t index_of(std::uint64_t w) noexcept { return desc_index_of(w); }
    static std::uint64_t seq_of(std::uint64_t w) noexcept { return desc_seq_of(w); }
    static constexpr std::size_t pool_entries = pool_size;
};

}  // namespace lfrc::dcas
