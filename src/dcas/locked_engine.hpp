// DCAS emulation via address-ordered striped spinlocks.
//
// Simple and easy to believe correct, but *blocking*: a preempted lock
// holder stalls other writers to the same stripes. It serves as
//  (a) the differential-testing oracle for the lock-free mcas_engine, and
//  (b) the "simple emulation" baseline in experiment E3.
//
// Single-cell reads take no lock: a reader of one cell observes either the
// before or after value of any DCAS, which is exactly the atomicity a
// hardware DCAS would give a concurrent single-word load. Writers (cas/dcas)
// serialize through the stripes so the compare-and-update of each cell is
// atomic with respect to every other writer.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "dcas/cell.hpp"
#include "util/backoff.hpp"

namespace lfrc::dcas {

class locked_engine {
  public:
    static const char* name() noexcept { return "locked"; }

    static std::uint64_t read(cell& c) noexcept {
        return c.raw().load(std::memory_order_acquire);  // lfrc-lint: order(cell-publish)
    }

    static bool cas(cell& c, std::uint64_t expected, std::uint64_t desired) noexcept {
        stripe_lock guard0(stripe_of(&c));
        if (c.raw().load(std::memory_order_relaxed) != expected) return false;  // lfrc-lint: order(stripe-lock)
        c.raw().store(desired, std::memory_order_release);  // lfrc-lint: order(cell-publish)
        return true;
    }

    static bool dcas(cell& c0, cell& c1, std::uint64_t o0, std::uint64_t o1,
                     std::uint64_t n0, std::uint64_t n1) noexcept {
        std::size_t s0 = stripe_of(&c0);
        std::size_t s1 = stripe_of(&c1);
        if (s0 > s1) std::swap(s0, s1);  // address-order acquisition: no deadlock
        stripe_lock guard0(s0);
        stripe_lock guard1(s0 == s1 ? npos : s1);
        if (c0.raw().load(std::memory_order_relaxed) != o0 ||  // lfrc-lint: order(stripe-lock)
            c1.raw().load(std::memory_order_relaxed) != o1) {  // lfrc-lint: order(stripe-lock)
            return false;
        }
        c0.raw().store(n0, std::memory_order_release);  // lfrc-lint: order(cell-publish)
        c1.raw().store(n1, std::memory_order_release);  // lfrc-lint: order(cell-publish)
        return true;
    }

    /// Generalized N-word CAS, mirroring mcas_engine::casn so the two
    /// engines stay differential-testable on every domain operation.
    /// Stripe-order acquisition (deduplicated) keeps it deadlock-free.
    static constexpr std::size_t max_casn = 4;

    struct casn_op {
        cell* target;
        std::uint64_t expected;
        std::uint64_t desired;
    };

    static bool casn(casn_op* ops, std::size_t n) noexcept {
        assert(n >= 1 && n <= max_casn);
        std::size_t stripes[max_casn];
        for (std::size_t i = 0; i < n; ++i) stripes[i] = stripe_of(ops[i].target);
        // Insertion-sort then skip duplicates (n <= 4).
        for (std::size_t i = 1; i < n; ++i) {
            const std::size_t key = stripes[i];
            std::size_t j = i;
            for (; j > 0 && key < stripes[j - 1]; --j) stripes[j] = stripes[j - 1];
            stripes[j] = key;
        }
        std::size_t held = 0;
        std::atomic_flag* locks[max_casn];
        for (std::size_t i = 0; i < n; ++i) {
            if (i > 0 && stripes[i] == stripes[i - 1]) continue;
            std::atomic_flag& f = stripe(stripes[i]);
            util::backoff bo;
            while (f.test_and_set(std::memory_order_acquire)) bo();  // lfrc-lint: order(stripe-lock)
            locks[held++] = &f;
        }
        bool ok = true;
        for (std::size_t i = 0; i < n; ++i) {
            if (ops[i].target->raw().load(std::memory_order_relaxed) != ops[i].expected) {  // lfrc-lint: order(stripe-lock)
                ok = false;
                break;
            }
        }
        if (ok) {
            for (std::size_t i = 0; i < n; ++i) {
                ops[i].target->raw().store(ops[i].desired, std::memory_order_release);  // lfrc-lint: order(cell-publish)
            }
        }
        while (held > 0) locks[--held]->clear(std::memory_order_release);  // lfrc-lint: order(stripe-lock)
        return ok;
    }

    /// No per-slot engine state (engine-concept parity with mcas_engine).
    static void clear_slot(std::size_t) noexcept {}

  private:
    static constexpr std::size_t num_stripes = 2048;
    static constexpr std::size_t npos = ~std::size_t{0};

    static std::size_t stripe_of(const cell* c) noexcept {
        auto a = reinterpret_cast<std::uintptr_t>(c);
        // Mix so that cells in the same object land on different stripes.
        a ^= a >> 17;
        a *= 0x9e3779b97f4a7c15ULL;
        return (a >> 32) % num_stripes;
    }

    static std::atomic_flag& stripe(std::size_t s) noexcept {
        static std::atomic_flag stripes[num_stripes] = {};
        return stripes[s];
    }

    class stripe_lock {
      public:
        explicit stripe_lock(std::size_t s) noexcept : index_(s) {
            if (index_ == npos) return;
            util::backoff bo;
            while (stripe(index_).test_and_set(std::memory_order_acquire)) bo();  // lfrc-lint: order(stripe-lock)
        }
        ~stripe_lock() {
            if (index_ != npos) stripe(index_).clear(std::memory_order_release);  // lfrc-lint: order(stripe-lock)
        }
        stripe_lock(const stripe_lock&) = delete;
        stripe_lock& operator=(const stripe_lock&) = delete;

      private:
        std::size_t index_;
    };
};

}  // namespace lfrc::dcas
