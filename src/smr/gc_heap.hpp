// The gc_heap policy: containers whose reclamation is an actual garbage
// collector — the repo's toy stop-the-world mark-sweep heap (gc::heap).
//
// This is the paper's *starting point*: the §3 "before" forms assume a GC,
// and LFRC's pitch is converting them away from it. Expressing the GC as
// just another smr policy closes the loop — the same generic core runs
// "before" and "after" forms, and the conformance suite diff is the
// conversion cost.
//
// Scheme mapping:
//   protection   guard slots are gc::local shadow-stack roots; any node a
//                slot holds is reachable at the next collection. step()
//                parks at a safepoint so other threads can collect.
//   tracing      node_base provides gc_trace, marking every link/vslot
//                cell the node's smr_children enumerates; container head
//                cells are registered as global roots (register_root).
//   retire       nothing to do — unlinked nodes become garbage when the
//                last slot lets go.
//   engine       locked_engine, per the gc contract: collections must see
//                clean cell values, so the descriptor-publishing
//                mcas_engine is out (its descriptors would confuse
//                mark_cell and resurrect mid-operation states).
//
// Threading contract (inherited from gc::heap): mutating operations and
// guards require the calling thread to hold a gc::heap::attach_scope
// (thread_scope wraps one for container ctors that allocate); containers
// must outlive the heap's last collection because global roots cannot be
// deregistered.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "dcas/cell.hpp"
#include "dcas/locked_engine.hpp"
#include "gc/heap.hpp"
#include "smr/policy.hpp"

namespace lfrc::smr {

class gc_heap {
  public:
    using engine_type = dcas::locked_engine;

    explicit gc_heap(gc::heap& h) noexcept : heap_(&h) {}

    static constexpr const char* name() noexcept { return "gc-heap"; }
    static constexpr bool counted_links = false;
    static constexpr bool has_lazy_traverse = true;
    static constexpr std::size_t guard_slots = 4;

    template <typename Node>
    using link = cell_link<Node>;
    using flag = cell_flag<dcas::locked_engine>;
    template <typename T>
    using vslot = cell_vslot<T>;

    /// Provides the member gc_traits<Node> looks for: trace = mark every
    /// pointer-bearing cell smr_children enumerates (flags are never
    /// enumerated — mark_cell on a non-pointer cell is out of contract).
    template <typename Node>
    struct node_base {
        void gc_trace(gc::marker& m) const {
            [[maybe_unused]] std::size_t visited = 0;
            const_cast<Node*>(static_cast<const Node*>(this))
                ->smr_children([&m, &visited](auto& field) {
                    ++visited;
                    field.gc_mark(m);
                });
            if constexpr (detail::has_smr_link_count<Node>::value) {
                assert(visited == Node::smr_link_count &&
                       "smr_children visited a different number of fields "
                       "than smr_link_count declares");
            }
        }
    };

    /// A gc::local root keeps the fresh node alive until the publishing
    /// CAS makes it reachable from the structure. Non-movable (gc::local's
    /// strict-LIFO shadow stack); rely on guaranteed copy elision.
    template <typename Node>
    class owner {
      public:
        Node* get() const noexcept { return l_.get(); }
        Node* operator->() const noexcept { return l_.get(); }
        explicit operator bool() const noexcept { return l_.get() != nullptr; }

      private:
        friend gc_heap;
        owner(gc::heap& h, Node* p) : l_(h, p) {}
        gc::local<Node> l_;
    };

    template <typename Node, typename... Args>
    owner<Node> make_owner(Args&&... args) {
        gc::heap& h = *heap_;
        // The node is unrooted between allocate's return and the owner's
        // push_root, but this thread is attached and hits no safepoint in
        // between, so no collection can run across the gap.
        return owner<Node>(h, h.template allocate<Node>(std::forward<Args>(args)...));
    }
    template <typename Node>
    void publish_ok(owner<Node>&) noexcept {}  // reachability took over

    class thread_scope {
      public:
        explicit thread_scope(gc_heap& p) : attach_(*p.heap_) {}

      private:
        gc::heap::attach_scope attach_;
    };

    class guard {
      public:
        explicit guard(gc_heap& p) noexcept
            : heap_(*p.heap_), s0_(heap_), s1_(heap_), s2_(heap_), s3_(heap_) {}
        guard(const guard&) = delete;
        guard& operator=(const guard&) = delete;

        /// The per-iteration safepoint: the one place a container loop
        /// parks for a stop-the-world collection.
        void step() { heap_.safepoint(); }

        template <typename Node>
        Node* protect(std::size_t i, link<Node>& src) {
            Node* p = gc_heap::peek(src);
            slot(i) = reinterpret_cast<char*>(p);
            return p;
        }
        template <typename Node>
        Node* traverse(std::size_t i, link<Node>& src) {
            return protect<Node>(i, src);
        }
        template <typename Node>
        void protect_new(std::size_t i, Node* fresh) {
            slot(i) = reinterpret_cast<char*>(fresh);
        }
        bool upgrade(std::size_t) noexcept { return true; }
        void advance(std::size_t dst, std::size_t src) {
            slot(dst) = slot(src).get();
            slot(src) = nullptr;
        }
        void clear(std::size_t i) { slot(i) = nullptr; }

        // The kv store's versioned value slots are not offered on the gc
        // policy (the store is the GC-independence showcase; E8 owns the
        // gc-vs-lfrc comparison). Instantiating these is a contract error.
        template <typename T>
        T* vprotect(std::size_t, vslot<T>&, std::uint64_t&) {
            static_assert(!sizeof(T), "kv value slots are not supported on smr::gc_heap");
            return nullptr;
        }
        template <typename T>
        T* vtraverse(std::size_t, vslot<T>&, std::uint64_t&) {
            static_assert(!sizeof(T), "kv value slots are not supported on smr::gc_heap");
            return nullptr;
        }

      private:
        // Four named locals (gc::local is neither copyable nor movable, so
        // no array), destroyed in reverse construction order — LIFO, as the
        // shadow stack requires.
        gc::local<char>& slot(std::size_t i) {
            switch (i) {
                case 0: return s0_;
                case 1: return s1_;
                case 2: return s2_;
                default: return s3_;
            }
        }
        gc::heap& heap_;
        gc::local<char> s0_, s1_, s2_, s3_;
    };

    // ---- link / flag operations (locked engine on raw cells) ------------

    template <typename Node>
    static Node* peek(link<Node>& A) noexcept {
        return dcas::decode_ptr<Node>(dcas::locked_engine::read(A.cell()));
    }
    template <typename Node>
    static void init_link(link<Node>& A, Node* v) noexcept {
        A.exclusive_set(v);
    }
    template <typename Node>
    static bool cas_link(link<Node>& A, Node* old0, Node* new0) {
        return dcas::locked_engine::cas(A.cell(), dcas::encode_ptr(old0),
                                        dcas::encode_ptr(new0));
    }
    template <typename Node>
    static bool dcas_link_flag(link<Node>& A, flag& F, Node* old0, bool old_flag, Node* new0,
                               bool new_flag) {
        return dcas::locked_engine::dcas(A.cell(), F.cell(), dcas::encode_ptr(old0),
                                         flag::encode(old_flag), dcas::encode_ptr(new0),
                                         flag::encode(new_flag));
    }
    static bool flag_load(flag& f) noexcept { return f.load(); }
    static bool flag_cas(flag& f, bool expected, bool desired) {
        return f.cas(expected, desired);
    }
    template <typename Node>
    static void retire_unlinked(Node*) noexcept {}  // unreachable = garbage

    template <typename Node>
    static void reset_chain(link<Node>& head) noexcept {
        head.exclusive_set(nullptr);  // the collector sweeps the chain
    }

    /// Container head cells become global GC roots. gc::heap::add_root is
    /// permanent — the container (and its cells) must outlive the heap's
    /// collections, same as the pre-policy gc containers.
    template <typename Node>
    void register_root(link<Node>& A) {
        dcas::cell* c = &A.cell();
        heap_->add_root([c](gc::marker& m) { m.mark_cell(*c); });
    }

    std::uint64_t pending() const noexcept { return 0; }
    std::uint64_t drain(int) noexcept { return 0; }

  private:
    gc::heap* heap_;
};

}  // namespace lfrc::smr
