// Umbrella header: the smr policy contract and all seven implementations.
#pragma once

#include "smr/counted.hpp"
#include "smr/deferred.hpp"
#include "smr/gc_heap.hpp"
#include "smr/manual.hpp"
#include "smr/policy.hpp"
