// smr policies backed by the LFRC domain: `counted` (the paper's Figure-2
// operations end to end) and `borrowed` (the same ownership discipline with
// the epoch-borrowed read fast path for traversals).
//
// Both policies store links in Domain::ptr_field / ll_field cells, so the
// reference counts themselves carry the protection: a guard slot holds a
// counted reference (LFRCLoad acquired it, LFRCDestroy releases it when the
// slot is overwritten or the guard dies). Nothing is ever handed to a
// reclaimer explicitly — retire_unlinked is a no-op because unlinking
// transfers the link's count and the last release frees the node through
// lfrc_visit_children.
//
// `borrowed` differs only in traversal grade: the guard pins one epoch for
// its lifetime, traverse() reads raw pointers under that pin (zero count
// traffic per hop — the E7/E9 fast path), and upgrade() promotes the
// current slot to a counted reference with Domain::try_promote before any
// write. Strong protect() loops peek+try_promote: it can only keep failing
// while the source field keeps changing, because a live field holds a count
// on its referent.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "lfrc/domain.hpp"
#include "reclaim/epoch.hpp"
#include "smr/policy.hpp"

namespace lfrc::smr {

/// The paper's discipline as a policy. The mutation parameters (available
/// only under -DLFRC_ENABLE_MUTATIONS via the aliases below) seed known
/// bugs for the sim harness to re-find:
///  * `Mutated` swaps the guard's protect for the Valois-style plain-CAS
///    load so the generic cores still expose the §2 resurrection bug.
///  * `FlagBlind` downgrades vinstall_if_live from the 3-word CASN (pointer,
///    version, dead-flag) to the flag-blind 2-word store_conditional — the
///    pre-PR-3 put-vs-erase lost-update window, re-seeded to prove the
///    store detector was not blinded by the engine's sequence-tag words.
template <typename Domain, bool Mutated = false, bool FlagBlind = false>
class counted {
  public:
    using domain_type = Domain;

    static constexpr const char* name() noexcept {
        return Mutated ? "counted-mutated" : (FlagBlind ? "counted-flag-blind" : "counted");
    }
    static constexpr bool counted_links = true;
    // Counted traversal may pass through logically deleted nodes: the
    // slot's reference keeps the node (and its frozen next chain) alive.
    static constexpr bool has_lazy_traverse = true;
    static constexpr std::size_t guard_slots = 4;

    template <typename Node>
    using link = typename Domain::template ptr_field<Node>;
    using flag = typename Domain::flag_field;
    template <typename T>
    using vslot = typename Domain::template ll_field<T>;

    /// Adapts the node's smr_children enumeration to the domain's tracing
    /// hook, so the recursive-destruction chain of LFRCDestroy works.
    template <typename Node>
    class node_base : public Domain::object {
      private:
        void lfrc_visit_children(typename Domain::child_visitor& v) noexcept override {
            [[maybe_unused]] std::size_t visited = 0;
            static_cast<Node*>(this)->smr_children([&v, &visited](auto& field) {
                ++visited;
                v.on_child(field.exclusive_get());
            });
            if constexpr (detail::has_smr_link_count<Node>::value) {
                assert(visited == Node::smr_link_count &&
                       "smr_children visited a different number of fields "
                       "than smr_link_count declares");
            }
        }
    };

    /// Owns the birth reference from make<>. publish_ok is a no-op: the
    /// publishing CAS added the structure's own count, and the owner's
    /// destructor releases the birth count either way.
    template <typename Node>
    class owner {
      public:
        owner() = default;
        Node* get() const noexcept { return lp_.get(); }
        Node* operator->() const noexcept { return lp_.get(); }
        explicit operator bool() const noexcept { return static_cast<bool>(lp_); }

      private:
        friend counted;
        explicit owner(typename Domain::template local_ptr<Node> lp) : lp_(std::move(lp)) {}
        typename Domain::template local_ptr<Node> lp_;
    };

    template <typename Node, typename... Args>
    owner<Node> make_owner(Args&&... args) {
        return owner<Node>(Domain::template make<Node>(std::forward<Args>(args)...));
    }
    template <typename Node>
    void publish_ok(owner<Node>&) noexcept {}

    struct thread_scope {
        explicit thread_scope(counted&) noexcept {}
    };

    class guard {
      public:
        explicit guard(counted&) noexcept {}
        ~guard() {
            for (auto*& s : slots_) Domain::destroy(s);
        }
        guard(const guard&) = delete;
        guard& operator=(const guard&) = delete;

        void step() noexcept {}

        template <typename Node>
        Node* protect(std::size_t i, link<Node>& src) {
            typename Domain::template local_ptr<Node> lp;
            if constexpr (Mutated) {
#ifdef LFRC_ENABLE_MUTATIONS
                Domain::load_mutated_plain_cas(src, lp);
#endif
            } else {
                Domain::load(src, lp);
            }
            return set(i, lp.release());
        }
        template <typename Node>
        Node* traverse(std::size_t i, link<Node>& src) {
            return protect(i, src);
        }
        template <typename Node>
        void protect_new(std::size_t i, Node* fresh) {
            Domain::add_to_rc(fresh, 1);
            set(i, fresh);
        }
        bool upgrade(std::size_t) noexcept { return true; }
        void advance(std::size_t dst, std::size_t src) {
            Domain::destroy(slots_[dst]);
            slots_[dst] = slots_[src];
            slots_[src] = nullptr;
        }
        void clear(std::size_t i) {
            Domain::destroy(slots_[i]);
            slots_[i] = nullptr;
        }

        template <typename T>
        T* vprotect(std::size_t i, vslot<T>& src, std::uint64_t& ver) {
            typename Domain::template local_ptr<T> lp;
            ver = Domain::load_linked(src, lp).version;
            return set(i, lp.release());
        }
        template <typename T>
        T* vtraverse(std::size_t i, vslot<T>& src, std::uint64_t& ver) {
            return vprotect(i, src, ver);
        }

      private:
        template <typename X>
        X* set(std::size_t i, X* p) {
            Domain::destroy(slots_[i]);
            slots_[i] = static_cast<typename Domain::object*>(p);
            return p;
        }
        typename Domain::object* slots_[guard_slots] = {};
    };

    // ---- link / flag / vslot operations ---------------------------------

    template <typename Node>
    Node* peek(link<Node>& A) noexcept {
        return Domain::peek(A);
    }
    template <typename Node>
    void init_link(link<Node>& A, Node* v) {
        Domain::store(A, v);
    }
    template <typename Node>
    bool cas_link(link<Node>& A, Node* old0, Node* new0) {
        return Domain::cas(A, old0, new0);
    }
    template <typename Node>
    bool dcas_link_flag(link<Node>& A, flag& F, Node* old0, bool old_flag, Node* new0,
                        bool new_flag) {
        return Domain::dcas_ptr_flag(A, F, old0, old_flag, new0, new_flag);
    }
    bool flag_load(flag& f) noexcept { return f.load(); }
    bool flag_cas(flag& f, bool expected, bool desired) { return f.cas(expected, desired); }

    template <typename Node>
    void retire_unlinked(Node*) noexcept {}  // the count transfer already did it

    template <typename Node>
    void reset_chain(link<Node>& head) {
        // Severing the head reference unravels the chain through
        // lfrc_visit_children (iteratively, inside LFRCDestroy).
        Domain::store(head, static_cast<Node*>(nullptr));
    }
    template <typename Node>
    void register_root(link<Node>&) noexcept {}

    template <typename T>
    bool vinstall_if_live(vslot<T>& s, std::uint64_t ver, T* old0, T* new0, flag& dead) {
        if constexpr (FlagBlind) {
            // MUTANT: ignore the dead flag — the install can land in an
            // entry a concurrent erase just claimed, losing the update.
            return Domain::store_conditional(s, typename Domain::link_token{ver}, old0,
                                             new0);
        } else {
            return Domain::store_conditional_if_flag(s, typename Domain::link_token{ver},
                                                     old0, new0, dead,
                                                     /*flag_required=*/false);
        }
    }
    template <typename T>
    bool vclaim_mark_dead(vslot<T>& s, std::uint64_t ver, T* old0, flag& dead) {
        return Domain::claim_and_set_flag(s, typename Domain::link_token{ver}, old0, dead);
    }

    std::uint64_t pending() const noexcept { return reclaim::epoch_domain::global().pending(); }
    std::uint64_t drain(int rounds) { return detail::drain_epoch_domain(rounds); }
};

#ifdef LFRC_ENABLE_MUTATIONS
/// The Valois plain-CAS load mutant, as a policy: the sim conformance
/// suite drives it through the generic cores to prove the harness still
/// catches the §2 resurrection race after this refactor.
template <typename Domain>
using counted_mutated = counted<Domain, /*Mutated=*/true>;

/// The flag-blind vinstall mutant: the store's put-vs-erase lost-update
/// detector (tests/sim/sim_kcas_reuse_test.cpp) must still trigger on it
/// with the sequence-tagged engine underneath.
template <typename Domain>
using counted_flag_blind = counted<Domain, /*Mutated=*/false, /*FlagBlind=*/true>;
#endif

/// Counted ownership, borrowed reads. Strong operations (protect, vprotect,
/// every write) are identical to `counted`; traverse/vtraverse ride the
/// guard's epoch pin with zero count traffic.
template <typename Domain>
class borrowed {
  public:
    using domain_type = Domain;

    static constexpr const char* name() noexcept { return "borrowed"; }
    static constexpr bool counted_links = true;
    static constexpr bool has_lazy_traverse = true;
    static constexpr std::size_t guard_slots = 4;

    template <typename Node>
    using link = typename Domain::template ptr_field<Node>;
    using flag = typename Domain::flag_field;
    template <typename T>
    using vslot = typename Domain::template ll_field<T>;

    template <typename Node>
    using node_base = typename counted<Domain>::template node_base<Node>;
    template <typename Node>
    using owner = typename counted<Domain>::template owner<Node>;

    template <typename Node, typename... Args>
    owner<Node> make_owner(Args&&... args) {
        return counted_.template make_owner<Node>(std::forward<Args>(args)...);
    }
    template <typename Node>
    void publish_ok(owner<Node>&) noexcept {}

    struct thread_scope {
        explicit thread_scope(borrowed&) noexcept {}
    };

    class guard {
      public:
        explicit guard(borrowed&) noexcept {}
        ~guard() {
            release_all();
            // pin_ releases after the slots: a counted release may retire
            // through the epoch domain, which is fine under or before the
            // exit, and uncounted slots are only valid while pinned.
        }
        guard(const guard&) = delete;
        guard& operator=(const guard&) = delete;

        void step() noexcept {}

        /// Strong protect: acquire a counted reference. The peek+promote
        /// loop terminates because the source field — a field of a live,
        /// strongly protected parent (or a container root) — holds a count
        /// on its referent: try_promote can only observe zero after the
        /// field moved off the pointer we peeked.
        template <typename Node>
        Node* protect(std::size_t i, link<Node>& src) {
            for (;;) {
                Node* raw = Domain::peek(src);
                if (raw == nullptr) {
                    clear(i);
                    return nullptr;
                }
                if (auto lp = Domain::try_promote(raw)) {
                    set(i, lp.release(), true);
                    return raw;
                }
            }
        }

        /// Borrowed traverse: a raw pointer valid under the guard's epoch
        /// pin (counted objects free through the epoch domain). No write
        /// license — upgrade() first.
        template <typename Node>
        Node* traverse(std::size_t i, link<Node>& src) {
            Node* raw = Domain::peek(src);
            set(i, raw, false);
            return raw;
        }

        template <typename Node>
        void protect_new(std::size_t i, Node* fresh) {
            Domain::add_to_rc(fresh, 1);
            set(i, fresh, true);
        }

        /// Promote slot i from borrowed to counted. Single-shot: failure
        /// means the node's count hit zero (it is being destroyed) — the
        /// caller treats that as a miss, exactly like borrow_ptr::promote.
        bool upgrade(std::size_t i) {
            slot_t& s = slots_[i];
            if (s.p == nullptr) return false;
            if (s.counted) return true;
            auto lp = Domain::try_promote(s.p);
            if (!lp) return false;
            s.p = lp.release();
            s.counted = true;
            return true;
        }

        void advance(std::size_t dst, std::size_t src) {
            release(dst);
            slots_[dst] = slots_[src];
            slots_[src] = {};
        }
        void clear(std::size_t i) {
            release(i);
            slots_[i] = {};
        }

        template <typename T>
        T* vprotect(std::size_t i, vslot<T>& src, std::uint64_t& ver) {
            typename Domain::template local_ptr<T> lp;
            ver = Domain::load_linked(src, lp).version;
            T* raw = lp.get();
            set(i, lp.release(), true);
            return raw;
        }
        /// Borrowed versioned read: load_borrowed's version/pointer/version
        /// validation, with the raw pointer outliving the call under our
        /// own pin (load_borrowed's internal pin nests re-entrantly).
        template <typename T>
        T* vtraverse(std::size_t i, vslot<T>& src, std::uint64_t& ver) {
            auto b = Domain::load_borrowed(src, &ver);
            T* raw = b.get();
            set(i, raw, false);
            return raw;
        }

      private:
        struct slot_t {
            typename Domain::object* p = nullptr;
            bool counted = false;
        };
        template <typename X>
        void set(std::size_t i, X* p, bool counted_ref) {
            release(i);
            slots_[i] = {static_cast<typename Domain::object*>(p), counted_ref};
        }
        void release(std::size_t i) {
            if (slots_[i].counted) Domain::destroy(slots_[i].p);
        }
        void release_all() {
            for (std::size_t i = 0; i < guard_slots; ++i) {
                release(i);
                slots_[i] = {};
            }
        }

        slot_t slots_[guard_slots] = {};
        reclaim::epoch_domain::guard pin_{reclaim::epoch_domain::global()};
    };

    // Strong/link operations are the counted ones verbatim.
    template <typename Node>
    Node* peek(link<Node>& A) noexcept {
        return Domain::peek(A);
    }
    template <typename Node>
    void init_link(link<Node>& A, Node* v) {
        Domain::store(A, v);
    }
    template <typename Node>
    bool cas_link(link<Node>& A, Node* old0, Node* new0) {
        return Domain::cas(A, old0, new0);
    }
    template <typename Node>
    bool dcas_link_flag(link<Node>& A, flag& F, Node* old0, bool old_flag, Node* new0,
                        bool new_flag) {
        return Domain::dcas_ptr_flag(A, F, old0, old_flag, new0, new_flag);
    }
    bool flag_load(flag& f) noexcept { return f.load(); }
    bool flag_cas(flag& f, bool expected, bool desired) { return f.cas(expected, desired); }
    template <typename Node>
    void retire_unlinked(Node*) noexcept {}
    template <typename Node>
    void reset_chain(link<Node>& head) {
        Domain::store(head, static_cast<Node*>(nullptr));
    }
    template <typename Node>
    void register_root(link<Node>&) noexcept {}
    template <typename T>
    bool vinstall_if_live(vslot<T>& s, std::uint64_t ver, T* old0, T* new0, flag& dead) {
        return Domain::store_conditional_if_flag(s, typename Domain::link_token{ver}, old0,
                                                 new0, dead, /*flag_required=*/false);
    }
    template <typename T>
    bool vclaim_mark_dead(vslot<T>& s, std::uint64_t ver, T* old0, flag& dead) {
        return Domain::claim_and_set_flag(s, typename Domain::link_token{ver}, old0, dead);
    }

    std::uint64_t pending() const noexcept { return reclaim::epoch_domain::global().pending(); }
    std::uint64_t drain(int rounds) { return detail::drain_epoch_domain(rounds); }

  private:
    counted<Domain> counted_;
};

}  // namespace lfrc::smr
