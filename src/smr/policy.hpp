// lfrc::smr — one seam for safe memory reclamation.
//
// The paper's claim is methodological: LFRC is a *drop-in* discipline that
// turns GC-dependent lock-free structures into GC-independent ones. To make
// that claim testable as code, every reclamation scheme in the repo is
// expressed as an `smr::policy` — a small duck-typed interface a generic
// container core (containers/{stack,queue,list}_core.hpp) is templated on.
// The same traversal logic then runs, unmodified, over:
//
//   counted   the paper's Figure-2 counted operations (lfrc::basic_domain)
//   borrowed  counted ownership + the epoch-borrowed read fast path
//   ebr       epoch-based reclamation (retire-on-unlink, grace periods)
//   hp        hazard pointers (Michael 2002 announce/validate)
//   leaky     never free — the idealized "the GC will get it" fiction
//   gc_heap   an actual GC: the toy stop-the-world mark-sweep heap
//   deferred  thread-local deferred RC (ABW/libsref): epoch-pinned guards,
//             per-thread delta tables, review queue for zero-detection
//
// This mirrors Meyer & Wolff's observation that reclamation factors out of
// a lock-free structure behind a guard/retire interface, and Anderson/
// Blelloch/Wei's that counted and manual SMR are interchangeable behind it.
//
// ---- The policy contract (duck-typed; `policy` below checks the core) ----
//
// Types:
//   P::link<Node>   one-word pointer field linking Node objects. For the
//                   counted policies this is Domain::ptr_field (the count
//                   lives in the pointee); for manual/gc policies it is a
//                   raw dcas::cell (cell_link below).
//   P::flag         one-word boolean field DCAS-able alongside a link
//                   (logical-deletion marks).
//   P::vslot<T>     versioned pointer slot (pointer + version cell pair);
//                   the LL/SC surface the kv store's value slots need.
//   P::node_base<Node>  CRTP base every node type derives from. It adapts
//                   the node's `smr_children(f)` enumeration (call f on
//                   every link/vslot field holding children) to whatever
//                   the scheme's tracing needs: lfrc_visit_children for
//                   counted domains, gc_trace for the gc heap, nothing for
//                   manual schemes.
//   P::owner<Node>  RAII handle for a node between allocation and its
//                   publishing CAS. make_owner allocates; publish_ok(o)
//                   transfers ownership to the structure after the CAS
//                   succeeds; an owner destroyed without publish_ok
//                   releases the node by the scheme's rules.
//   P::guard        RAII protection scope with `guard_slots` numbered
//                   slots. Constructed from the policy instance; must not
//                   be nested per thread for slot-limited schemes (hp).
//   P::thread_scope RAII per-thread attachment (gc heap attach; no-op
//                   elsewhere). Container ctors that allocate wrap
//                   themselves in one; mutating ops require the CALLER to
//                   hold one where the scheme needs it (gc).
//
// Guard operations (i, j are slot indices):
//   protect(i, link) -> Node*   strong protection: the returned node is
//                   safe to dereference and its link/flag fields safe to
//                   CAS until the slot is overwritten/cleared. May only be
//                   applied to fields of the container root or of nodes
//                   protected *strongly* in another slot.
//   traverse(i, link) -> Node*  lazy-grade protection: memory-safe to read
//                   but, for `borrowed`, not counted (no write license).
//                   Policies advertise `has_lazy_traverse`; when false
//                   (hp), traverse degrades to protect and cores must not
//                   walk through logically deleted nodes with it.
//   upgrade(i) -> bool          promote a traverse-grade slot to strong
//                   (single-shot try_promote for `borrowed`; trivially
//                   true elsewhere). Failure means the node is being
//                   destroyed — treat as a miss.
//   protect_new(i, node)        protect a not-yet-published node (announce
//                   BEFORE the publishing CAS so hp scans see it).
//   advance(dst, src)           move a slot's protection (dst := src).
//   clear(i) / step()           drop one slot / per-iteration safepoint
//                   hook (gc parks for collections here).
//   vprotect(i, vslot, &ver)    strong versioned read (load_linked / the
//                   validate loop); vtraverse is its lazy twin.
//
// Policy operations (instance methods; engines and domains make most of
// them static underneath):
//   peek(link)                  raw read — identity checks and CAS
//                   expected-values only, NEVER dereference the result.
//   init_link(link, p)          exclusive-access store (ctor / unpublished
//                   node), with counted bookkeeping where it applies.
//   cas_link(link, o, n)        single-width CAS with count transfer.
//   dcas_link_flag(l, f, ...)   the paper's DCAS on (link, flag) — the
//                   insert/unlink primitive.
//   flag_load / flag_cas        dead-flag access.
//   vinstall_if_live(...)       CASN {ptr o->n, version v->v+1, flag
//                   false->false}: install a value iff the entry is live.
//   vclaim_mark_dead(...)       CASN {ptr o->null, version v->v+1, flag
//                   false->true}: the erase claim.
//   retire_unlinked(p)          hand an unlinked node to the reclaimer
//                   (no-op for counted/leaky/gc — counts, nothing, or the
//                   collector already own the problem).
//   reset_chain(link)           quiescent teardown of a `next`-linked
//                   chain rooted at `link`.
//   register_root(link)         declare a container root cell (gc only).
//   pending() / drain(rounds)   reclaimer backlog introspection and a
//                   bounded flush; drain returns the residual backlog.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "dcas/cell.hpp"
#include "gc/heap.hpp"
#include "reclaim/epoch.hpp"

namespace lfrc::smr {

/// Compile-time check of the core, non-templated part of the contract.
/// The templated members (link ops, guard protect, …) are duck-typed —
/// container cores are their real conformance check, and the
/// policy-parameterized test suite instantiates all of them.
template <typename P>
concept policy = requires(P& p, typename P::guard& g, std::size_t i) {
    { P::name() } -> std::convertible_to<const char*>;
    { P::counted_links } -> std::convertible_to<bool>;
    { P::has_lazy_traverse } -> std::convertible_to<bool>;
    { P::guard_slots } -> std::convertible_to<std::size_t>;
    requires std::constructible_from<typename P::guard, P&>;
    typename P::thread_scope;
    { g.step() };
    { g.upgrade(i) } -> std::convertible_to<bool>;
    { g.advance(i, i) };
    { g.clear(i) };
    { p.pending() } -> std::convertible_to<std::uint64_t>;
    { p.drain(1) } -> std::convertible_to<std::uint64_t>;
};

// ---- Shared cell-backed field types (manual + gc policies) ----------------
//
// The counted policies get their fields from the domain (ptr_field,
// flag_field, ll_field). Every other policy stores plain encoded values in
// dcas::cells, so the fields are sim-instrumented for free and the same
// engine CAS/DCAS/CASN machinery drives them.

/// One-word pointer link. All concurrent access goes through the policy's
/// engine; exclusive_get/exclusive_set are for single-owner phases only.
template <typename Node>
class cell_link {
  public:
    cell_link() noexcept = default;

    Node* exclusive_get() const noexcept {
        return dcas::decode_ptr<Node>(cell_.raw().load(std::memory_order_acquire));  // lfrc-lint: order(cell-publish)
    }
    void exclusive_set(Node* p) noexcept {
        cell_.raw().store(dcas::encode_ptr(p), std::memory_order_release);  // lfrc-lint: order(cell-publish)
    }

    void gc_mark(gc::marker& m) const { m.mark_cell(cell_); }

    dcas::cell& cell() noexcept { return cell_; }
    const dcas::cell& cell() const noexcept { return cell_; }

  private:
    dcas::cell cell_{0};
};

/// One-word boolean flag, encoded like a count so engine descriptors can
/// never be mistaken for a value. Never enumerated by smr_children (it
/// holds no pointer), hence no gc_mark.
template <typename Engine>
class cell_flag {
  public:
    cell_flag() noexcept : cell_(dcas::encode_count(0)) {}

    bool load() noexcept { return dcas::decode_count(Engine::read(cell_)) != 0; }
    bool cas(bool expected, bool desired) noexcept {
        return Engine::cas(cell_, encode(expected), encode(desired));
    }

    static std::uint64_t encode(bool b) noexcept { return dcas::encode_count(b ? 1 : 0); }

    dcas::cell& cell() noexcept { return cell_; }

  private:
    dcas::cell cell_;
};

/// Versioned pointer slot: a (pointer, version) cell pair, the manual-SMR
/// mirror of the domain's ll_field. Reads validate version/pointer/version;
/// writes are engine CASNs that bump the version, so ABA on the pointer
/// alone can never satisfy a conditional store.
template <typename T>
class cell_vslot {
  public:
    cell_vslot() noexcept : version_(dcas::encode_count(0)) {}

    T* exclusive_get() const noexcept {
        return dcas::decode_ptr<T>(ptr_.raw().load(std::memory_order_acquire));  // lfrc-lint: order(cell-publish)
    }

    void gc_mark(gc::marker& m) const { m.mark_cell(ptr_); }

    dcas::cell& ptr_cell() noexcept { return ptr_; }
    dcas::cell& version_cell() noexcept { return version_; }

  private:
    dcas::cell ptr_{0};
    dcas::cell version_;
};

namespace detail {

/// Bounded drive of the global epoch domain's deferred frees (the same
/// stall-guarded loop as lfrc::flush_deferred_frees, reimplemented here so
/// the manual policies need no dependency on the domain layer). Returns the
/// residual pending count.
inline std::uint64_t drain_epoch_domain(int rounds) {
    auto& d = reclaim::epoch_domain::global();
    std::uint64_t prev = ~std::uint64_t{0};
    int stalled = 0;
    for (int i = 0; i < rounds; ++i) {
        const std::uint64_t p = d.pending();
        if (p == 0) break;
        if (p >= prev) {
            if (++stalled > 4) break;  // > grace period with no progress
        } else {
            stalled = 0;
        }
        prev = p;
        d.try_advance();
        d.drain_all();
    }
    return d.pending();
}

// ---- smr_children / smr_link_count cross-check ----------------------------
//
// A node's smr_children(f) enumeration is the single source of truth for
// tracing policies (counted unravel, gc mark). Nothing in the language makes
// the enumeration stay in sync with the class's link/vslot members, so the
// repo checks it three ways:
//
//   * tools/lfrc_lint rule R5 compares the enumerated set against the
//     declared members at the source level (and checks smr_link_count);
//   * children_cover_all_links_v below is the compile-time face: the node
//     must declare `static constexpr std::size_t smr_link_count` and its
//     smr_children must accept a generic visitor — cores static_assert it,
//     so templates the linter cannot expand are still covered;
//   * debug/sim builds assert at trace time that the enumeration visits
//     exactly smr_link_count fields (counted.hpp / gc_heap.hpp adapters).

/// Counting visitor: accepts any field reference, only increments. Drives
/// both the invocability check and the trace-time count assertion.
struct child_counter {
    std::size_t n = 0;
    template <typename Field>
    void operator()(Field&) noexcept { ++n; }
};

template <typename Node, typename = void>
struct has_smr_link_count : std::false_type {};
template <typename Node>
struct has_smr_link_count<
    Node, std::void_t<decltype(std::size_t{Node::smr_link_count})>>
    : std::true_type {};

template <typename Node, typename = void>
struct children_invocable : std::false_type {};
template <typename Node>
struct children_invocable<
    Node, std::void_t<decltype(std::declval<Node&>().smr_children(
              std::declval<child_counter&>()))>> : std::true_type {};

template <typename Node>
inline constexpr bool children_cover_all_links_v =
    has_smr_link_count<Node>::value && children_invocable<Node>::value;

}  // namespace detail

}  // namespace lfrc::smr
