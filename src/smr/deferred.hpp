// smr::deferred — thread-local deferred reference counting (the ABW /
// libsref construction: per-thread delta caches + a review queue).
//
// E6/E9 show exactly where the paper's counted operations lose to the
// manual schemes: every LFRCLoad is a CAS on a *shared* count word, so a
// read-mostly workload serializes on the hottest nodes' cache lines. This
// policy keeps the paper's reference-counting semantics — links own counts,
// zero means unreachable, children release recursively — but makes the
// count traffic thread-local:
//
//   * A guard pins an epoch (the same reclaim::epoch_domain behind ebr and
//     borrowed). Pinned readers touch no counts at all: protect() is a raw
//     pointer read, memory-safe because frees wait out a grace period.
//   * Link writes (cas_link / dcas_link_flag / vinstall / vclaim) record
//     their +1/-1 count deltas in a per-thread, cache-line-padded delta
//     table keyed by node, instead of CAS-ing the node's shared count. The
//     table flushes into the authoritative per-node count when the
//     outermost guard exits (and deltas for the same node cancel in place:
//     a push's birth -1 and link +1 never touch the shared line).
//   * A node whose authoritative count reaches zero is not freed: it is
//     stamped with the current epoch and pushed on a review queue. The
//     reviewer frees it only after (a) re-checking the count is still zero
//     and (b) a grace period has elapsed since the stamp — closing the race
//     where an unflushed table delta or a pinned reader still covers the
//     node. Children released by a free go back through the same machinery,
//     so deep chains unravel iteratively, never recursively.
//
// Safety argument (DESIGN.md §12 gives the full version):
//   invariant  authoritative(n) + Σ unflushed table deltas(n)
//              = #links to n + #live owner (birth) refs, and every thread
//              holding an unflushed delta is pinned.
//   stamping   every negative apply stamps the node with global+1 BEFORE
//              the subtraction (monotonic max), so the stamp the reviewer
//              reads after observing count==0 is at least as fresh as the
//              crossing it observed (reviewer read order: epoch, then
//              count, then stamp).
//   freeing    requires count==0 ∧ global ≥ stamp+2. Any thread pinned at
//              free time has announce ≥ global-1 ≥ stamp+1, i.e. pinned
//              only *after* the zero-crossing; it can have obtained a
//              reference to n only through a link whose +1 would be visible
//              in the authoritative count (reviewer re-reads it) or held by
//              a thread pinned since before the crossing — whose announce
//              bounds global below stamp+2, contradicting the free
//              condition.
//
// The policy satisfies the full smr::policy contract, so the four container
// cores and store::kv_store run unmodified; counted_links is true because
// link operations transfer counts (retire_unlinked is a no-op, teardown is
// a single head release). Under LFRC_SIM the count word and stamp are
// instrumented atomics, so the flush/final-release/review races are
// schedule-explorable with shadow-heap checking.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "alloc/counted.hpp"
#include "dcas/cell.hpp"
#include "dcas/mcas_engine.hpp"
#include "reclaim/epoch.hpp"
#include "sim/instrumented.hpp"
#include "smr/policy.hpp"
#include "util/cacheline.hpp"
#include "util/thread_registry.hpp"

namespace lfrc::smr {

namespace deferred_detail {

// rc_ layout: bit 63 is the review-queue claim (QUEUED), bits 0..62 the
// authoritative count. Counts never underflow (asserted), so two's-
// complement adds of negative deltas cannot borrow into the claim bit.
inline constexpr std::uint64_t queued_bit = std::uint64_t{1} << 63;
inline constexpr std::uint64_t count_mask = queued_bit - 1;

/// Untyped node header shared by every deferred policy instantiation.
/// Lives in front of the user node via node_base below; counted_base routes
/// allocation through the tracker (leak accounting, sim shadow heap).
struct deferred_node : alloc::counted_base {
    // Authoritative count; starts at 1 (the owner's birth reference).
    sim::instrumented_atomic<std::uint64_t> rc_{std::uint64_t{1}};
    // Epoch stamp of the last observed zero-crossing (monotonic max).
    sim::instrumented_atomic<std::uint64_t> review_stamp_{0};
    // Review-queue Treiber link; owned by whoever holds the QUEUED claim.
    std::atomic<deferred_node*> review_next_{nullptr};

    deferred_node() noexcept = default;
    virtual ~deferred_node() = default;
    /// Release every child reference (smr_children enumeration). Called by
    /// the reviewer exactly once, just before delete.
    virtual void smr_release_children_() noexcept = 0;
};

/// Process-wide runtime: the per-thread delta tables, the review queue, and
/// the reviewer. Leaked singleton (like the epoch domain) registered as the
/// epoch domain's aux reclaimer, so every existing pending()/drain_all()/
/// clear_slot() path covers the review backlog with no caller changes.
class runtime {
  public:
    static constexpr std::size_t table_size = 64;   // power of two
    static constexpr std::size_t probe_limit = 8;
    static constexpr std::uint64_t review_threshold = 64;

    struct entry {
        deferred_node* node = nullptr;
        std::int64_t delta = 0;
    };

    /// One thread's delta table. Owner-thread-only except for the
    /// aux clear_slot flush, which runs only for abandoned sim fibers and
    /// joined workers (happens-before via the harness / join).
    struct slot_cache {
        entry entries[table_size];
        std::uint16_t dirty[table_size] = {};
        std::uint32_t ndirty = 0;
        std::size_t self = 0;          // this cache's registry slot (set by cache())
        std::uint64_t depth = 0;       // guard nesting
        std::uint64_t detections = 0;  // zero-crossings since last review
        // Epoch at this thread's last review. Nothing stamped since then
        // can be eligible until the global epoch moves again, so reviews
        // are gated on epoch advancement — without this, every 64th guard
        // exit walks the whole grace-blocked queue and churn goes
        // quadratic (the exact trap epoch.cpp's last_scan_epoch avoids).
        std::uint64_t last_review_epoch = 0;
        bool reviewing = false;        // re-entrancy latch
    };

    /// Per-slot review-queue shard (ebr's per-slot retired stacks, for the
    /// same reasons: detections push to the detecting thread's own head, so
    /// the queue is not one process-wide contended cache line, and a
    /// steady-state review walks only the reviewer's shard). `count` is a
    /// signed delta — a node may be freed by a different slot than the one
    /// that pushed it; the SUM across shards is the true backlog.
    struct review_shard {
        std::atomic<deferred_node*> head{nullptr};
        std::atomic<std::int64_t> count{0};
    };

    static runtime& instance() {
        // Leaked: releases can happen during static destruction.
        // lfrc-lint: exempt(R4) — runtime is infrastructure, not a node
        static auto* r = new runtime;
        return *r;
    }

    slot_cache& cache() {
        const std::size_t s = util::thread_registry::instance().slot();
        slot_cache& c = *caches_[s];
        c.self = s;
        return c;
    }

    /// Count adjustments. Recorded in the delta table while pinned (guard
    /// depth > 0); applied to the authoritative count directly otherwise.
    void add_ref(deferred_node* n) {
        if (n != nullptr) adjust(n, +1);
    }
    void release(deferred_node* n) {
        if (n != nullptr) adjust(n, -1);
    }

    /// Outermost-guard exit: flush this thread's deltas (still pinned —
    /// the policy guard's destructor body runs before its epoch pin member
    /// is destroyed), then maybe run a bounded review pass.
    void guard_closed(slot_cache& c) {
        flush(c);
        if (c.detections < review_threshold || c.reviewing) return;
        auto& dom = reclaim::epoch_domain::global();
        std::uint64_t g = dom.global_epoch();
        if (g == c.last_review_epoch) {
            dom.try_advance();
            g = dom.global_epoch();
            if (g == c.last_review_epoch) {
                // Stuck (a peer is parked in a guard): nothing stamped
                // since the last review can be eligible. Back the counter
                // off halfway so the retry happens every ~threshold/2
                // detections, not on every guard exit.
                c.detections = review_threshold / 2;
                return;
            }
        }
        c.last_review_epoch = g;
        c.detections = 0;
        // One pass: frees everything currently eligible in our shard.
        // Children released by those frees re-enter the queue and ride the
        // next epoch's review (cascades here are shallow — entry → box);
        // multi-pass cascade chasing is the drain path's job.
        process_review(/*max_passes=*/1, /*all_shards=*/false);
    }

    /// Review-queue backlog (nodes at count zero awaiting their grace
    /// period). The epoch domain adds this into pending().
    std::uint64_t review_pending() const noexcept {
        std::int64_t total = 0;
        const std::size_t high = util::thread_registry::instance().high_water();
        for (std::size_t s = 0; s < high; ++s) {
            total += shards_[s]->count.load(std::memory_order_acquire);  // lfrc-lint: order(deferred-shard-counter)
        }
        return total > 0 ? static_cast<std::uint64_t>(total) : 0;
    }

    /// Drive the review queue. Each pass tries one epoch advance, steals
    /// this thread's shard (every shard on the drain path), frees every
    /// node whose zero-crossing is two epochs old, and re-queues survivors
    /// on the caller's shard. Children released by a free are re-queued and
    /// picked up by a later pass (iterative cascade). Stops when a pass
    /// neither frees nor advances — at quiescence try_advance always
    /// succeeds, so a teardown drain empties arbitrary chains.
    void process_review(int max_passes, bool all_shards) noexcept {
        auto& dom = reclaim::epoch_domain::global();
        slot_cache& c = cache();
        if (c.reviewing) return;
        c.reviewing = true;
        review_shard& home = *shards_[c.self];
        const int cap = max_passes > 0 ? max_passes : 4096;
        for (int pass = 0; pass < cap; ++pass) {
            const bool advanced = dom.try_advance();
            // Read order matters (header comment): epoch BEFORE count and
            // stamp, count BEFORE stamp. An older epoch only under-frees.
            const std::uint64_t g = dom.global_epoch();
            std::size_t freed = 0;
            bool stole_any = false;
            deferred_node* keep_head = nullptr;
            deferred_node* keep_tail = nullptr;
            const auto keep = [&](deferred_node* k) {
                k->review_next_.store(keep_head, std::memory_order_relaxed);  // lfrc-lint: order(review-link)
                keep_head = k;
                if (keep_tail == nullptr) keep_tail = k;
            };
            const std::size_t lo = all_shards ? 0 : c.self;
            const std::size_t hi =
                all_shards ? util::thread_registry::instance().high_water() : c.self + 1;
            for (std::size_t s = lo; s < hi; ++s) {
                deferred_node* n =
                    shards_[s]->head.exchange(nullptr, std::memory_order_acq_rel);  // lfrc-lint: order(review-queue-head)
                if (n != nullptr) stole_any = true;
                while (n != nullptr) {
                    deferred_node* next = n->review_next_.load(std::memory_order_relaxed);  // lfrc-lint: order(review-link)
                    const std::uint64_t rc = n->rc_.load(std::memory_order_seq_cst);
                    if ((rc & count_mask) != 0) {
                        // Resurrected by a flushed increment: hand zero
                        // detection back to the decrementers by releasing
                        // the claim — but only through a CAS that requires
                        // count > 0. The moment the claim is released, a
                        // concurrent final release may re-queue n and a
                        // second reviewer may free it, so n must never be
                        // touched after a successful release. On CAS
                        // failure the claim is still ours (nobody else
                        // clears the bit) and re-examining n is safe.
                        std::uint64_t cur = rc;
                        bool released = false;
                        while ((cur & count_mask) != 0) {
                            if (n->rc_.compare_exchange_weak(cur, cur & ~queued_bit,
                                                             std::memory_order_seq_cst)) {
                                released = true;
                                break;
                            }
                        }
                        if (released) {
                            // Someone holds a real reference; its release
                            // will re-detect zero. The node leaves the queue.
                            home.count.fetch_sub(1, std::memory_order_relaxed);  // lfrc-lint: order(deferred-shard-counter)
                        } else {
                            // The count dropped back to zero while WE still
                            // held the claim, so the crossing decrementer
                            // skipped the push: re-stamp and re-queue.
                            stamp(n);
                            keep(n);
                        }
                    } else {
                        const std::uint64_t st =
                            n->review_stamp_.load(std::memory_order_seq_cst);
                        if (g >= st + 2) {
                            n->smr_release_children_();
                            delete n;  // lfrc-lint: arena-route
                            home.count.fetch_sub(1, std::memory_order_relaxed);  // lfrc-lint: order(deferred-shard-counter)
                            ++freed;
                        } else {
                            keep(n);
                        }
                    }
                    n = next;
                }
            }
            // Re-homing survivors moves nodes between shards but not their
            // count: the per-shard counts are signed deltas whose sum is
            // the backlog (exactly epoch.cpp's pending_delta convention).
            if (keep_head != nullptr) push_review_chain(home, keep_head, keep_tail);
            if (!stole_any) break;
            if (freed == 0 && !advanced) break;
        }
        c.reviewing = false;
    }

    /// Aux clear_slot hook body: flush an abandoned/joined slot's table and
    /// reset its guard state — the abandoned fiber's guards never exit, and
    /// the slot's next tenant must start unnested.
    void flush_slot(std::size_t s) noexcept {
        slot_cache& c = *caches_[s];
        flush(c);
        c.depth = 0;
        c.detections = 0;
        c.reviewing = false;
    }

  private:
    runtime() {
        reclaim::epoch_domain::global().register_aux(&aux_pending, &aux_drain, &aux_clear);
    }

    static std::uint64_t aux_pending() noexcept { return instance().review_pending(); }
    static void aux_drain() noexcept {
        instance().process_review(/*max_passes=*/0, /*all_shards=*/true);
    }
    static void aux_clear(std::size_t s) noexcept { instance().flush_slot(s); }

    static std::size_t hash(const deferred_node* n) noexcept {
        auto x = reinterpret_cast<std::uintptr_t>(n) >> 4;
        x *= 0x9E3779B97F4A7C15ull;
        return static_cast<std::size_t>(x >> 58) & (table_size - 1);
    }

    void adjust(deferred_node* n, std::int64_t d) {
        slot_cache& c = cache();
        if (c.depth == 0) {
            apply(c, n, d);
            return;
        }
        const std::size_t h = hash(n);
        for (std::size_t k = 0; k < probe_limit; ++k) {
            entry& e = c.entries[(h + k) & (table_size - 1)];
            if (e.node == n) {
                e.delta += d;
                return;
            }
            if (e.node == nullptr) {
                e.node = n;
                e.delta = d;
                c.dirty[c.ndirty++] = static_cast<std::uint16_t>((h + k) & (table_size - 1));
                return;
            }
        }
        // Table pressure: apply through. Sound in both directions — we hold
        // the pin, so this is just an early flush of one entry.
        apply(c, n, d);
    }

    void flush(slot_cache& c) {
        for (std::uint32_t i = 0; i < c.ndirty; ++i) {
            entry& e = c.entries[c.dirty[i]];
            if (e.delta != 0) apply(c, e.node, e.delta);
            e.node = nullptr;
            e.delta = 0;
        }
        c.ndirty = 0;
    }

    void apply(slot_cache& c, deferred_node* n, std::int64_t d) {
        // Stamp BEFORE any potentially-crossing subtraction: a racing
        // reviewer that observes our zero must also observe a stamp at
        // least this fresh (it reads the count before the stamp).
        if (d < 0) stamp(n);
        const std::uint64_t old =
            n->rc_.fetch_add(static_cast<std::uint64_t>(d), std::memory_order_seq_cst);
        assert(static_cast<std::int64_t>(old & count_mask) + d >= 0 &&
               "deferred count underflow: more releases than references");
        const std::uint64_t now = old + static_cast<std::uint64_t>(d);
        if ((now & count_mask) == 0 && (now & queued_bit) == 0) {
            std::uint64_t expected = 0;
            if (n->rc_.compare_exchange_strong(expected, queued_bit,
                                               std::memory_order_seq_cst)) {
                review_shard& sh = *shards_[c.self];
                sh.count.fetch_add(1, std::memory_order_relaxed);  // lfrc-lint: order(deferred-shard-counter)
                push_review_chain(sh, n, n);
                ++c.detections;
            }
        }
    }

    void stamp(deferred_node* n) noexcept {
        const std::uint64_t s = reclaim::epoch_domain::global().global_epoch() + 1;
        std::uint64_t cur = n->review_stamp_.load(std::memory_order_seq_cst);
        while (cur < s) {
            if (n->review_stamp_.compare_exchange_weak(cur, s, std::memory_order_seq_cst)) {
                break;
            }
        }
    }

    // Does NOT touch the shard count: a pushed node is counted exactly
    // once, at its zero-detection — reviewer re-pushes of survivors are
    // moves, not new entries.
    void push_review_chain(review_shard& sh, deferred_node* head,
                           deferred_node* tail) noexcept {
        deferred_node* old_head = sh.head.load(std::memory_order_relaxed);  // lfrc-lint: order(review-queue-head)
        do {
            tail->review_next_.store(old_head, std::memory_order_relaxed);  // lfrc-lint: order(review-link)
        } while (!sh.head.compare_exchange_weak(old_head, head,  // lfrc-lint: order(review-queue-head)
                                                std::memory_order_acq_rel));
    }

    util::padded<slot_cache> caches_[util::thread_registry::max_threads];
    util::padded<review_shard> shards_[util::thread_registry::max_threads];
};

}  // namespace deferred_detail

/// The deferred-RC policy. counted_links is true: link operations transfer
/// counts exactly like the counted policies (so retire_unlinked is a no-op
/// and reset_chain is one head release), they just do the bookkeeping in
/// the calling thread's delta table instead of the node's shared count.
template <typename Engine = dcas::mcas_engine>
class deferred {
    using rt = deferred_detail::runtime;

  public:
    using engine_type = Engine;

    static constexpr const char* name() noexcept { return "deferred"; }
    static constexpr bool counted_links = true;
    // Traversing a logically deleted node is safe: the epoch pin keeps its
    // frozen successor chain allocated for the guard's lifetime.
    static constexpr bool has_lazy_traverse = true;
    static constexpr std::size_t guard_slots = 4;

    template <typename Node>
    using link = cell_link<Node>;
    using flag = cell_flag<Engine>;
    template <typename T>
    using vslot = cell_vslot<T>;

    /// Adapts smr_children to the reviewer's child-release walk.
    template <typename Node>
    struct node_base : deferred_detail::deferred_node {
      private:
        void smr_release_children_() noexcept override {
            [[maybe_unused]] std::size_t visited = 0;
            auto& r = rt::instance();
            static_cast<Node*>(this)->smr_children([&r, &visited](auto& field) {
                ++visited;
                r.release(field.exclusive_get());
            });
            if constexpr (smr::detail::has_smr_link_count<Node>::value) {
                assert(visited == Node::smr_link_count &&
                       "smr_children visited a different number of fields "
                       "than smr_link_count declares");
            }
        }
    };

    /// Holds the birth reference (rc_ starts at 1). publish_ok is a no-op —
    /// the publishing CAS added the structure's own count, and the owner's
    /// destructor releases the birth count either way (counted semantics).
    template <typename Node>
    class owner {
      public:
        owner() = default;
        ~owner() {
            if (p_ != nullptr) rt::instance().release(p_);
        }
        owner(owner&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }
        owner& operator=(owner&& o) noexcept {
            if (this != &o) {
                if (p_ != nullptr) rt::instance().release(p_);
                p_ = o.p_;
                o.p_ = nullptr;
            }
            return *this;
        }
        owner(const owner&) = delete;
        owner& operator=(const owner&) = delete;

        Node* get() const noexcept { return p_; }
        Node* operator->() const noexcept { return p_; }
        explicit operator bool() const noexcept { return p_ != nullptr; }

      private:
        friend deferred;
        explicit owner(Node* p) noexcept : p_(p) {}
        Node* p_ = nullptr;
    };

    template <typename Node, typename... Args>
    owner<Node> make_owner(Args&&... args) {
        // lfrc-lint: arena-route — deferred_node : counted_base
        return owner<Node>(new Node(std::forward<Args>(args)...));
    }
    template <typename Node>
    void publish_ok(owner<Node>&) noexcept {}

    struct thread_scope {
        explicit thread_scope(deferred&) noexcept {}
    };

    /// Stateless slots: protection is the epoch pin, reads are raw. The
    /// destructor body flushes the thread's delta table BEFORE the pin_
    /// member releases the epoch — the safety invariant requires every
    /// table delta to be applied while its recorder is still pinned.
    class guard {
      public:
        explicit guard(deferred&) noexcept : c_(&rt::instance().cache()) { ++c_->depth; }
        ~guard() {
            if (--c_->depth == 0) rt::instance().guard_closed(*c_);
        }
        guard(const guard&) = delete;
        guard& operator=(const guard&) = delete;

        void step() noexcept {}
        template <typename Node>
        Node* protect(std::size_t, link<Node>& src) noexcept {
            return dcas::decode_ptr<Node>(Engine::read(src.cell()));
        }
        template <typename Node>
        Node* traverse(std::size_t i, link<Node>& src) noexcept {
            return protect<Node>(i, src);
        }
        template <typename Node>
        void protect_new(std::size_t, Node*) noexcept {}
        bool upgrade(std::size_t) noexcept { return true; }
        void advance(std::size_t, std::size_t) noexcept {}
        void clear(std::size_t) noexcept {}
        template <typename T>
        T* vprotect(std::size_t, vslot<T>& s, std::uint64_t& ver) {
            // version / pointer / version: equal versions bracket a
            // consistent pair (the manual policies' vread).
            for (;;) {
                const std::uint64_t v = dcas::decode_count(Engine::read(s.version_cell()));
                const std::uint64_t raw = Engine::read(s.ptr_cell());
                if (dcas::decode_count(Engine::read(s.version_cell())) != v) continue;
                ver = v;
                return dcas::decode_ptr<T>(raw);
            }
        }
        template <typename T>
        T* vtraverse(std::size_t i, vslot<T>& s, std::uint64_t& ver) {
            return vprotect<T>(i, s, ver);
        }

      private:
        rt::slot_cache* c_;
        reclaim::epoch_domain::guard pin_{reclaim::epoch_domain::global()};
    };

    // ---- link / flag / vslot operations ---------------------------------

    template <typename Node>
    Node* peek(link<Node>& A) noexcept {
        return dcas::decode_ptr<Node>(Engine::read(A.cell()));
    }
    template <typename Node>
    void init_link(link<Node>& A, Node* v) {
        auto& r = rt::instance();
        r.add_ref(v);
        Node* old = A.exclusive_get();
        A.exclusive_set(v);
        r.release(old);
    }
    /// +1 new before the CAS, -1 old on success, -1 new (undo) on failure:
    /// the transferred counts are accounted before any window in which
    /// another thread could observe the new link.
    template <typename Node>
    bool cas_link(link<Node>& A, Node* old0, Node* new0) {
        auto& r = rt::instance();
        r.add_ref(new0);
        if (Engine::cas(A.cell(), dcas::encode_ptr(old0), dcas::encode_ptr(new0))) {
            r.release(old0);
            return true;
        }
        r.release(new0);
        return false;
    }
    template <typename Node>
    bool dcas_link_flag(link<Node>& A, flag& F, Node* old0, bool old_flag, Node* new0,
                        bool new_flag) {
        auto& r = rt::instance();
        r.add_ref(new0);
        if (Engine::dcas(A.cell(), F.cell(), dcas::encode_ptr(old0), flag::encode(old_flag),
                         dcas::encode_ptr(new0), flag::encode(new_flag))) {
            r.release(old0);
            return true;
        }
        r.release(new0);
        return false;
    }
    bool flag_load(flag& f) noexcept { return f.load(); }
    bool flag_cas(flag& f, bool expected, bool desired) { return f.cas(expected, desired); }

    template <typename Node>
    void retire_unlinked(Node*) noexcept {}  // the count transfer already did it

    template <typename Node>
    void reset_chain(link<Node>& head) {
        // Severing the head reference unravels the chain iteratively
        // through the review queue (children release on each free).
        Node* n = head.exclusive_get();
        head.exclusive_set(nullptr);
        rt::instance().release(n);
    }
    template <typename Node>
    void register_root(link<Node>&) noexcept {}

    template <typename T>
    bool vinstall_if_live(vslot<T>& s, std::uint64_t ver, T* old0, T* new0, flag& dead) {
        auto& r = rt::instance();
        r.add_ref(new0);
        typename Engine::casn_op ops[3] = {
            {&s.ptr_cell(), dcas::encode_ptr(old0), dcas::encode_ptr(new0)},
            {&s.version_cell(), dcas::encode_count(ver), dcas::encode_count(ver + 1)},
            {&dead.cell(), flag::encode(false), flag::encode(false)},
        };
        if (!Engine::casn(ops, 3)) {
            r.release(new0);
            return false;
        }
        r.release(old0);
        return true;
    }
    template <typename T>
    bool vclaim_mark_dead(vslot<T>& s, std::uint64_t ver, T* old0, flag& dead) {
        typename Engine::casn_op ops[3] = {
            {&s.ptr_cell(), dcas::encode_ptr(old0), dcas::encode_ptr(static_cast<T*>(nullptr))},
            {&s.version_cell(), dcas::encode_count(ver), dcas::encode_count(ver + 1)},
            {&dead.cell(), flag::encode(false), flag::encode(true)},
        };
        if (!Engine::casn(ops, 3)) return false;
        rt::instance().release(old0);
        return true;
    }

    std::uint64_t pending() const noexcept {
        // Includes the review backlog: runtime registers as the epoch
        // domain's aux reclaimer.
        return reclaim::epoch_domain::global().pending();
    }
    std::uint64_t drain(int rounds) { return detail::drain_epoch_domain(rounds); }
};

}  // namespace lfrc::smr
