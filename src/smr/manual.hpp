// Manual-SMR policies: `ebr` (epoch-based reclamation), `hp` (hazard
// pointers, Michael 2002), and `leaky` (never free — the idealized
// "the GC will get it" environment with the collector switched off).
//
// These are the paper's §6 alternatives, expressed against the same cores
// as the counted policies. Links live in raw dcas::cells and all concurrent
// access goes through the Engine, so the same MCAS/CASN machinery that
// emulates DCAS for the counted domain drives insert/unlink/value-install
// here — one engine, six disciplines.
//
// Protection model:
//   ebr    the guard pins one epoch for its lifetime; any pointer read
//          under the pin stays allocated until the guard exits (retired
//          nodes wait out the grace period). Slots carry no state.
//   hp     each used slot lazily claims one of the thread's hazard slots
//          and runs the announce/validate loop. Guards must not be nested
//          per thread (4 slots per thread, 4 per guard).
//   leaky  nothing is ever freed, so a raw read is forever safe.
//
// Retire model: a node's *unlinker* retires it (exactly-once by the
// unlink DCAS), and a displaced value box is retired by the CASN winner.
// Direct retire — no double deferral — is sound for hp because every
// engine operation on a node's cells happens while the operating thread's
// hazard covers that node, so a scan at free time still sees the hazard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>

#include "alloc/counted.hpp"
#include "dcas/cell.hpp"
#include "dcas/mcas_engine.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "smr/policy.hpp"

namespace lfrc::smr {

/// Shared field types + engine-mediated link/flag/vslot operations for the
/// manual policies. `Derived` supplies retire_object (where displaced
/// values and unlinked nodes go).
template <typename Engine, typename Derived>
class manual_policy {
  public:
    using engine_type = Engine;

    static constexpr bool counted_links = false;
    static constexpr std::size_t guard_slots = 4;

    template <typename Node>
    using link = cell_link<Node>;
    using flag = cell_flag<Engine>;
    template <typename T>
    using vslot = cell_vslot<T>;

    /// Nodes of manual policies are plain heap objects; counted_base routes
    /// them through the allocation tracker (leak accounting, and the sim
    /// shadow heap's use-after-free/double-free checks under LFRC_SIM).
    template <typename Node>
    struct node_base : alloc::counted_base {};

    /// Plain owning handle: delete-on-destroy until publish_ok releases
    /// ownership to the structure.
    template <typename Node>
    class owner {
      public:
        owner() = default;
        // lfrc-lint: arena-route — counted_base operator delete
        ~owner() { delete p_; }
        owner(owner&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }
        owner& operator=(owner&& o) noexcept {
            if (this != &o) {
                delete p_;  // lfrc-lint: arena-route
                p_ = o.p_;
                o.p_ = nullptr;
            }
            return *this;
        }
        owner(const owner&) = delete;
        owner& operator=(const owner&) = delete;

        Node* get() const noexcept { return p_; }
        Node* operator->() const noexcept { return p_; }
        explicit operator bool() const noexcept { return p_ != nullptr; }

      private:
        friend manual_policy;
        explicit owner(Node* p) noexcept : p_(p) {}
        Node* p_ = nullptr;
    };

    template <typename Node, typename... Args>
    owner<Node> make_owner(Args&&... args) {
        // lfrc-lint: arena-route — Node derives counted_base; this IS the seam
        return owner<Node>(new Node(std::forward<Args>(args)...));
    }
    template <typename Node>
    void publish_ok(owner<Node>& o) noexcept {
        o.p_ = nullptr;  // the structure owns it now
    }

    struct thread_scope {
        explicit thread_scope(Derived&) noexcept {}
    };

    // ---- link / flag / vslot operations ---------------------------------

    template <typename Node>
    static Node* peek(link<Node>& A) noexcept {
        return dcas::decode_ptr<Node>(Engine::read(A.cell()));
    }
    template <typename Node>
    static void init_link(link<Node>& A, Node* v) noexcept {
        A.exclusive_set(v);
    }
    template <typename Node>
    static bool cas_link(link<Node>& A, Node* old0, Node* new0) {
        return Engine::cas(A.cell(), dcas::encode_ptr(old0), dcas::encode_ptr(new0));
    }
    template <typename Node>
    static bool dcas_link_flag(link<Node>& A, flag& F, Node* old0, bool old_flag, Node* new0,
                        bool new_flag) {
        return Engine::dcas(A.cell(), F.cell(), dcas::encode_ptr(old0),
                            flag::encode(old_flag), dcas::encode_ptr(new0),
                            flag::encode(new_flag));
    }
    static bool flag_load(flag& f) noexcept { return f.load(); }
    static bool flag_cas(flag& f, bool expected, bool desired) { return f.cas(expected, desired); }

    template <typename Node>
    static void retire_unlinked(Node* n) {
        Derived::retire_object(n);
    }

    /// Quiescent teardown: walk and delete the chain (the nodes were never
    /// handed to a reclaimer — they are still linked). A node type may
    /// declare smr_dispose() to free satellite allocations (the kv entry's
    /// value box) before the node itself goes.
    template <typename Node>
    static void reset_chain(link<Node>& head) {
        Node* n = head.exclusive_get();
        head.exclusive_set(nullptr);
        while (n != nullptr) {
            Node* next = n->next.exclusive_get();
            if constexpr (requires { n->smr_dispose(); }) n->smr_dispose();
            delete n;  // lfrc-lint: arena-route
            n = next;
        }
    }
    template <typename Node>
    static void register_root(link<Node>&) noexcept {}

    /// CASN {ptr old->new, version v->v+1, flag false->false}: install a
    /// value iff the slot is unchanged AND the entry is still live — the
    /// manual mirror of the domain's store_conditional_if_flag.
    template <typename T>
    static bool vinstall_if_live(vslot<T>& s, std::uint64_t ver, T* old0, T* new0, flag& dead) {
        typename Engine::casn_op ops[3] = {
            {&s.ptr_cell(), dcas::encode_ptr(old0), dcas::encode_ptr(new0)},
            {&s.version_cell(), dcas::encode_count(ver), dcas::encode_count(ver + 1)},
            {&dead.cell(), flag::encode(false), flag::encode(false)},
        };
        if (!Engine::casn(ops, 3)) return false;
        if (old0 != nullptr) Derived::retire_object(old0);
        return true;
    }
    /// CASN {ptr old->null, version v->v+1, flag false->true}: the erase
    /// claim — take the value and kill the entry in one step, so a racing
    /// write can never land in a claimed entry (store.hpp's invariant).
    template <typename T>
    static bool vclaim_mark_dead(vslot<T>& s, std::uint64_t ver, T* old0, flag& dead) {
        typename Engine::casn_op ops[3] = {
            {&s.ptr_cell(), dcas::encode_ptr(old0), dcas::encode_ptr(static_cast<T*>(nullptr))},
            {&s.version_cell(), dcas::encode_count(ver), dcas::encode_count(ver + 1)},
            {&dead.cell(), flag::encode(false), flag::encode(true)},
        };
        if (!Engine::casn(ops, 3)) return false;
        if (old0 != nullptr) Derived::retire_object(old0);
        return true;
    }

  protected:
    /// The validate loop shared by the ebr/leaky versioned reads (and hp's,
    /// which adds an announce between the reads): version, pointer,
    /// version — equal versions bracket a consistent pair.
    template <typename T>
    static T* vread(vslot<T>& s, std::uint64_t& ver) {
        for (;;) {
            const std::uint64_t v = dcas::decode_count(Engine::read(s.version_cell()));
            const std::uint64_t raw = Engine::read(s.ptr_cell());
            if (dcas::decode_count(Engine::read(s.version_cell())) != v) continue;
            ver = v;
            return dcas::decode_ptr<T>(raw);
        }
    }
};

/// Epoch-based reclamation.
template <typename Engine = dcas::mcas_engine>
class ebr : public manual_policy<Engine, ebr<Engine>> {
    using base = manual_policy<Engine, ebr<Engine>>;

  public:
    static constexpr const char* name() noexcept { return "ebr"; }
    static constexpr bool has_lazy_traverse = true;

    template <typename T>
    static void retire_object(T* p) {
        reclaim::epoch_domain::global().retire(p);
    }

    class guard {
      public:
        explicit guard(ebr&) noexcept {}
        void step() noexcept {}
        template <typename Node>
        Node* protect(std::size_t, typename base::template link<Node>& src) noexcept {
            return base::peek(src);
        }
        template <typename Node>
        Node* traverse(std::size_t, typename base::template link<Node>& src) noexcept {
            return base::peek(src);
        }
        template <typename Node>
        void protect_new(std::size_t, Node*) noexcept {}
        bool upgrade(std::size_t) noexcept { return true; }
        void advance(std::size_t, std::size_t) noexcept {}
        void clear(std::size_t) noexcept {}
        template <typename T>
        T* vprotect(std::size_t, typename base::template vslot<T>& s, std::uint64_t& ver) {
            return base::template vread<T>(s, ver);
        }
        template <typename T>
        T* vtraverse(std::size_t i, typename base::template vslot<T>& s, std::uint64_t& ver) {
            return vprotect<T>(i, s, ver);
        }

      private:
        reclaim::epoch_domain::guard pin_{reclaim::epoch_domain::global()};
    };

    std::uint64_t pending() const noexcept { return reclaim::epoch_domain::global().pending(); }
    std::uint64_t drain(int rounds) { return detail::drain_epoch_domain(rounds); }
};

/// Hazard pointers. has_lazy_traverse is false: a hazard protects exactly
/// the announced node, so traversals must not walk through logically
/// deleted nodes (a dead node's successor may already be freed) — cores
/// route every read through the strong, unlink-helping paths instead.
template <typename Engine = dcas::mcas_engine>
class hp : public manual_policy<Engine, hp<Engine>> {
    using base = manual_policy<Engine, hp<Engine>>;

  public:
    static constexpr const char* name() noexcept { return "hp"; }
    static constexpr bool has_lazy_traverse = false;

    template <typename T>
    static void retire_object(T* p) {
        reclaim::hazard_domain::global().retire(p);
    }

    class guard {
      public:
        explicit guard(hp&) noexcept {}
        void step() noexcept {}

        /// Announce/validate: after the re-read confirms the source still
        /// points at p, p was linked at announce time, so its retirer's
        /// scan must see our hazard.
        template <typename Node>
        Node* protect(std::size_t i, typename base::template link<Node>& src) {
            auto& h = slot(i);
            for (;;) {
                Node* p = dcas::decode_ptr<Node>(Engine::read(src.cell()));
                h.announce(p);
                if (dcas::decode_ptr<Node>(Engine::read(src.cell())) == p) {
                    cur_[i] = p;
                    return p;
                }
            }
        }
        template <typename Node>
        Node* traverse(std::size_t i, typename base::template link<Node>& src) {
            return protect<Node>(i, src);
        }
        template <typename Node>
        void protect_new(std::size_t i, Node* fresh) {
            // An unpublished node needs no validation — nobody can retire
            // it before the publishing CAS we have not issued yet.
            slot(i).announce(fresh);
            cur_[i] = fresh;
        }
        bool upgrade(std::size_t) noexcept { return true; }
        void advance(std::size_t dst, std::size_t src) {
            // dst takes over before src lets go, so the node is never
            // unprotected in between.
            cur_[dst] = cur_[src];
            slot(dst).announce(cur_[dst]);
            slot(src).clear();
            cur_[src] = nullptr;
        }
        void clear(std::size_t i) {
            if (h_[i]) h_[i]->clear();
            cur_[i] = nullptr;
        }

        template <typename T>
        T* vprotect(std::size_t i, typename base::template vslot<T>& s, std::uint64_t& ver) {
            auto& h = slot(i);
            for (;;) {
                const std::uint64_t v = dcas::decode_count(Engine::read(s.version_cell()));
                const std::uint64_t raw = Engine::read(s.ptr_cell());
                T* p = dcas::decode_ptr<T>(raw);
                h.announce(p);
                // Pointer unchanged after the announce => p was installed
                // at announce time => its displacer's scan sees the hazard.
                if (Engine::read(s.ptr_cell()) != raw) continue;
                if (dcas::decode_count(Engine::read(s.version_cell())) != v) continue;
                cur_[i] = p;
                ver = v;
                return p;
            }
        }
        template <typename T>
        T* vtraverse(std::size_t i, typename base::template vslot<T>& s, std::uint64_t& ver) {
            return vprotect<T>(i, s, ver);
        }

      private:
        /// Hazard slots are claimed lazily, so a guard that only ever uses
        /// two slots (stack/queue ops) coexists with the thread's other
        /// needs within hazard_domain::slots_per_thread.
        reclaim::hazard_domain::hp& slot(std::size_t i) {
            if (!h_[i]) h_[i].emplace(reclaim::hazard_domain::global());
            return *h_[i];
        }
        std::optional<reclaim::hazard_domain::hp> h_[base::guard_slots];
        const void* cur_[base::guard_slots] = {};
    };

    std::uint64_t pending() const noexcept { return reclaim::hazard_domain::global().pending(); }
    std::uint64_t drain(int rounds) {
        reclaim::hazard_domain::global().drain_all();
        detail::drain_epoch_domain(rounds);  // engine descriptors
        return reclaim::hazard_domain::global().pending();
    }
};

/// Never free. Popped/unlinked nodes leak by definition (the containers'
/// destructors still free whatever is LINKED at teardown, so a quiescent
/// structure's residue is exactly the churned nodes).
template <typename Engine = dcas::mcas_engine>
class leaky : public manual_policy<Engine, leaky<Engine>> {
    using base = manual_policy<Engine, leaky<Engine>>;

  public:
    static constexpr const char* name() noexcept { return "leaky"; }
    static constexpr bool has_lazy_traverse = true;

    template <typename T>
    static void retire_object(T*) noexcept {}  // leak, by definition

    class guard {
      public:
        explicit guard(leaky&) noexcept {}
        void step() noexcept {}
        template <typename Node>
        Node* protect(std::size_t, typename base::template link<Node>& src) noexcept {
            return base::peek(src);
        }
        template <typename Node>
        Node* traverse(std::size_t, typename base::template link<Node>& src) noexcept {
            return base::peek(src);
        }
        template <typename Node>
        void protect_new(std::size_t, Node*) noexcept {}
        bool upgrade(std::size_t) noexcept { return true; }
        void advance(std::size_t, std::size_t) noexcept {}
        void clear(std::size_t) noexcept {}
        template <typename T>
        T* vprotect(std::size_t, typename base::template vslot<T>& s, std::uint64_t& ver) {
            return base::template vread<T>(s, ver);
        }
        template <typename T>
        T* vtraverse(std::size_t i, typename base::template vslot<T>& s, std::uint64_t& ver) {
            return vprotect<T>(i, s, ver);
        }
    };

    std::uint64_t pending() const noexcept { return 0; }
    std::uint64_t drain(int rounds) {
        detail::drain_epoch_domain(rounds);  // engine descriptors only
        return 0;
    }
};

}  // namespace lfrc::smr
