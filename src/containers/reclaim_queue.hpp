// Michael & Scott queue under manual reclamation — queue_core instantiated
// with an smr policy (smr::leaky / smr::ebr / smr::hp). Counterpart of
// reclaim_stack.hpp; E5 benchmarks these against the counted-policy queue.
#pragma once

#include "containers/queue_core.hpp"
#include "smr/manual.hpp"

namespace lfrc::containers {

template <typename V, lfrc::smr::policy P>
using reclaim_queue = queue_core<V, P>;

}  // namespace lfrc::containers
