// Michael & Scott queue over plain atomics, parameterized by reclamation
// policy (leaky / EBR / HP). Follows Michael's hazard-pointer treatment of
// the algorithm (validate after protecting); with EBR/leaky the validations
// are harmless re-reads. E5 benchmarks these against the LFRC version.
#pragma once

#include <atomic>
#include <optional>
#include <utility>

#include "alloc/counted.hpp"

namespace lfrc::containers {

template <typename V, typename Policy>
class reclaim_queue {
  public:
    struct node : alloc::counted_base {
        std::atomic<node*> next{nullptr};
        V value{};
    };

    reclaim_queue() { head_ = tail_ = new node; }  // dummy

    reclaim_queue(const reclaim_queue&) = delete;
    reclaim_queue& operator=(const reclaim_queue&) = delete;

    /// Quiescent destructor.
    ~reclaim_queue() {
        node* h = head_.exchange(nullptr, std::memory_order_acquire);
        while (h != nullptr) {
            node* next = h->next.load(std::memory_order_relaxed);
            delete h;
            h = next;
        }
    }

    void enqueue(V v) {
        auto* nd = new node;
        nd->value = std::move(v);
        for (;;) {
            typename Policy::guard g;
            node* t = g.protect0(tail_);
            node* next = t->next.load(std::memory_order_acquire);
            if (t != tail_.load(std::memory_order_acquire)) continue;
            if (next == nullptr) {
                if (t->next.compare_exchange_strong(next, nd, std::memory_order_acq_rel)) {
                    tail_.compare_exchange_strong(t, nd, std::memory_order_acq_rel);
                    return;
                }
            } else {
                tail_.compare_exchange_strong(t, next, std::memory_order_acq_rel);
            }
        }
    }

    std::optional<V> dequeue() {
        for (;;) {
            typename Policy::guard g;
            node* h = g.protect0(head_);
            node* t = tail_.load(std::memory_order_acquire);
            node* next = g.protect1(h->next);
            if (h != head_.load(std::memory_order_acquire)) continue;
            if (next == nullptr) return std::nullopt;
            if (h == t) {
                tail_.compare_exchange_strong(t, next, std::memory_order_acq_rel);
                continue;
            }
            V v = next->value;
            if (head_.compare_exchange_strong(h, next, std::memory_order_acq_rel)) {
                Policy::template retire<node>(h);
                return v;
            }
        }
    }

    bool empty() const {
        typename Policy::guard g;
        node* h = g.protect0(head_);
        return h->next.load(std::memory_order_acquire) == nullptr;
    }

  private:
    std::atomic<node*> head_;
    std::atomic<node*> tail_;
};

}  // namespace lfrc::containers
