// Generic Michael & Scott queue over any lfrc::smr policy.
//
// Replaces the former ms_queue (counted domain) and reclaim_queue
// (ebr/hp/leaky) families. The dummy-node M&S shape is unchanged; the
// policy supplies protection (head/tail/next reads) and reclamation
// (dequeued dummies).
#pragma once

#include <concepts>
#include <cstddef>
#include <optional>
#include <utility>

#include "smr/policy.hpp"

namespace lfrc::containers {

template <typename V, lfrc::smr::policy P>
class queue_core {
  public:
    struct node : P::template node_base<node> {
        node() = default;
        explicit node(V v) : value(std::move(v)) {}

        typename P::template link<node> next;
        V value{};

        static constexpr std::size_t smr_link_count = 1;
        template <typename F>
        void smr_children(F&& f) {
            f(next);
        }
    };
    static_assert(lfrc::smr::detail::children_cover_all_links_v<node>,
                  "queue node must declare smr_link_count and a visitable "
                  "smr_children enumeration");

    queue_core()
        requires std::default_initializable<P>
        : queue_core(P{}) {}
    explicit queue_core(P policy) : policy_(std::move(policy)) {
        typename P::thread_scope scope(policy_);  // ctor allocates (gc)
        auto d = policy_.template make_owner<node>();
        policy_.init_link(head_, d.get());
        policy_.init_link(tail_, d.get());
        policy_.publish_ok(d);
        policy_.register_root(head_);
        policy_.register_root(tail_);
    }

    queue_core(const queue_core&) = delete;
    queue_core& operator=(const queue_core&) = delete;

    ~queue_core() {
        // Drop tail's claim without deleting (head's chain still reaches the
        // node tail points at), then tear down the chain once.
        policy_.init_link(tail_, static_cast<node*>(nullptr));
        policy_.reset_chain(head_);
    }

    void enqueue(V v) {
        auto nd = policy_.template make_owner<node>(std::move(v));
        typename P::guard g(policy_);
        for (;;) {
            g.step();
            node* t = g.protect(0, tail_);
            node* next = g.protect(1, t->next);
            if (t != policy_.peek(tail_)) continue;  // tail moved under us
            if (next == nullptr) {
                // nd needs no hazard here: until the link CAS succeeds the
                // owner keeps it alive, and afterwards it is reachable.
                if (policy_.cas_link(t->next, static_cast<node*>(nullptr), nd.get())) {
                    policy_.cas_link(tail_, t, nd.get());  // swing; ok to lose
                    policy_.publish_ok(nd);
                    return;
                }
            } else {
                policy_.cas_link(tail_, t, next);  // help a lagging tail
            }
        }
    }

    std::optional<V> dequeue() {
        typename P::guard g(policy_);
        for (;;) {
            g.step();
            node* h = g.protect(0, head_);
            node* t = policy_.peek(tail_);
            node* next = g.protect(1, h->next);
            if (h != policy_.peek(head_)) continue;
            if (next == nullptr) return std::nullopt;  // empty (dummy only)
            if (h == t) {
                policy_.cas_link(tail_, t, next);  // tail lagging behind head
                continue;
            }
            // Copy before the CAS: once head swings, `next` is the new dummy
            // and a racing dequeuer may free it (manual policies) as soon as
            // our slot protection is the only thing keeping it.
            V out = next->value;
            if (policy_.cas_link(head_, h, next)) {
                policy_.retire_unlinked(h);
                return out;
            }
        }
    }

    bool empty() noexcept {
        typename P::guard g(policy_);
        g.step();
        node* h = g.protect(0, head_);
        return policy_.peek(h->next) == nullptr;
    }

    P& policy() noexcept { return policy_; }

  private:
    P policy_;
    typename P::template link<node> head_;
    typename P::template link<node> tail_;
};

}  // namespace lfrc::containers
