// Fixed-capacity hash set over LFRC list buckets — hash_set_core
// instantiated with the borrowed policy.
//
// A classic composition: hashing fans keys out over independent list_core
// buckets, so contention and traversal lengths shrink by the bucket count
// while every bucket keeps the DCAS-deletion protocol and its
// LFRC-compliance. Bucket count is fixed at construction (lock-free
// resizing is its own research problem and out of the paper's scope —
// documented limitation).
//
// contains()/size() inherit the buckets' epoch-borrowed read path: a
// lookup pays one epoch pin and zero refcount traffic regardless of
// bucket chain length.
#pragma once

#include <cstddef>
#include <functional>

#include "containers/hash_set_core.hpp"
#include "smr/counted.hpp"

namespace lfrc::containers {

template <typename Domain, typename Key, typename Hash = std::hash<Key>>
class lfrc_hash_set : public hash_set_core<smr::borrowed<Domain>, Key, Hash> {
  public:
    explicit lfrc_hash_set(std::size_t bucket_count = 64)
        : hash_set_core<smr::borrowed<Domain>, Key, Hash>(bucket_count) {}
};

}  // namespace lfrc::containers
