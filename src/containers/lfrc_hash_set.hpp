// Fixed-capacity hash set over LFRC list buckets.
//
// A classic composition: hashing fans keys out over independent
// lfrc_list_set buckets, so contention and traversal lengths shrink by the
// bucket count while every bucket keeps the DCAS-deletion protocol and its
// LFRC-compliance. Bucket count is fixed at construction (lock-free
// resizing is its own research problem and out of the paper's scope —
// documented limitation).
//
// contains()/size() inherit the buckets' epoch-borrowed read path: a
// lookup pays one epoch pin and zero refcount traffic regardless of
// bucket chain length.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "containers/lfrc_list.hpp"
#include "util/hash.hpp"

namespace lfrc::containers {

template <typename Domain, typename Key, typename Hash = std::hash<Key>>
class lfrc_hash_set {
  public:
    explicit lfrc_hash_set(std::size_t bucket_count = 64) {
        buckets_.reserve(bucket_count);
        for (std::size_t i = 0; i < bucket_count; ++i) {
            buckets_.push_back(std::make_unique<bucket_t>());
        }
    }

    lfrc_hash_set(const lfrc_hash_set&) = delete;
    lfrc_hash_set& operator=(const lfrc_hash_set&) = delete;

    bool insert(const Key& key) { return bucket_for(key).insert(key); }
    bool erase(const Key& key) { return bucket_for(key).erase(key); }
    bool contains(const Key& key) { return bucket_for(key).contains(key); }

    /// Exact only at quiescence.
    std::size_t size() {
        std::size_t n = 0;
        for (auto& b : buckets_) n += b->size();
        return n;
    }

    std::size_t bucket_count() const noexcept { return buckets_.size(); }

  private:
    using bucket_t = lfrc_list_set<Domain, Key>;

    bucket_t& bucket_for(const Key& key) {
        // Mix the hash so sequential integer keys still spread.
        return *buckets_[util::mix64(hasher_(key)) % buckets_.size()];
    }

    Hash hasher_;
    std::vector<std::unique_ptr<bucket_t>> buckets_;
};

}  // namespace lfrc::containers
