// GC-dependent Treiber stack and Michael-Scott queue over the toy
// stop-the-world collector — the §3 "before" forms of the containers whose
// LFRC "after" forms live in treiber_stack.hpp / ms_queue.hpp.
//
// These are the implementations a designer writes when a garbage collector
// may be assumed: plain pointers, no counts, no retire calls — popped nodes
// simply become unreachable and the collector finds them. Note what the GC
// buys: the classic Treiber ABA (pop's CAS succeeding on a recycled head)
// cannot happen because a node referenced from any thread's shadow stack is
// never collected, hence never recycled.
//
// Contract (same as snark_deque_gc): callers are attached to the heap, poll
// safepoints via these operations' retry loops, and all shared cells hold
// clean values when the world is stopped. Root providers registered with
// the heap are not deregistrable, so a container must outlive every
// collection on its heap (destroy heap and container together).
#pragma once

#include <atomic>
#include <optional>
#include <utility>

#include "gc/heap.hpp"

namespace lfrc::containers {

template <typename V>
class gc_stack {
  public:
    struct node {
        std::atomic<node*> next{nullptr};
        V value{};

        void gc_trace(gc::marker& m) const {
            m.mark_ptr(next.load(std::memory_order_relaxed));
        }
    };

    explicit gc_stack(gc::heap& h) : heap_(h) {
        heap_.add_root([this](gc::marker& m) {
            m.mark_ptr(head_.load(std::memory_order_relaxed));
        });
    }

    gc_stack(const gc_stack&) = delete;
    gc_stack& operator=(const gc_stack&) = delete;

    void push(V v) {
        gc::local<node> nd(heap_, heap_.template allocate<node>());
        nd->value = std::move(v);
        node* h = head_.load(std::memory_order_acquire);
        do {
            heap_.safepoint();
            nd->next.store(h, std::memory_order_relaxed);
        } while (!head_.compare_exchange_weak(h, nd.get(), std::memory_order_acq_rel));
    }

    std::optional<V> pop() {
        for (;;) {
            heap_.safepoint();
            gc::local<node> h(heap_, head_.load(std::memory_order_acquire));
            if (!h) return std::nullopt;
            node* next = h->next.load(std::memory_order_acquire);
            node* expected = h.get();
            if (head_.compare_exchange_strong(expected, next, std::memory_order_acq_rel)) {
                return h->value;  // h simply becomes garbage
            }
        }
    }

    bool empty() const { return head_.load(std::memory_order_acquire) == nullptr; }

  private:
    gc::heap& heap_;
    std::atomic<node*> head_{nullptr};
};

template <typename V>
class gc_queue {
  public:
    struct node {
        std::atomic<node*> next{nullptr};
        V value{};

        void gc_trace(gc::marker& m) const {
            m.mark_ptr(next.load(std::memory_order_relaxed));
        }
    };

    explicit gc_queue(gc::heap& h) : heap_(h) {
        gc::heap::attach_scope attach(heap_);
        node* dummy = heap_.template allocate<node>();
        head_.store(dummy);
        tail_.store(dummy);
        heap_.add_root([this](gc::marker& m) {
            m.mark_ptr(head_.load(std::memory_order_relaxed));
            m.mark_ptr(tail_.load(std::memory_order_relaxed));
        });
    }

    gc_queue(const gc_queue&) = delete;
    gc_queue& operator=(const gc_queue&) = delete;

    void enqueue(V v) {
        gc::local<node> nd(heap_, heap_.template allocate<node>());
        nd->value = std::move(v);
        gc::local<node> t(heap_);
        for (;;) {
            heap_.safepoint();
            t = tail_.load(std::memory_order_acquire);
            node* next = t->next.load(std::memory_order_acquire);
            if (next == nullptr) {
                if (t->next.compare_exchange_strong(next, nd.get(),
                                                    std::memory_order_acq_rel)) {
                    node* expected = t.get();
                    tail_.compare_exchange_strong(expected, nd.get(),
                                                  std::memory_order_acq_rel);
                    return;
                }
            } else {
                node* expected = t.get();
                tail_.compare_exchange_strong(expected, next, std::memory_order_acq_rel);
            }
        }
    }

    std::optional<V> dequeue() {
        gc::local<node> h(heap_);
        gc::local<node> next(heap_);
        for (;;) {
            heap_.safepoint();
            h = head_.load(std::memory_order_acquire);
            node* t = tail_.load(std::memory_order_acquire);
            next = h->next.load(std::memory_order_acquire);
            if (!next) return std::nullopt;
            if (h.get() == t) {
                node* expected = t;
                tail_.compare_exchange_strong(expected, next.get(),
                                              std::memory_order_acq_rel);
                continue;
            }
            V v = next->value;
            node* expected = h.get();
            if (head_.compare_exchange_strong(expected, next.get(),
                                              std::memory_order_acq_rel)) {
                return v;  // old dummy becomes garbage
            }
        }
    }

    bool empty() {
        gc::local<node> h(heap_, head_.load(std::memory_order_acquire));
        return h->next.load(std::memory_order_acquire) == nullptr;
    }

  private:
    gc::heap& heap_;
    std::atomic<node*> head_{nullptr};
    std::atomic<node*> tail_{nullptr};
};

}  // namespace lfrc::containers
