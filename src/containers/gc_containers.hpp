// GC-dependent Treiber stack and Michael-Scott queue over the toy
// stop-the-world collector — the §3 "before" forms of the containers whose
// LFRC "after" forms live in treiber_stack.hpp / ms_queue.hpp. Both are the
// generic cores instantiated with the smr::gc_heap policy; "assume a GC"
// is now just a template argument.
//
// Note what the GC buys: the classic Treiber ABA (pop's CAS succeeding on a
// recycled head) cannot happen because a node referenced from any thread's
// shadow stack (a guard slot) is never collected, hence never recycled.
//
// Contract (same as snark_deque_gc): callers are attached to the heap, poll
// safepoints via these operations' retry loops, and all shared cells hold
// clean values when the world is stopped. Root providers registered with
// the heap are not deregistrable, so a container must outlive every
// collection on its heap (destroy heap and container together).
#pragma once

#include "containers/queue_core.hpp"
#include "containers/stack_core.hpp"
#include "smr/gc_heap.hpp"

namespace lfrc::containers {

template <typename V>
class gc_stack : public stack_core<V, smr::gc_heap> {
  public:
    explicit gc_stack(gc::heap& h) : stack_core<V, smr::gc_heap>(smr::gc_heap(h)) {}
};

template <typename V>
class gc_queue : public queue_core<V, smr::gc_heap> {
  public:
    explicit gc_queue(gc::heap& h) : queue_core<V, smr::gc_heap>(smr::gc_heap(h)) {}
};

}  // namespace lfrc::containers
