// Michael & Scott FIFO queue [13], LFRC-transformed.
//
// The original (PODC 1996) is GC-dependent in exactly the sense of the
// paper: in a garbage-collected environment its tag-free form is correct
// because nodes cannot be reused while referenced. The LFRC rewrite below
// replaces every pointer access per Table 1 and nothing else.
//
// Cycle-free garbage: a dequeued node's `next` keeps pointing forward (to a
// newer node), so garbage forms forward chains, never cycles — a slow
// thread holding an old head pins the chain up to the current head until it
// releases, after which everything collapses. §2.1's criterion holds
// naturally.
#pragma once

#include <optional>
#include <utility>

#include "lfrc/domain.hpp"

namespace lfrc::containers {

template <typename Domain, typename V>
class ms_queue {
  public:
    struct node : Domain::object {
        typename Domain::template ptr_field<node> next;
        V value{};

        void lfrc_visit_children(typename Domain::child_visitor& visitor) noexcept override {
            visitor.on_child(next.exclusive_get());
        }
    };

    using local = typename Domain::template local_ptr<node>;

    ms_queue() {
        // One dummy node; head == tail == dummy represents empty.
        local dummy = Domain::template make<node>();
        Domain::store(head_, dummy);
        Domain::store(tail_, dummy);
    }

    ms_queue(const ms_queue&) = delete;
    ms_queue& operator=(const ms_queue&) = delete;

    /// Not concurrency-safe; call at quiescence.
    ~ms_queue() {
        Domain::store(head_, static_cast<node*>(nullptr));
        Domain::store(tail_, static_cast<node*>(nullptr));
    }

    void enqueue(V v) {
        local nd = Domain::template make<node>();
        nd->value = std::move(v);
        local t, next;
        for (;;) {
            Domain::load(tail_, t);
            Domain::load(t->next, next);
            if (!next) {
                if (Domain::cas(t->next, static_cast<node*>(nullptr), nd.get())) {
                    // Swing tail; failure means someone else already did.
                    Domain::cas(tail_, t.get(), nd.get());
                    return;
                }
            } else {
                // Tail lagging: help it forward.
                Domain::cas(tail_, t.get(), next.get());
            }
        }
    }

    std::optional<V> dequeue() {
        local h, t, next;
        for (;;) {
            Domain::load(head_, h);
            Domain::load(tail_, t);
            Domain::load(h->next, next);
            if (h == t) {
                if (!next) return std::nullopt;  // empty
                Domain::cas(tail_, t.get(), next.get());  // help lagging tail
            } else {
                // Read the value before the CAS (next stays alive through
                // our counted reference either way).
                V v = next->value;
                if (Domain::cas(head_, h.get(), next.get())) {
                    return v;
                }
            }
        }
    }

    bool empty() {
        local h = Domain::load_get(head_);
        local next = Domain::load_get(h->next);
        return !next;
    }

  private:
    typename Domain::template ptr_field<node> head_;
    typename Domain::template ptr_field<node> tail_;
};

}  // namespace lfrc::containers
