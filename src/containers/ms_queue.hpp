// Michael & Scott FIFO queue [13], LFRC-transformed.
//
// The original (PODC 1996) is GC-dependent in exactly the sense of the
// paper: in a garbage-collected environment its tag-free form is correct
// because nodes cannot be reused while referenced. Here it is the generic
// queue_core instantiated with the counted policy; the Table-1 pointer
// operation replacements all live in smr::counted.
//
// Cycle-free garbage: a dequeued node's `next` keeps pointing forward (to a
// newer node), so garbage forms forward chains, never cycles — a slow
// thread holding an old head pins the chain up to the current head until it
// releases, after which everything collapses. §2.1's criterion holds
// naturally.
#pragma once

#include "containers/queue_core.hpp"
#include "smr/counted.hpp"

namespace lfrc::containers {

template <typename Domain, typename V>
using ms_queue = queue_core<V, smr::counted<Domain>>;

}  // namespace lfrc::containers
