// Generic Treiber stack over any lfrc::smr policy.
//
// One traversal/CAS body serves all six reclamation schemes; the policy
// decides what "safe to dereference" and "safe to free" mean. This replaces
// the former treiber_stack (counted domain) and reclaim_stack (ebr/hp/leaky)
// families, which duplicated the same push/pop loops per scheme.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>

#include "smr/policy.hpp"

namespace lfrc::containers {

template <typename V, lfrc::smr::policy P>
class stack_core {
  public:
    struct node : P::template node_base<node> {
        node() = default;
        explicit node(V v) : value(std::move(v)) {}

        typename P::template link<node> next;
        V value{};

        // Child enumeration for tracing policies (counted unravel, gc mark).
        // smr_link_count is its compile-time mirror: lfrc_lint checks it
        // against the declared link/vslot members, the trait
        // smr::detail::children_cover_all_links_v checks it in-template,
        // and debug/sim builds assert the enumeration visits exactly this
        // many fields.
        static constexpr std::size_t smr_link_count = 1;
        template <typename F>
        void smr_children(F&& f) {
            f(next);
        }
    };
    static_assert(lfrc::smr::detail::children_cover_all_links_v<node>,
                  "stack node must declare smr_link_count and a visitable "
                  "smr_children enumeration");

    stack_core()
        requires std::default_initializable<P>
        : stack_core(P{}) {}
    explicit stack_core(P policy) : policy_(std::move(policy)) {
        policy_.register_root(head_);
    }

    stack_core(const stack_core&) = delete;
    stack_core& operator=(const stack_core&) = delete;

    ~stack_core() { policy_.reset_chain(head_); }

    void push(V v) {
        auto nd = policy_.template make_owner<node>(std::move(v));
        typename P::guard g(policy_);
        for (;;) {
            g.step();
            // Strong-protect the head: init_link on a counted policy adds a
            // reference to the pointee, which must not be freed meanwhile.
            node* h = g.protect(0, head_);
            policy_.init_link(nd->next, h);
            if (policy_.cas_link(head_, h, nd.get())) {
                policy_.publish_ok(nd);
                return;
            }
        }
    }

    std::optional<V> pop() {
        typename P::guard g(policy_);
        for (;;) {
            g.step();
            node* h = g.protect(0, head_);
            if (h == nullptr) return std::nullopt;
            node* next = g.protect(1, h->next);
            if (policy_.cas_link(head_, h, next)) {
                V out = std::move(h->value);
                policy_.retire_unlinked(h);
                return out;
            }
        }
    }

    bool empty() noexcept { return policy_.peek(head_) == nullptr; }

    P& policy() noexcept { return policy_; }

  private:
    P policy_;
    typename P::template link<node> head_;
};

}  // namespace lfrc::containers
