// Generic hash set: fixed bucket array of list_core chains, over any
// lfrc::smr policy. Replaces the old lfrc_hash_set body (which carried its
// own bucket-walk copies of the list logic).
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "containers/list_core.hpp"
#include "smr/policy.hpp"
#include "util/hash.hpp"

namespace lfrc::containers {

template <lfrc::smr::policy P, typename Key, typename Hash = std::hash<Key>>
class hash_set_core {
  public:
    using node_type = set_node<P, Key>;
    using bucket_type = list_core<P, node_type>;

    explicit hash_set_core(std::size_t buckets, P policy = P{}, Hash hasher = Hash{})
        : policy_(std::move(policy)), hasher_(std::move(hasher)) {
        if (buckets == 0) buckets = 1;
        buckets_.reserve(buckets);
        for (std::size_t i = 0; i < buckets; ++i) {
            // Each bucket shares this set's policy instance (policies are
            // cheap handles over global/heap state).
            buckets_.push_back(std::make_unique<bucket_type>(policy_));
        }
    }

    hash_set_core(const hash_set_core&) = delete;
    hash_set_core& operator=(const hash_set_core&) = delete;

    bool insert(const Key& key) {
        bucket_type& b = bucket_for(key);
        typename P::guard g(policy_);
        return b.insert(g, key);
    }

    bool erase(const Key& key) {
        bucket_type& b = bucket_for(key);
        typename P::guard g(policy_);
        return b.erase(g, key);
    }

    bool contains(const Key& key) {
        bucket_type& b = bucket_for(key);
        typename P::guard g(policy_);
        return b.contains(g, key);
    }

    std::size_t size() {
        std::size_t n = 0;
        for (auto& b : buckets_) {
            typename P::guard g(policy_);
            n += b->size(g);
        }
        return n;
    }

    std::size_t bucket_count() const noexcept { return buckets_.size(); }

    P& policy() noexcept { return policy_; }

  private:
    bucket_type& bucket_for(const Key& key) {
        return *buckets_[util::mixed_index(hasher_(key), buckets_.size())];
    }

    P policy_;
    Hash hasher_;
    std::vector<std::unique_ptr<bucket_type>> buckets_;
};

}  // namespace lfrc::containers
