// Generic sorted linked list (Harris-style logical delete + the paper's
// DCAS unlink) over any lfrc::smr policy.
//
// This is the one traversal body behind lfrc_list_set, lfrc_hash_set and
// the kv store's buckets. The shape:
//
//   * an immortal sentinel heads the chain (held by the registered head_
//     link for the container's whole lifetime);
//   * erase marks `dead` first (flag_cas false->true, the logical delete),
//     then unlinks with dcas_link_flag anchored on the PREDECESSOR's dead
//     flag staying false — so a node is unlinked (and retired) exactly
//     once, and never from an already-unlinked predecessor;
//   * a dead node's `next` is never written again, so lazy traversals can
//     read through it on policies where that is memory-safe.
//
// Guard slot protocol (all three slots of one caller-owned guard):
//   slot 0 = pred, slot 1 = curr, slot 2 = succ / fresh node.
//
// hp's frozen-pointer trap, handled here: with hazard pointers, a dead
// node's frozen `next` revalidates forever, so a successor read from a dead
// node may only be trusted once OUR unlink DCAS succeeds (success proves
// the dead node was linked until that instant, and nothing past a linked
// node can have been retired). On DCAS failure the successor is never
// dereferenced — the walk restarts. Likewise a walk only advances past a
// node after re-checking the predecessor is still live.
#pragma once

#include <concepts>
#include <cstddef>
#include <utility>

#include "smr/policy.hpp"

namespace lfrc::containers {

/// Node for set-like users of list_core (lfrc_list_set, hash_set_core).
/// kv_store supplies its own entry type with the same field names.
template <lfrc::smr::policy P, typename Key>
struct set_node : P::template node_base<set_node<P, Key>> {
    set_node() = default;
    explicit set_node(Key k) : key(std::move(k)) {}

    typename P::template link<set_node> next;
    typename P::flag dead;
    Key key{};

    static constexpr std::size_t smr_link_count = 1;
    template <typename F>
    void smr_children(F&& f) {
        f(next);
    }
};

template <lfrc::smr::policy P, typename Node>
class list_core {
  public:
    using node_type = Node;
    static_assert(lfrc::smr::detail::children_cover_all_links_v<Node>,
                  "list node must declare smr_link_count and a visitable "
                  "smr_children enumeration");

    struct position {
        Node* pred;  // strongly protected in slot 0 (sentinel if null slot)
        Node* curr;  // strongly protected in slot 1; nullptr = end of chain
    };

    list_core()
        requires std::default_initializable<P>
        : list_core(P{}) {}
    explicit list_core(P policy) : policy_(std::move(policy)) {
        typename P::thread_scope scope(policy_);  // ctor allocates (gc)
        auto s = policy_.template make_owner<Node>();
        sentinel_ = s.get();
        policy_.init_link(head_, s.get());
        policy_.publish_ok(s);
        policy_.register_root(head_);
    }

    list_core(const list_core&) = delete;
    list_core& operator=(const list_core&) = delete;

    ~list_core() { policy_.reset_chain(head_); }

    /// Strong search: find the first live node with !(key(curr) < key),
    /// physically unlinking any dead node encountered. On return slot 0
    /// protects pred (or is clear when pred is the sentinel) and slot 1
    /// protects curr; both are live as of the last flag checks.
    template <typename K>
    position search(typename P::guard& g, const K& key) {
    restart:
        Node* pred = sentinel_;
        g.clear(0);
        Node* curr = g.protect(1, pred->next);
        for (;;) {
            g.step();
            if (curr == nullptr) return {pred, nullptr};
            if (policy_.flag_load(curr->dead)) {
                // Help unlink. succ comes from a dead node's frozen next:
                // only trusted after our own unlink DCAS succeeds.
                Node* succ = g.protect(2, curr->next);
                if (!policy_.dcas_link_flag(pred->next, pred->dead, curr, false, succ,
                                            false)) {
                    goto restart;
                }
                policy_.retire_unlinked(curr);
                g.advance(1, 2);
                curr = succ;
                continue;
            }
            if (!(curr->key < key)) return {pred, curr};
            g.advance(0, 1);
            pred = curr;
            curr = g.protect(1, pred->next);
            // pred live here => it was linked when we read its next, so
            // curr was reachable at that instant (the hp soundness step).
            if (policy_.flag_load(pred->dead)) goto restart;
        }
    }

    /// Read-only lookup. On lazy policies this walks straight through dead
    /// nodes with traverse-grade slots (no helping, no restarts — the
    /// paper's borrowed fast path); the result in slot 1 is traverse-grade
    /// and callers that need a write license must g.upgrade(1). On hp the
    /// strong search runs instead and the result is already strong.
    template <typename K>
    Node* find(typename P::guard& g, const K& key) {
        if constexpr (P::has_lazy_traverse) {
            g.step();
            Node* curr = g.traverse(1, sentinel_->next);
            while (curr != nullptr && curr->key < key) {
                g.step();
                Node* next = g.traverse(2, curr->next);
                g.advance(1, 2);
                curr = next;
            }
            if (curr == nullptr || !(curr->key == key) || policy_.flag_load(curr->dead)) {
                return nullptr;
            }
            return curr;
        } else {
            position pos = search(g, key);
            return (pos.curr != nullptr && pos.curr->key == key) ? pos.curr : nullptr;
        }
    }

    /// Find-or-insert. `make` is called (at most once per retry that needs
    /// it) to produce an owner for the new node; its key must equal `key`.
    /// Returns {node, inserted}; the node is strongly protected (slot 1).
    template <typename K, typename Make>
    std::pair<Node*, bool> get_or_insert(typename P::guard& g, const K& key, Make&& make) {
        for (;;) {
            position pos = search(g, key);
            if (pos.curr != nullptr && pos.curr->key == key) return {pos.curr, false};
            auto nd = make();
            policy_.init_link(nd->next, pos.curr);
            g.protect_new(2, nd.get());  // announce BEFORE the publishing CAS
            Node* raw = nd.get();
            if (policy_.dcas_link_flag(pos.pred->next, pos.pred->dead, pos.curr, false,
                                       raw, false)) {
                policy_.publish_ok(nd);
                g.advance(1, 2);
                return {raw, true};
            }
            g.clear(2);  // owner frees the unpublished node
        }
    }

    template <typename K>
    bool insert(typename P::guard& g, const K& key) {
        auto [node, inserted] =
            get_or_insert(g, key, [&] { return policy_.template make_owner<Node>(key); });
        (void)node;
        return inserted;
    }

    /// Logical-then-physical erase. The flag_cas is the linearization
    /// point; whoever wins it owns the (exactly-once) unlink+retire, though
    /// any searcher may complete the physical step on our behalf.
    template <typename K>
    bool erase(typename P::guard& g, const K& key) {
        position pos = search(g, key);
        if (pos.curr == nullptr || !(pos.curr->key == key)) return false;
        if (!policy_.flag_cas(pos.curr->dead, false, true)) return false;  // lost the race
        Node* succ = g.protect(2, pos.curr->next);
        if (policy_.dcas_link_flag(pos.pred->next, pos.pred->dead, pos.curr, false, succ,
                                   false)) {
            policy_.retire_unlinked(pos.curr);
        } else {
            g.clear(2);            // frozen-next successor: never dereferenced
            (void)search(g, key);  // help whoever moved pred finish the unlink
        }
        return true;
    }

    /// Re-run the helping search so a node known to be dead gets unlinked.
    template <typename K>
    void help_unlink(typename P::guard& g, const K& key) {
        (void)search(g, key);
    }

    template <typename K>
    bool contains(typename P::guard& g, const K& key) {
        return find(g, key) != nullptr;
    }

    /// Visit every live node. On strict policies (hp) the walk must restart
    /// when it loses its footing; on_restart() fires so aggregating callers
    /// (size) can reset their accumulator.
    template <typename F, typename R>
    void for_each(typename P::guard& g, F&& f, R&& on_restart) {
        if constexpr (P::has_lazy_traverse) {
            g.step();
            Node* curr = g.traverse(1, sentinel_->next);
            while (curr != nullptr) {
                g.step();
                if (!policy_.flag_load(curr->dead)) f(*curr);
                Node* next = g.traverse(2, curr->next);
                g.advance(1, 2);
                curr = next;
            }
        } else {
        restart:
            Node* pred = sentinel_;
            g.clear(0);
            Node* curr = g.protect(1, pred->next);
            for (;;) {
                g.step();
                if (curr == nullptr) return;
                if (policy_.flag_load(curr->dead)) {
                    Node* succ = g.protect(2, curr->next);
                    if (!policy_.dcas_link_flag(pred->next, pred->dead, curr, false, succ,
                                                false)) {
                        on_restart();
                        goto restart;
                    }
                    policy_.retire_unlinked(curr);
                    g.advance(1, 2);
                    curr = succ;
                    continue;
                }
                f(*curr);
                g.advance(0, 1);
                pred = curr;
                curr = g.protect(1, pred->next);
                if (policy_.flag_load(pred->dead)) {
                    on_restart();
                    goto restart;
                }
            }
        }
    }
    template <typename F>
    void for_each(typename P::guard& g, F&& f) {
        for_each(g, std::forward<F>(f), [] {});
    }

    std::size_t size(typename P::guard& g) {
        std::size_t n = 0;
        for_each(g, [&](Node&) { ++n; }, [&] { n = 0; });
        return n;
    }

    /// Quiescent teardown of all nodes but the sentinel.
    void clear() {
        policy_.reset_chain(sentinel_->next);
    }

    P& policy() noexcept { return policy_; }
    Node* sentinel() noexcept { return sentinel_; }

  private:
    P policy_;
    typename P::template link<Node> head_;
    Node* sentinel_ = nullptr;
};

}  // namespace lfrc::containers
