// Valois-style CAS-only reference counting over a type-stable node pool —
// the comparator the paper contrasts LFRC against (§1, §5):
//
//   "Valois [19] used this approach, and as a result was forced to maintain
//    unused nodes explicitly in a freelist, thereby preventing the space
//    consumption of a list from shrinking over time."
//
// With only single-word CAS, incrementing the count of a node you do not yet
// hold may land on a node that was already recycled. Valois's answer —
// with the Michael & Scott 1995 correction — is to *tolerate* such stale
// accesses rather than prevent them:
//
//  * nodes live in type-stable pool memory, so a stale access always hits a
//    valid node object (the pool keeps its freelist links outside the
//    payload);
//  * the count word carries a CLAIM bit; a node is handed to the freelist
//    exactly once, by whoever CASes (count==0, claim==0) -> (0, claim=1);
//  * reusing a node requires CASing (0, claim=1) -> (1, claim=0), which
//    cannot succeed while a stale increment is outstanding — the allocator
//    puts such a node back and takes another.
//
// The permanent price is the one the paper names: pool chunks are never
// returned to the system, so the footprint is monotone. Experiment E4
// measures this against LFRC's shrinking footprint.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>

#include "alloc/block_pool.hpp"

namespace lfrc::containers {

template <typename V>
class valois_stack {
  public:
    struct node {
        // bit 0: claim (node is on / headed to the freelist); bits 1..:
        // reference count. Never reset across reuses — stale increments
        // from a node's previous life must balance out on the same word.
        std::atomic<std::uint64_t> rc{0};
        std::atomic<node*> next{nullptr};
        V value{};
    };

    static constexpr std::uint64_t claim_bit = 1;
    static constexpr std::uint64_t one_ref = 2;

    valois_stack() = default;
    valois_stack(const valois_stack&) = delete;
    valois_stack& operator=(const valois_stack&) = delete;

    /// Quiescent destructor; pool chunks die with the pool member.
    ~valois_stack() {
        node* h = head_.exchange(nullptr, std::memory_order_acquire);
        while (h != nullptr) {
            node* next = h->next.load(std::memory_order_relaxed);
            pool_.deallocate_raw(h);
            h = next;
        }
    }

    void push(V v) {
        node* nd = acquire_node();
        nd->value = std::move(v);
        node* h = head_.load(std::memory_order_relaxed);
        do {
            nd->next.store(h, std::memory_order_relaxed);
        } while (!head_.compare_exchange_weak(h, nd, std::memory_order_acq_rel));
    }

    std::optional<V> pop() {
        for (;;) {
            node* h = head_.load(std::memory_order_acquire);
            if (h == nullptr) return std::nullopt;
            // Optimistic CAS-only increment ("SafeRead"): may be stale.
            h->rc.fetch_add(one_ref, std::memory_order_acq_rel);
            if (head_.load(std::memory_order_acquire) != h) {
                release(h);  // stale: back out
                continue;
            }
            // Our count pins h (claim cannot be taken while count > 0), so
            // its `next` is stable until a recycle, which cannot happen.
            node* next = h->next.load(std::memory_order_acquire);
            if (head_.compare_exchange_strong(h, next, std::memory_order_acq_rel)) {
                V v = h->value;
                release(h);  // our optimistic count
                release(h);  // the stack's count
                return v;
            }
            release(h);
        }
    }

    bool empty() const { return head_.load(std::memory_order_acquire) == nullptr; }

    /// Bytes held from the system; never decreases while the stack lives
    /// (the property E4 demonstrates).
    std::size_t footprint_bytes() const noexcept { return pool_.footprint_bytes(); }

  private:
    node* acquire_node() {
        for (;;) {
            bool fresh = false;
            void* raw = pool_.allocate_raw_ex(fresh);
            if (fresh) {
                auto* nd = ::new (raw) node;
                nd->rc.store(one_ref, std::memory_order_relaxed);  // stack's ref
                return nd;
            }
            auto* nd = static_cast<node*>(raw);
            // Reuse handshake: (count 0, claimed) -> (count 1, unclaimed).
            std::uint64_t expected = claim_bit;
            if (nd->rc.compare_exchange_strong(expected, one_ref,
                                               std::memory_order_acq_rel)) {
                nd->next.store(nullptr, std::memory_order_relaxed);
                return nd;
            }
            // A stale reader still holds a transient count on this node;
            // put it back and take another rather than spinning on it.
            pool_.deallocate_raw(raw);
        }
    }

    void release(node* n) {
        std::uint64_t cur = n->rc.load(std::memory_order_acquire);
        for (;;) {
            if (cur == one_ref) {
                // Last count and unclaimed: try to claim and free, exactly
                // once across all racers.
                if (n->rc.compare_exchange_weak(cur, claim_bit,
                                                std::memory_order_acq_rel)) {
                    pool_.deallocate_raw(n);
                    return;
                }
            } else {
                // Count > 1, or claim already set (stale pair resolving on a
                // node that is already on the freelist): plain decrement.
                if (n->rc.compare_exchange_weak(cur, cur - one_ref,
                                                std::memory_order_acq_rel)) {
                    return;
                }
            }
        }
    }

    std::atomic<node*> head_{nullptr};
    alloc::typed_pool<node> pool_;
};

}  // namespace lfrc::containers
