// Reclamation policies for the GC-dependent baseline containers.
//
// The paper's §6 surveys alternatives to LFRC; experiment E5 compares the
// LFRC containers against the same algorithms running on:
//   * leaky_policy — never free (an idealized "GC will handle it"
//     environment with the collector turned off: fastest possible, leaks);
//   * ebr_policy   — epoch-based reclamation (retire-on-unlink);
//   * hp_policy    — hazard pointers (Michael 2002).
//
// A policy provides a `guard` (RAII protection scope with two protect
// slots — enough for stack and queue traversals) and `retire(p)`.
#pragma once

#include <atomic>

#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"

namespace lfrc::containers {

struct leaky_policy {
    static constexpr const char* name() { return "leaky"; }

    class guard {
      public:
        template <typename T>
        T* protect0(const std::atomic<T*>& src) noexcept {
            return src.load(std::memory_order_acquire);
        }
        template <typename T>
        T* protect1(const std::atomic<T*>& src) noexcept {
            return src.load(std::memory_order_acquire);
        }
    };

    template <typename T>
    static void retire(T*) noexcept {}  // leak, by definition
};

struct ebr_policy {
    static constexpr const char* name() { return "ebr"; }

    class guard {
      public:
        template <typename T>
        T* protect0(const std::atomic<T*>& src) noexcept {
            return src.load(std::memory_order_acquire);
        }
        template <typename T>
        T* protect1(const std::atomic<T*>& src) noexcept {
            return src.load(std::memory_order_acquire);
        }

      private:
        reclaim::epoch_domain::guard pin_{reclaim::epoch_domain::global()};
    };

    template <typename T>
    static void retire(T* p) {
        reclaim::epoch_domain::global().retire(p);
    }
};

struct hp_policy {
    static constexpr const char* name() { return "hp"; }

    class guard {
      public:
        template <typename T>
        T* protect0(const std::atomic<T*>& src) noexcept {
            return h0_.protect(src);
        }
        template <typename T>
        T* protect1(const std::atomic<T*>& src) noexcept {
            return h1_.protect(src);
        }

      private:
        reclaim::hazard_domain::hp h0_{reclaim::hazard_domain::global()};
        reclaim::hazard_domain::hp h1_{reclaim::hazard_domain::global()};
    };

    template <typename T>
    static void retire(T* p) {
        reclaim::hazard_domain::global().retire(p);
    }
};

}  // namespace lfrc::containers
