// Treiber stack, LFRC-transformed.
//
// The paper (§2.1) claims the methodology applies to "a wide range of
// concurrent data structure implementations" beyond the Snark example; this
// and ms_queue.hpp are two of the "other candidate implementations in the
// pipeline". The GC-dependent original is the textbook Treiber stack; the
// transformation below is a pure §3 step-5 rewrite (only CAS needed — no
// DCAS outside LFRCLoad itself).
//
// Cycle-free garbage criterion: popped nodes form chains (a popped node may
// still reference a live or popped successor until destroyed) but never
// cycles, so the criterion holds with no modification — the "natural
// implementation" case of §2.1.
#pragma once

#include <optional>
#include <utility>

#include "lfrc/domain.hpp"

namespace lfrc::containers {

template <typename Domain, typename V>
class treiber_stack {
  public:
    struct node : Domain::object {
        typename Domain::template ptr_field<node> next;
        V value{};

        void lfrc_visit_children(typename Domain::child_visitor& visitor) noexcept override {
            visitor.on_child(next.exclusive_get());
        }
    };

    using local = typename Domain::template local_ptr<node>;

    treiber_stack() = default;
    treiber_stack(const treiber_stack&) = delete;
    treiber_stack& operator=(const treiber_stack&) = delete;

    /// Not concurrency-safe; call at quiescence (cf. Figure 1 lines 40..44).
    ~treiber_stack() { Domain::store(head_, static_cast<node*>(nullptr)); }

    void push(V v) {
        local nd = Domain::template make<node>();
        nd->value = std::move(v);
        local h;
        for (;;) {
            Domain::load(head_, h);
            Domain::store(nd->next, h);
            if (Domain::cas(head_, h.get(), nd.get())) return;
        }
    }

    std::optional<V> pop() {
        local h, next;
        for (;;) {
            Domain::load(head_, h);
            if (!h) return std::nullopt;
            Domain::load(h->next, next);
            // No ABA hazard: while we hold a counted reference to h it
            // cannot be freed, and a node never re-enters the stack, so
            // head_ == h implies h is still the same live top with its
            // immutable `next` (§1's motivation for counting).
            if (Domain::cas(head_, h.get(), next.get())) {
                return h->value;
            }
        }
    }

    bool empty() {
        local h = Domain::load_get(head_);
        return !h;
    }

  private:
    typename Domain::template ptr_field<node> head_;
};

}  // namespace lfrc::containers
