// Treiber stack, LFRC-transformed.
//
// The paper (§2.1) claims the methodology applies to "a wide range of
// concurrent data structure implementations" beyond the Snark example; this
// and ms_queue.hpp are two of the "other candidate implementations in the
// pipeline". The GC-dependent original is the textbook Treiber stack; here
// it is the generic stack_core instantiated with the counted policy — the
// §3 step-5 rewrite happens inside smr::counted, not in the container.
//
// Cycle-free garbage criterion: popped nodes form chains (a popped node may
// still reference a live or popped successor until destroyed) but never
// cycles, so the criterion holds with no modification — the "natural
// implementation" case of §2.1.
#pragma once

#include "containers/stack_core.hpp"
#include "smr/counted.hpp"

namespace lfrc::containers {

template <typename Domain, typename V>
using treiber_stack = stack_core<V, smr::counted<Domain>>;

}  // namespace lfrc::containers
