// Sorted singly-linked LFRC list with DCAS-based deletion — the node-generic
// core, plus the classic set built on it.
//
// Harris's classic lock-free list marks deleted nodes by stealing a bit of
// the successor pointer — exactly the pointer arithmetic LFRC compliance
// forbids (§2.1). With DCAS the mark can live in its own shared flag cell
// and be changed atomically *with* the structural pointer, which is how this
// list stays inside the allowed operation set:
//
//   logical delete : CAS the node's `dead` flag false -> true
//                    (an unmarked node is always still reachable, so the
//                    flag CAS is the linearization point of erase);
//   insert         : DCAS(pred->next: curr -> node, pred->dead: stays false)
//                    — anchoring on a live predecessor so an insert can
//                    never land after an already-deleted node;
//   physical unlink: DCAS(pred->next: curr -> curr->next, curr->dead: stays
//                    true), performed as helping during traversal. Dead
//                    nodes keep their forward pointer, so a stale unlink can
//                    transiently re-expose a dead node but never cuts off
//                    the tail; traversals skip dead nodes logically.
//
// Cycle-free garbage: unlinked nodes point forward into the list (or to
// other dead nodes), never backwards — chains, not cycles — so the §2.1
// criterion holds and LFRC reclaims everything once traversals let go.
//
// `lfrc_list_core<Domain, Node>` is the protocol with a user-supplied node
// type, so richer structures (the store's key→versioned-value entries) reuse
// the exact same deletion machinery instead of re-deriving it. Node must
// derive `Domain::object` and provide:
//
//   typename Domain::template ptr_field<Node> next;   // structural link
//   typename Domain::flag_field dead;                 // logical-delete mark
//   Key key;                                          // immutable after ctor
//
// and be default-constructible (the head sentinel). Extra payload fields are
// the node author's business; their lfrc_visit_children must report `next`
// (and any payload pointers).
//
// Read paths (contains/find_borrowed/size) use the epoch-borrowed fast path
// (Domain::load_borrowed) and pay no refcount traffic; mutating paths keep
// the counted search() with helping, because unlink DCASes must anchor on
// counted references (docs/ALGORITHMS.md §8).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "lfrc/domain.hpp"

namespace lfrc::containers {

template <typename Domain, typename Node>
class lfrc_list_core {
  public:
    using local = typename Domain::template local_ptr<Node>;
    using borrow = typename Domain::template borrow_ptr<Node>;

    lfrc_list_core() {
        // Head sentinel: key value irrelevant, never dead, never unlinked.
        Domain::store_alloc(head_, Domain::template make<Node>());
    }

    ~lfrc_list_core() { Domain::store(head_, static_cast<Node*>(nullptr)); }

    lfrc_list_core(const lfrc_list_core&) = delete;
    lfrc_list_core& operator=(const lfrc_list_core&) = delete;

    /// Find the live node with `key`, or insert a fresh one from `make_node`
    /// (a callable returning a `local` whose key equals `key`). Returns the
    /// counted node plus whether this call inserted it. The returned node
    /// was live at its linearization point; it may be concurrently erased
    /// afterwards — callers that write through it re-check `dead`.
    template <typename Key, typename Factory>
    std::pair<local, bool> get_or_insert(const Key& key, Factory&& make_node) {
        for (;;) {
            auto [pred, curr] = search(key);
            if (curr && curr->key == key) return {std::move(curr), false};
            local node = make_node();
            Domain::store(node->next, curr.get());
            if (Domain::dcas_ptr_flag(pred->next, pred->dead, curr.get(), false,
                                      node.get(), false)) {
                return {std::move(node), true};
            }
            // pred died or pred->next moved: re-search.
        }
    }

    /// Removes the live node with `key`; false if absent.
    template <typename Key>
    bool erase(const Key& key) {
        return erase_node(key, nullptr);
    }

    /// Removes the live node with `key` — but only the exact node `target`
    /// when non-null. Lets callers that paired a read with the node's
    /// identity erase precisely what they read (the store's erase), instead
    /// of whatever reincarnation now carries the key.
    template <typename Key>
    bool erase_node(const Key& key, const Node* target) {
        for (;;) {
            auto [pred, curr] = search(key);
            if (!curr || curr->key != key) return false;
            if (target != nullptr && curr.get() != target) return false;
            if (curr->dead.cas(false, true)) {
                // Logically deleted by us; physical unlink is best-effort
                // (traversals will help if this fails).
                local succ = Domain::load_get(curr->next);
                Domain::dcas_ptr_flag(pred->next, curr->dead, curr.get(), true,
                                      succ.get(), true);
                return true;
            }
            // Lost the race: either a concurrent erase (key now absent) or a
            // stale view; re-search decides.
        }
    }

    /// Physically unlinks any dead nodes around `key` by running the helping
    /// search. For callers that mark a node dead through their own atomic
    /// protocol (the store's claim-and-mark CASN) rather than erase_node,
    /// and then want the unlink done eagerly instead of left to the next
    /// traversal.
    template <typename Key>
    void help_unlink(const Key& key) {
        (void)search(key);
    }

    /// Borrowed lookup: the live node with `key` (epoch-pinned, zero
    /// refcount traffic) or a null borrow. Unlike search() this never helps
    /// unlink dead nodes — it walks straight through them under a single
    /// epoch pin, lazy-list style (Heller et al.): a dead node's forward
    /// pointer is frozen at unlink time, so the walk still reaches every
    /// node that was live for the whole operation, and the dead-flag check
    /// at the end linearizes the miss/hit correctly.
    template <typename Key>
    borrow find_borrowed(const Key& key) {
        auto curr = Domain::load_borrowed(head_);
        curr = Domain::load_borrowed(curr->next);  // skip head sentinel
        while (curr && curr->key < key) {
            curr = Domain::load_borrowed(curr->next);
        }
        if (curr && curr->key == key && !curr->dead.load()) return curr;
        return {};
    }

    /// Counted lookup via the helping search: the live node or null.
    template <typename Key>
    local find_counted(const Key& key) {
        auto [pred, curr] = search(key);
        if (curr && curr->key == key) return std::move(curr);
        return {};
    }

    /// Membership test on the borrowed fast path.
    template <typename Key>
    bool contains(const Key& key) {
        return static_cast<bool>(find_borrowed(key));
    }

    /// Element count; exact only at quiescence. Borrowed traversal.
    std::size_t size() {
        std::size_t n = 0;
        auto curr = Domain::load_borrowed(head_);
        curr = Domain::load_borrowed(curr->next);
        while (curr) {
            if (!curr->dead.load()) ++n;
            curr = Domain::load_borrowed(curr->next);
        }
        return n;
    }

    /// Borrowed visit of every live node: f(const borrow&). The visited set
    /// is a snapshot in the same sense as find_borrowed — nodes live for the
    /// whole traversal are guaranteed visited. Callers that mutate through a
    /// visited node must promote first.
    template <typename F>
    void for_each_borrowed(F&& f) {
        auto curr = Domain::load_borrowed(head_);
        curr = Domain::load_borrowed(curr->next);
        while (curr) {
            if (!curr->dead.load()) f(curr);
            curr = Domain::load_borrowed(curr->next);
        }
    }

    /// Drop every node at once by severing the sentinel's next pointer; the
    /// whole chain unravels through lfrc_visit_children and drains via the
    /// epoch domain. Shutdown/drain path: inserts racing a clear may land on
    /// the severed chain and be lost — callers quiesce writers first.
    void clear() {
        local sentinel = Domain::load_get(head_);
        Domain::store(sentinel->next, static_cast<Node*>(nullptr));
    }

  private:
    /// Returns (pred, curr) with pred the last live node whose key < key
    /// (or the head sentinel) and curr the first live node with key >= key
    /// (or null). Helps unlink dead nodes along the way.
    template <typename Key>
    std::pair<local, local> search(const Key& key) {
    restart:
        local pred = Domain::load_get(head_);
        local curr = Domain::load_get(pred->next);
        for (;;) {
            if (!curr) return {std::move(pred), std::move(curr)};
            if (curr->dead.load()) {
                // Help unlink curr from pred; a failure means pred moved or
                // died — restart from the head.
                local succ = Domain::load_get(curr->next);
                if (!Domain::dcas_ptr_flag(pred->next, curr->dead, curr.get(), true,
                                           succ.get(), true)) {
                    goto restart;
                }
                curr = std::move(succ);
                continue;
            }
            if (!(curr->key < key)) return {std::move(pred), std::move(curr)};
            pred = curr;
            Domain::load(pred->next, curr);
        }
    }

    typename Domain::template ptr_field<Node> head_;
};

/// The classic sorted set: keys only, the thin adapter over the core.
template <typename Domain, typename Key>
class lfrc_list_set {
  public:
    struct lnode : Domain::object {
        typename Domain::template ptr_field<lnode> next;
        typename Domain::flag_field dead;
        Key key{};

        lnode() = default;
        explicit lnode(Key k) : key(std::move(k)) {}

        void lfrc_visit_children(typename Domain::child_visitor& visitor) noexcept override {
            visitor.on_child(next.exclusive_get());
        }
    };

    using local = typename Domain::template local_ptr<lnode>;

    lfrc_list_set() = default;
    lfrc_list_set(const lfrc_list_set&) = delete;
    lfrc_list_set& operator=(const lfrc_list_set&) = delete;

    /// Adds key; false if already present.
    bool insert(const Key& key) {
        return core_
            .get_or_insert(key, [&] { return Domain::template make<lnode>(key); })
            .second;
    }

    /// Removes key; false if absent.
    bool erase(const Key& key) { return core_.erase(key); }

    /// Membership test on the borrowed fast path: zero refcount traffic.
    bool contains(const Key& key) { return core_.contains(key); }

    /// Element count; exact only at quiescence. Borrowed traversal.
    std::size_t size() { return core_.size(); }

  private:
    lfrc_list_core<Domain, lnode> core_;
};

}  // namespace lfrc::containers
