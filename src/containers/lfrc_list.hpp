// Sorted LFRC list set — list_core instantiated with the borrowed policy.
//
// Harris's classic lock-free list marks deleted nodes by stealing a bit of
// the successor pointer — exactly the pointer arithmetic LFRC compliance
// forbids (§2.1). With DCAS the mark can live in its own shared flag cell
// and be changed atomically *with* the structural pointer; the protocol
// (logical delete by flag CAS, insert/unlink by DCAS anchored on a live
// predecessor) lives in containers/list_core.hpp, shared by every
// reclamation policy.
//
// The borrowed policy gives the read paths (contains/size) the paper's
// epoch-borrowed fast path: one epoch pin, zero refcount traffic, walking
// straight through dead nodes lazy-list style (a dead node's forward
// pointer is frozen, so the walk still reaches every node that was live for
// the whole operation). Mutating paths run the counted helping search,
// because unlink DCASes must anchor on counted references
// (docs/ALGORITHMS.md §8).
//
// Cycle-free garbage: unlinked nodes point forward into the list (or to
// other dead nodes), never backwards — chains, not cycles — so the §2.1
// criterion holds and LFRC reclaims everything once traversals let go.
#pragma once

#include <cstddef>
#include <utility>

#include "containers/list_core.hpp"
#include "smr/counted.hpp"

namespace lfrc::containers {

/// The classic sorted set: keys only, a thin adapter over list_core.
template <typename Domain, typename Key>
class lfrc_list_set {
  public:
    using policy_t = smr::borrowed<Domain>;
    using node_t = set_node<policy_t, Key>;

    lfrc_list_set() = default;
    lfrc_list_set(const lfrc_list_set&) = delete;
    lfrc_list_set& operator=(const lfrc_list_set&) = delete;

    /// Adds key; false if already present.
    bool insert(const Key& key) {
        typename policy_t::guard g(core_.policy());
        return core_.insert(g, key);
    }

    /// Removes key; false if absent.
    bool erase(const Key& key) {
        typename policy_t::guard g(core_.policy());
        return core_.erase(g, key);
    }

    /// Membership test on the borrowed fast path: zero refcount traffic.
    bool contains(const Key& key) {
        typename policy_t::guard g(core_.policy());
        return core_.contains(g, key);
    }

    /// Element count; exact only at quiescence. Borrowed traversal.
    std::size_t size() {
        typename policy_t::guard g(core_.policy());
        return core_.size(g);
    }

  private:
    list_core<policy_t, node_t> core_;
};

}  // namespace lfrc::containers
