// Sorted singly-linked set, LFRC-transformed, with DCAS-based deletion.
//
// Harris's classic lock-free list marks deleted nodes by stealing a bit of
// the successor pointer — exactly the pointer arithmetic LFRC compliance
// forbids (§2.1). With DCAS the mark can live in its own shared flag cell
// and be changed atomically *with* the structural pointer, which is how this
// set stays inside the allowed operation set:
//
//   logical delete : CAS the node's `dead` flag false -> true
//                    (an unmarked node is always still reachable, so the
//                    flag CAS is the linearization point of erase);
//   insert         : DCAS(pred->next: curr -> node, pred->dead: stays false)
//                    — anchoring on a live predecessor so an insert can
//                    never land after an already-deleted node;
//   physical unlink: DCAS(pred->next: curr -> curr->next, curr->dead: stays
//                    true), performed as helping during traversal. Dead
//                    nodes keep their forward pointer, so a stale unlink can
//                    transiently re-expose a dead node but never cuts off
//                    the tail; traversals skip dead nodes logically.
//
// Cycle-free garbage: unlinked nodes point forward into the list (or to
// other dead nodes), never backwards — chains, not cycles — so the §2.1
// criterion holds and LFRC reclaims everything once traversals let go.
//
// Read paths (contains/size) use the epoch-borrowed fast path
// (Domain::load_borrowed) and pay no refcount traffic; mutating paths keep
// the counted search() with helping, because unlink DCASes must anchor on
// counted references (docs/ALGORITHMS.md §8).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "lfrc/domain.hpp"

namespace lfrc::containers {

template <typename Domain, typename Key>
class lfrc_list_set {
  public:
    struct lnode : Domain::object {
        typename Domain::template ptr_field<lnode> next;
        typename Domain::flag_field dead;
        Key key{};

        lnode() = default;
        explicit lnode(Key k) : key(std::move(k)) {}

        void lfrc_visit_children(typename Domain::child_visitor& visitor) noexcept override {
            visitor.on_child(next.exclusive_get());
        }
    };

    using local = typename Domain::template local_ptr<lnode>;

    lfrc_list_set() {
        // Head sentinel: key value irrelevant, never dead, never unlinked.
        Domain::store_alloc(head_, Domain::template make<lnode>());
    }

    ~lfrc_list_set() { Domain::store(head_, static_cast<lnode*>(nullptr)); }

    lfrc_list_set(const lfrc_list_set&) = delete;
    lfrc_list_set& operator=(const lfrc_list_set&) = delete;

    /// Adds key; false if already present.
    bool insert(const Key& key) {
        for (;;) {
            auto [pred, curr] = search(key);
            if (curr && curr->key == key) return false;  // live duplicate
            local node = Domain::template make<lnode>(key);
            Domain::store(node->next, curr);
            if (Domain::dcas_ptr_flag(pred->next, pred->dead, curr.get(), false,
                                      node.get(), false)) {
                return true;
            }
            // pred died or pred->next moved: re-search.
        }
    }

    /// Removes key; false if absent.
    bool erase(const Key& key) {
        for (;;) {
            auto [pred, curr] = search(key);
            if (!curr || curr->key != key) return false;
            if (curr->dead.cas(false, true)) {
                // Logically deleted by us; physical unlink is best-effort
                // (traversals will help if this fails).
                local succ = Domain::load_get(curr->next);
                Domain::dcas_ptr_flag(pred->next, curr->dead, curr.get(), true,
                                      succ.get(), true);
                return true;
            }
            // Lost the race: either a concurrent erase (key now absent) or a
            // stale view; re-search decides.
        }
    }

    /// Membership test on the borrowed fast path: zero refcount traffic.
    /// Unlike search() this never helps unlink dead nodes — it walks
    /// straight through them under a single epoch pin, lazy-list style
    /// (Heller et al.): a dead node's forward pointer is frozen at unlink
    /// time, so the walk still reaches every node that was live for the
    /// whole operation, and the dead-flag check at the end linearizes the
    /// miss/hit correctly.
    bool contains(const Key& key) {
        auto curr = Domain::load_borrowed(head_);
        curr = Domain::load_borrowed(curr->next);  // skip head sentinel
        while (curr && curr->key < key) {
            curr = Domain::load_borrowed(curr->next);
        }
        return curr && curr->key == key && !curr->dead.load();
    }

    /// Element count; exact only at quiescence. Borrowed traversal.
    std::size_t size() {
        std::size_t n = 0;
        auto curr = Domain::load_borrowed(head_);
        curr = Domain::load_borrowed(curr->next);
        while (curr) {
            if (!curr->dead.load()) ++n;
            curr = Domain::load_borrowed(curr->next);
        }
        return n;
    }

  private:
    /// Returns (pred, curr) with pred the last live node whose key < key
    /// (or the head sentinel) and curr the first live node with key >= key
    /// (or null). Helps unlink dead nodes along the way.
    std::pair<local, local> search(const Key& key) {
    restart:
        local pred = Domain::load_get(head_);
        local curr = Domain::load_get(pred->next);
        for (;;) {
            if (!curr) return {std::move(pred), std::move(curr)};
            if (curr->dead.load()) {
                // Help unlink curr from pred; a failure means pred moved or
                // died — restart from the head.
                local succ = Domain::load_get(curr->next);
                if (!Domain::dcas_ptr_flag(pred->next, curr->dead, curr.get(), true,
                                           succ.get(), true)) {
                    goto restart;
                }
                curr = std::move(succ);
                continue;
            }
            if (!(curr->key < key)) return {std::move(pred), std::move(curr)};
            pred = curr;
            Domain::load(pred->next, curr);
        }
    }

    typename Domain::template ptr_field<lnode> head_;
};

}  // namespace lfrc::containers
