// Treiber stack over plain atomics, parameterized by reclamation policy
// (leaky / EBR / HP — see reclaimer_policies.hpp). This is the
// "GC-dependent" shape of the algorithm: no reference counts; correctness
// of memory reuse is delegated entirely to the policy. E5 benchmarks these
// against the LFRC version.
#pragma once

#include <atomic>
#include <optional>
#include <utility>

#include "alloc/counted.hpp"

namespace lfrc::containers {

template <typename V, typename Policy>
class reclaim_stack {
  public:
    struct node : alloc::counted_base {
        std::atomic<node*> next{nullptr};
        V value{};
    };

    reclaim_stack() = default;
    reclaim_stack(const reclaim_stack&) = delete;
    reclaim_stack& operator=(const reclaim_stack&) = delete;

    /// Quiescent destructor: frees whatever is still linked. Retired nodes
    /// are owned by the policy's domain.
    ~reclaim_stack() {
        node* h = head_.exchange(nullptr, std::memory_order_acquire);
        while (h != nullptr) {
            node* next = h->next.load(std::memory_order_relaxed);
            delete h;
            h = next;
        }
    }

    void push(V v) {
        auto* nd = new node;
        nd->value = std::move(v);
        node* h = head_.load(std::memory_order_relaxed);
        do {
            nd->next.store(h, std::memory_order_relaxed);
        } while (!head_.compare_exchange_weak(h, nd, std::memory_order_acq_rel));
    }

    std::optional<V> pop() {
        for (;;) {
            typename Policy::guard g;
            node* h = g.protect0(head_);
            if (h == nullptr) return std::nullopt;
            node* next = h->next.load(std::memory_order_acquire);
            if (head_.compare_exchange_strong(h, next, std::memory_order_acq_rel)) {
                V v = std::move(h->value);
                Policy::template retire<node>(h);
                return v;
            }
        }
    }

    bool empty() const { return head_.load(std::memory_order_acquire) == nullptr; }

  private:
    std::atomic<node*> head_{nullptr};
};

}  // namespace lfrc::containers
