// Treiber stack under manual reclamation — stack_core instantiated with an
// smr policy (smr::leaky / smr::ebr / smr::hp). This is the "GC-dependent"
// shape of the algorithm: no reference counts; correctness of memory reuse
// is delegated entirely to the policy. E5 benchmarks these against the
// LFRC (counted-policy) version.
#pragma once

#include "containers/stack_core.hpp"
#include "smr/manual.hpp"

namespace lfrc::containers {

template <typename V, lfrc::smr::policy P>
using reclaim_stack = stack_core<V, P>;

}  // namespace lfrc::containers
