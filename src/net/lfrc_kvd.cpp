// lfrc_kvd — the KV-store server binary (sharded epoll front-end).
//
//   lfrc_kvd [--host=127.0.0.1] [--port=7117] [--workers=2] [--shards=8]
//            [--buckets=64] [--policy=deferred|ebr|borrowed|leaky]
//            [--max_conn_buffer=1048576] [--tick_ms=10] [--pin]
//
// SIGINT/SIGTERM run the graceful drain (stop accepting, flush owed
// responses, quiesce workers, kv_store::drain()); the exit status is 0 iff
// the store drained to zero residual — CI's loopback smoke asserts on it.
//
// --policy selects the reclamation discipline behind the identical store
// body, same dispatch as the E9 matrix. hp is deliberately absent: the
// server wraps each event-loop tick in one outer guard and hp guards
// cannot nest (see kv_server's static_assert).
#include <csignal>
#include <cstdio>
#include <string>

#include "lfrc/lfrc.hpp"
#include "net/server.hpp"
#include "smr/smr.hpp"
#include "util/cli.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_release); }  // lfrc-lint: order(external-stop-flag)

template <typename Policy>
int serve(const lfrc::net::server_config& cfg) {
    lfrc::net::kv_server<Policy> server(cfg);
    return server.run(&g_stop);
}

}  // namespace

int main(int argc, char** argv) {
    lfrc::util::cli_flags flags(argc, argv);
    lfrc::net::server_config cfg;
    cfg.host = flags.get_string("host", cfg.host);
    cfg.port = static_cast<std::uint16_t>(flags.get_u64("port", cfg.port));
    cfg.workers = static_cast<int>(flags.get_u64("workers", 2));
    cfg.shards = flags.get_u64("shards", cfg.shards);
    cfg.buckets_per_shard = flags.get_u64("buckets", cfg.buckets_per_shard);
    cfg.max_conn_buffer = flags.get_u64("max_conn_buffer", cfg.max_conn_buffer);
    cfg.tick_timeout_ms = static_cast<int>(flags.get_u64("tick_ms", 10));
    cfg.pin_threads = flags.has("pin");
    const std::string policy = flags.get_string("policy", "deferred");

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    if (policy == "deferred") return serve<lfrc::smr::deferred<>>(cfg);
    if (policy == "ebr") return serve<lfrc::smr::ebr<>>(cfg);
    if (policy == "borrowed") return serve<lfrc::domain>(cfg);
    if (policy == "leaky") return serve<lfrc::smr::leaky<>>(cfg);
    std::fprintf(stderr,
                 "lfrc_kvd: unknown --policy=%s (want deferred|ebr|borrowed|leaky; "
                 "hp cannot serve: its guards do not nest under the tick guard)\n",
                 policy.c_str());
    return 2;
}
