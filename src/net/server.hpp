// lfrc::net::kv_server — the sharded epoll front-end for store::kv_store.
//
// Topology: N worker threads, each owning (a) one SO_REUSEPORT listening
// socket bound to the same port — the kernel spreads incoming connections
// across the listeners, our accept-side round-robin — and (b) one epoll
// instance over the connections it accepted. A connection lives and dies on
// one worker: its requests are parsed, executed and answered on that
// worker's thread, which holds exactly one thread_registry slot. All
// slot-keyed reclamation state (epoch announcements, deferred delta tables,
// MCAS descriptors) therefore stays core-local for a connection's whole
// life, and a request never crosses workers.
//
// Event-loop tick (per worker):
//   1. epoll_wait; accept new connections, read every readable socket into
//      its connection buffer.
//   2. One drain_gate batch wrapping ONE policy guard for the whole tick:
//      parse + execute every complete frame buffered across all
//      connections, appending responses to per-connection write buffers.
//      The outer guard means a tick of B requests pays one pin/flush
//      (epoch announce, deferred table flush) instead of B — the nested
//      per-op guards inside kv_store enter/exit on a depth counter.
//   3. One writev per connection with output: the carried-over unflushed
//      tail (socket was full last tick) plus this tick's responses — two
//      iovecs, one syscall.
//
// Robustness (the parts load tests actually hit):
//   * a frame that fails to decode closes the connection — no resync
//     guessing on a binary protocol;
//   * per-connection buffer caps: unparsed input over the cap (client
//     floods without completing frames) or unflushed output over the cap
//     (client stops reading) disconnects the peer — memory per connection
//     is bounded no matter what arrives;
//   * EPIPE/ECONNRESET on read or write close the connection quietly;
//     SIGPIPE is ignored process-wide in run();
//   * partial writes keep their tail in the connection's pending buffer and
//     arm EPOLLOUT — response bytes are never dropped or reordered.
//
// Graceful drain (run() after request_shutdown()/SIGTERM):
//   stop admitting batches (drain_gate), wait for in-flight batches to
//   retire, let every worker close its listener, flush what it owes (with a
//   bounded linger), and exit; join workers; clear their registry slots
//   (reclaim::epoch_domain::clear_slots — the joined-worker idiom); then
//   kv_store::drain() with exclusive ownership, asserting zero residual.
//   The ordering lives in drain_gate and is model-checked by
//   tests/sim/sim_net_drain_test.cpp.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/drain_gate.hpp"
#include "net/proto.hpp"
#include "reclaim/epoch.hpp"
#include "store/store.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_registry.hpp"

namespace lfrc::net {

struct server_config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 7117;
    int workers = 2;
    std::size_t shards = 8;
    std::size_t buckets_per_shard = 64;
    /// Per-connection cap on unparsed input AND unflushed output. Crossing
    /// either disconnects the peer (flood / slow-reader protection).
    std::size_t max_conn_buffer = 1 << 20;
    /// epoll_wait timeout: the latency floor for noticing a drain request;
    /// irrelevant for request latency (events return immediately).
    int tick_timeout_ms = 10;
    /// Per-worker connection cap; accepts beyond it are closed on arrival.
    std::size_t max_connections = 1024;
    /// Pin worker w to CPU (w % hw_concurrency). Off by default: container
    /// schedulers often do better; the E11 sweep can turn it on.
    bool pin_threads = false;
};

/// Counters aggregated across workers at shutdown (approximate during the
/// run; exact after join).
struct server_totals {
    std::uint64_t accepted = 0;
    std::uint64_t closed = 0;
    std::uint64_t requests = 0;
    std::uint64_t bad_frames = 0;
    std::uint64_t overflow_closes = 0;  ///< buffer-cap disconnects
    std::uint64_t io_error_closes = 0;  ///< EPIPE/ECONNRESET/read errors
};

template <typename PolicyOrDomain>
class kv_server {
  public:
    using store_t = store::kv_store<PolicyOrDomain, std::uint64_t, std::uint64_t>;
    using policy_t = typename store_t::policy_t;

    // The tick-wide outer guard nests per-op guards inside it; hp's
    // thread-global hazard slots forbid nested guards (and hp is exactly
    // the policy with has_lazy_traverse == false).
    static_assert(policy_t::has_lazy_traverse,
                  "kv_server holds an outer guard across each event-loop tick; "
                  "policies whose guards cannot nest (hp) are not supported");

    explicit kv_server(server_config cfg)
        : cfg_(std::move(cfg)),
          store_(typename store_t::config{cfg_.shards, cfg_.buckets_per_shard}) {
        if (cfg_.workers < 1) cfg_.workers = 1;
    }

    /// Ask run() to begin the graceful drain. Async-signal-safe.
    void request_shutdown() noexcept {
        shutdown_.store(true, std::memory_order_release);  // lfrc-lint: order(server-shutdown-flag)
    }

    /// Serve until request_shutdown() (or *external_stop — the binary's
    /// signal flag) is observed, then drain. Returns 0 iff every worker
    /// exited cleanly and the store drained to zero residual.
    int run(const std::atomic<bool>* external_stop = nullptr) {
        std::signal(SIGPIPE, SIG_IGN);

        std::vector<int> listeners;
        listeners.reserve(static_cast<std::size_t>(cfg_.workers));
        for (int w = 0; w < cfg_.workers; ++w) {
            const int fd = make_listener();
            if (fd < 0) {
                std::fprintf(stderr, "lfrc_kvd: cannot listen on %s:%u: %s\n",
                             cfg_.host.c_str(), unsigned{cfg_.port}, std::strerror(errno));
                for (const int l : listeners) ::close(l);
                return 2;
            }
            listeners.push_back(fd);
        }
        std::printf("lfrc_kvd: listening on %s:%u (%d workers, policy %s)\n",
                    cfg_.host.c_str(), unsigned{cfg_.port}, cfg_.workers,
                    store_t::policy_name());
        std::fflush(stdout);

        worker_slots_.assign(static_cast<std::size_t>(cfg_.workers), 0);
        worker_totals_.assign(static_cast<std::size_t>(cfg_.workers), server_totals{});
        worker_failed_.store(false, std::memory_order_relaxed);  // lfrc-lint: order(worker-failed-flag)
        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(cfg_.workers));
        for (int w = 0; w < cfg_.workers; ++w) {
            threads.emplace_back([this, w, fd = listeners[static_cast<std::size_t>(w)]] {
                worker_main(w, fd);
            });
        }

        while (!shutdown_.load(std::memory_order_acquire) &&  // lfrc-lint: order(server-shutdown-flag)
               !(external_stop != nullptr &&
                 external_stop->load(std::memory_order_acquire)) &&  // lfrc-lint: order(external-stop-flag)
               !worker_failed_.load(std::memory_order_acquire)) {  // lfrc-lint: order(worker-failed-flag)
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }

        // Drain: forbid new batches, wait out in-flight ones, then let the
        // workers run their flush/close epilogue and join them.
        gate_.await_quiescent();
        for (auto& t : threads) t.join();
        reclaim::epoch_domain::global().clear_slots(worker_slots_.data(),
                                                    worker_slots_.size());
        residual_ = store_.drain();

        const server_totals t = totals();
        std::printf("lfrc_kvd: drained. accepted=%llu requests=%llu bad_frames=%llu "
                    "overflow_closes=%llu io_error_closes=%llu residual=%llu\n",
                    static_cast<unsigned long long>(t.accepted),
                    static_cast<unsigned long long>(t.requests),
                    static_cast<unsigned long long>(t.bad_frames),
                    static_cast<unsigned long long>(t.overflow_closes),
                    static_cast<unsigned long long>(t.io_error_closes),
                    static_cast<unsigned long long>(residual_));
        std::fflush(stdout);
        if (worker_failed_.load(std::memory_order_acquire)) return 2;  // lfrc-lint: order(worker-failed-flag)
        return residual_ == 0 ? 0 : 1;
    }

    store_t& store() noexcept { return store_; }
    std::uint64_t residual() const noexcept { return residual_; }

    server_totals totals() const {
        server_totals t;
        for (const auto& w : worker_totals_) {
            t.accepted += w.accepted;
            t.closed += w.closed;
            t.requests += w.requests;
            t.bad_frames += w.bad_frames;
            t.overflow_closes += w.overflow_closes;
            t.io_error_closes += w.io_error_closes;
        }
        return t;
    }

  private:
    struct connection {
        int fd = -1;
        std::vector<std::uint8_t> in;       ///< unparsed request bytes
        std::size_t in_off = 0;             ///< parse cursor into `in`
        std::vector<std::uint8_t> pending;  ///< unflushed output (previous ticks)
        std::size_t pending_off = 0;
        std::vector<std::uint8_t> out;      ///< responses generated this tick
        bool want_write = false;            ///< EPOLLOUT armed
        bool dead = false;
        bool peer_closed = false;
    };

    int make_listener() const {
        const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
        if (fd < 0) return -1;
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
            ::close(fd);
            return -1;
        }
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(cfg_.port);
        if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
            ::close(fd);
            errno = EINVAL;
            return -1;
        }
        if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
            ::listen(fd, 256) != 0) {
            ::close(fd);
            return -1;
        }
        return fd;
    }

    static void set_epoll(int ep, connection& c) {
        epoll_event ev{};
        ev.events = EPOLLIN | (c.want_write ? EPOLLOUT : 0u);
        ev.data.fd = c.fd;
        ::epoll_ctl(ep, EPOLL_CTL_MOD, c.fd, &ev);
    }

    /// Drain the socket into the connection's input buffer. Marks the
    /// connection dead on error or buffer-cap overflow.
    void read_into(connection& c, server_totals& t) const {
        std::uint8_t buf[4096];
        for (;;) {
            const ssize_t n = ::read(c.fd, buf, sizeof buf);
            if (n > 0) {
                c.in.insert(c.in.end(), buf, buf + n);
                if (c.in.size() - c.in_off > cfg_.max_conn_buffer) {
                    ++t.overflow_closes;
                    c.dead = true;
                    return;
                }
                if (static_cast<std::size_t>(n) < sizeof buf) return;
                continue;
            }
            if (n == 0) {
                c.peer_closed = true;  // flush what we owe, then close
                return;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            if (errno == EINTR) continue;
            ++t.io_error_closes;
            c.dead = true;
            return;
        }
    }

    /// Execute one decoded request against the store, appending the
    /// response frame. Runs inside the tick's gate batch + outer guard.
    void execute(const request& rq, std::vector<std::uint8_t>& out_buf,
                 std::uint64_t now_ns) {
        response rsp;
        rsp.op = rq.op;
        rsp.id = rq.id;
        rsp.st = status::ok;
        switch (rq.op) {
            case op::get: {
                const auto v = store_.get_versioned(rq.key, now_ns);
                rsp.st = v.found ? status::ok : status::not_found;
                rsp.value = v.found ? v.value : 0;
                rsp.version = v.version;
                break;
            }
            case op::put:
                store_.put(rq.key, rq.value, rq.ttl_ns, now_ns);
                break;
            case op::erase:
                rsp.st = store_.erase(rq.key, now_ns) ? status::ok : status::not_found;
                break;
            case op::cas:
                rsp.st = store_.cas(rq.key, rq.expected_version, rq.value, rq.ttl_ns,
                                    now_ns)
                             ? status::ok
                             : status::cas_fail;
                break;
            case op::stat: {
                const store::store_stats s = store_.stats();
                rsp.stats.gets = s.gets;
                rsp.stats.hits = s.hits;
                rsp.stats.puts = s.puts;
                rsp.stats.erases = s.erases;
                rsp.stats.cas_ok = s.cas_ok;
                rsp.stats.cas_fail = s.cas_fail;
                rsp.stats.expired = s.expired;
                rsp.stats.reclaimer_pending = store_.reclaimer_pending();
                break;
            }
        }
        encode_response(out_buf, rsp);
    }

    /// Parse and execute every complete frame in the connection's input.
    void process_input(connection& c, std::uint64_t now_ns, server_totals& t) {
        while (!c.dead) {
            request rq;
            std::size_t consumed = 0;
            const decode_result r = decode_request(c.in.data() + c.in_off,
                                                   c.in.size() - c.in_off, rq, consumed);
            if (r == decode_result::need_more) break;
            if (r == decode_result::bad_frame) {
                ++t.bad_frames;
                c.dead = true;
                break;
            }
            c.in_off += consumed;
            ++t.requests;
            execute(rq, c.out, now_ns);
        }
        // Compact: frames are tiny, so the unparsed tail is at most one
        // partial frame plus whatever a flood sent — move it to the front.
        if (c.in_off == c.in.size()) {
            c.in.clear();
            c.in_off = 0;
        } else if (c.in_off > 0) {
            c.in.erase(c.in.begin(),
                       c.in.begin() + static_cast<std::ptrdiff_t>(c.in_off));
            c.in_off = 0;
        }
    }

    /// One writev per tick per connection: the carried-over pending tail
    /// plus this tick's responses. Short writes park the remainder in
    /// `pending` and arm EPOLLOUT; write errors kill the connection.
    void flush(int ep, connection& c, server_totals& t) {
        for (;;) {
            iovec iov[2];
            int cnt = 0;
            if (c.pending_off < c.pending.size()) {
                iov[cnt].iov_base = c.pending.data() + c.pending_off;
                iov[cnt].iov_len = c.pending.size() - c.pending_off;
                ++cnt;
            }
            if (!c.out.empty()) {
                iov[cnt].iov_base = c.out.data();
                iov[cnt].iov_len = c.out.size();
                ++cnt;
            }
            if (cnt == 0) return;
            const ssize_t n = ::writev(c.fd, iov, cnt);
            if (n < 0) {
                if (errno == EINTR) continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK) {
                    carry_unwritten(c, 0);
                    arm_write(ep, c, t);
                    return;
                }
                // EPIPE / ECONNRESET / anything else: peer is gone.
                ++t.io_error_closes;
                c.dead = true;
                return;
            }
            std::size_t done = static_cast<std::size_t>(n);
            const std::size_t pend = c.pending.size() - c.pending_off;
            if (done >= pend) {
                done -= pend;
                c.pending.clear();
                c.pending_off = 0;
                if (done == c.out.size()) {
                    c.out.clear();
                    if (c.want_write) {
                        c.want_write = false;
                        set_epoll(ep, c);
                    }
                    return;
                }
                carry_unwritten(c, done);
            } else {
                c.pending_off += done;
                carry_unwritten(c, 0);
            }
            arm_write(ep, c, t);
            return;
        }
    }

    /// Move out[written..] onto pending so the next writev resumes exactly
    /// where the socket stopped.
    static void carry_unwritten(connection& c, std::size_t written) {
        if (written < c.out.size()) {
            c.pending.insert(c.pending.end(), c.out.begin() +
                                                  static_cast<std::ptrdiff_t>(written),
                             c.out.end());
        }
        c.out.clear();
    }

    void arm_write(int ep, connection& c, server_totals& t) {
        if (c.pending.size() - c.pending_off > cfg_.max_conn_buffer) {
            ++t.overflow_closes;  // peer stopped reading; cut it loose
            c.dead = true;
            return;
        }
        if (!c.want_write) {
            c.want_write = true;
            set_epoll(ep, c);
        }
    }

    void worker_main(int w, int listen_fd) {
        worker_slots_[static_cast<std::size_t>(w)] =
            util::thread_registry::instance().slot();
        if (cfg_.pin_threads) pin_to_cpu(w);
        server_totals& t = worker_totals_[static_cast<std::size_t>(w)];

        const int ep = ::epoll_create1(EPOLL_CLOEXEC);
        if (ep < 0) {
            ::close(listen_fd);
            worker_failed_.store(true, std::memory_order_release);  // lfrc-lint: order(worker-failed-flag)
            return;
        }
        {
            epoll_event ev{};
            ev.events = EPOLLIN;
            ev.data.fd = listen_fd;
            ::epoll_ctl(ep, EPOLL_CTL_ADD, listen_fd, &ev);
        }

        std::unordered_map<int, connection> conns;
        std::vector<epoll_event> events(256);
        std::vector<int> touched;  // fds with new input this tick
        bool accepting = true;

        for (;;) {
            const bool draining = gate_.draining();
            if (draining && accepting) {
                ::epoll_ctl(ep, EPOLL_CTL_DEL, listen_fd, nullptr);
                ::close(listen_fd);
                accepting = false;
            }

            const int nev = ::epoll_wait(ep, events.data(),
                                         static_cast<int>(events.size()),
                                         cfg_.tick_timeout_ms);
            touched.clear();
            for (int i = 0; i < nev; ++i) {
                const int fd = events[static_cast<std::size_t>(i)].data.fd;
                const std::uint32_t flags = events[static_cast<std::size_t>(i)].events;
                if (accepting && fd == listen_fd) {
                    accept_some(ep, listen_fd, conns, t);
                    continue;
                }
                const auto it = conns.find(fd);
                if (it == conns.end()) continue;
                connection& c = it->second;
                if ((flags & (EPOLLHUP | EPOLLERR)) != 0) {
                    ++t.io_error_closes;
                    c.dead = true;
                    continue;
                }
                if ((flags & EPOLLIN) != 0) {
                    read_into(c, t);
                    if (!c.dead && c.in.size() > c.in_off) touched.push_back(fd);
                }
                // EPOLLOUT falls through to the common flush below.
            }

            // Process phase: one gate batch, one outer guard, whole tick.
            if (!touched.empty()) {
                if (gate_.begin_op()) {
                    typename policy_t::guard tick_guard(store_.policy());
                    const std::uint64_t now_ns = util::steady_now_ns();
                    for (const int fd : touched) {
                        const auto it = conns.find(fd);
                        if (it != conns.end()) process_input(it->second, now_ns, t);
                    }
                    gate_.end_op();
                }
                // begin_op false: draining — buffered requests are dropped;
                // only already-generated responses are owed to peers.
            }

            // Flush phase + reap.
            for (auto it = conns.begin(); it != conns.end();) {
                connection& c = it->second;
                if (!c.dead) flush(ep, c, t);
                if (c.dead ||
                    (c.peer_closed && c.pending.size() == c.pending_off && c.out.empty())) {
                    ::close(c.fd);
                    ++t.closed;
                    it = conns.erase(it);
                } else {
                    ++it;
                }
            }

            if (draining) break;
        }

        // Linger: give owed response bytes a bounded chance to leave.
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(200);
        for (;;) {
            bool owed = false;
            for (auto& [fd, c] : conns) {
                if (!c.dead && (c.pending.size() > c.pending_off || !c.out.empty())) {
                    flush(ep, c, t);
                    if (c.pending.size() > c.pending_off || !c.out.empty()) owed = true;
                }
            }
            if (!owed || std::chrono::steady_clock::now() >= deadline) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        for (auto& [fd, c] : conns) {
            ::close(c.fd);
            ++t.closed;
        }
        ::close(ep);
    }

    void accept_some(int ep, int listen_fd, std::unordered_map<int, connection>& conns,
                     server_totals& t) {
        for (;;) {
            const int fd = ::accept4(listen_fd, nullptr, nullptr,
                                     SOCK_NONBLOCK | SOCK_CLOEXEC);
            if (fd < 0) {
                if (errno == EINTR) continue;
                return;  // EAGAIN or a transient accept error: next tick
            }
            if (conns.size() >= cfg_.max_connections) {
                ::close(fd);  // over the per-worker cap; shed immediately
                continue;
            }
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
            connection c;
            c.fd = fd;
            epoll_event ev{};
            ev.events = EPOLLIN;
            ev.data.fd = fd;
            if (::epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev) != 0) {
                ::close(fd);
                continue;
            }
            conns.emplace(fd, std::move(c));
            ++t.accepted;
        }
    }

    static void pin_to_cpu(int w) {
        cpu_set_t set;
        CPU_ZERO(&set);
        const unsigned n = std::thread::hardware_concurrency();
        CPU_SET(static_cast<unsigned>(w) % (n == 0 ? 1 : n), &set);
        ::pthread_setaffinity_np(::pthread_self(), sizeof set, &set);
    }

    server_config cfg_;
    store_t store_;
    drain_gate gate_;
    std::atomic<bool> shutdown_{false};
    std::atomic<bool> worker_failed_{false};
    std::vector<std::size_t> worker_slots_;
    std::vector<server_totals> worker_totals_;
    std::uint64_t residual_ = 0;
};

}  // namespace lfrc::net
