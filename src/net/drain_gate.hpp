// The server's drain protocol, factored out of the socket layer so the sim
// harness can model-check it (tests/sim/sim_net_drain_test.cpp).
//
// kv_store::drain() severs bucket chains with the policies' *quiescent*
// teardown (reset_chain: exclusive walks, direct deletes) — its contract
// says "writers must be quiesced first". The server therefore may not call
// drain() until every worker's in-flight request batch has retired, and no
// worker may start a new batch once draining begins. drain_gate is that
// ordering, and nothing else:
//
//   worker tick     if (!gate.begin_op()) -> drain mode, exit loop
//                   ... process one batch of requests ...
//                   gate.end_op();
//   drain thread    gate.await_quiescent();   // sets draining, waits
//                   store.drain();            // now provably exclusive
//
// The begin/await handshake is the standard store-buffering dance: begin_op
// increments in_flight THEN checks draining; await_quiescent sets draining
// THEN reads in_flight. Both sides seq_cst, so a worker that saw
// draining==false has its increment visible to the drainer's read — a batch
// can never be running invisibly when await_quiescent returns. The atoms are
// sim-instrumented, making every step of the handshake a schedule point.
//
// Deliberately not here: epoll, buffers, sockets. The sim test drives real
// kv_store operations through this gate with fibers standing in for workers,
// which is exactly the seam where a drain-ordering bug becomes a
// use-after-free the shadow heap can catch.
#pragma once

#include <cstdint>

#if defined(LFRC_ENABLE_MUTATIONS)
#include <atomic>
#endif

#include "sim/instrumented.hpp"
#include "util/sim_hook.hpp"

namespace lfrc::net {

class drain_gate {
  public:
    drain_gate() = default;
    drain_gate(const drain_gate&) = delete;
    drain_gate& operator=(const drain_gate&) = delete;

    /// Worker side: try to enter an operation batch. False once draining —
    /// the worker must stop touching the store and head for its flush/exit
    /// path. Every `true` must be paired with exactly one end_op().
    bool begin_op() noexcept {
        in_flight_.fetch_add(1, std::memory_order_seq_cst);
        if (draining_.load(std::memory_order_seq_cst) != 0) {
            in_flight_.fetch_sub(1, std::memory_order_seq_cst);
            return false;
        }
        return true;
    }

    /// Worker side: retire the batch begin_op() admitted.
    void end_op() noexcept { in_flight_.fetch_sub(1, std::memory_order_seq_cst); }

    /// True once a drain has been requested (workers poll this to stop
    /// accepting new connections before their final flush).
    bool draining() const noexcept {
        return draining_.load(std::memory_order_seq_cst) != 0;
    }

    /// Drain side: flip to draining and wait until every admitted batch has
    /// retired. After this returns, no worker is inside a store operation
    /// and none can enter one — the store's quiescent-teardown precondition.
    void await_quiescent() noexcept {
        draining_.store(1, std::memory_order_seq_cst);
#if defined(LFRC_ENABLE_MUTATIONS)
        // MUTANT (the drain-ordering bug this gate exists to exclude):
        // proceed to the store teardown without waiting for in-flight
        // batches. A worker mid-request then walks entries reset_chain is
        // deleting under it. tests/sim/sim_net_drain_test.cpp proves the
        // shadow heap catches this at preemption_bound=1.
        if (mutate_skip_await().load(std::memory_order_relaxed)) return;  // lfrc-lint: order(unpaired-mutation-flag)
#endif
        while (in_flight_.load(std::memory_order_seq_cst) != 0) {
            util::cooperative_yield();
        }
    }

#if defined(LFRC_ENABLE_MUTATIONS)
    static std::atomic<bool>& mutate_skip_await() noexcept {
        static std::atomic<bool> flag{false};
        return flag;
    }
#endif

  private:
    sim::instrumented_atomic<std::uint64_t> in_flight_{0};
    sim::instrumented_atomic<std::uint64_t> draining_{0};
};

}  // namespace lfrc::net
