// lfrc_loadgen — open-loop tail-latency load generator for lfrc_kvd (E11).
//
//   lfrc_loadgen [--host=127.0.0.1] [--port=7117] [--threads=2]
//                [--connections=8] [--rate=20000] [--duration=2.0]
//                [--keyspace=16384] [--theta=0.99] [--get_percent=80]
//                [--erase_percent=5] [--cas_percent=5] [--seed=1]
//                [--json=BENCH_e11.json]
//
// Open loop, not closed loop: requests are dispatched on a fixed arrival
// schedule (rate/threads per thread, deterministic interarrival), and each
// request's latency is measured from its *intended* send time — not from
// when the socket accepted the bytes. A server that stalls therefore eats
// the queueing delay in its percentiles instead of silently slowing the
// generator down (the coordinated-omission trap closed-loop drivers fall
// into; see EXPERIMENTS.md E11).
//
// Each thread owns `connections/threads` pipelined connections and
// round-robins its schedule across them. Keys are zipf-ranked and
// scrambled through util::mixed_index — the same hot-set shape as the E9
// closed-loop driver, so the two experiments describe one workload.
// Determinism: per-thread RNGs derive from mix_seed(global_seed(),
// --seed, thread), so LFRC_SEED replays a run's op sequence exactly
// (arrival *times* are wall clock; the sequence is what's replayable).
//
// Exit status: 0 iff every connection survived and at least one response
// was received (CI's smoke asserts a non-empty histogram through it).
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/proto.hpp"
#include "util/cli.hpp"
#include "util/hash.hpp"
#include "util/histogram.hpp"
#include "util/random.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace lfrc;

struct gen_config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 7117;
    int threads = 2;
    int connections = 8;
    double rate = 20000.0;  ///< total offered ops/sec across all threads
    double duration = 2.0;
    std::uint64_t keyspace = 1ULL << 14;
    double theta = 0.99;
    int get_percent = 80;
    int erase_percent = 5;
    int cas_percent = 5;  ///< remainder goes to put
    std::uint64_t seed = 1;
    std::string json_path;
};

struct conn_state {
    int fd = -1;
    std::vector<std::uint8_t> out;  ///< encoded-but-unflushed requests
    std::size_t out_off = 0;
    std::vector<std::uint8_t> in;  ///< partial response bytes
    /// id -> intended send time (ns on the steady clock).
    std::unordered_map<std::uint64_t, std::uint64_t> outstanding;
    bool dead = false;
};

struct thread_result {
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t send_errors = 0;
    util::latency_histogram latency;
    net::stat_counters server_stats{};  ///< thread 0 only (final STAT)
    bool got_stats = false;
    bool conn_failed = false;
};

/// Connect with retry: CI starts the server in the background and runs the
/// generator immediately, so the first connects may race the bind.
int connect_retry(const gen_config& cfg) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(3);
    for (;;) {
        addrinfo hints{};
        hints.ai_family = AF_INET;
        hints.ai_socktype = SOCK_STREAM;
        addrinfo* res = nullptr;
        const std::string port_str = std::to_string(cfg.port);
        if (::getaddrinfo(cfg.host.c_str(), port_str.c_str(), &hints, &res) != 0 ||
            res == nullptr) {
            return -1;
        }
        const int fd = ::socket(res->ai_family, SOCK_STREAM | SOCK_CLOEXEC, 0);
        int rc = -1;
        if (fd >= 0) rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
        ::freeaddrinfo(res);
        if (rc == 0) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
            return fd;
        }
        if (fd >= 0) ::close(fd);
        if (std::chrono::steady_clock::now() >= deadline) return -1;
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
}

/// Flush as much of the connection's request backlog as the socket takes.
void flush_conn(conn_state& c, thread_result& r) {
    while (c.out_off < c.out.size()) {
        const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                                 c.out.size() - c.out_off, MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n > 0) {
            c.out_off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
        if (n < 0 && errno == EINTR) continue;
        ++r.send_errors;
        c.dead = true;
        return;
    }
    c.out.clear();
    c.out_off = 0;
}

/// Read available responses; each completed frame resolves its request id
/// against the intended-send schedule and records end-to-end latency.
void read_conn(conn_state& c, thread_result& r) {
    std::uint8_t buf[4096];
    for (;;) {
        const ssize_t n = ::recv(c.fd, buf, sizeof buf, MSG_DONTWAIT);
        if (n > 0) {
            c.in.insert(c.in.end(), buf, buf + n);
            if (static_cast<std::size_t>(n) < sizeof buf) break;
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        c.dead = true;  // peer closed (drain) or reset
        break;
    }
    std::size_t off = 0;
    const std::uint64_t now = util::steady_now_ns();
    for (;;) {
        net::response rsp;
        std::size_t consumed = 0;
        const auto dr = net::decode_response(c.in.data() + off, c.in.size() - off, rsp,
                                             consumed);
        if (dr != net::decode_result::ok) break;  // need_more; bad_frame can't
        off += consumed;                          // happen against our server
        if (rsp.op == net::op::stat) {
            r.server_stats = rsp.stats;
            r.got_stats = true;
            continue;
        }
        const auto it = c.outstanding.find(rsp.id);
        if (it != c.outstanding.end()) {
            r.latency.record(now - it->second + 1);
            c.outstanding.erase(it);
            ++r.received;
        }
    }
    if (off > 0) c.in.erase(c.in.begin(), c.in.begin() + static_cast<std::ptrdiff_t>(off));
}

void generator_thread(const gen_config& cfg, int t, thread_result& out) {
    const int total_threads = cfg.threads > 0 ? cfg.threads : 1;
    int conns_here = cfg.connections / total_threads;
    if (t < cfg.connections % total_threads) ++conns_here;
    if (conns_here == 0) return;

    std::vector<conn_state> conns(static_cast<std::size_t>(conns_here));
    std::vector<pollfd> pfds(static_cast<std::size_t>(conns_here));
    for (auto& c : conns) {
        c.fd = connect_retry(cfg);
        if (c.fd < 0) {
            out.conn_failed = true;
            for (auto& d : conns) {
                if (d.fd >= 0) ::close(d.fd);
            }
            return;
        }
    }

    util::xoshiro256 rng(util::mix_seed(util::global_seed(), cfg.seed,
                                        static_cast<std::uint64_t>(t)));
    const util::zipf_gen zipf(cfg.keyspace, cfg.theta);
    const double thread_rate = cfg.rate / static_cast<double>(total_threads);
    const auto interarrival_ns =
        static_cast<std::uint64_t>(1e9 / (thread_rate > 0 ? thread_rate : 1.0));

    const std::uint64_t start_ns = util::steady_now_ns();
    const std::uint64_t end_ns =
        start_ns + static_cast<std::uint64_t>(cfg.duration * 1e9);
    // Stagger thread schedules so arrival spikes don't align across threads.
    std::uint64_t next_due =
        start_ns + interarrival_ns * static_cast<std::uint64_t>(t + 1) /
                       static_cast<std::uint64_t>(total_threads);
    std::uint64_t next_id = 1;
    std::size_t rr = 0;  // round-robin connection cursor

    const auto alive = [&conns] {
        for (const auto& c : conns) {
            if (!c.dead) return true;
        }
        return false;
    };

    // --- Timed open-loop phase -------------------------------------------
    while (alive()) {
        std::uint64_t now = util::steady_now_ns();
        if (now >= end_ns) break;
        // Dispatch every request whose intended time has arrived — even if
        // we are behind, each keeps its *intended* timestamp (open loop).
        while (next_due <= now) {
            conn_state& c = conns[rr % conns.size()];
            ++rr;
            if (!c.dead) {
                net::request rq;
                rq.id = next_id++;
                rq.key = util::mixed_index(zipf(rng), cfg.keyspace);
                const std::uint64_t roll = rng.below(100);
                if (roll < static_cast<std::uint64_t>(cfg.get_percent)) {
                    rq.op = net::op::get;
                } else if (roll < static_cast<std::uint64_t>(cfg.get_percent +
                                                             cfg.erase_percent)) {
                    rq.op = net::op::erase;
                } else if (roll <
                           static_cast<std::uint64_t>(cfg.get_percent +
                                                      cfg.erase_percent +
                                                      cfg.cas_percent)) {
                    rq.op = net::op::cas;
                    rq.expected_version = 0;  // version-blind CAS: mostly fails,
                    rq.value = rng();         // which is the contention we want
                } else {
                    rq.op = net::op::put;
                    rq.value = rng();
                }
                net::encode_request(c.out, rq);
                c.outstanding.emplace(rq.id, next_due);
                ++out.sent;
            }
            next_due += interarrival_ns;
        }
        for (std::size_t i = 0; i < conns.size(); ++i) {
            if (!conns[i].dead) flush_conn(conns[i], out);
            pfds[i].fd = conns[i].dead ? -1 : conns[i].fd;
            pfds[i].events = POLLIN;
            pfds[i].revents = 0;
        }
        now = util::steady_now_ns();
        const std::uint64_t wait_ns = next_due > now ? next_due - now : 0;
        const int wait_ms = static_cast<int>(wait_ns / 1000000);
        ::poll(pfds.data(), pfds.size(), wait_ms > 10 ? 10 : wait_ms);
        for (auto& c : conns) {
            if (!c.dead) read_conn(c, out);
        }
    }

    // --- Drain grace: collect stragglers, then ask for server stats ------
    if (conns[0].fd >= 0 && !conns[0].dead && t == 0) {
        net::request stat_rq;
        stat_rq.op = net::op::stat;
        stat_rq.id = next_id++;
        net::encode_request(conns[0].out, stat_rq);
    }
    const std::uint64_t grace_end = util::steady_now_ns() + 500'000'000ULL;
    while (alive() && util::steady_now_ns() < grace_end) {
        bool waiting = t == 0 && !out.got_stats;
        for (std::size_t i = 0; i < conns.size(); ++i) {
            if (!conns[i].dead) {
                flush_conn(conns[i], out);
                if (!conns[i].outstanding.empty()) waiting = true;
            }
            pfds[i].fd = conns[i].dead ? -1 : conns[i].fd;
            pfds[i].events = POLLIN;
            pfds[i].revents = 0;
        }
        if (!waiting) break;
        ::poll(pfds.data(), pfds.size(), 20);
        for (auto& c : conns) {
            if (!c.dead) read_conn(c, out);
        }
    }
    for (auto& c : conns) {
        if (c.fd >= 0) ::close(c.fd);
    }
}

}  // namespace

int main(int argc, char** argv) {
    std::signal(SIGPIPE, SIG_IGN);
    util::cli_flags flags(argc, argv);
    gen_config cfg;
    cfg.host = flags.get_string("host", cfg.host);
    cfg.port = static_cast<std::uint16_t>(flags.get_u64("port", cfg.port));
    cfg.threads = static_cast<int>(flags.get_u64("threads", 2));
    cfg.connections = static_cast<int>(flags.get_u64("connections", 8));
    cfg.rate = flags.get_double("rate", cfg.rate);
    cfg.duration = flags.get_double("duration", cfg.duration);
    cfg.keyspace = flags.get_u64("keyspace", cfg.keyspace);
    cfg.theta = flags.get_double("theta", cfg.theta);
    cfg.get_percent = static_cast<int>(flags.get_u64("get_percent", 80));
    cfg.erase_percent = static_cast<int>(flags.get_u64("erase_percent", 5));
    cfg.cas_percent = static_cast<int>(flags.get_u64("cas_percent", 5));
    cfg.seed = flags.get_u64("seed", 1);
    cfg.json_path = flags.get_string("json", "");
    if (cfg.threads < 1) cfg.threads = 1;
    if (cfg.connections < cfg.threads) cfg.connections = cfg.threads;

    std::vector<thread_result> results(static_cast<std::size_t>(cfg.threads));
    const std::uint64_t t0 = util::steady_now_ns();
    {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(cfg.threads));
        for (int t = 0; t < cfg.threads; ++t) {
            pool.emplace_back(generator_thread, std::cref(cfg), t,
                              std::ref(results[static_cast<std::size_t>(t)]));
        }
        for (auto& th : pool) th.join();
    }
    const double elapsed = static_cast<double>(util::steady_now_ns() - t0) / 1e9;

    thread_result total;
    for (const auto& r : results) {
        total.sent += r.sent;
        total.received += r.received;
        total.send_errors += r.send_errors;
        total.latency.merge(r.latency);
        if (r.got_stats) {
            total.server_stats = r.server_stats;
            total.got_stats = true;
        }
        total.conn_failed = total.conn_failed || r.conn_failed;
    }

    if (total.conn_failed) {
        std::fprintf(stderr, "lfrc_loadgen: could not connect to %s:%u\n",
                     cfg.host.c_str(), unsigned{cfg.port});
        return 2;
    }

    const double achieved =
        cfg.duration > 0 ? static_cast<double>(total.received) / cfg.duration : 0.0;
    const auto us = [](std::uint64_t ns) { return static_cast<double>(ns) / 1e3; };
    const std::uint64_t p50 = total.latency.percentile(0.50);
    const std::uint64_t p99 = total.latency.percentile(0.99);
    const std::uint64_t p999 = total.latency.percentile(0.999);

    std::printf("lfrc_loadgen: sent=%llu received=%llu (%.0f/s offered, %.0f/s achieved)\n"
                "  latency p50=%.1fus p99=%.1fus p99.9=%.1fus max=%.1fus mean=%.1fus\n",
                static_cast<unsigned long long>(total.sent),
                static_cast<unsigned long long>(total.received), cfg.rate, achieved,
                us(p50), us(p99), us(p999), us(total.latency.max()),
                total.latency.mean() / 1e3);
    if (total.got_stats) {
        std::printf("  server: gets=%llu hits=%llu puts=%llu erases=%llu cas_ok=%llu "
                    "cas_fail=%llu expired=%llu reclaimer_pending=%llu\n",
                    static_cast<unsigned long long>(total.server_stats.gets),
                    static_cast<unsigned long long>(total.server_stats.hits),
                    static_cast<unsigned long long>(total.server_stats.puts),
                    static_cast<unsigned long long>(total.server_stats.erases),
                    static_cast<unsigned long long>(total.server_stats.cas_ok),
                    static_cast<unsigned long long>(total.server_stats.cas_fail),
                    static_cast<unsigned long long>(total.server_stats.expired),
                    static_cast<unsigned long long>(total.server_stats.reclaimer_pending));
    }

    if (!cfg.json_path.empty()) {
        std::FILE* f = std::fopen(cfg.json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "lfrc_loadgen: cannot open %s for writing\n",
                         cfg.json_path.c_str());
            return 2;
        }
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"e11_net_tail_latency\",\n"
            "  \"open_loop\": true,\n"
            "  \"threads\": %d,\n  \"connections\": %d,\n"
            "  \"rate_offered\": %.1f,\n  \"rate_achieved\": %.1f,\n"
            "  \"duration_s\": %.3f,\n  \"elapsed_s\": %.3f,\n"
            "  \"keyspace\": %llu,\n  \"theta\": %.3f,\n"
            "  \"mix\": {\"get\": %d, \"erase\": %d, \"cas\": %d},\n"
            "  \"sent\": %llu,\n  \"received\": %llu,\n  \"send_errors\": %llu,\n"
            "  \"latency_us\": {\"p50\": %.1f, \"p99\": %.1f, \"p999\": %.1f, "
            "\"max\": %.1f, \"mean\": %.1f},\n",
            cfg.threads, cfg.connections, cfg.rate, achieved, cfg.duration, elapsed,
            static_cast<unsigned long long>(cfg.keyspace), cfg.theta, cfg.get_percent,
            cfg.erase_percent, cfg.cas_percent,
            static_cast<unsigned long long>(total.sent),
            static_cast<unsigned long long>(total.received),
            static_cast<unsigned long long>(total.send_errors), us(p50), us(p99),
            us(p999), us(total.latency.max()), total.latency.mean() / 1e3);
        std::fprintf(
            f,
            "  \"server\": {\"gets\": %llu, \"hits\": %llu, \"puts\": %llu, "
            "\"erases\": %llu, \"cas_ok\": %llu, \"cas_fail\": %llu, "
            "\"expired\": %llu, \"reclaimer_pending\": %llu}\n}\n",
            static_cast<unsigned long long>(total.server_stats.gets),
            static_cast<unsigned long long>(total.server_stats.hits),
            static_cast<unsigned long long>(total.server_stats.puts),
            static_cast<unsigned long long>(total.server_stats.erases),
            static_cast<unsigned long long>(total.server_stats.cas_ok),
            static_cast<unsigned long long>(total.server_stats.cas_fail),
            static_cast<unsigned long long>(total.server_stats.expired),
            static_cast<unsigned long long>(total.server_stats.reclaimer_pending));
        std::fclose(f);
        std::printf("wrote %s\n", cfg.json_path.c_str());
    }

    return total.received > 0 ? 0 : 1;
}
