// lfrc::net protocol — the pipelined length-prefixed binary framing shared
// by the server (lfrc_kvd) and the open-loop load generator (lfrc_loadgen).
//
// Design constraints, in order:
//   pipelining   a client may have any number of requests in flight on one
//                connection; every request carries a 64-bit id the server
//                echoes, so responses need no ordering guarantee beyond
//                per-connection FIFO (which TCP gives us anyway) and the
//                load generator can time each request individually.
//   rejection    the decoder never trusts a byte: frames carry an exact
//                per-opcode length, opcodes and statuses are validated, and
//                anything malformed is `bad_frame` — the caller's contract
//                is to close the connection (tests/test_net_proto.cpp fuzzes
//                this; the server enforces the close).
//   zero copies  encode appends to a caller-owned byte vector (the
//                connection's tick write buffer); decode reads in place from
//                the connection's read buffer and reports bytes consumed.
//
// Wire format (all integers little-endian):
//
//   frame    := u32 payload_len ; payload
//   request  := u8 op ; u8[3] zero ; u64 id ; u64 key ; op-extras
//                 put : u64 value ; u64 ttl_ns
//                 cas : u64 expected_version ; u64 value ; u64 ttl_ns
//                 get / erase / stat : (none)
//   response := u8 op ; u8 status ; u8[2] zero ; u64 id ; op-extras
//                 get  : u64 value ; u64 version     (miss: value 0, the
//                                                     witnessed version)
//                 stat : u64 x 8 (gets hits puts erases cas_ok cas_fail
//                                 expired reclaimer_pending)
//                 put / erase / cas : (none)
//
// Lengths are exact: a frame whose payload_len disagrees with its opcode's
// size is malformed even if longer — "ignore trailing junk" is how protocol
// confusion bugs ship.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace lfrc::net {

enum class op : std::uint8_t {
    get = 1,
    put = 2,
    erase = 3,
    cas = 4,
    stat = 5,
};

enum class status : std::uint8_t {
    ok = 0,
    not_found = 1,
    cas_fail = 2,
    bad_request = 3,
};

/// Frame length prefix plus the largest legal payload (a stat response).
/// Anything claiming more is malformed, so a hostile peer cannot make a
/// connection buffer an arbitrarily large "frame in progress".
inline constexpr std::uint32_t max_payload_bytes = 128;

struct request {
    net::op op = net::op::get;
    std::uint64_t id = 0;
    std::uint64_t key = 0;
    std::uint64_t value = 0;             ///< put / cas
    std::uint64_t expected_version = 0;  ///< cas
    std::uint64_t ttl_ns = 0;            ///< put / cas; 0 = never expires
};

/// The stat response payload: the store's aggregated counters plus the
/// reclamation backlog — what the CI smoke and the load generator's final
/// report read off a live server.
struct stat_counters {
    std::uint64_t gets = 0;
    std::uint64_t hits = 0;
    std::uint64_t puts = 0;
    std::uint64_t erases = 0;
    std::uint64_t cas_ok = 0;
    std::uint64_t cas_fail = 0;
    std::uint64_t expired = 0;
    std::uint64_t reclaimer_pending = 0;
};

struct response {
    net::op op = net::op::get;
    net::status st = net::status::ok;
    std::uint64_t id = 0;
    std::uint64_t value = 0;    ///< get
    std::uint64_t version = 0;  ///< get (valid on miss too: the witnessed version)
    stat_counters stats{};      ///< stat
};

enum class decode_result {
    need_more,  ///< valid so far; wait for more bytes
    ok,         ///< one frame decoded; `consumed` bytes eaten
    bad_frame,  ///< malformed; close the connection
};

namespace wire {

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline std::uint32_t get_u32(const std::uint8_t* p) noexcept {
    return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

inline std::uint64_t get_u64(const std::uint8_t* p) noexcept {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
}

}  // namespace wire

/// Exact request payload size for `o`; 0 for an invalid opcode.
inline std::uint32_t request_payload_size(op o) noexcept {
    switch (o) {
        case op::get:
        case op::erase:
        case op::stat:
            return 4 + 8 + 8;
        case op::put:
            return 4 + 8 + 8 + 16;
        case op::cas:
            return 4 + 8 + 8 + 24;
    }
    return 0;
}

/// Exact response payload size for `o`; 0 for an invalid opcode.
inline std::uint32_t response_payload_size(op o) noexcept {
    switch (o) {
        case op::get:
            return 4 + 8 + 16;
        case op::put:
        case op::erase:
        case op::cas:
            return 4 + 8;
        case op::stat:
            return 4 + 8 + 64;
    }
    return 0;
}

inline void encode_request(std::vector<std::uint8_t>& out, const request& r) {
    wire::put_u32(out, request_payload_size(r.op));
    out.push_back(static_cast<std::uint8_t>(r.op));
    out.push_back(0);
    out.push_back(0);
    out.push_back(0);
    wire::put_u64(out, r.id);
    wire::put_u64(out, r.key);
    if (r.op == op::put) {
        wire::put_u64(out, r.value);
        wire::put_u64(out, r.ttl_ns);
    } else if (r.op == op::cas) {
        wire::put_u64(out, r.expected_version);
        wire::put_u64(out, r.value);
        wire::put_u64(out, r.ttl_ns);
    }
}

inline void encode_response(std::vector<std::uint8_t>& out, const response& r) {
    wire::put_u32(out, response_payload_size(r.op));
    out.push_back(static_cast<std::uint8_t>(r.op));
    out.push_back(static_cast<std::uint8_t>(r.st));
    out.push_back(0);
    out.push_back(0);
    wire::put_u64(out, r.id);
    if (r.op == op::get) {
        wire::put_u64(out, r.value);
        wire::put_u64(out, r.version);
    } else if (r.op == op::stat) {
        wire::put_u64(out, r.stats.gets);
        wire::put_u64(out, r.stats.hits);
        wire::put_u64(out, r.stats.puts);
        wire::put_u64(out, r.stats.erases);
        wire::put_u64(out, r.stats.cas_ok);
        wire::put_u64(out, r.stats.cas_fail);
        wire::put_u64(out, r.stats.expired);
        wire::put_u64(out, r.stats.reclaimer_pending);
    }
}

namespace detail {

/// Common frame validation: header present, length sane, full payload
/// buffered, opcode legal, length exact for the opcode. On `ok`, `payload`
/// points just past the opcode-bearing header word and `consumed` covers the
/// whole frame.
template <typename SizeFn>
inline decode_result frame_check(const std::uint8_t* data, std::size_t size,
                                 SizeFn payload_size_of, const std::uint8_t*& payload,
                                 std::uint8_t& opcode, std::size_t& consumed) noexcept {
    if (size < 4) return decode_result::need_more;
    const std::uint32_t len = wire::get_u32(data);
    if (len < 4 + 8 || len > max_payload_bytes) return decode_result::bad_frame;
    if (size < 4 + len) {
        // The declared length is within bounds; we can only judge the
        // opcode/length pairing once the opcode byte is here.
        if (size >= 5) {
            const std::uint32_t expect = payload_size_of(static_cast<op>(data[4]));
            if (expect == 0 || expect != len) return decode_result::bad_frame;
        }
        return decode_result::need_more;
    }
    opcode = data[4];
    const std::uint32_t expect = payload_size_of(static_cast<op>(opcode));
    if (expect == 0 || expect != len) return decode_result::bad_frame;
    payload = data + 4;
    consumed = 4 + len;
    return decode_result::ok;
}

}  // namespace detail

/// Decode one request frame from [data, data+size). On `ok`, `out` is
/// filled and `consumed` reports the frame's total length.
inline decode_result decode_request(const std::uint8_t* data, std::size_t size,
                                    request& out, std::size_t& consumed) noexcept {
    const std::uint8_t* p = nullptr;
    std::uint8_t opcode = 0;
    const decode_result r =
        detail::frame_check(data, size, &request_payload_size, p, opcode, consumed);
    if (r != decode_result::ok) return r;
    if (p[1] != 0 || p[2] != 0 || p[3] != 0) return decode_result::bad_frame;
    out.op = static_cast<op>(opcode);
    out.id = wire::get_u64(p + 4);
    out.key = wire::get_u64(p + 12);
    out.value = 0;
    out.expected_version = 0;
    out.ttl_ns = 0;
    if (out.op == op::put) {
        out.value = wire::get_u64(p + 20);
        out.ttl_ns = wire::get_u64(p + 28);
    } else if (out.op == op::cas) {
        out.expected_version = wire::get_u64(p + 20);
        out.value = wire::get_u64(p + 28);
        out.ttl_ns = wire::get_u64(p + 36);
    }
    return decode_result::ok;
}

/// Decode one response frame; mirror of decode_request.
inline decode_result decode_response(const std::uint8_t* data, std::size_t size,
                                     response& out, std::size_t& consumed) noexcept {
    const std::uint8_t* p = nullptr;
    std::uint8_t opcode = 0;
    const decode_result r =
        detail::frame_check(data, size, &response_payload_size, p, opcode, consumed);
    if (r != decode_result::ok) return r;
    if (p[1] > static_cast<std::uint8_t>(status::bad_request) || p[2] != 0 || p[3] != 0) {
        return decode_result::bad_frame;
    }
    out.op = static_cast<op>(opcode);
    out.st = static_cast<status>(p[1]);
    out.id = wire::get_u64(p + 4);
    out.value = 0;
    out.version = 0;
    out.stats = {};
    if (out.op == op::get) {
        out.value = wire::get_u64(p + 12);
        out.version = wire::get_u64(p + 20);
    } else if (out.op == op::stat) {
        out.stats.gets = wire::get_u64(p + 12);
        out.stats.hits = wire::get_u64(p + 20);
        out.stats.puts = wire::get_u64(p + 28);
        out.stats.erases = wire::get_u64(p + 36);
        out.stats.cas_ok = wire::get_u64(p + 44);
        out.stats.cas_fail = wire::get_u64(p + 52);
        out.stats.expired = wire::get_u64(p + 60);
        out.stats.reclaimer_pending = wire::get_u64(p + 68);
    }
    return decode_result::ok;
}

}  // namespace lfrc::net
