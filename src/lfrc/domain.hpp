// LFRC core: the paper's methodology as a typed C++ library.
//
// `basic_domain<Engine>` fixes one DCAS engine for a family of managed
// objects and provides the six LFRC operations of Figure 2:
//
//   paper name            here
//   ------------------    ------------------------------------------
//   LFRCLoad(A, p)        domain::load(field, local)
//   LFRCStore(A, v)       domain::store(field, v)
//   LFRCStoreAlloc(A, v)  domain::store_alloc(field, make<T>(...))
//   LFRCCopy(p, v)        domain::copy(local, v)   (and local_ptr op=)
//   LFRCDestroy(v)        domain::destroy(v)       (and ~local_ptr)
//   LFRCCAS(...)          domain::cas(field, old, new)
//   LFRCDCAS(...)         domain::dcas(f0, f1, o0, o1, n0, n1)
//   add_to_rc(p, v)       domain::add_to_rc(p, v)
//
// Beyond Figure 2, `load_borrowed(A)` returns a `borrow_ptr<T>`: an
// epoch-pinned, reference-count-free read of a shared pointer for
// short-lived use (container traversals, retry loops). A borrow never
// touches the pointee's count; `borrow_ptr::promote()` upgrades to a
// counted `local_ptr` with an increment-if-nonzero CAS when the reference
// must outlive the pinned section. See docs/ALGORITHMS.md §8 for the
// correctness argument and the usage rule (borrows may read; any engine
// operation that *writes* an object's fields still requires a counted —
// or atomically liveness-checked — reference to that object).
//
// The §3 transformation steps map to library pieces: step 1 (rc field) is
// the `object` base class; step 2 (LFRCDestroy) is generated from
// `lfrc_visit_children`; step 6 (local pointer management) is automated by
// `local_ptr<T>`, the smart pointer the paper's reference [2] alludes to.
//
// Two deliberate deviations from the paper's pseudocode, both documented in
// DESIGN.md §2/§4:
//
//  * Physical frees are deferred through the global epoch domain. The paper
//    may read `a->rc` of an object that has just been freed and rely on the
//    DCAS failing (a benign read on hardware with type-stable/mapped
//    memory); portable C++ forbids touching freed storage, and our software
//    DCAS additionally has *helpers* that may CAS a cell of a retiring
//    object after its owner finished. Deferring only the physical free —
//    logical destruction still happens exactly when the count hits zero —
//    preserves every claimed property; the footprint still shrinks as
//    epochs advance.
//
//  * `destroy` is iterative (explicit worklist), not recursive: the paper's
//    recursion overflows the stack on a million-node list. Semantics are
//    identical; see also incremental.hpp for the §7 extension that bounds
//    destruction work per call.
#pragma once

#include <cassert>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "alloc/counted.hpp"
#include "dcas/cell.hpp"
#include "dcas/engine.hpp"
#include "lfrc/counters.hpp"
#include "reclaim/epoch.hpp"

namespace lfrc {

template <dcas::dcas_engine Engine>
class basic_domain {
  public:
    using engine = Engine;

    class object;
    template <typename T>
    class ptr_field;
    template <typename T>
    class local_ptr;
    template <typename T>
    class borrow_ptr;

    /// Receives the children of an object being destroyed (step 2).
    class child_visitor {
      public:
        virtual void on_child(object* child) = 0;

      protected:
        ~child_visitor() = default;
    };

    /// Base class for every LFRC-managed object in this domain (§3 step 1:
    /// the rc field, set to 1 at construction for the pointer returned by
    /// `make`).
    class object : public alloc::counted_base {
      public:
        object(const object&) = delete;
        object& operator=(const object&) = delete;

        /// Diagnostic read of the current reference count (racy by nature).
        std::uint64_t ref_count() const noexcept {
            return dcas::decode_count(
                const_cast<dcas::cell&>(rc_).raw().load(std::memory_order_acquire));
        }

      protected:
        object() noexcept { counters().add_created(1); }
        virtual ~object() = default;

      private:
        friend class basic_domain;
        /// Report every pointer field's current value (exclusive access:
        /// called only when the object is garbage). Step 2 of §3.
        virtual void lfrc_visit_children(child_visitor& v) noexcept = 0;

        dcas::cell rc_{dcas::encode_count(1)};
    };

    /// A shared memory location containing a pointer (the `*A` of Figure 2).
    /// Null-initialized per §3 step 6. Not copyable or movable: DCAS
    /// identity is the cell's address.
    template <typename T>
    class ptr_field {
        // (T may be incomplete here — self-referential node types — so the
        // managed-object requirement is asserted in member functions.)
      public:
        ptr_field() noexcept = default;
        ptr_field(const ptr_field&) = delete;
        ptr_field& operator=(const ptr_field&) = delete;

        /// Raw decoded value. Safe only with exclusive access (during
        /// destruction, construction before publication, or quiescence).
        T* exclusive_get() const noexcept {
            static_assert(std::is_base_of_v<object, T>,
                          "ptr_field may only hold LFRC-managed objects");
            const std::uint64_t v =
                const_cast<dcas::cell&>(cell_).raw().load(std::memory_order_acquire);
            assert(dcas::is_clean_value(v) &&
                   "exclusive_get observed an in-flight engine descriptor");
            return dcas::decode_ptr<T>(v);
        }

      private:
        friend class basic_domain;
        dcas::cell cell_{0};
    };

    /// A shared boolean flag living in an engine cell, so it can be a DCAS
    /// operand alongside pointer fields (the same move Figure 2's LFRCLoad
    /// makes with the rc word). Used by structures whose deletion protocol
    /// needs "pointer + mark" atomicity without violating LFRC compliance
    /// (no bits smuggled into pointers) — see containers::lfrc_list_set.
    class flag_field {
      public:
        flag_field() noexcept = default;
        explicit flag_field(bool initial) noexcept
            : cell_(dcas::encode_count(initial ? 1 : 0)) {}
        flag_field(const flag_field&) = delete;
        flag_field& operator=(const flag_field&) = delete;

        bool load() const {
            return dcas::decode_count(Engine::read(const_cast<dcas::cell&>(cell_))) != 0;
        }

        bool cas(bool expected, bool desired) {
            return Engine::cas(cell_, encode(expected), encode(desired));
        }

      private:
        friend class basic_domain;
        static std::uint64_t encode(bool b) noexcept {
            return dcas::encode_count(b ? 1 : 0);
        }
        dcas::cell cell_{dcas::encode_count(0)};
    };

    /// DCAS over a shared pointer and a shared flag, with LFRC count
    /// bookkeeping on the pointer half only (the flag is not a reference).
    template <typename T>
    static bool dcas_ptr_flag(ptr_field<T>& A, flag_field& F, T* old0, bool old_flag,
                              T* new0, bool new_flag) {
        reclaim::epoch_domain::guard pin(reclaim::epoch_domain::global());
        if (new0 != nullptr) add_to_rc(new0, 1);
        if (Engine::dcas(A.cell_, F.cell_, dcas::encode_ptr(old0),
                         flag_field::encode(old_flag), dcas::encode_ptr(new0),
                         flag_field::encode(new_flag))) {
            destroy(old0);
            return true;
        }
        destroy(new0);
        return false;
    }

    /// A local pointer variable (the `*p` of Figure 2), automating §3 step
    /// 6: null-initialized, LFRCCopy on assignment, LFRCDestroy on scope
    /// exit.
    template <typename T>
    class local_ptr {
      public:
        local_ptr() noexcept = default;

        local_ptr(const local_ptr& other) noexcept : p_(other.p_) {
            if (p_ != nullptr) add_to_rc(p_, 1);
        }
        local_ptr(local_ptr&& other) noexcept : p_(other.p_) { other.p_ = nullptr; }

        local_ptr& operator=(const local_ptr& other) noexcept {
            copy(*this, other.p_);
            return *this;
        }
        local_ptr& operator=(local_ptr&& other) noexcept {
            if (this != &other) {
                destroy(p_);
                p_ = other.p_;
                other.p_ = nullptr;
            }
            return *this;
        }

        ~local_ptr() { destroy(p_); }

        /// Adopt a pointer whose +1 the caller already owns (e.g. the count
        /// a fresh object is born with).
        static local_ptr adopt(T* p) noexcept {
            local_ptr lp;
            lp.p_ = p;
            return lp;
        }

        /// Give up ownership without decrementing.
        T* release() noexcept { return std::exchange(p_, nullptr); }

        void reset() noexcept {
            destroy(p_);
            p_ = nullptr;
        }

        T* get() const noexcept { return p_; }
        T* operator->() const noexcept { return p_; }
        T& operator*() const noexcept { return *p_; }
        explicit operator bool() const noexcept { return p_ != nullptr; }

        friend bool operator==(const local_ptr& a, const local_ptr& b) noexcept {
            return a.p_ == b.p_;
        }
        friend bool operator==(const local_ptr& a, const T* b) noexcept { return a.p_ == b; }

      private:
        friend class basic_domain;
        T* p_ = nullptr;
    };

    /// A borrowed local reference: reads a shared pointer WITHOUT touching
    /// the pointee's reference count, pinning the caller's slot in the
    /// global epoch domain instead. While the pin is held, nothing retired
    /// during (or after) the pin can be physically freed, so dereferencing
    /// the borrow is safe even if the object has since been logically
    /// destroyed (count zero, children decremented) — its storage and
    /// payload are untouched until the deferred free runs.
    ///
    /// Rules of use (docs/ALGORITHMS.md §8):
    ///  * borrows are for SHORT-LIVED, same-thread references: traversals,
    ///    retry loops. A held borrow stalls epoch advance exactly like an
    ///    epoch guard; do not park inside one or ship one across threads.
    ///  * a borrow may READ the pointee (fields via further load_borrowed,
    ///    plain data members, flag_field::load). It must NOT be used to
    ///    justify an engine write to the pointee's cells, nor passed to an
    ///    operation that increments counts on its behalf (store/copy/cas
    ///    new-values): the pointee may already be logically dead. Call
    ///    promote() first.
    ///  * promote() upgrades to a counted local_ptr iff the object is still
    ///    logically alive; a count of zero is absorbing (no operation ever
    ///    resurrects a dead object), so increment-if-nonzero via plain CAS
    ///    is sufficient where LFRCLoad needed DCAS.
    template <typename T>
    class borrow_ptr {
      public:
        borrow_ptr() noexcept = default;

        borrow_ptr(const borrow_ptr& other) noexcept
            : p_(other.p_), pinned_(other.pinned_) {
            if (pinned_) reclaim::epoch_domain::global().enter();
        }
        borrow_ptr(borrow_ptr&& other) noexcept : p_(other.p_), pinned_(other.pinned_) {
            other.p_ = nullptr;
            other.pinned_ = false;
        }

        borrow_ptr& operator=(const borrow_ptr& other) noexcept {
            if (this == &other) return *this;
            // Acquire the new pin before dropping ours so a traversal that
            // reassigns through a chain never fully unpins mid-walk.
            if (other.pinned_) reclaim::epoch_domain::global().enter();
            const bool was_pinned = pinned_;
            p_ = other.p_;
            pinned_ = other.pinned_;
            if (was_pinned) reclaim::epoch_domain::global().exit();
            return *this;
        }
        borrow_ptr& operator=(borrow_ptr&& other) noexcept {
            if (this == &other) return *this;
            const bool was_pinned = pinned_;
            p_ = other.p_;
            pinned_ = other.pinned_;
            other.p_ = nullptr;
            other.pinned_ = false;
            if (was_pinned) reclaim::epoch_domain::global().exit();
            return *this;
        }

        ~borrow_ptr() { reset(); }

        /// Drop the borrow and release its epoch pin.
        void reset() noexcept {
            if (pinned_) {
                reclaim::epoch_domain::global().exit();
                pinned_ = false;
            }
            p_ = nullptr;
        }

        /// Upgrade to a counted reference iff the object is still logically
        /// alive. Returns a null local_ptr when the pointee is null or its
        /// count already reached zero (it is being torn down; the caller
        /// must re-read the shared pointer and retry).
        local_ptr<T> promote() const {
            if (p_ == nullptr) return {};
            assert(pinned_ && "promote on a moved-from/reset borrow");
            dcas::cell& rc = static_cast<object*>(p_)->rc_;
            for (;;) {
                const std::uint64_t raw = Engine::read(rc);
                const std::uint64_t count = dcas::decode_count(raw);
                if (count == 0) return {};  // dead; zero is absorbing
                if (Engine::cas(rc, raw, dcas::encode_count(count + 1))) {
                    counters().add_increments(1);
                    return local_ptr<T>::adopt(p_);
                }
            }
        }

        T* get() const noexcept { return p_; }
        T* operator->() const noexcept { return p_; }
        T& operator*() const noexcept { return *p_; }
        explicit operator bool() const noexcept { return p_ != nullptr; }

        friend bool operator==(const borrow_ptr& a, const borrow_ptr& b) noexcept {
            return a.p_ == b.p_;
        }
        friend bool operator==(const borrow_ptr& a, const T* b) noexcept {
            return a.p_ == b;
        }

      private:
        friend class basic_domain;
        T* p_ = nullptr;
        bool pinned_ = false;
    };

    /// LFRCLoadBorrowed: read *A into an epoch-pinned borrow — no count
    /// traffic at all, so N readers of one hot pointer scale instead of
    /// serializing on its count word. The pin is taken BEFORE the read, so
    /// every retire of the read value (and of anything reachable from it)
    /// happens at an epoch our pin blocks from expiring.
    template <typename T>
    static borrow_ptr<T> load_borrowed(ptr_field<T>& A) {
        borrow_ptr<T> out;
        reclaim::epoch_domain::global().enter();
        out.pinned_ = true;
        out.p_ = dcas::decode_ptr<T>(Engine::read(A.cell_));
        counters().add_borrows(1);
        return out;
    }

    /// Raw engine-mediated read of *A with NO protection of the result.
    /// For identity comparison and CAS expected values only — never
    /// dereference the returned pointer (the smr policy layer's `peek`).
    template <typename T>
    static T* peek(ptr_field<T>& A) {
        return dcas::decode_ptr<T>(Engine::read(A.cell_));
    }

    /// Increment-if-nonzero upgrade of a raw pointer to a counted
    /// local_ptr — borrow_ptr::promote without the borrow object. The
    /// caller must hold an epoch pin taken BEFORE `p` was read from a
    /// shared field (so the storage is still mapped); a count of zero is
    /// absorbing, so a null return means the object is logically dead and
    /// the field it was read from has changed (or will: its own reference
    /// is being dropped). Used by smr::borrowed to build its strong path.
    template <typename T>
    static local_ptr<T> try_promote(T* p) {
        if (p == nullptr) return {};
        dcas::cell& rc = static_cast<object*>(p)->rc_;
        for (;;) {
            const std::uint64_t raw = Engine::read(rc);
            const std::uint64_t count = dcas::decode_count(raw);
            if (count == 0) return {};  // dead; zero is absorbing
            if (Engine::cas(rc, raw, dcas::encode_count(count + 1))) {
                counters().add_increments(1);
                return local_ptr<T>::adopt(p);
            }
        }
    }

    /// Create a managed object; its birth count of 1 is owned by the
    /// returned local_ptr.
    template <typename T, typename... Args>
    static local_ptr<T> make(Args&&... args) {
        static_assert(std::is_base_of_v<object, T>);
        // lfrc-lint: arena-route — object : counted_base
        return local_ptr<T>::adopt(new T(std::forward<Args>(args)...));
    }

    // ---- Figure 2 operations -------------------------------------------------

    /// add_to_rc: CAS-loop delta on the count; returns the *old* count.
    /// Safe only when the caller knows a counted reference keeps the object
    /// alive (Figure 2's usage discipline).
    static std::uint64_t add_to_rc(object* p, std::int64_t delta) noexcept {
        assert(p != nullptr);
        for (;;) {
            const std::uint64_t old_raw = Engine::read(p->rc_);
            const std::uint64_t old_count = dcas::decode_count(old_raw);
            assert(static_cast<std::int64_t>(old_count) + delta >= 0 &&
                   "reference count underflow");
            const std::uint64_t new_raw =
                dcas::encode_count(static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(old_count) + delta));
            if (Engine::cas(p->rc_, old_raw, new_raw)) {
                auto& ctr = counters();
                if (delta > 0) {
                    ctr.add_increments(static_cast<std::uint64_t>(delta));
                } else {
                    ctr.add_decrements(static_cast<std::uint64_t>(-delta));
                }
                return old_count;
            }
        }
    }

    /// LFRCLoad: load *A into dest, acquiring a counted reference. The DCAS
    /// increments the pointee's count only while *A still points at it —
    /// the step the paper shows cannot be done safely with CAS alone.
    template <typename T>
    static void load(ptr_field<T>& A, local_ptr<T>& dest) {
        reclaim::epoch_domain::guard pin(reclaim::epoch_domain::global());
        T* old_dest = dest.p_;  // line 1: remember for destruction (line 12)
        for (;;) {
            const std::uint64_t raw = Engine::read(A.cell_);  // line 4
            if (raw == 0) {                                   // lines 5..7
                dest.p_ = nullptr;
                break;
            }
            T* obj = dcas::decode_ptr<T>(raw);
            // line 8: the object may already be logically dead (then *A has
            // changed and the DCAS below fails); the epoch pin guarantees
            // its storage is still mapped, which the paper gets for free
            // from its hardware assumptions.
            dcas::cell& rc = static_cast<object*>(obj)->rc_;
            const std::uint64_t r = Engine::read(rc);
            const std::uint64_t r_plus =
                dcas::encode_count(dcas::decode_count(r) + 1);
            if (Engine::dcas(A.cell_, rc, raw, r, raw, r_plus)) {  // line 9
                counters().add_increments(1);
                dest.p_ = obj;  // line 10
                break;
            }
        }
        destroy(old_dest);  // line 12
    }

    /// Convenience: load and return a fresh local_ptr.
    template <typename T>
    static local_ptr<T> load_get(ptr_field<T>& A) {
        local_ptr<T> out;
        load(A, out);
        return out;
    }

#if defined(LFRC_ENABLE_MUTATIONS)
    /// MUTANT of load() for the sim harness's self-test ONLY (never compiled
    /// into production or the normal test suite): the Valois-style bug the
    /// paper's §2 uses to motivate DCAS. It increments the pointee's count
    /// with a plain CAS on the count word alone, without re-validating that
    /// *A still points at the object — so a racing final release between
    /// line 4's read and the increment resurrects a logically dead object
    /// (0 -> 1), and the later matching destroy retires it a second time.
    /// tests/sim/sim_mutation_test.cpp asserts the schedule explorer
    /// actually finds this within its budget.
    template <typename T>
    static void load_mutated_plain_cas(ptr_field<T>& A, local_ptr<T>& dest) {
        reclaim::epoch_domain::guard pin(reclaim::epoch_domain::global());
        T* old_dest = dest.p_;
        for (;;) {
            const std::uint64_t raw = Engine::read(A.cell_);
            if (raw == 0) {
                dest.p_ = nullptr;
                break;
            }
            T* obj = dcas::decode_ptr<T>(raw);
            dcas::cell& rc = static_cast<object*>(obj)->rc_;
            const std::uint64_t r = Engine::read(rc);
            // BUG (intentional): CAS instead of the Figure-2 DCAS — nothing
            // ties the increment to *A's current value.
            if (Engine::cas(rc, r, dcas::encode_count(dcas::decode_count(r) + 1))) {
                counters().add_increments(1);
                dest.p_ = obj;
                break;
            }
        }
        destroy(old_dest);
    }
#endif

    /// LFRCStore: store v into *A (lines 21..28).
    template <typename T>
    static void store(ptr_field<T>& A, T* v) {
        reclaim::epoch_domain::guard pin(reclaim::epoch_domain::global());
        if (v != nullptr) add_to_rc(v, 1);  // lines 22..23
        for (;;) {
            const std::uint64_t old_raw = Engine::read(A.cell_);  // line 25
            if (Engine::cas(A.cell_, old_raw, dcas::encode_ptr(v))) {  // line 26
                destroy(dcas::decode_ptr<T>(old_raw));  // line 27
                return;
            }
        }
    }

    template <typename T>
    static void store(ptr_field<T>& A, const local_ptr<T>& v) {
        store(A, v.get());
    }

    /// LFRCStoreAlloc (Figure 1 line 35): store a fresh object, transferring
    /// its birth count to the shared pointer instead of incrementing.
    template <typename T>
    static void store_alloc(ptr_field<T>& A, local_ptr<T>&& fresh) {
        reclaim::epoch_domain::guard pin(reclaim::epoch_domain::global());
        T* v = fresh.release();  // we now own its +1
        for (;;) {
            const std::uint64_t old_raw = Engine::read(A.cell_);
            if (Engine::cas(A.cell_, old_raw, dcas::encode_ptr(v))) {
                destroy(dcas::decode_ptr<T>(old_raw));
                return;
            }
        }
    }

    /// LFRCCopy: local-to-local assignment (lines 29..32).
    template <typename T>
    static void copy(local_ptr<T>& dst, T* w) noexcept {
        if (w != nullptr) add_to_rc(w, 1);  // lines 29..30
        destroy(dst.p_);                    // line 31
        dst.p_ = w;                         // line 32
    }

    template <typename T>
    static void copy(local_ptr<T>& dst, const local_ptr<T>& w) noexcept {
        copy(dst, w.get());
    }

    /// LFRCCAS: CAS on a shared pointer with count bookkeeping.
    template <typename T>
    static bool cas(ptr_field<T>& A, T* old0, T* new0) {
        reclaim::epoch_domain::guard pin(reclaim::epoch_domain::global());
        if (new0 != nullptr) add_to_rc(new0, 1);
        if (Engine::cas(A.cell_, dcas::encode_ptr(old0), dcas::encode_ptr(new0))) {
            destroy(old0);
            return true;
        }
        destroy(new0);
        return false;
    }

    /// LFRCDCAS (lines 33..39): DCAS on two shared pointers with count
    /// bookkeeping. Counts of new values are raised before the attempt and
    /// compensated on failure; counts of the two destroyed pointers are
    /// dropped on success.
    template <typename T, typename U>
    static bool dcas(ptr_field<T>& A0, ptr_field<U>& A1, T* old0, U* old1, T* new0,
                     U* new1) {
        reclaim::epoch_domain::guard pin(reclaim::epoch_domain::global());
        if (new0 != nullptr) add_to_rc(new0, 1);  // line 33
        if (new1 != nullptr) add_to_rc(new1, 1);  // line 34
        if (Engine::dcas(A0.cell_, A1.cell_, dcas::encode_ptr(old0), dcas::encode_ptr(old1),
                         dcas::encode_ptr(new0), dcas::encode_ptr(new1))) {  // line 35
            destroy(old0);  // line 36
            destroy(old1);
            return true;
        }
        destroy(new0);  // line 38
        destroy(new1);
        return false;
    }

    /// LFRCDestroy (lines 13..15), iterative. Decrements; at zero, visits
    /// children (recursively, via the worklist) and retires the object.
    static void destroy(object* p) {
        if (p == nullptr) return;
        if (add_to_rc(p, -1) != 1) return;  // line 13

        struct sink final : child_visitor {
            std::vector<object*> work;
            void on_child(object* child) override {
                if (child != nullptr) work.push_back(child);
            }
        } children;

        retire_garbage(p, children);
        while (!children.work.empty()) {  // line 14, flattened
            object* child = children.work.back();
            children.work.pop_back();
            if (add_to_rc(child, -1) == 1) retire_garbage(child, children);
        }
    }

    /// Variadic shorthand used throughout Figure 1 ("a call to LFRCDestroy
    /// with multiple arguments is shorthand for calling it once with each").
    template <typename... Ts>
    static void destroy_all(Ts*... ptrs) {
        (destroy(static_cast<object*>(ptrs)), ...);
    }

    // ---- Load-linked / store-conditional extension ---------------------------
    //
    // §2.1: "it should be straightforward to extend our methodology to
    // support other operations such as load-linked and store-conditional."
    // An ll_field pairs the pointer cell with a version cell; every write
    // bumps the version, and store_conditional DCASes (pointer, version) so
    // it succeeds iff no write intervened since the load_linked — true
    // LL/SC semantics (no ABA) up to 62-bit version wrap.

    /// Token witnessing an ll_field's version at load_linked time.
    struct link_token {
        std::uint64_t version = 0;
    };

    template <typename T>
    class ll_field {
      public:
        ll_field() noexcept = default;
        ll_field(const ll_field&) = delete;
        ll_field& operator=(const ll_field&) = delete;

        /// Raw decoded pointer. Safe only with exclusive access — the same
        /// contract as ptr_field::exclusive_get. Objects whose
        /// lfrc_visit_children must report an ll_field's pointee use this.
        T* exclusive_get() const noexcept {
            static_assert(std::is_base_of_v<object, T>,
                          "ll_field may only hold LFRC-managed objects");
            const std::uint64_t v =
                const_cast<dcas::cell&>(ptr_).raw().load(std::memory_order_acquire);
            assert(dcas::is_clean_value(v) &&
                   "exclusive_get observed an in-flight engine descriptor");
            return dcas::decode_ptr<T>(v);
        }

      private:
        friend class basic_domain;
        dcas::cell ptr_{0};
        dcas::cell version_{dcas::encode_count(0)};
    };

    /// LFRCLoadLinked: counted load plus a version witness for a later
    /// store_conditional.
    template <typename T>
    static link_token load_linked(ll_field<T>& A, local_ptr<T>& dest) {
        reclaim::epoch_domain::guard pin(reclaim::epoch_domain::global());
        T* old_dest = dest.p_;
        link_token token;
        for (;;) {
            token.version = dcas::decode_count(Engine::read(A.version_));
            const std::uint64_t raw = Engine::read(A.ptr_);
            if (raw == 0) {
                // Pair (version, null) must be consistent: re-validate.
                if (dcas::decode_count(Engine::read(A.version_)) != token.version) continue;
                dest.p_ = nullptr;
                break;
            }
            T* obj = dcas::decode_ptr<T>(raw);
            dcas::cell& rc = static_cast<object*>(obj)->rc_;
            const std::uint64_t r = Engine::read(rc);
            if (Engine::dcas(A.ptr_, rc, raw, r,
                             raw, dcas::encode_count(dcas::decode_count(r) + 1))) {
                counters().add_increments(1);
                // The pointer was unchanged at the DCAS; if the version
                // also still matches, the token is coherent with the value.
                if (dcas::decode_count(Engine::read(A.version_)) != token.version) {
                    destroy(obj);  // stale pairing: give the count back, retry
                    continue;
                }
                dest.p_ = obj;
                break;
            }
        }
        destroy(old_dest);
        return token;
    }

    /// Borrowed read of an ll_field: an epoch-pinned, count-free snapshot of
    /// the (pointer, version) pair. The validate loop re-reads the version
    /// after the pointer so the pair is coherent — the returned version is
    /// the one under which the returned pointer was the field's value. Same
    /// usage rules as every borrow (reads only; promote before writes); pair
    /// the version with a later counted load_linked + store_conditional to
    /// get an optimistic read / conditional write protocol with zero count
    /// traffic on the read side (the store's versioned get/cas).
    template <typename T>
    static borrow_ptr<T> load_borrowed(ll_field<T>& A,
                                       std::uint64_t* version_out = nullptr) {
        borrow_ptr<T> out;
        reclaim::epoch_domain::global().enter();
        out.pinned_ = true;
        for (;;) {
            const std::uint64_t v = dcas::decode_count(Engine::read(A.version_));
            const std::uint64_t raw = Engine::read(A.ptr_);
            if (dcas::decode_count(Engine::read(A.version_)) != v) continue;
            out.p_ = dcas::decode_ptr<T>(raw);
            if (version_out != nullptr) *version_out = v;
            break;
        }
        counters().add_borrows(1);
        return out;
    }

    /// LFRCStoreConditional: store v iff no write hit A since `token`.
    /// `old0` is the value the caller load_linked (needed for the DCAS and
    /// the count bookkeeping). Returns false — with counts restored — on
    /// any intervening write, including ABA rewrites.
    template <typename T>
    static bool store_conditional(ll_field<T>& A, link_token token, T* old0, T* new0) {
        reclaim::epoch_domain::guard pin(reclaim::epoch_domain::global());
        if (new0 != nullptr) add_to_rc(new0, 1);
        if (Engine::dcas(A.ptr_, A.version_, dcas::encode_ptr(old0),
                         dcas::encode_count(token.version), dcas::encode_ptr(new0),
                         dcas::encode_count(token.version + 1))) {
            destroy(old0);
            return true;
        }
        destroy(new0);
        return false;
    }

    /// store_conditional that additionally requires a flag to hold a given
    /// value AT the write's linearization point (a 3-word CASN over ptr,
    /// version, and the flag cell). The store subsystem uses this to install
    /// values only into entries that are still live: a recheck-after-write
    /// protocol can let a value be transiently visible in an entry a racing
    /// eraser already claimed — visible, then silently gone with no erase to
    /// account for it. Making liveness part of the write itself closes that
    /// window. Count bookkeeping is store_conditional's exactly.
    template <typename T>
    static bool store_conditional_if_flag(ll_field<T>& A, link_token token, T* old0,
                                          T* new0, flag_field& F, bool flag_required) {
        reclaim::epoch_domain::guard pin(reclaim::epoch_domain::global());
        if (new0 != nullptr) add_to_rc(new0, 1);
        typename Engine::casn_op ops[3] = {
            {&A.ptr_, dcas::encode_ptr(old0), dcas::encode_ptr(new0)},
            {&A.version_, dcas::encode_count(token.version),
             dcas::encode_count(token.version + 1)},
            {&F.cell_, flag_field::encode(flag_required),
             flag_field::encode(flag_required)},
        };
        if (Engine::casn(ops, 3)) {
            destroy(old0);
            return true;
        }
        destroy(new0);
        return false;
    }

    /// Atomically claim an ll_field's value AND raise a flag: the field goes
    /// old0 -> null (version bumped) while F goes false -> true, as one CASN.
    /// This is the eraser's linearization point — the value it witnessed via
    /// load_linked is removed in the same instant the entry is marked dead,
    /// so no later writer can slip a value into the entry between the
    /// snapshot and the mark. On success the field's reference to old0 is
    /// dropped (the caller's own counted reference is untouched).
    template <typename T>
    static bool claim_and_set_flag(ll_field<T>& A, link_token token, T* old0,
                                   flag_field& F) {
        reclaim::epoch_domain::guard pin(reclaim::epoch_domain::global());
        typename Engine::casn_op ops[3] = {
            {&A.ptr_, dcas::encode_ptr(old0), 0},
            {&A.version_, dcas::encode_count(token.version),
             dcas::encode_count(token.version + 1)},
            {&F.cell_, flag_field::encode(false), flag_field::encode(true)},
        };
        if (Engine::casn(ops, 3)) {
            destroy(old0);
            return true;
        }
        return false;
    }

    /// Unconditional store into an ll_field (bumps the version, so it
    /// invalidates outstanding links). Used for initialization/teardown.
    template <typename T>
    static void ll_store(ll_field<T>& A, T* v) {
        reclaim::epoch_domain::guard pin(reclaim::epoch_domain::global());
        if (v != nullptr) add_to_rc(v, 1);
        for (;;) {
            const std::uint64_t ver = Engine::read(A.version_);
            const std::uint64_t old_raw = Engine::read(A.ptr_);
            if (Engine::dcas(A.ptr_, A.version_, old_raw, ver, dcas::encode_ptr(v),
                             dcas::encode_count(dcas::decode_count(ver) + 1))) {
                destroy(dcas::decode_ptr<T>(old_raw));
                return;
            }
        }
    }

    /// Extension hook (cycle_collector.hpp): enumerate the children of an
    /// object. Requires exclusive access to the object's fields — i.e. a
    /// quiescent moment — since the fields are read without engine
    /// mediation.
    static void visit_children_quiescent(object* p, child_visitor& v) {
        p->lfrc_visit_children(v);
    }

    /// Extension hook (incremental.hpp, cycle_collector.hpp): take a dead
    /// object — its count is already zero and the caller owns it — report
    /// its children to `children` WITHOUT decrementing them, and retire its
    /// storage. The caller is responsible for the children's decrements.
    static void collect_children_and_retire(object* p, child_visitor& children) {
        retire_garbage(p, children);
    }

    static domain_counters& counters() noexcept {
        static domain_counters c;
        return c;
    }

  private:
    /// Collect children of a dead object and hand its storage to the epoch
    /// domain (line 15's `delete`, deferred — see the header comment).
    static void retire_garbage(object* p, child_visitor& children) {
        p->lfrc_visit_children(children);
        counters().add_destroyed(1);
        reclaim::epoch_domain::global().retire(
            p, [](void* q) { delete static_cast<object*>(q); });  // lfrc-lint: arena-route
    }
};

}  // namespace lfrc
