// Paper-literal facade: the exact operation names of Figure 2 / Section 2.2,
// expressed over a basic_domain. Exists for fidelity — library code should
// prefer the domain's snake_case operations — and is what
// tests/test_paper_api.cpp exercises line-by-line against Figure 2.
//
// Signatures follow the paper's conventions: `A` is a pointer to a shared
// location containing a pointer; `p` is a pointer to a local pointer
// variable; `v`/`old*`/`new*` are pointer values.
#pragma once

#include "lfrc/domain.hpp"

namespace lfrc {

template <typename Domain>
struct paper_api {
    template <typename T>
    using shared_t = typename Domain::template ptr_field<T>;
    template <typename T>
    using local_t = typename Domain::template local_ptr<T>;

    /// LFRCLoad(A, p): load the value from *A into *p.
    template <typename T>
    static void LFRCLoad(shared_t<T>* A, local_t<T>* p) {
        Domain::load(*A, *p);
    }

    /// LFRCStore(A, v): store pointer value v into *A.
    template <typename T>
    static void LFRCStore(shared_t<T>* A, const local_t<T>& v) {
        Domain::store(*A, v.get());
    }

    template <typename T>
    static void LFRCStore(shared_t<T>* A, T* v) {
        Domain::store(*A, v);
    }

    /// LFRCStoreAlloc(A, new T): like LFRCStore but does not increment the
    /// count of the (freshly allocated) object — Figure 1, line 35.
    template <typename T>
    static void LFRCStoreAlloc(shared_t<T>* A, local_t<T>&& fresh) {
        Domain::store_alloc(*A, std::move(fresh));
    }

    /// LFRCCopy(p, v): assign pointer value v to the local variable *p.
    template <typename T>
    static void LFRCCopy(local_t<T>* p, const local_t<T>& v) {
        Domain::copy(*p, v.get());
    }

    template <typename T>
    static void LFRCCopy(local_t<T>* p, T* v) {
        Domain::copy(*p, v);
    }

    /// LFRCDestroy(v...): destroy local pointer value(s) about to go away.
    /// "A call with multiple arguments is shorthand for one call per
    /// argument" (Figure 1 caption).
    template <typename... Ts>
    static void LFRCDestroy(Ts*... vs) {
        Domain::destroy_all(vs...);
    }

    /// LFRCCAS(A0, old0, new0): the obvious simplification of LFRCDCAS.
    template <typename T>
    static bool LFRCCAS(shared_t<T>* A0, T* old0, T* new0) {
        return Domain::cas(*A0, old0, new0);
    }

    /// LFRCDCAS(A0, A1, old0, old1, new0, new1).
    template <typename T, typename U>
    static bool LFRCDCAS(shared_t<T>* A0, shared_t<U>* A1, T* old0, U* old1, T* new0,
                         U* new1) {
        return Domain::dcas(*A0, *A1, old0, old1, new0, new1);
    }

    /// add_to_rc(p, v): atomic count adjustment; returns the old count.
    static long add_to_rc(typename Domain::object* p, int v) {
        return static_cast<long>(Domain::add_to_rc(p, v));
    }
};

}  // namespace lfrc
