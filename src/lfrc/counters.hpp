// Observability counters for the LFRC core: every reference-count increment
// and decrement, object construction and destruction, and borrowed
// (epoch-protected, count-free) loads. Tests use them to check the paper's
// weakened refcount invariants (§1); benchmarks report them as sanity
// columns.
//
// The counters are striped per thread-registry slot: the four hot updates
// sit on the LFRC fast paths (every copy/destroy), and a single shared
// cache line of atomics would reintroduce exactly the contention the rest
// of the library works to avoid. Each slot gets its own padded stripe;
// `snapshot()` aggregates across slots. Slots are recycled between threads,
// so stripes only ever accumulate — sums stay exact across thread churn.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/cacheline.hpp"
#include "util/thread_registry.hpp"

namespace lfrc {

class domain_counters {
  public:
    struct snapshot_t {
        std::uint64_t increments;
        std::uint64_t decrements;
        std::uint64_t objects_created;
        std::uint64_t objects_destroyed;
        std::uint64_t borrows;
    };

    void add_increments(std::uint64_t n) noexcept {
        stripe().increments.fetch_add(n, std::memory_order_relaxed);
    }
    void add_decrements(std::uint64_t n) noexcept {
        stripe().decrements.fetch_add(n, std::memory_order_relaxed);
    }
    void add_created(std::uint64_t n) noexcept {
        stripe().objects_created.fetch_add(n, std::memory_order_relaxed);
    }
    void add_destroyed(std::uint64_t n) noexcept {
        stripe().objects_destroyed.fetch_add(n, std::memory_order_relaxed);
    }
    void add_borrows(std::uint64_t n) noexcept {
        stripe().borrows.fetch_add(n, std::memory_order_relaxed);
    }

    snapshot_t snapshot() const noexcept {
        snapshot_t s{0, 0, 0, 0, 0};
        const std::size_t high = util::thread_registry::instance().high_water();
        for (std::size_t i = 0; i < high; ++i) {
            const stripe_t& st = *stripes_[i];
            s.increments += st.increments.load(std::memory_order_relaxed);
            s.decrements += st.decrements.load(std::memory_order_relaxed);
            s.objects_created += st.objects_created.load(std::memory_order_relaxed);
            s.objects_destroyed += st.objects_destroyed.load(std::memory_order_relaxed);
            s.borrows += st.borrows.load(std::memory_order_relaxed);
        }
        return s;
    }

  private:
    struct stripe_t {
        std::atomic<std::uint64_t> increments{0};
        std::atomic<std::uint64_t> decrements{0};
        std::atomic<std::uint64_t> objects_created{0};
        std::atomic<std::uint64_t> objects_destroyed{0};
        std::atomic<std::uint64_t> borrows{0};
    };
    static_assert(sizeof(stripe_t) <= util::cacheline_size,
                  "one stripe must fit a single cache line");

    stripe_t& stripe() noexcept {
        return *stripes_[util::thread_registry::instance().slot()];
    }

    util::padded<stripe_t> stripes_[util::thread_registry::max_threads];
};

}  // namespace lfrc
