// Observability counters for the LFRC core: every reference-count increment
// and decrement, object construction and destruction. Tests use them to
// check the paper's weakened refcount invariants (§1); benchmarks report
// them as sanity columns.
#pragma once

#include <atomic>
#include <cstdint>

namespace lfrc {

struct domain_counters {
    std::atomic<std::uint64_t> increments{0};
    std::atomic<std::uint64_t> decrements{0};
    std::atomic<std::uint64_t> objects_created{0};
    std::atomic<std::uint64_t> objects_destroyed{0};

    struct snapshot_t {
        std::uint64_t increments;
        std::uint64_t decrements;
        std::uint64_t objects_created;
        std::uint64_t objects_destroyed;
    };

    snapshot_t snapshot() const noexcept {
        return {increments.load(std::memory_order_relaxed),
                decrements.load(std::memory_order_relaxed),
                objects_created.load(std::memory_order_relaxed),
                objects_destroyed.load(std::memory_order_relaxed)};
    }
};

}  // namespace lfrc
