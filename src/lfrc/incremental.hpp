// Incremental destruction — the first §7 extension:
//
//   "One obvious example is to apply techniques that allow large structures
//    to be collected incrementally. This would avoid long delays when a
//    thread destroys the last pointer to a large structure."
//
// `incremental_destroyer<Domain>` is a drop-in alternative to
// Domain::destroy: when a count reaches zero the object is parked on a
// lock-free pending stack instead of being torn down transitively, and
// `step(budget)` processes at most `budget` garbage objects per call —
// children whose counts hit zero re-enter the pending stack. Any thread may
// call step(); work distributes naturally.
//
// Experiment E7 measures the effect: tearing down a million-node list with
// Domain::destroy is one multi-millisecond stall; with the destroyer the
// same work is spread over bounded slices.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "lfrc/domain.hpp"

namespace lfrc {

template <typename Domain>
class incremental_destroyer {
  public:
    using object = typename Domain::object;

    incremental_destroyer() = default;
    incremental_destroyer(const incremental_destroyer&) = delete;
    incremental_destroyer& operator=(const incremental_destroyer&) = delete;

    /// Drains everything still pending (quiescence expected by then).
    ~incremental_destroyer() {
        while (step(1024) != 0) {}
    }

    /// LFRCDestroy, deferred: decrement now, tear down later.
    void destroy(object* p) {
        if (p == nullptr) return;
        if (Domain::add_to_rc(p, -1) == 1) park(p);
    }

    /// Process up to `budget` garbage objects; returns how many were freed.
    /// Lock-free; concurrent callers share the backlog.
    std::size_t step(std::size_t budget) {
        struct sink final : Domain::child_visitor {
            std::vector<object*> children;
            void on_child(object* child) override {
                if (child != nullptr) children.push_back(child);
            }
        } collected;

        std::size_t done = 0;
        while (done < budget) {
            object* garbage = try_pop();
            if (garbage == nullptr) break;
            collected.children.clear();
            Domain::collect_children_and_retire(garbage, collected);
            ++done;
            for (object* child : collected.children) {
                if (Domain::add_to_rc(child, -1) == 1) park(child);
            }
        }
        return done;
    }

    /// Garbage objects awaiting teardown (approximate under concurrency).
    std::size_t pending() const noexcept {
        return pending_count_.load(std::memory_order_acquire);
    }

  private:
    struct pending_node {
        pending_node* next;
        object* garbage;
    };

    void park(object* p) {
        auto* node = new pending_node{nullptr, p};
        pending_node* head = head_.load(std::memory_order_relaxed);
        do {
            node->next = head;
        } while (!head_.compare_exchange_weak(head, node, std::memory_order_acq_rel));
        pending_count_.fetch_add(1, std::memory_order_relaxed);
    }

    object* try_pop() {
        // Single-consumer-at-a-time pop via whole-stack steal would be
        // overkill; a guarded Treiber pop suffices because pending_nodes are
        // reclaimed through the epoch domain (same ABA discipline as
        // everything else here).
        reclaim::epoch_domain::guard pin(reclaim::epoch_domain::global());
        for (;;) {
            pending_node* head = head_.load(std::memory_order_acquire);
            if (head == nullptr) return nullptr;
            pending_node* next = head->next;
            if (head_.compare_exchange_strong(head, next, std::memory_order_acq_rel)) {
                object* garbage = head->garbage;
                reclaim::epoch_domain::global().retire(
                    head, [](void* p) { delete static_cast<pending_node*>(p); });
                pending_count_.fetch_sub(1, std::memory_order_relaxed);
                return garbage;
            }
        }
    }

    std::atomic<pending_node*> head_{nullptr};
    std::atomic<std::size_t> pending_count_{0};
};

}  // namespace lfrc
