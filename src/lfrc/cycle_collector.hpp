// Occasional cycle collection — the second §7 extension:
//
//   "Another example is to integrate a tracing collector that can be invoked
//    occasionally in order to identify and collect cyclic garbage."
//
// LFRC's §2.1 "Cycle-Free Garbage" criterion exists because the counts of
// nodes on a dead cycle never reach zero (§3 step 3). This collector lifts
// the restriction for applications that cannot guarantee it: they register
// *suspects* — objects whose structure may participate in cycles — and
// occasionally run a trial-deletion pass (in the spirit of Bacon & Rajan's
// synchronous Recycler) that reclaims exactly the subgraphs kept alive only
// by internal references.
//
// Concurrency contract: `suspect()` may be called from any thread (it takes
// a +1 on the object, so suspects stay valid); `collect()` requires
// QUIESCENCE — no other thread touching objects reachable from suspects —
// because it reads fields and counts non-atomically as a snapshot. This
// matches the paper's sketch of an *occasionally invoked* tracing pass, not
// a concurrent collector.
//
// Algorithm per collect():
//   1. snapshot the subgraph reachable from the (deduplicated) suspects;
//   2. count, for every node in the snapshot, how many references reach it
//      from inside the snapshot (internal edges) and from this collector's
//      own suspect pins;
//   3. nodes with rc > internal + pins have external referents: mark them
//      and everything they reach as live;
//   4. everything else is cyclic garbage: for each such node, drop its
//      edges to live nodes via ordinary LFRCDestroy semantics and retire it
//      without touching edges to fellow garbage;
//   5. release the suspect pins on survivors normally.
#pragma once

#include <cstddef>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lfrc/domain.hpp"

namespace lfrc {

template <typename Domain>
class cycle_collector {
  public:
    using object = typename Domain::object;

    cycle_collector() = default;
    cycle_collector(const cycle_collector&) = delete;
    cycle_collector& operator=(const cycle_collector&) = delete;

    ~cycle_collector() {
        // Unprocessed suspect pins are released; cycles they held stay
        // uncollected (the caller chose not to run collect()).
        std::lock_guard lock(suspects_mutex_);
        for (object* s : suspects_) Domain::destroy(s);
    }

    /// Register a potential cycle root. Thread-safe. Takes a +1 so the
    /// suspect cannot disappear before the next collect().
    void suspect(object* p) {
        if (p == nullptr) return;
        Domain::add_to_rc(p, 1);
        std::lock_guard lock(suspects_mutex_);
        suspects_.push_back(p);
    }

    std::size_t suspect_count() const {
        std::lock_guard lock(suspects_mutex_);
        return suspects_.size();
    }

    /// Trial-deletion pass. QUIESCENT-ONLY. Returns objects reclaimed.
    std::size_t collect() {
        std::vector<object*> suspects;
        {
            std::lock_guard lock(suspects_mutex_);
            suspects.swap(suspects_);
        }
        if (suspects.empty()) return 0;

        // Pin multiplicity per object (the same object may be suspected
        // repeatedly; each suspicion added one count).
        std::unordered_map<object*, std::uint64_t> pins;
        for (object* s : suspects) ++pins[s];

        // 1. Snapshot the reachable subgraph and count internal edges.
        std::unordered_map<object*, std::uint64_t> internal;
        std::unordered_set<object*> visited;
        {
            std::vector<object*> stack;
            for (auto& [s, n] : pins) {
                if (visited.insert(s).second) stack.push_back(s);
            }
            while (!stack.empty()) {
                object* cur = stack.back();
                stack.pop_back();
                for (object* child : children_of(cur)) {
                    ++internal[child];
                    if (visited.insert(child).second) stack.push_back(child);
                }
            }
        }

        // 2./3. Externally referenced nodes seed the live set.
        std::unordered_set<object*> live;
        {
            std::vector<object*> stack;
            for (object* v : visited) {
                const std::uint64_t pinned = pins.count(v) ? pins[v] : 0;
                const std::uint64_t inside =
                    (internal.count(v) ? internal[v] : 0) + pinned;
                if (v->ref_count() > inside) {
                    if (live.insert(v).second) stack.push_back(v);
                }
            }
            while (!stack.empty()) {
                object* cur = stack.back();
                stack.pop_back();
                for (object* child : children_of(cur)) {
                    if (visited.count(child) != 0 && live.insert(child).second) {
                        stack.push_back(child);
                    }
                }
            }
        }

        // 4. Reclaim the dead subgraph.
        std::size_t reclaimed = 0;
        struct sink final : Domain::child_visitor {
            std::vector<object*> children;
            void on_child(object* child) override {
                if (child != nullptr) children.push_back(child);
            }
        } collected;
        for (object* v : visited) {
            if (live.count(v) != 0) continue;
            collected.children.clear();
            Domain::collect_children_and_retire(v, collected);
            ++reclaimed;
            for (object* child : collected.children) {
                // Edges into fellow garbage die with the subgraph; edges to
                // live nodes give their counts back normally.
                const bool child_is_garbage =
                    visited.count(child) != 0 && live.count(child) == 0;
                if (!child_is_garbage) Domain::destroy(child);
            }
        }

        // 5. Release pins on survivors.
        for (auto& [s, n] : pins) {
            if (live.count(s) == 0) continue;  // pin died with the garbage
            for (std::uint64_t i = 0; i < n; ++i) Domain::destroy(s);
        }
        return reclaimed;
    }

  private:
    std::vector<object*> children_of(object* p) {
        struct sink final : Domain::child_visitor {
            std::vector<object*> children;
            void on_child(object* child) override {
                if (child != nullptr) children.push_back(child);
            }
        } s;
        Domain::visit_children_quiescent(p, s);
        return std::move(s.children);
    }

    mutable std::mutex suspects_mutex_;
    std::vector<object*> suspects_;
};

}  // namespace lfrc
