// Umbrella header for the LFRC library.
//
//   #include "lfrc/lfrc.hpp"
//   using dom = lfrc::domain;              // lock-free MCAS-backed domain
//   struct node : dom::object { ... };
//   dom::local_ptr<node> p = dom::make<node>(...);
//
// See README.md for the full tour and src/lfrc/domain.hpp for the
// operation-by-operation mapping to the paper.
#pragma once

#include "dcas/locked_engine.hpp"
#include "dcas/mcas_engine.hpp"
#include "lfrc/counters.hpp"
#include "lfrc/domain.hpp"
#include "lfrc/paper_api.hpp"

namespace lfrc {

/// The default domain: lock-free DCAS emulation.
using domain = basic_domain<dcas::mcas_engine>;

/// Blocking-emulation domain; differential-testing oracle and E3 baseline.
using locked_domain = basic_domain<dcas::locked_engine>;

/// Drive the deferred physical frees to completion. Call at quiescence
/// (tests, footprint sampling) — concurrent use is safe but may not reach
/// zero while other threads pin epochs (including held borrow_ptrs).
/// Returns the residual pending count: 0 means every deferred free ran;
/// nonzero means something still pins an epoch and the caller should not
/// assume the heap is quiesced.
inline std::uint64_t flush_deferred_frees(int rounds = 16) {
    auto& domain_ref = reclaim::epoch_domain::global();
    for (int i = 0; i < rounds && domain_ref.pending() != 0; ++i) {
        domain_ref.try_advance();
        domain_ref.drain_all();
    }
    return domain_ref.pending();
}

}  // namespace lfrc
