// Umbrella header for the LFRC library.
//
//   #include "lfrc/lfrc.hpp"
//   using dom = lfrc::domain;              // lock-free MCAS-backed domain
//   struct node : dom::object { ... };
//   dom::local_ptr<node> p = dom::make<node>(...);
//
// See README.md for the full tour and src/lfrc/domain.hpp for the
// operation-by-operation mapping to the paper.
#pragma once

#include "dcas/locked_engine.hpp"
#include "dcas/mcas_engine.hpp"
#include "lfrc/counters.hpp"
#include "lfrc/domain.hpp"
#include "lfrc/paper_api.hpp"

namespace lfrc {

/// The default domain: lock-free DCAS emulation.
using domain = basic_domain<dcas::mcas_engine>;

/// Blocking-emulation domain; differential-testing oracle and E3 baseline.
using locked_domain = basic_domain<dcas::locked_engine>;

/// Drive the deferred physical frees to completion. Call at quiescence
/// (tests, footprint sampling, store shard drains) — concurrent use is safe
/// but may not reach zero while other threads pin epochs (including held
/// borrow_ptrs). Returns the residual pending count: 0 means every deferred
/// free ran; nonzero means something still pins an epoch and the caller
/// should not assume the heap is quiesced.
///
/// The loop is bounded two ways, so a drain can never spin forever on a
/// pathological pending list: `rounds` caps total iterations, and a
/// stall detector exits early once several consecutive rounds free nothing.
/// With nothing pinned, a round's try_advance always moves the epoch, so a
/// healthy drain shows progress within the grace period (3 epochs) — a
/// stall longer than that means a pin is held and more rounds cannot help;
/// each futile round would cost an O(pending) walk.
inline std::uint64_t flush_deferred_frees(int rounds = 16) {
    auto& domain_ref = reclaim::epoch_domain::global();
    std::uint64_t prev = ~std::uint64_t{0};
    int stalled_rounds = 0;
    for (int i = 0; i < rounds; ++i) {
        const std::uint64_t p = domain_ref.pending();
        if (p == 0) break;
        if (p >= prev) {
            if (++stalled_rounds > 4) break;  // > grace period with no progress
        } else {
            stalled_rounds = 0;
        }
        prev = p;
        domain_ref.try_advance();
        domain_ref.drain_all();
    }
    return domain_ref.pending();
}

}  // namespace lfrc
