// lfrc::sim — deterministic schedule exploration (model checking) for LFRC.
//
// A Loom/relacy-style cooperative harness: a test spawns a handful of
// *virtual threads* (ucontext fibers multiplexed on one OS thread), and the
// scheduler context-switches between them at every instrumented
// shared-memory access (sim::atomic in src/sim/shim.hpp — engine cells,
// epoch announcements, MCAS descriptor status words). Exactly one virtual
// thread runs at a time, so each access is an atomic step of the model and
// the interleaving is fully determined by the schedule seed: seeded
// pseudo-random exploration with optional preemption (depth) bounding, and
// failing-seed replay.
//
// A shadow heap tracks every LFRC-managed allocation (alloc::counted_base
// routes through managed_alloc/managed_free under -DLFRC_SIM): freed blocks
// are quarantined — storage stays mapped and intact until schedule teardown
// — and every instrumented access is checked against the shadow map, so the
// harness flags, at the model level,
//   * use-after-free   (instrumented access to a quarantined block),
//   * double-free      (second physical free of one block),
//   * leaks            (blocks still live after quiescent teardown),
//   * residual pending (epoch domain cannot drain at full quiescence),
//   * schedule budget  (step bound exceeded — livelock or runaway loop).
//
// Scope (v1, documented in DESIGN.md §8): sequentially consistent
// exploration only. Weak-memory reorderings are out of scope — every
// instrumented access is a seq_cst step — so this checks algorithmic
// interleavings, not fence placement.
//
// Requires -DLFRC_SIM (the LFRC_SIM CMake config); see tests/sim/ for usage
// and README.md for the failing-seed replay recipe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace lfrc::sim {

// ---- instrumentation points (called from shim.hpp / counted_base) --------

/// True while a schedule is executing or tearing down in this process.
bool active() noexcept;

/// Possible context switch. No-op when no schedule is executing or when
/// called off-fiber (e.g. from the scheduler context during teardown).
void yield_point() noexcept;

/// Shadow-heap check only (no scheduling): flags a use-after-free when
/// `addr` falls inside a quarantined block. No-op when inactive.
void access_check(const void* addr) noexcept;

/// The full instrumented-access protocol: yield first (the switch happens
/// *before* the access, so the access itself is the step boundary), then
/// validate the address against the shadow heap.
inline void memory_access(const void* addr) noexcept {
    yield_point();
    access_check(addr);
}

/// Flag a model violation from anywhere. Inside a fiber this abandons the
/// fiber (the schedule is failed and never resumes it); off-fiber it records
/// the violation and returns.
void fail_here(const char* kind, const char* what) noexcept;

/// True when the active run has already recorded a violation (the schedule
/// is failed and its remaining fibers are abandoned mid-body). Teardown-path
/// asserts use this to tolerate state that is only reachable on abandoned
/// schedules (e.g. a cleared slot owning a mid-operation MCAS descriptor).
bool failure_pending() noexcept;

// ---- allocator seam (alloc::counted_base under -DLFRC_SIM) ---------------

/// Arena-backed tracked allocation during a run; plain ::operator new
/// otherwise. Arena addresses are stable across schedules, keeping
/// address-ordered code paths (MCAS entry sort, stripe ordering)
/// schedule-deterministic within a process.
void* managed_alloc(std::size_t bytes);

/// Quarantines a tracked block (flags double-free); falls through to
/// ::operator delete for blocks the shadow heap does not know.
void managed_free(void* p, std::size_t bytes) noexcept;

/// Tracked blocks currently live (allocated, not yet freed) in the active
/// run. 0 when inactive. Tests use deltas of this where production tests
/// would use live-object counters.
std::size_t live_managed_blocks() noexcept;

// ---- schedule exploration -------------------------------------------------

struct options {
    /// Base seed for schedule derivation; 0 means util::global_seed() (which
    /// honours the LFRC_SEED environment variable).
    std::uint64_t seed = 0;
    /// Number of random schedules to explore (stops at first violation).
    int schedules = 1000;
    /// Per-schedule instrumented-step budget; exceeding it fails the
    /// schedule as a possible livelock.
    std::uint64_t max_steps = 200000;
    /// Depth bound: maximum involuntary switches away from a runnable
    /// fiber per schedule. Negative = unbounded. Small bounds (2..3) find
    /// most bugs in a fraction of the schedule space (CHESS-style).
    int preemption_bound = -1;
    /// Flag blocks still live after quiescent teardown as leaks.
    bool check_leaks = true;
};

struct result {
    bool failed = false;
    std::string kind;          ///< violation kind ("use-after-free", ...)
    std::uint64_t failing_seed = 0;  ///< schedule seed to replay
    std::string report;        ///< human-readable diagnosis with trace tail
    int schedules_run = 0;
    std::uint64_t total_steps = 0;
    /// Order-sensitive hash of every explored schedule's choice sequence;
    /// equal seeds must produce equal fingerprints (determinism contract).
    std::uint64_t trace_fingerprint = 0;
};

/// Per-schedule test description. `build` (see explore) is invoked once per
/// schedule with a fresh env; it spawns the virtual threads and may register
/// a quiescence check. Shared state is created inside `build` (typically
/// via std::shared_ptr captured by the bodies) so every schedule starts from
/// the same initial heap.
class env {
  public:
    /// Add a virtual thread. Bodies run under the cooperative scheduler and
    /// must not block on OS primitives or spawn real threads; spin loops
    /// are fine (util::backoff / spin_barrier yield through the sim hook).
    void spawn(std::string label, std::function<void()> body) {
        bodies_.emplace_back(std::move(label), std::move(body));
    }
    void spawn(std::function<void()> body) {
        spawn("t" + std::to_string(bodies_.size()), std::move(body));
    }

    /// Register a check that runs after every spawned thread finished, on
    /// the scheduler context (single-threaded, quiescent). Skipped when the
    /// schedule already failed. Typical use: flush deferred frees and
    /// assert residual-pending == 0 and structural invariants.
    void on_quiesce(std::function<void()> fn) {
        quiesce_.push_back(std::move(fn));
    }

  private:
    friend struct run_access;
    std::vector<std::pair<std::string, std::function<void()>>> bodies_;
    std::vector<std::function<void()>> quiesce_;
};

/// Explore `opts.schedules` seeded schedules of the test `build` describes;
/// stops at the first violation and reports its schedule seed. When the
/// LFRC_SIM_SEED environment variable is set, runs exactly that one
/// schedule instead (the replay recipe — see README.md). When
/// LFRC_SIM_SCHEDULES is set, it caps the budget (never raises it) — the
/// CI quick cell's knob.
result explore(const options& opts, const std::function<void(env&)>& build);

/// Re-run one specific schedule (a failing seed from explore) with full
/// trace reporting.
result replay(std::uint64_t schedule_seed, const options& opts,
              const std::function<void(env&)>& build);

}  // namespace lfrc::sim
