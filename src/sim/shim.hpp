// sim::atomic<T> — the instrumented atomic the harness schedules around.
//
// Drop-in subset of std::atomic<T> for the repo's needs (load / store /
// exchange / compare_exchange / fetch_add / fetch_sub). Every operation runs
// the instrumented-access protocol (sim::memory_access): yield to the
// scheduler *before* touching the cell — so the scheduler can interleave
// another virtual thread between the program point and the access — then
// validate the address against the shadow heap, catching accesses to memory
// freed while this virtual thread was parked.
//
// Memory order arguments are accepted for source compatibility but the model
// is sequentially consistent: one virtual thread runs at a time, so every
// access is an atomic, totally ordered step (see runtime.hpp scope note).
//
// peek()/poke() are UNSCHEDULED accesses for the harness's own machinery
// (ideal_dcas_engine models hardware DCAS as a single step built from
// several peeks/pokes; teardown inspects state without perturbing traces).
// They still run the use-after-free check.
#pragma once

#include <atomic>
#include <cstdint>

#include "sim/runtime.hpp"

namespace lfrc::sim {

template <typename T>
class atomic {
  public:
    atomic() noexcept = default;
    constexpr atomic(T v) noexcept : v_(v) {}

    atomic(const atomic&) = delete;
    atomic& operator=(const atomic&) = delete;

    T load(std::memory_order = std::memory_order_seq_cst) const noexcept {
        step();
        return v_.load(std::memory_order_seq_cst);
    }

    void store(T v, std::memory_order = std::memory_order_seq_cst) noexcept {
        step();
        v_.store(v, std::memory_order_seq_cst);
    }

    T exchange(T v, std::memory_order = std::memory_order_seq_cst) noexcept {
        step();
        return v_.exchange(v, std::memory_order_seq_cst);
    }

    bool compare_exchange_strong(T& expected, T desired,
                                 std::memory_order = std::memory_order_seq_cst,
                                 std::memory_order = std::memory_order_seq_cst) noexcept {
        step();
        return v_.compare_exchange_strong(expected, desired, std::memory_order_seq_cst);
    }

    bool compare_exchange_weak(T& expected, T desired,
                               std::memory_order = std::memory_order_seq_cst,
                               std::memory_order = std::memory_order_seq_cst) noexcept {
        // One runnable thread at a time: weak CAS cannot fail spuriously in
        // the model, so strong semantics keep schedules shorter.
        return compare_exchange_strong(expected, desired);
    }

    template <typename U = T>
    T fetch_add(U delta, std::memory_order = std::memory_order_seq_cst) noexcept {
        step();
        return v_.fetch_add(static_cast<T>(delta), std::memory_order_seq_cst);
    }

    template <typename U = T>
    T fetch_sub(U delta, std::memory_order = std::memory_order_seq_cst) noexcept {
        step();
        return v_.fetch_sub(static_cast<T>(delta), std::memory_order_seq_cst);
    }

    template <typename U = T>
    T fetch_and(U mask, std::memory_order = std::memory_order_seq_cst) noexcept {
        step();
        return v_.fetch_and(static_cast<T>(mask), std::memory_order_seq_cst);
    }

    template <typename U = T>
    T fetch_or(U mask, std::memory_order = std::memory_order_seq_cst) noexcept {
        step();
        return v_.fetch_or(static_cast<T>(mask), std::memory_order_seq_cst);
    }

    // ---- unscheduled accessors (harness machinery only) ------------------

    /// Read without a scheduling step (UAF check only).
    T peek() const noexcept {
        access_check(&v_);
        return v_.load(std::memory_order_seq_cst);
    }

    /// Write without a scheduling step (UAF check only).
    void poke(T v) noexcept {
        access_check(&v_);
        v_.store(v, std::memory_order_seq_cst);
    }

    /// CAS without a scheduling step (UAF check only).
    bool poke_cas(T& expected, T desired) noexcept {
        access_check(&v_);
        return v_.compare_exchange_strong(expected, desired, std::memory_order_seq_cst);
    }

  private:
    void step() const noexcept { memory_access(&v_); }

    std::atomic<T> v_{};
};

}  // namespace lfrc::sim
