// Build-config switch for instrumented atomics.
//
// Production hot-path types (dcas::cell's word, MCAS descriptor status,
// epoch slot announcements) declare their atomic word as
// `sim::instrumented_atomic<T>`. Under the LFRC_SIM CMake config that is
// sim::atomic<T> (yields to the deterministic scheduler at every access and
// validates the address against the shadow heap); in every other build it is
// exactly std::atomic<T> — no wrapper, no overhead, identical layout.
//
// This header is safe to include from production code: without -DLFRC_SIM it
// pulls in only <atomic>.
#pragma once

#include <atomic>

#if defined(LFRC_SIM)
#include "sim/shim.hpp"
#endif

namespace lfrc::sim {

#if defined(LFRC_SIM)
template <typename T>
using instrumented_atomic = ::lfrc::sim::atomic<T>;
#else
template <typename T>
using instrumented_atomic = ::std::atomic<T>;
#endif

}  // namespace lfrc::sim
