// Umbrella header for the deterministic schedule-exploration harness.
// See runtime.hpp for the model and its scope; tests/sim/ for usage.
#pragma once

#include "sim/instrumented.hpp"
#include "sim/runtime.hpp"

#if defined(LFRC_SIM)
#include "sim/shim.hpp"
#include "sim/sim_engine.hpp"
#endif
