// ideal_dcas_engine — the paper's hardware DCAS, as one scheduler step.
//
// Detlefs et al. assume a hardware DCAS instruction (the 68020's CAS2).
// Under the sim harness we can model exactly that: take one scheduling step
// (the yield happens first, like every instrumented access), then perform
// the whole two-word compare-and-swap with *unscheduled* peek/poke cell
// accesses. Only one virtual thread is runnable at a time, so the composite
// is atomic by construction — no descriptors, no helping, no intermediate
// states ever visible to another virtual thread.
//
// Two uses:
//  * checking the LFRC algorithms themselves against the paper's primitive
//    (Figure 2 on ideal DCAS), independent of our software emulations;
//  * differential runs: a schedule-space bug that appears on mcas_engine
//    but not here is in the emulation, not in LFRC.
//
// Sim-only (-DLFRC_SIM): the atomicity argument is the single-runnable-
// fiber invariant, which only the harness provides.
#pragma once

#if !defined(LFRC_SIM)
#error "sim_engine.hpp models hardware DCAS atop the sim scheduler; build with LFRC_SIM"
#endif

#include <cstdint>

#include "dcas/cell.hpp"
#include "sim/runtime.hpp"
#include "sim/shim.hpp"

namespace lfrc::sim {

struct ideal_dcas_engine {
    static std::uint64_t read(dcas::cell& c) {
        yield_point();
        return c.raw().peek();
    }

    static bool cas(dcas::cell& c, std::uint64_t expected, std::uint64_t desired) {
        yield_point();
        return c.raw().poke_cas(expected, desired);
    }

    static bool dcas(dcas::cell& c0, dcas::cell& c1, std::uint64_t o0, std::uint64_t o1,
                     std::uint64_t n0, std::uint64_t n1) {
        yield_point();
        // Atomic as a unit: no other fiber can run between these accesses.
        if (c0.raw().peek() != o0 || c1.raw().peek() != o1) return false;
        c0.raw().poke(n0);
        c1.raw().poke(n1);
        return true;
    }

    /// Ideal N-word CAS (CASN as one instruction), same shape as
    /// mcas_engine::casn — so the store's flag-conditioned writes can be
    /// model-checked against the hardware-primitive baseline too.
    static constexpr std::size_t max_casn = 4;

    struct casn_op {
        dcas::cell* target;
        std::uint64_t expected;
        std::uint64_t desired;
    };

    static bool casn(casn_op* ops, std::size_t n) {
        yield_point();
        for (std::size_t i = 0; i < n; ++i) {
            if (ops[i].target->raw().peek() != ops[i].expected) return false;
        }
        for (std::size_t i = 0; i < n; ++i) ops[i].target->raw().poke(ops[i].desired);
        return true;
    }

    /// No per-slot engine state (engine-concept parity with mcas_engine).
    static void clear_slot(std::size_t) noexcept {}

    static const char* name() noexcept { return "sim-ideal-dcas"; }
};

}  // namespace lfrc::sim
