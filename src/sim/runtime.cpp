// lfrc::sim implementation: ucontext fiber scheduler + shadow heap.
//
// Why fibers and not real threads: a model violation must be able to
// *abandon* a virtual thread in the middle of a noexcept frame (most LFRC
// hot paths are noexcept — throwing through them would std::terminate). A
// fiber is abandoned by swapcontext-ing away and simply never resuming it;
// its frozen stack is released at schedule teardown. With one OS thread
// multiplexing every virtual thread there is also exactly one runnable
// context at any instant, which is what makes each instrumented access an
// atomic step of the model.
//
// Scheduling protocol: every sim::atomic operation calls memory_access(),
// which yields to the scheduler *before* performing the access. The
// scheduler picks the next runnable fiber with the schedule's seeded RNG
// (optionally preemption-bounded, CHESS-style) and swaps into it. Yields
// arriving through util::cooperative_yield (backoff, spin_barrier) are
// *voluntary*: switching away from a voluntarily yielding fiber is not
// charged against the preemption bound, so bounded exploration cannot
// livelock a fiber that is spinning for a peer.
//
// Shadow heap: LFRC-managed allocations (alloc::counted_base) bump-allocate
// from a process-persistent arena while a schedule runs, so block addresses
// are identical across schedules (address-ordered code — the MCAS entry
// sort — stays schedule-deterministic). Frees quarantine the block: bytes
// stay mapped and intact, so a *plain* stale read (the paper's benign
// read-of-freed-rc, modeled deliberately) returns stale-but-valid data,
// while every *instrumented* access to a quarantined block is flagged as a
// use-after-free and a second free of the same block as a double-free.
#include "sim/runtime.hpp"

#include <ucontext.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "reclaim/epoch.hpp"
#include "util/random.hpp"
#include "util/sim_hook.hpp"
#include "util/thread_registry.hpp"

namespace lfrc::sim {

namespace {

constexpr std::size_t k_stack_bytes = 256 * 1024;
constexpr std::size_t k_arena_bytes = std::size_t{16} << 20;

// Process-persistent arena backing the shadow heap; the offset resets per
// schedule but the base never moves (and is intentionally never returned to
// the OS), so the Nth allocation of every schedule has the same address.
char* persistent_arena() {
    static char* arena = static_cast<char*>(::operator new(k_arena_bytes));
    return arena;
}

struct shadow_block {
    std::size_t size = 0;
    bool freed = false;
};

struct vthread {
    std::string label;
    std::function<void()> body;
    ucontext_t ctx{};
    std::unique_ptr<char[]> stack;
    enum class st : std::uint8_t { ready, finished, abandoned };
    st status = st::ready;
    std::size_t slot = util::thread_registry::max_threads;
};

struct run_state {
    std::thread::id tid;  // the scheduler's OS thread; everything runs on it
    ucontext_t sched_ctx{};
    std::vector<vthread> fibers;
    int current = -1;     // index of the running fiber, -1 on the scheduler
    int last_ran = -1;
    bool executing = false;

    std::uint64_t schedule_seed = 0;
    util::xoshiro256 rng{1};
    std::uint64_t steps = 0;
    std::uint64_t max_steps = 0;
    int preemption_bound = -1;
    int preemptions = 0;
    bool voluntary = false;  // the pending yield came from backoff/barrier

    std::vector<std::uint8_t> trace;  // fiber chosen at each scheduler turn

    bool failed = false;
    std::string fail_kind;
    std::string fail_report;

    // Shadow heap.
    bool shadow_active = false;
    char* arena = nullptr;
    std::size_t arena_size = 0;
    std::size_t arena_used = 0;
    std::map<char*, shadow_block> blocks;
    std::size_t live_blocks = 0;
};

// Atomic because in an LFRC_SIM build *every* test binary routes its cells
// through the shim: regular multithreaded tests hit this load concurrently
// (and must see "no run active"), even though sim tests themselves are
// single-OS-threaded.
std::atomic<run_state*> g_run{nullptr};

run_state* current_run() noexcept { return g_run.load(std::memory_order_relaxed); }

bool on_scheduler_thread(const run_state& r) noexcept {
    return std::this_thread::get_id() == r.tid;
}

constexpr std::uint64_t fnv_offset = 1469598103934665603ULL;
constexpr std::uint64_t fnv_prime = 1099511628211ULL;

std::uint64_t hash_trace(const std::vector<std::uint8_t>& trace) noexcept {
    std::uint64_t h = fnv_offset;
    for (std::uint8_t b : trace) h = (h ^ b) * fnv_prime;
    return h;
}

void fiber_trampoline() {
    run_state* r = current_run();
    vthread& f = r->fibers[static_cast<std::size_t>(r->current)];
    try {
        f.body();
    } catch (const std::exception& e) {
        fail_here("unhandled-exception", e.what());
    } catch (...) {
        fail_here("unhandled-exception", "non-std exception escaped a virtual thread");
    }
    f.status = vthread::st::finished;
    swapcontext(&f.ctx, &r->sched_ctx);
    std::abort();  // finished fibers are never resumed
}

// Yield arriving via util::cooperative_yield (backoff / spin_barrier): a
// voluntary reschedule, exempt from the preemption bound.
void cooperative_hook() {
    run_state* r = current_run();
    if (r == nullptr || !r->executing || r->current < 0 || !on_scheduler_thread(*r)) return;
    r->voluntary = true;
    yield_point();
}

// thread_registry::slot() resolution while a fiber runs: the fiber's own
// explicitly acquired slot, so slot-keyed subsystems (epoch records, counter
// stripes) see distinct virtual threads instead of one aliased OS thread.
std::size_t slot_override() {
    run_state* r = current_run();
    if (r != nullptr && r->current >= 0 && on_scheduler_thread(*r)) {
        return r->fibers[static_cast<std::size_t>(r->current)].slot;
    }
    return util::thread_registry::max_threads;  // fall through to native path
}

/// Next fiber to run, honouring the preemption bound; records the choice.
int pick_next(run_state& r) {
    int ready[64];
    int n = 0;
    for (std::size_t i = 0; i < r.fibers.size() && n < 64; ++i) {
        if (r.fibers[i].status == vthread::st::ready) ready[n++] = static_cast<int>(i);
    }
    if (n == 0) return -1;
    const bool voluntary = r.voluntary;
    r.voluntary = false;
    const bool last_ready = r.last_ran >= 0 &&
        r.fibers[static_cast<std::size_t>(r.last_ran)].status == vthread::st::ready;
    int choice;
    if (last_ready && !voluntary && r.preemption_bound >= 0 &&
        r.preemptions >= r.preemption_bound) {
        choice = r.last_ran;  // bound exhausted: run the same fiber on
    } else {
        choice = ready[r.rng.below(static_cast<std::uint64_t>(n))];
        if (last_ready && !voluntary && choice != r.last_ran) ++r.preemptions;
    }
    r.trace.push_back(static_cast<std::uint8_t>(choice));
    return choice;
}

// Private accessor for env's internals (env befriends lfrc::sim::run_access).
}  // namespace

struct run_access {
    static std::vector<std::pair<std::string, std::function<void()>>>& bodies(env& e) {
        return e.bodies_;
    }
    static std::vector<std::function<void()>>& quiesce(env& e) { return e.quiesce_; }
};

namespace {

struct schedule_outcome {
    bool failed = false;
    std::string kind;
    std::string report;
    std::uint64_t steps = 0;
    std::uint64_t trace_hash = 0;
};

schedule_outcome run_one_schedule(std::uint64_t schedule_seed, const options& opts,
                                  const std::function<void(env&)>& build) {
    if (current_run() != nullptr) {
        return {true, "nested-run", "sim::explore is not reentrant", 0, 0};
    }

    run_state r;
    r.tid = std::this_thread::get_id();
    r.schedule_seed = schedule_seed;
    r.rng.reseed(schedule_seed);
    r.max_steps = opts.max_steps;
    r.preemption_bound = opts.preemption_bound;
    r.arena = persistent_arena();
    r.arena_size = k_arena_bytes;

    g_run.store(&r, std::memory_order_release);
    util::cooperative_yield_hook().store(&cooperative_hook, std::memory_order_release);
    util::thread_registry::set_slot_override(&slot_override);
    r.shadow_active = true;

    {
        env e;
        build(e);  // runs on the scheduler context; allocations are tracked

        auto& bodies = run_access::bodies(e);
        r.fibers.reserve(bodies.size());
        for (auto& [label, body] : bodies) {
            vthread f;
            f.label = std::move(label);
            f.body = std::move(body);
            f.slot = util::thread_registry::instance().acquire_slot();
            r.fibers.push_back(std::move(f));
        }
        for (auto& f : r.fibers) {
            getcontext(&f.ctx);
            f.stack = std::make_unique<char[]>(k_stack_bytes);
            f.ctx.uc_stack.ss_sp = f.stack.get();
            f.ctx.uc_stack.ss_size = k_stack_bytes;
            f.ctx.uc_link = &r.sched_ctx;
            makecontext(&f.ctx, &fiber_trampoline, 0);
        }

        r.executing = true;
        while (!r.failed) {
            const int next = pick_next(r);
            if (next < 0) break;  // every fiber finished
            r.current = next;
            swapcontext(&r.sched_ctx, &r.fibers[static_cast<std::size_t>(next)].ctx);
            r.current = -1;
            r.last_ran = next;
        }
        r.executing = false;

        if (!r.failed) {
            // Quiescent checks: single context, all fibers done.
            for (auto& fn : run_access::quiesce(e)) {
                fn();
                if (r.failed) break;
            }
        }

        // Fiber bodies hold copies of the test's shared_ptrs (that is how the
        // lambdas keep their captures alive while running). Release them now,
        // while the run is still installed: otherwise the last owner of a
        // shared container is `r.fibers`, which outlives this scope, and the
        // container's destructor would run off-run — retiring arena pointers
        // into the global epoch domain after the leak check (spurious leaks)
        // and after blocks.clear() (poisoning the next schedule).
        for (auto& f : r.fibers) f.body = nullptr;

        // `e` dies here: the test's shared structures are destroyed, their
        // destructors retiring nodes through the epoch domain.
    }

    // Teardown must leave the (process-global) epoch domain with nothing
    // pending, even on failed schedules: retired nodes point into the arena,
    // and the next schedule reuses those addresses. Un-pin every fiber slot
    // first — an abandoned fiber may have died inside a guard — then drain.
    auto& dom = reclaim::epoch_domain::global();
    for (const auto& f : r.fibers) dom.clear_slot(f.slot);
    if (!r.failed && !dom.quiescent()) {
        // The residual-pending check below is only meaningful at
        // quiescence; a pin surviving clear_slot is its own bug.
        fail_here("pinned-at-teardown",
                  "a slot is still pinned after every fiber was cleared");
    }
    for (int round = 0; round < 16 && dom.pending() != 0; ++round) {
        dom.try_advance();
        dom.drain_all();
    }
    if (!r.failed && dom.pending() != 0) {
        fail_here("residual-pending",
                  "epoch domain will not drain with every thread quiescent");
    }
    if (!r.failed && opts.check_leaks && r.live_blocks != 0) {
        char what[96];
        std::snprintf(what, sizeof what, "%zu managed block(s) still live at teardown",
                      r.live_blocks);
        fail_here("leak", what);
    }

    for (const auto& f : r.fibers) {
        util::thread_registry::instance().release_slot(f.slot);
    }
    util::thread_registry::set_slot_override(nullptr);
    util::cooperative_yield_hook().store(nullptr, std::memory_order_release);
    r.shadow_active = false;
    r.blocks.clear();
    g_run.store(nullptr, std::memory_order_release);

    return {r.failed, r.fail_kind, r.fail_report, r.steps, hash_trace(r.trace)};
}

}  // namespace

// ---- instrumentation points ----------------------------------------------

bool active() noexcept { return current_run() != nullptr; }

void yield_point() noexcept {
    run_state* r = current_run();
    if (r == nullptr || !r->executing || r->current < 0) return;
    if (!on_scheduler_thread(*r)) return;  // stray OS thread: never schedule it
    if (++r->steps > r->max_steps) {
        fail_here("schedule-budget-exceeded",
                  "instrumented-step budget exhausted (livelock, or raise max_steps)");
        return;  // unreachable from a fiber: fail_here abandons it
    }
    vthread& f = r->fibers[static_cast<std::size_t>(r->current)];
    swapcontext(&f.ctx, &r->sched_ctx);
}

void access_check(const void* addr) noexcept {
    run_state* r = current_run();
    if (r == nullptr || !r->shadow_active || !on_scheduler_thread(*r)) return;
    const char* a = static_cast<const char*>(addr);
    if (a < r->arena || a >= r->arena + r->arena_used) return;
    auto it = r->blocks.upper_bound(const_cast<char*>(a));
    if (it == r->blocks.begin()) return;
    --it;
    const char* base = it->first;
    const shadow_block& b = it->second;
    if (a >= base + b.size) return;  // gap between blocks (alignment padding)
    if (b.freed) {
        char what[128];
        std::snprintf(what, sizeof what, "access to freed block [%p,+%zu) at offset %zu",
                      static_cast<const void*>(base), b.size,
                      static_cast<std::size_t>(a - base));
        fail_here("use-after-free", what);
    }
}

bool failure_pending() noexcept {
    run_state* r = current_run();
    return r != nullptr && r->failed;
}

void fail_here(const char* kind, const char* what) noexcept {
    run_state* r = current_run();
    if (r == nullptr) {
        std::fprintf(stderr, "lfrc::sim violation outside any run: %s: %s\n", kind, what);
        return;
    }
    if (!r->failed) {  // first violation wins; later ones are consequences
        r->failed = true;
        r->fail_kind = kind;
        std::string rep;
        rep += "violation: ";
        rep += kind;
        rep += ": ";
        rep += what;
        if (r->current >= 0) {
            rep += " [in virtual thread '";
            rep += r->fibers[static_cast<std::size_t>(r->current)].label;
            rep += "']";
        }
        rep += "\nschedule seed ";
        rep += std::to_string(r->schedule_seed);
        rep += ", step ";
        rep += std::to_string(r->steps);
        rep += ", trace tail:";
        const std::size_t tail = r->trace.size() > 48 ? r->trace.size() - 48 : 0;
        for (std::size_t i = tail; i < r->trace.size(); ++i) {
            rep += ' ';
            rep += std::to_string(static_cast<int>(r->trace[i]));
        }
        r->fail_report = std::move(rep);
    }
    if (r->executing && r->current >= 0 && on_scheduler_thread(*r)) {
        // Abandon the fiber: swap away and never pick it again. Its frame
        // stays frozen (no unwinding through noexcept code); the stack is
        // released with the run.
        vthread& f = r->fibers[static_cast<std::size_t>(r->current)];
        f.status = vthread::st::abandoned;
        swapcontext(&f.ctx, &r->sched_ctx);
        std::abort();  // abandoned fibers are never resumed
    }
}

// ---- shadow heap ----------------------------------------------------------

void* managed_alloc(std::size_t bytes) {
    run_state* r = current_run();
    if (r == nullptr || !r->shadow_active || !on_scheduler_thread(*r)) {
        return ::operator new(bytes);
    }
    constexpr std::size_t align = alignof(std::max_align_t);
    const std::size_t off = (r->arena_used + align - 1) / align * align;
    if (off + bytes > r->arena_size) {
        fail_here("arena-exhausted", "sim arena exhausted; shrink the test");
        return ::operator new(bytes);  // only reachable off-fiber
    }
    char* p = r->arena + off;
    r->arena_used = off + bytes;
    r->blocks[p] = shadow_block{bytes, false};
    ++r->live_blocks;
    return p;
}

void managed_free(void* p, std::size_t /*bytes*/) noexcept {
    if (p == nullptr) return;
    char* a = static_cast<char*>(p);
    run_state* r = current_run();
    if (r != nullptr && r->shadow_active && on_scheduler_thread(*r)) {
        auto it = r->blocks.find(a);
        if (it != r->blocks.end()) {
            if (it->second.freed) {
                fail_here("double-free", "managed block freed twice (object retired twice?)");
                return;
            }
            // Quarantine: bytes stay mapped and intact until the arena
            // resets, so stale plain reads stay benign; only instrumented
            // accesses (and a second free) are violations.
            it->second.freed = true;
            --r->live_blocks;
            return;
        }
    }
    // Never hand arena interior pointers to the real heap (possible when a
    // free straggles past teardown, e.g. from a static destructor).
    char* arena = persistent_arena();
    if (a >= arena && a < arena + k_arena_bytes) return;
    ::operator delete(p);
}

std::size_t live_managed_blocks() noexcept {
    run_state* r = current_run();
    return r != nullptr ? r->live_blocks : 0;
}

// ---- exploration ----------------------------------------------------------

result replay(std::uint64_t schedule_seed, const options& opts,
              const std::function<void(env&)>& build) {
    schedule_outcome out = run_one_schedule(schedule_seed, opts, build);
    result res;
    res.failed = out.failed;
    res.kind = out.kind;
    res.failing_seed = schedule_seed;
    res.report = out.report;
    res.schedules_run = 1;
    res.total_steps = out.steps;
    res.trace_fingerprint = out.trace_hash;
    return res;
}

result explore(const options& opts, const std::function<void(env&)>& build) {
    if (const char* env_seed = std::getenv("LFRC_SIM_SEED")) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(env_seed, &end, 0);
        if (end != env_seed) return replay(static_cast<std::uint64_t>(v), opts, build);
    }
    // LFRC_SIM_SCHEDULES caps every test's budget from outside — the CI
    // quick cell (scripts/ci.sh) runs the whole suite at a few hundred
    // schedules; overnight exploration raises it without a rebuild. A cap
    // only ever shrinks a test's own budget (seeds are derived identically,
    // so the capped run explores a prefix of the full run's schedules).
    int schedules = opts.schedules;
    if (const char* env_budget = std::getenv("LFRC_SIM_SCHEDULES")) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(env_budget, &end, 0);
        if (end != env_budget && v > 0 && static_cast<int>(v) < schedules) {
            schedules = static_cast<int>(v);
        }
    }
    result res;
    std::uint64_t chain = opts.seed != 0 ? opts.seed : util::global_seed();
    std::uint64_t fingerprint = fnv_offset;
    for (int i = 0; i < schedules; ++i) {
        const std::uint64_t schedule_seed = util::splitmix64(chain);
        schedule_outcome out = run_one_schedule(schedule_seed, opts, build);
        ++res.schedules_run;
        res.total_steps += out.steps;
        fingerprint = (fingerprint ^ out.trace_hash) * fnv_prime;
        if (out.failed) {
            res.failed = true;
            res.kind = out.kind;
            res.failing_seed = schedule_seed;
            res.report = out.report + "\nreplay: rerun with LFRC_SIM_SEED=" +
                         std::to_string(schedule_seed) + " or sim::replay(seed, ...)";
            break;
        }
    }
    res.trace_fingerprint = fingerprint;
    return res;
}

}  // namespace lfrc::sim
