// Shared 64-bit hash finalization.
//
// Several layers fan keys out over power-of-two tables (lfrc_hash_set
// buckets, store shards and buckets, workload key scrambling) and all need
// the same property: sequential integer keys must spread over every index
// bit. This is the splitmix64/murmur3 finalizer — full-avalanche, cheap,
// and already the constant set used by util::splitmix64.
#pragma once

#include <cstdint>

namespace lfrc::util {

/// Full-avalanche mix of a 64-bit value (murmur3 fmix64). Bijective, so it
/// also serves as a key scrambler: distinct inputs map to distinct outputs.
inline std::uint64_t mix64(std::uint64_t h) noexcept {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
}

}  // namespace lfrc::util
