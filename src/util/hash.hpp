// Shared 64-bit hash finalization.
//
// Several layers fan keys out over power-of-two tables (lfrc_hash_set
// buckets, store shards and buckets, workload key scrambling) and all need
// the same property: sequential integer keys must spread over every index
// bit. This is the splitmix64/murmur3 finalizer — full-avalanche, cheap,
// and already the constant set used by util::splitmix64.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lfrc::util {

/// Full-avalanche mix of a 64-bit value (murmur3 fmix64). Bijective, so it
/// also serves as a key scrambler: distinct inputs map to distinct outputs.
inline std::uint64_t mix64(std::uint64_t h) noexcept {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
}

/// Scrambled table index: mix then reduce mod `n`. The one spelling of the
/// "spread sequential keys over n buckets" pattern shared by lfrc_hash_set,
/// the store's shard/bucket fan-out, and the workload key scrambler.
inline std::size_t mixed_index(std::uint64_t x, std::size_t n) noexcept {
    return static_cast<std::size_t>(mix64(x) % static_cast<std::uint64_t>(n));
}

/// Split one mixed hash into two independent indices: the low bits pick a
/// shard (power-of-two `mask`), the high bits pick a bucket within it — so
/// shard and bucket choice never correlate.
inline std::size_t low_index(std::uint64_t mixed, std::size_t mask) noexcept {
    return static_cast<std::size_t>(mixed) & mask;
}
inline std::size_t high_index(std::uint64_t mixed, std::size_t n) noexcept {
    return static_cast<std::size_t>((mixed >> 32) % static_cast<std::uint64_t>(n));
}

}  // namespace lfrc::util
