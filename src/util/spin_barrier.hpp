// Sense-reversing spin barrier for starting benchmark/test threads together.
//
// The wait loop yields through util::cooperative_yield() so the barrier also
// works between the sim scheduler's fibers (a pure spin would never hand the
// scheduler token back and the model would deadlock).
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

#include "util/backoff.hpp"
#include "util/sim_hook.hpp"

namespace lfrc::util {

class spin_barrier {
  public:
    explicit spin_barrier(std::size_t parties) noexcept
        : parties_(parties), waiting_(parties) {}

    spin_barrier(const spin_barrier&) = delete;
    spin_barrier& operator=(const spin_barrier&) = delete;

    void arrive_and_wait() noexcept {
        const bool my_sense = !sense_.load(std::memory_order_relaxed);
        if (waiting_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            waiting_.store(parties_, std::memory_order_relaxed);
            sense_.store(my_sense, std::memory_order_release);
            return;
        }
        backoff bo;
        while (sense_.load(std::memory_order_acquire) != my_sense) {
            bo();
            cooperative_yield();
        }
    }

  private:
    const std::size_t parties_;
    std::atomic<std::size_t> waiting_;
    std::atomic<bool> sense_{false};
};

}  // namespace lfrc::util
