// Aligned-column table printing for benchmark harness output.
//
// Every bench binary prints one or more of these tables; EXPERIMENTS.md is
// written from the same rows, so keep formatting stable.
#pragma once

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace lfrc::util {

class table {
  public:
    explicit table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

    table& add_row(std::vector<std::string> cells) {
        rows_.push_back(std::move(cells));
        return *this;
    }

    static std::string fmt(double v, int precision = 2) {
        std::ostringstream os;
        os << std::fixed << std::setprecision(precision) << v;
        return os.str();
    }

    static std::string fmt_count(std::uint64_t v) {
        if (v >= 10'000'000) return fmt(static_cast<double>(v) / 1e6, 1) + "M";
        if (v >= 10'000) return fmt(static_cast<double>(v) / 1e3, 1) + "k";
        return std::to_string(v);
    }

    void print(std::ostream& os = std::cout) const {
        std::vector<std::size_t> widths(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
        for (const auto& row : rows_)
            for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
                widths[c] = std::max(widths[c], row[c].size());

        // A named empty keeps the ternary from materializing (and copying)
        // a temporary per cell just to bind the reference.
        static const std::string empty;
        auto line = [&](const std::vector<std::string>& cells) {
            os << "|";
            for (std::size_t c = 0; c < widths.size(); ++c) {
                const std::string& cell = c < cells.size() ? cells[c] : empty;
                os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
            }
            os << '\n';
        };
        line(headers_);
        os << "|";
        for (auto w : widths) os << std::string(w + 2, '-') << "|";
        os << '\n';
        for (const auto& row : rows_) line(row);
        os.flush();
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace lfrc::util
