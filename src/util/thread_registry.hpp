// Process-wide fixed-slot thread registry.
//
// Reclamation schemes (epoch, hazard pointers) and the toy GC all need a
// bounded, scannable set of per-thread records. Each thread lazily acquires
// one slot on first use and releases it at thread exit, so slots are reused
// across short-lived test threads. Subsystems key their own per-slot arrays
// by `slot()` and scan `[0, high_water())`.
//
// A slot is released only from the owning thread's destructor, at which point
// the thread can no longer be inside any critical section, so per-slot
// subsystem state observed by scanners is quiescent.
#pragma once

#include <atomic>
#include <cstddef>

namespace lfrc::util {

class thread_registry {
  public:
    static constexpr std::size_t max_threads = 128;

    static thread_registry& instance();

    /// Slot owned by the calling thread; acquires one on first call.
    /// Terminates the process if more than max_threads threads are live at
    /// once (a hard deployment limit, documented in the README).
    std::size_t slot();

    // ---- Virtual-thread seam (src/sim) ----------------------------------
    //
    // The deterministic sim scheduler multiplexes many virtual threads onto
    // one OS thread, so the thread_local lease in slot() would alias them
    // all onto a single slot — corrupting every slot-keyed subsystem (epoch
    // records, counter stripes). The harness instead acquires one slot per
    // virtual thread explicitly and installs an override that resolves
    // slot() to the currently scheduled virtual thread.

    /// Per-call override for slot resolution. The function returns the
    /// current virtual thread's slot, or max_threads to fall through to the
    /// native thread_local path (e.g. when called off the scheduler).
    /// Pass nullptr to uninstall.
    using slot_override_fn = std::size_t (*)();
    static void set_slot_override(slot_override_fn fn) noexcept;

    /// Explicit slot management for virtual-thread harnesses: a slot not
    /// tied to the calling OS thread's lifetime. Pair with release_slot.
    std::size_t acquire_slot() { return acquire(); }
    void release_slot(std::size_t s) noexcept { release(s); }

    /// One past the highest slot ever acquired; scan bound for subsystems.
    std::size_t high_water() const noexcept {
        return high_water_.load(std::memory_order_acquire);
    }

    bool in_use(std::size_t s) const noexcept {
        return used_[s].load(std::memory_order_acquire);
    }

  private:
    friend struct slot_lease;
    thread_registry() = default;

    std::size_t acquire();
    void release(std::size_t s) noexcept;

    std::atomic<bool> used_[max_threads] = {};
    std::atomic<std::size_t> high_water_{0};
};

}  // namespace lfrc::util
