#include "util/thread_registry.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace lfrc::util {

namespace {

std::atomic<thread_registry::slot_override_fn> g_slot_override{nullptr};

}  // namespace

namespace {

/// RAII holder living in a thread_local: releases the slot at thread exit.
struct slot_lease_impl {
    std::size_t slot = thread_registry::max_threads;
    bool held = false;
    ~slot_lease_impl();
};

}  // namespace

// Named friend so the .cpp-local lease can reach release().
struct slot_lease {
    static void release(std::size_t s) noexcept { thread_registry::instance().release(s); }
    static std::size_t acquire() { return thread_registry::instance().acquire(); }
};

namespace {
slot_lease_impl::~slot_lease_impl() {
    if (held) slot_lease::release(slot);
}
}  // namespace

thread_registry& thread_registry::instance() {
    static thread_registry reg;
    return reg;
}

void thread_registry::set_slot_override(slot_override_fn fn) noexcept {
    g_slot_override.store(fn, std::memory_order_release);
}

std::size_t thread_registry::slot() {
    if (slot_override_fn fn = g_slot_override.load(std::memory_order_acquire)) {
        const std::size_t s = fn();
        if (s != max_threads) return s;
    }
    thread_local slot_lease_impl lease;
    if (!lease.held) {
        lease.slot = slot_lease::acquire();
        lease.held = true;
    }
    return lease.slot;
}

std::size_t thread_registry::acquire() {
    for (std::size_t s = 0; s < max_threads; ++s) {
        bool expected = false;
        if (used_[s].compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
            // Advance the high-water mark monotonically.
            std::size_t hw = high_water_.load(std::memory_order_relaxed);
            while (hw < s + 1 &&
                   !high_water_.compare_exchange_weak(hw, s + 1, std::memory_order_acq_rel)) {
            }
            return s;
        }
    }
    std::fprintf(stderr, "lfrc: thread_registry exhausted (%zu live threads)\n", max_threads);
    std::abort();
}

void thread_registry::release(std::size_t s) noexcept {
    used_[s].store(false, std::memory_order_release);
}

}  // namespace lfrc::util
