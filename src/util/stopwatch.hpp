// Monotonic-clock stopwatch used by benchmark drivers and latency probes.
#pragma once

#include <chrono>
#include <cstdint>

namespace lfrc::util {

/// Current steady-clock time as nanoseconds since the clock's epoch. The
/// canonical monotonic "now" for TTL deadlines and duration math (the store
/// workload driver, benches); one home so call sites agree on the clock.
inline std::uint64_t steady_now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

class stopwatch {
  public:
    using clock = std::chrono::steady_clock;

    stopwatch() noexcept : start_(clock::now()) {}

    void restart() noexcept { start_ = clock::now(); }

    std::uint64_t elapsed_ns() const noexcept {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_)
                .count());
    }

    double elapsed_seconds() const noexcept {
        return static_cast<double>(elapsed_ns()) * 1e-9;
    }

  private:
    clock::time_point start_;
};

}  // namespace lfrc::util
