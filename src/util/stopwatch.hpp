// Monotonic-clock stopwatch used by benchmark drivers and latency probes.
#pragma once

#include <chrono>
#include <cstdint>

namespace lfrc::util {

class stopwatch {
  public:
    using clock = std::chrono::steady_clock;

    stopwatch() noexcept : start_(clock::now()) {}

    void restart() noexcept { start_ = clock::now(); }

    std::uint64_t elapsed_ns() const noexcept {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_)
                .count());
    }

    double elapsed_seconds() const noexcept {
        return static_cast<double>(elapsed_ns()) * 1e-9;
    }

  private:
    clock::time_point start_;
};

}  // namespace lfrc::util
