// Small, fast PRNGs for tests and workload generators.
//
// splitmix64 seeds xoshiro256**; both are the reference public-domain
// algorithms (Blackman & Vigna). Determinism per seed is part of the test
// contract: a failing stress test reports its seed so it can be replayed —
// export LFRC_SEED=<n> (decimal or 0x-hex) to rerun any test with the same
// process-wide base seed (see global_seed()).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>

namespace lfrc::util {

/// SplitMix64: used for seeding and for cheap stateless hashing.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256** — general-purpose 64-bit generator.
class xoshiro256 {
  public:
    using result_type = std::uint64_t;

    explicit xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

    void reseed(std::uint64_t seed) noexcept {
        for (auto& w : s_) w = splitmix64(seed);
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~0ULL; }

    result_type operator()() noexcept {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
    std::uint64_t below(std::uint64_t bound) noexcept {
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
    }

    /// True with probability percent/100.
    bool chance_percent(std::uint64_t percent) noexcept { return below(100) < percent; }

  private:
    static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> s_{};
};

/// Zipfian rank generator (Gray et al. "Quickly Generating Billion-Record
/// Synthetic Databases", the YCSB algorithm): rank 0 is the hottest key and
/// popularity decays as 1/rank^theta. theta <= 0 degrades to uniform.
/// Construction is O(n) (harmonic sum); generation is O(1) — build one per
/// workload and share it read-only across threads.
///
/// Ranks cluster at small values, so callers that want the hot set spread
/// across shards/buckets should scramble the rank (util::mix64(rank) %% n)
/// before using it as a key.
class zipf_gen {
  public:
    explicit zipf_gen(std::uint64_t n, double theta = 0.99)
        : n_(n > 0 ? n : 1), theta_(theta) {
        if (theta_ <= 0.0) return;  // uniform mode: no tables needed
        double zetan = 0.0;
        for (std::uint64_t i = 1; i <= n_; ++i) {
            zetan += 1.0 / power(static_cast<double>(i), theta_);
        }
        zetan_ = zetan;
        const double zeta2 = 1.0 + 1.0 / power(2.0, theta_);
        alpha_ = 1.0 / (1.0 - theta_);
        eta_ = (1.0 - power(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
               (1.0 - zeta2 / zetan_);
    }

    std::uint64_t size() const noexcept { return n_; }
    double theta() const noexcept { return theta_; }

    /// Next rank in [0, n). Hot ranks are the small ones.
    std::uint64_t operator()(xoshiro256& rng) const noexcept {
        if (theta_ <= 0.0) return rng.below(n_);
        // Uniform double in [0, 1).
        const double u =
            static_cast<double>(rng() >> 11) * (1.0 / 9007199254740992.0);
        const double uz = u * zetan_;
        if (uz < 1.0) return 0;
        if (uz < 1.0 + power(0.5, theta_)) return 1;
        const double r = static_cast<double>(n_) *
                         power(eta_ * u - eta_ + 1.0, alpha_);
        std::uint64_t rank = static_cast<std::uint64_t>(r);
        return rank >= n_ ? n_ - 1 : rank;
    }

  private:
    // Local pow to keep this header <cmath>-free for the hot paths that
    // include it; only construction uses the loop-heavy case.
    static double power(double base, double exp) noexcept {
        return __builtin_pow(base, exp);
    }

    std::uint64_t n_;
    double theta_;
    double zetan_ = 0.0;
    double alpha_ = 0.0;
    double eta_ = 0.0;
};

/// Derive a per-stream, per-index seed from a base seed: the golden-ratio
/// stream separation used by thread_rng and the workload driver, in one
/// place (base + stream * phi + idx keeps distinct streams decorrelated
/// through splitmix64's weak-seed handling).
inline std::uint64_t mix_seed(std::uint64_t base, std::uint64_t stream,
                              std::uint64_t idx = 0) noexcept {
    return base + stream * 0x9e3779b97f4a7c15ULL + idx;
}

/// Process-wide base seed, read once: the LFRC_SEED environment variable
/// (decimal or 0x-hex) when set, a fixed default otherwise. Every replayable
/// generator in the repo (thread_rng, the sim harness's schedule seeds)
/// derives from it, so `LFRC_SEED=<n> ctest ...` reruns the same randomness.
inline std::uint64_t global_seed() noexcept {
    static const std::uint64_t seed = [] {
        if (const char* env = std::getenv("LFRC_SEED")) {
            char* end = nullptr;
            const unsigned long long v = std::strtoull(env, &end, 0);
            if (end != env) return static_cast<std::uint64_t>(v);
        }
        return std::uint64_t{0x2545f4914f6cdd1dULL};
    }();
    return seed;
}

/// Per-thread generator, seeded from global_seed() plus a spawn-order
/// counter — deterministic across runs when thread creation order is
/// (unlike the previous address-derived seed, which changed with ASLR).
inline xoshiro256& thread_rng() noexcept {
    static std::atomic<std::uint64_t> spawn_counter{0};
    thread_local xoshiro256 rng{
        global_seed() +
        0x9e3779b97f4a7c15ULL *
            (1 + spawn_counter.fetch_add(1, std::memory_order_relaxed))};
    return rng;
}

}  // namespace lfrc::util
