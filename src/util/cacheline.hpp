// Cache-line geometry helpers: padding wrappers used to keep hot atomics on
// private lines in the engines, reclamation domains, and benchmark counters.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace lfrc::util {

// Fixed 64 rather than std::hardware_destructive_interference_size: the
// standard constant varies with -mtune and would make layout part of the ABI.
inline constexpr std::size_t cacheline_size = 64;

/// Wraps T so that distinct array elements never share a cache line.
template <typename T>
struct alignas(cacheline_size) padded {
    T value{};

    padded() = default;
    template <typename... Args>
    explicit padded(Args&&... args) : value(std::forward<Args>(args)...) {}

    T& operator*() noexcept { return value; }
    const T& operator*() const noexcept { return value; }
    T* operator->() noexcept { return &value; }
    const T* operator->() const noexcept { return &value; }
};

static_assert(alignof(padded<int>) >= 64);

}  // namespace lfrc::util
