// Shared machinery for the experiment harness binaries in bench/:
// fixed-duration mixed-op drivers with a start barrier, throughput and
// latency aggregation across threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/histogram.hpp"
#include "util/spin_barrier.hpp"
#include "util/stopwatch.hpp"

namespace lfrc::util {

struct bench_result {
    std::uint64_t total_ops = 0;
    double seconds = 0;
    latency_histogram latency;

    double mops_per_sec() const {
        return seconds > 0 ? static_cast<double>(total_ops) / seconds / 1e6 : 0;
    }
    double ops_per_sec() const {
        return seconds > 0 ? static_cast<double>(total_ops) / seconds : 0;
    }
};

/// Runs `body(thread_index)` repeatedly on `threads` threads for
/// `duration_seconds`, counting one op per invocation. `record_latency`
/// additionally samples per-op latency (1-in-16 sampling keeps the probe
/// cheap).
inline bench_result run_for(int threads, double duration_seconds,
                            const std::function<void(int)>& body,
                            bool record_latency = false) {
    std::vector<std::uint64_t> ops(static_cast<std::size_t>(threads), 0);
    std::vector<latency_histogram> hists(static_cast<std::size_t>(threads));
    std::atomic<bool> stop{false};
    spin_barrier barrier{static_cast<std::size_t>(threads) + 1};

    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            barrier.arrive_and_wait();
            std::uint64_t count = 0;
            auto& hist = hists[static_cast<std::size_t>(t)];
            while (!stop.load(std::memory_order_acquire)) {
                if (record_latency && (count & 15) == 0) {
                    stopwatch op_clock;
                    body(t);
                    hist.record(op_clock.elapsed_ns() + 1);
                } else {
                    body(t);
                }
                ++count;
            }
            ops[static_cast<std::size_t>(t)] = count;
        });
    }

    barrier.arrive_and_wait();
    stopwatch clock;
    while (clock.elapsed_seconds() < duration_seconds) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    stop.store(true, std::memory_order_release);
    for (auto& t : pool) t.join();

    bench_result result;
    result.seconds = clock.elapsed_seconds();
    for (auto n : ops) result.total_ops += n;
    for (const auto& h : hists) result.latency.merge(h);
    return result;
}

}  // namespace lfrc::util
