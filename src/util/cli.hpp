// Minimal --key=value flag parsing shared by bench and example binaries.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace lfrc::util {

class cli_flags {
  public:
    cli_flags(int argc, char** argv) {
        for (int i = 1; i < argc; ++i) {
            std::string_view arg = argv[i];
            if (arg.substr(0, 2) != "--") continue;
            arg.remove_prefix(2);
            const auto eq = arg.find('=');
            if (eq == std::string_view::npos) {
                flags_[std::string(arg)] = "1";
            } else {
                flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
            }
        }
    }

    std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
        const auto it = flags_.find(key);
        return it == flags_.end() ? fallback : std::stoull(it->second);
    }

    double get_double(const std::string& key, double fallback) const {
        const auto it = flags_.find(key);
        return it == flags_.end() ? fallback : std::stod(it->second);
    }

    std::string get_string(const std::string& key, std::string fallback) const {
        const auto it = flags_.find(key);
        return it == flags_.end() ? std::move(fallback) : it->second;
    }

    bool has(const std::string& key) const { return flags_.count(key) != 0; }

  private:
    std::map<std::string, std::string> flags_;
};

}  // namespace lfrc::util
