// Log-bucketed latency histogram (HdrHistogram-style, power-of-two buckets
// with linear sub-buckets). Single-writer per instance; merge to aggregate.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <string>

namespace lfrc::util {

/// Records values in [1, 2^62] ns with ~6% relative bucket error.
class latency_histogram {
  public:
    static constexpr int sub_bits = 4;                       // 16 linear sub-buckets
    static constexpr int num_buckets = 62 * (1 << sub_bits);

    void record(std::uint64_t value_ns) noexcept {
        ++counts_[bucket_index(value_ns)];
        ++total_;
        if (value_ns > max_) max_ = value_ns;
        sum_ += value_ns;
    }

    void merge(const latency_histogram& other) noexcept {
        for (int i = 0; i < num_buckets; ++i) counts_[i] += other.counts_[i];
        total_ += other.total_;
        sum_ += other.sum_;
        if (other.max_ > max_) max_ = other.max_;
    }

    std::uint64_t count() const noexcept { return total_; }
    std::uint64_t max() const noexcept { return max_; }
    double mean() const noexcept {
        return total_ ? static_cast<double>(sum_) / static_cast<double>(total_) : 0.0;
    }

    /// Smallest bucket upper bound such that >= q of samples fall below it.
    std::uint64_t percentile(double q) const noexcept {
        if (total_ == 0) return 0;
        const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
        std::uint64_t seen = 0;
        for (int i = 0; i < num_buckets; ++i) {
            seen += counts_[i];
            if (seen > target) return bucket_upper_bound(i);
        }
        return max_;
    }

    void reset() noexcept {
        counts_.fill(0);
        total_ = 0;
        sum_ = 0;
        max_ = 0;
    }

    static int bucket_index(std::uint64_t v) noexcept {
        if (v < (1ULL << sub_bits)) return static_cast<int>(v);
        const int msb = 63 - std::countl_zero(v);
        const int shift = msb - sub_bits;
        const auto sub = static_cast<int>((v >> shift) & ((1 << sub_bits) - 1));
        return (msb - sub_bits + 1) * (1 << sub_bits) + sub;
    }

    static std::uint64_t bucket_upper_bound(int index) noexcept {
        const int exp = index >> sub_bits;
        const int sub = index & ((1 << sub_bits) - 1);
        if (exp == 0) return static_cast<std::uint64_t>(sub);
        const int shift = exp - 1;
        return ((1ULL << sub_bits) + static_cast<std::uint64_t>(sub) + 1) << shift;
    }

  private:
    std::array<std::uint64_t, num_buckets> counts_{};
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

}  // namespace lfrc::util
