// Cooperative-yield seam for spin loops.
//
// A spin-wait (spin_barrier, engine stripe locks via util::backoff) makes
// progress only when the thread it waits on gets CPU time. Under the
// deterministic sim scheduler (src/sim) all "threads" are cooperative fibers
// on one OS thread, so a spin loop that never yields to the scheduler holds
// the token forever and deadlocks the model. Every spin loop therefore calls
// cooperative_yield(); in production no hook is installed and the call is a
// single relaxed load on a path that is already a contention stall.
#pragma once

#include <atomic>

namespace lfrc::util {

using cooperative_yield_fn = void (*)();

inline std::atomic<cooperative_yield_fn>& cooperative_yield_hook() noexcept {
    static std::atomic<cooperative_yield_fn> hook{nullptr};
    return hook;
}

inline void cooperative_yield() noexcept {
    if (cooperative_yield_fn fn =
            cooperative_yield_hook().load(std::memory_order_acquire)) {
        fn();
    }
}

}  // namespace lfrc::util
