// Bounded exponential backoff for CAS retry loops.
//
// Backoff never substitutes for progress: every loop using it must also make
// a helping step (see dcas::mcas_engine) or re-read shared state, so the
// lock-free property of the enclosing operation is unaffected.
#pragma once

#include <cstdint>
#include <thread>

#include "util/sim_hook.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace lfrc::util {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    // Fallback: nothing architecture-specific available.
#endif
}

/// Exponential spin backoff capped at `max_spins`; yields to the OS past the
/// cap, which matters on machines with fewer cores than contending threads.
class backoff {
  public:
    explicit backoff(std::uint32_t max_spins = 1024) noexcept : max_spins_(max_spins) {}

    void operator()() noexcept {
        cooperative_yield();  // sim scheduler seam; no-op in production
        if (current_ > max_spins_) {
            std::this_thread::yield();
            return;
        }
        for (std::uint32_t i = 0; i < current_; ++i) cpu_relax();
        current_ *= 2;
    }

    void reset() noexcept { current_ = 1; }

  private:
    std::uint32_t current_ = 1;
    std::uint32_t max_spins_;
};

}  // namespace lfrc::util
