#include "gc/heap.hpp"

#include <cassert>
#include <cstdlib>

#include "alloc/stats.hpp"
#include "util/stopwatch.hpp"

namespace lfrc::gc {

// ---- marker -----------------------------------------------------------------

void marker::mark(const void* payload) {
    if (payload == nullptr) return;
    heap::object_header* h = heap::header_of(payload);
    if (h->marked) return;
    h->marked = true;
    work_.push_back(const_cast<void*>(payload));
}

void marker::mark_cell(const dcas::cell& c) {
    const std::uint64_t v = c.raw().load(std::memory_order_relaxed);
    assert(dcas::is_clean_value(v) &&
           "GC-traced cells must use the locked engine (see gc/heap.hpp)");
    mark(reinterpret_cast<const void*>(v));
}

void marker::drain() {
    while (!work_.empty()) {
        void* payload = work_.back();
        work_.pop_back();
        heap::header_of(payload)->trace_fn(payload, *this);
    }
}

// ---- heap -------------------------------------------------------------------

heap::heap(std::size_t collect_threshold_bytes)
    : threshold_bytes_(collect_threshold_bytes) {}

heap::~heap() {
    // Quiescence required: no attached threads remain.
    object_header* h = all_objects_.load(std::memory_order_acquire);
    while (h != nullptr) {
        object_header* next = h->next;
        free_object(h);
        h = next;
    }
}

heap::attach_scope::attach_scope(heap& h)
    : heap_(h), slot_(util::thread_registry::instance().slot()) {
    std::unique_lock lock(heap_.park_mutex_);
    // Don't attach in the middle of someone else's collection.
    heap_.park_cv_.wait(lock, [&] { return !heap_.gc_request_.load(); });
    assert(!heap_.threads_[slot_].attached && "thread already attached to this heap");
    heap_.threads_[slot_].attached = true;
    ++heap_.attached_count_;
}

heap::attach_scope::~attach_scope() {
    std::lock_guard lock(heap_.park_mutex_);
    assert(heap_.threads_[slot_].roots.empty() &&
           "gc::local roots must not outlive the attach_scope");
    heap_.threads_[slot_].attached = false;
    --heap_.attached_count_;
    // A collector may be waiting for this thread to park; detaching counts.
    heap_.park_cv_.notify_all();
}

void heap::safepoint() {
    if (!gc_request_.load(std::memory_order_acquire)) return;
    std::unique_lock lock(park_mutex_);
    if (!gc_request_.load()) return;
    ++parked_count_;
    park_cv_.notify_all();
    park_cv_.wait(lock, [&] { return !gc_request_.load(); });
    --parked_count_;
}

void heap::push_root(void* const* slot) {
    threads_[util::thread_registry::instance().slot()].roots.push_back(slot);
}

void heap::pop_root() {
    threads_[util::thread_registry::instance().slot()].roots.pop_back();
}

void heap::add_root(std::function<void(marker&)> provider) {
    std::lock_guard lock(roots_mutex_);
    global_roots_.push_back(std::move(provider));
}

void* heap::allocate_raw(std::size_t payload_size, void (*trace_fn)(const void*, marker&),
                         void (*destroy_fn)(void*)) {
    assert(threads_[util::thread_registry::instance().slot()].attached &&
           "allocate() requires an attach_scope");
    safepoint();
    if (bytes_since_gc_.load(std::memory_order_relaxed) >= threshold_bytes_) {
        collect_now();
    }

    const std::size_t total = header_bytes + payload_size;
    void* raw = ::operator new(total);
    auto* h = static_cast<object_header*>(raw);
    h->trace_fn = trace_fn;
    h->destroy_fn = destroy_fn;
    h->payload_size = payload_size;
    h->marked = false;

    object_header* head = all_objects_.load(std::memory_order_relaxed);
    do {
        h->next = head;
    } while (!all_objects_.compare_exchange_weak(head, h, std::memory_order_acq_rel));

    live_objects_.fetch_add(1, std::memory_order_relaxed);
    live_bytes_.fetch_add(total, std::memory_order_relaxed);
    bytes_since_gc_.fetch_add(total, std::memory_order_relaxed);
    alloc::note_alloc(total);
    return payload_of(h);
}

void heap::free_object(object_header* h) {
    h->destroy_fn(payload_of(h));
    const std::size_t total = header_bytes + h->payload_size;
    live_objects_.fetch_sub(1, std::memory_order_relaxed);
    live_bytes_.fetch_sub(total, std::memory_order_relaxed);
    alloc::note_free(total);
    ::operator delete(static_cast<void*>(h));
}

void heap::collect_now() {
    // If another thread is collecting, just park at a safepoint instead:
    // blocking on gc_mutex_ here would deadlock the active collector, which
    // is waiting for us to park.
    std::unique_lock gc_lock(gc_mutex_, std::try_to_lock);
    if (!gc_lock.owns_lock()) {
        safepoint();
        return;
    }
    collect_locked();
}

void heap::collect_locked() {
    util::stopwatch pause;

    // Stop the world: wait for every other attached thread to park.
    {
        std::unique_lock lock(park_mutex_);
        gc_request_.store(true, std::memory_order_seq_cst);
        park_cv_.wait(lock, [&] { return parked_count_ + 1 >= attached_count_; });
    }

    // Mark.
    marker m{*this};
    {
        std::lock_guard lock(roots_mutex_);
        for (auto& provider : global_roots_) provider(m);
    }
    const std::size_t high = util::thread_registry::instance().high_water();
    for (std::size_t s = 0; s < high; ++s) {
        if (!threads_[s].attached) continue;
        for (void* const* slot : threads_[s].roots) m.mark(*slot);
    }
    m.drain();

    // Sweep: rebuild the all-objects list from survivors.
    std::uint64_t freed = 0;
    object_header* h = all_objects_.exchange(nullptr, std::memory_order_acq_rel);
    object_header* survivors = nullptr;
    while (h != nullptr) {
        object_header* next = h->next;
        if (h->marked) {
            h->marked = false;
            h->next = survivors;
            survivors = h;
        } else {
            free_object(h);
            ++freed;
        }
        h = next;
    }
    // Reattach survivors below anything allocated concurrently (there is
    // nothing concurrent — world is stopped — but stay CAS-correct anyway).
    while (survivors != nullptr) {
        object_header* next = survivors->next;
        object_header* head = all_objects_.load(std::memory_order_relaxed);
        do {
            survivors->next = head;
        } while (!all_objects_.compare_exchange_weak(head, survivors,
                                                     std::memory_order_acq_rel));
        survivors = next;
    }
    bytes_since_gc_.store(0, std::memory_order_relaxed);

    const std::uint64_t pause_ns = pause.elapsed_ns();
    {
        std::lock_guard lock(stats_mutex_);
        ++stats_.collections;
        stats_.objects_freed += freed;
        stats_.pauses.record(pause_ns);
        if (pause_ns > stats_.max_pause_ns) stats_.max_pause_ns = pause_ns;
    }

    // Restart the world.
    {
        std::lock_guard lock(park_mutex_);
        gc_request_.store(false, std::memory_order_seq_cst);
        park_cv_.notify_all();
    }
}

heap::gc_stats heap::stats() {
    std::lock_guard lock(stats_mutex_);
    gc_stats out = stats_;
    out.objects_live = live_objects();
    out.bytes_live = live_bytes();
    return out;
}

}  // namespace lfrc::gc
