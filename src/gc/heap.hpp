// Toy stop-the-world mark-sweep garbage collector.
//
// Why this exists: the paper's §3/§4 recipe *starts from* a GC-dependent
// implementation, and its §1 motivation cites the costs of real collectors
// (stop-the-world pauses, non-lock-free overall systems). The GC-dependent
// Snark cannot use retire-on-unlink reclamation — popped nodes linger as
// reachable sentinels — so it genuinely needs reachability-based collection.
// This heap supplies that environment, and experiment E8 measures the pauses
// it inflicts versus LFRC's pause-free reclamation.
//
// Model:
//  * Objects are allocated with `allocate<T>()`; T provides
//    `template gc_trace(marker&) const` (or a gc_traits<T> specialization)
//    that marks every child pointer.
//  * Mutator threads attach with an `attach_scope` and must poll
//    `safepoint()` regularly; a thread that blocks indefinitely without
//    polling deadlocks the collector — by design, this is the classic STW
//    contract.
//  * Roots are (a) registered global root providers and (b) `gc::local<T>`
//    shadow-stack variables of attached threads.
//  * Collection is triggered by an allocation threshold or `collect_now()`,
//    runs on the triggering mutator's thread, stops the world, marks, and
//    sweeps. Pause durations are recorded for E8.
//
// Concurrency contract for shared pointer fields in GC'd objects: use
// dcas::cell with the *locked* engine (or plain atomics). During a
// collection every mutator is parked at a safepoint, i.e. outside any engine
// operation, so cells always hold clean (untagged) values when traced.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

#include "dcas/cell.hpp"
#include "util/histogram.hpp"
#include "util/thread_registry.hpp"

namespace lfrc::gc {

class heap;
class marker;

/// Customization point: how to find the child pointers of a T.
/// Default: call the member `t.gc_trace(m)`.
template <typename T>
struct gc_traits {
    static void trace(const T& t, marker& m) { t.gc_trace(m); }
};

class marker {
  public:
    /// Mark a payload pointer (may be null) and queue it for tracing.
    void mark(const void* payload);

    /// Mark the pointer stored in a shared cell. The cell must hold a clean
    /// value (see the engine contract in the header comment).
    void mark_cell(const dcas::cell& c);

    template <typename T>
    void mark_ptr(const T* p) {
        mark(static_cast<const void*>(p));
    }

  private:
    friend class heap;
    explicit marker(heap& h) : heap_(h) {}
    void drain();

    heap& heap_;
    std::vector<void*> work_;  // payload pointers pending trace
};

class heap {
  public:
    struct gc_stats {
        std::uint64_t collections = 0;
        std::uint64_t objects_freed = 0;
        std::uint64_t objects_live = 0;
        std::uint64_t bytes_live = 0;
        std::uint64_t max_pause_ns = 0;
        util::latency_histogram pauses;
    };

    explicit heap(std::size_t collect_threshold_bytes = 1 << 20);
    ~heap();
    heap(const heap&) = delete;
    heap& operator=(const heap&) = delete;

    /// RAII registration of the calling thread as a mutator of this heap.
    class attach_scope {
      public:
        explicit attach_scope(heap& h);
        ~attach_scope();
        attach_scope(const attach_scope&) = delete;
        attach_scope& operator=(const attach_scope&) = delete;

      private:
        heap& heap_;
        std::size_t slot_;
    };

    /// Must be polled regularly by attached threads; parks while a
    /// collection is in progress.
    void safepoint();

    /// Allocate a collected object. Caller must be attached.
    template <typename T, typename... Args>
    T* allocate(Args&&... args) {
        void* payload = allocate_raw(
            sizeof(T),
            [](const void* p, marker& m) { gc_traits<T>::trace(*static_cast<const T*>(p), m); },
            [](void* p) { static_cast<T*>(p)->~T(); });
        return ::new (payload) T(std::forward<Args>(args)...);
    }

    /// Register a global-roots callback (call before mutator threads start).
    void add_root(std::function<void(marker&)> provider);

    /// Force a full collection from an attached thread.
    void collect_now();

    gc_stats stats();

    std::uint64_t live_objects() const noexcept {
        return live_objects_.load(std::memory_order_acquire);
    }
    std::uint64_t live_bytes() const noexcept {
        return live_bytes_.load(std::memory_order_acquire);
    }

  private:
    friend class marker;

    struct object_header {
        object_header* next;
        void (*trace_fn)(const void*, marker&);
        void (*destroy_fn)(void*);
        std::size_t payload_size;
        bool marked;
    };
    static constexpr std::size_t header_bytes =
        (sizeof(object_header) + alignof(std::max_align_t) - 1) /
        alignof(std::max_align_t) * alignof(std::max_align_t);

    struct thread_record {
        bool attached = false;
        // Shadow stack of this thread's gc::local<T> variables.
        std::vector<void* const*> roots;
    };

    static object_header* header_of(const void* payload) noexcept {
        return reinterpret_cast<object_header*>(
            reinterpret_cast<char*>(const_cast<void*>(payload)) - header_bytes);
    }
    static void* payload_of(object_header* h) noexcept {
        return reinterpret_cast<char*>(h) + header_bytes;
    }

    void* allocate_raw(std::size_t payload_size, void (*trace_fn)(const void*, marker&),
                       void (*destroy_fn)(void*));
    void collect_locked();  // requires gc_mutex_ held, caller attached
    void free_object(object_header* h);

    // Shadow-stack registration used by gc::local<T>.
    template <typename T>
    friend class local;
    void push_root(void* const* slot);
    void pop_root();

    const std::size_t threshold_bytes_;

    std::atomic<object_header*> all_objects_{nullptr};
    std::atomic<std::uint64_t> live_objects_{0};
    std::atomic<std::uint64_t> live_bytes_{0};
    std::atomic<std::uint64_t> bytes_since_gc_{0};

    std::atomic<bool> gc_request_{false};
    std::mutex gc_mutex_;            // one collection at a time
    std::mutex park_mutex_;          // protects counts + cv
    std::condition_variable park_cv_;
    std::size_t attached_count_ = 0;
    std::size_t parked_count_ = 0;

    thread_record threads_[util::thread_registry::max_threads];

    std::mutex roots_mutex_;
    std::vector<std::function<void(marker&)>> global_roots_;

    std::mutex stats_mutex_;
    gc_stats stats_;
};

/// Shadow-stack root: a local pointer variable the collector can see.
/// Strictly scoped (LIFO) within the owning thread.
template <typename T>
class local {
  public:
    explicit local(heap& h, T* initial = nullptr) : heap_(h), ptr_(initial) {
        heap_.push_root(reinterpret_cast<void* const*>(&ptr_));
    }
    ~local() { heap_.pop_root(); }
    local(const local&) = delete;
    local& operator=(const local&) = delete;

    local& operator=(T* p) noexcept {
        ptr_ = p;
        return *this;
    }
    T* get() const noexcept { return ptr_; }
    T* operator->() const noexcept { return ptr_; }
    T& operator*() const noexcept { return *ptr_; }
    explicit operator bool() const noexcept { return ptr_ != nullptr; }

  private:
    heap& heap_;
    T* ptr_;
};

}  // namespace lfrc::gc
