// GC-dependent Snark deque — the left-hand side of Figure 1, i.e. the
// implementation the LFRC methodology *starts from*. It runs in the
// "garbage-collected environment" the paper assumes, provided here by
// gc::heap (stop-the-world mark-sweep, see src/gc/heap.hpp).
//
// Faithful to the original: sentinel nodes carry SELF-pointers (lines 6..7),
// nodes have no reference counts, popped nodes are simply dropped — the
// collector finds them unreachable. Self-pointer cycles in garbage are fine
// for a tracing GC; they are exactly what LFRC's step 3 must remove.
//
// Pointer fields are dcas::cells driven by the LOCKED engine: during a
// collection all mutators are parked at safepoints, never mid-operation, so
// traced cells always hold clean values (the gc/heap.hpp contract).
//
// Threads must wrap themselves in gc::heap::attach_scope and the deque
// methods poll safepoint() every retry loop, which is where the E8 pause
// benchmark gets its stop-the-world stalls from.
//
// Lifetime contract: the constructor registers a root provider that the
// heap cannot deregister, so the deque must outlive every collection on its
// heap — destroy heap and deque together.
#pragma once

#include <optional>
#include <utility>

#include "dcas/cell.hpp"
#include "dcas/locked_engine.hpp"
#include "gc/heap.hpp"

namespace lfrc::snark {

template <typename V>
class snark_deque_gc {
    using engine = dcas::locked_engine;

  public:
    struct snode {  // Figure 1 lines 1..2: L, R, V — no rc field
        dcas::cell L;
        dcas::cell R;
        V value{};

        void gc_trace(gc::marker& m) const {
            m.mark_cell(L);
            m.mark_cell(R);
        }
    };

    explicit snark_deque_gc(gc::heap& h) : heap_(h) {  // lines 4..9
        gc::heap::attach_scope attach(heap_);
        snode* dummy = heap_.template allocate<snode>();
        store(dummy->L, dummy);  // line 6: self-pointers mark the sentinel
        store(dummy->R, dummy);  // line 7
        store(dummy_, dummy);
        store(left_hat_, dummy);   // line 8
        store(right_hat_, dummy);  // line 9
        heap_.add_root([this](gc::marker& m) {
            m.mark_cell(dummy_);
            m.mark_cell(left_hat_);
            m.mark_cell(right_hat_);
        });
    }

    snark_deque_gc(const snark_deque_gc&) = delete;
    snark_deque_gc& operator=(const snark_deque_gc&) = delete;

    /// Figure 1 lines 14..30. Caller's thread must be attached to the heap.
    void push_right(V v) {
        gc::local<snode> nd(heap_, heap_.template allocate<snode>());  // line 14
        gc::local<snode> rh(heap_), rhR(heap_), lh(heap_);             // line 15
        snode* dummy = load(dummy_);
        store(nd->R, dummy);       // line 18
        nd->value = std::move(v);  // line 19
        for (;;) {                 // line 20
            heap_.safepoint();
            rh = load(right_hat_);  // line 21
            rhR = load(rh->R);      // line 22
            if (rhR.get() == rh.get()) {  // line 23: self-pointer sentinel
                store(nd->L, dummy);      // line 24
                lh = load(left_hat_);     // line 25
                if (dcas(right_hat_, left_hat_, rh.get(), lh.get(), nd.get(),
                         nd.get())) {  // line 26
                    return;            // line 27
                }
            } else {
                store(nd->L, rh.get());  // line 28
                if (dcas(right_hat_, rh->R, rh.get(), rhR.get(), nd.get(),
                         nd.get())) {  // line 29
                    return;            // line 30
                }
            }
        }
    }

    void push_left(V v) {
        gc::local<snode> nd(heap_, heap_.template allocate<snode>());
        gc::local<snode> lh(heap_), lhL(heap_), rh(heap_);
        snode* dummy = load(dummy_);
        store(nd->L, dummy);
        nd->value = std::move(v);
        for (;;) {
            heap_.safepoint();
            lh = load(left_hat_);
            lhL = load(lh->L);
            if (lhL.get() == lh.get()) {
                store(nd->R, dummy);
                rh = load(right_hat_);
                if (dcas(left_hat_, right_hat_, lh.get(), rh.get(), nd.get(), nd.get())) {
                    return;
                }
            } else {
                store(nd->R, lh.get());
                if (dcas(left_hat_, lh->L, lh.get(), lhL.get(), nd.get(), nd.get())) {
                    return;
                }
            }
        }
    }

    std::optional<V> pop_right() {
        gc::local<snode> rh(heap_), lh(heap_), rhR(heap_), rhL(heap_);
        snode* dummy = load(dummy_);
        for (;;) {
            heap_.safepoint();
            rh = load(right_hat_);
            lh = load(left_hat_);
            rhR = load(rh->R);
            if (rhR.get() == rh.get()) return std::nullopt;  // sentinel => empty
            if (rh.get() == lh.get()) {
                if (dcas(right_hat_, left_hat_, rh.get(), lh.get(), dummy, dummy)) {
                    return rh->value;
                }
            } else {
                rhL = load(rh->L);
                // Swing the hat left; the popped node becomes a self-linked
                // sentinel — a garbage cycle only a tracing GC can reclaim.
                if (dcas(right_hat_, rh->L, rh.get(), rhL.get(), rhL.get(), rh.get())) {
                    return rh->value;
                }
            }
        }
    }

    std::optional<V> pop_left() {
        gc::local<snode> lh(heap_), rh(heap_), lhL(heap_), lhR(heap_);
        snode* dummy = load(dummy_);
        for (;;) {
            heap_.safepoint();
            lh = load(left_hat_);
            rh = load(right_hat_);
            lhL = load(lh->L);
            if (lhL.get() == lh.get()) return std::nullopt;
            if (lh.get() == rh.get()) {
                if (dcas(left_hat_, right_hat_, lh.get(), rh.get(), dummy, dummy)) {
                    return lh->value;
                }
            } else {
                lhR = load(lh->R);
                if (dcas(left_hat_, lh->R, lh.get(), lhR.get(), lhR.get(), lh.get())) {
                    return lh->value;
                }
            }
        }
    }

    bool empty() {
        gc::local<snode> rh(heap_, load(right_hat_));
        return load(rh->R) == rh.get();
    }

    gc::heap& owning_heap() noexcept { return heap_; }

  private:
    static snode* load(const dcas::cell& c) noexcept {
        return dcas::decode_ptr<snode>(engine::read(const_cast<dcas::cell&>(c)));
    }
    static void store(dcas::cell& c, snode* v) noexcept {
        // Plain store through a CAS loop keeps the engine the only writer
        // discipline (store is only used on unpublished nodes and the hats
        // during construction, but stay uniform).
        for (;;) {
            const std::uint64_t old = engine::read(c);
            if (engine::cas(c, old, dcas::encode_ptr(v))) return;
        }
    }
    static bool dcas(dcas::cell& c0, dcas::cell& c1, snode* o0, snode* o1, snode* n0,
                     snode* n1) noexcept {
        return engine::dcas(c0, c1, dcas::encode_ptr(o0), dcas::encode_ptr(o1),
                            dcas::encode_ptr(n0), dcas::encode_ptr(n1));
    }

    gc::heap& heap_;
    dcas::cell dummy_;      // line 3
    dcas::cell left_hat_;   // line 3
    dcas::cell right_hat_;  // line 3
};

}  // namespace lfrc::snark
