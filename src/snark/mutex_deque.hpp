// Lock-based deque baseline: std::deque under one mutex. The simplest
// correct comparator for experiment E1 — it represents the "just use a
// lock" alternative whose drawbacks (contention collapse, no progress
// guarantee) motivate the paper's lock-free setting.
#pragma once

#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace lfrc::snark {

template <typename V>
class mutex_deque {
  public:
    void push_right(V v) {
        std::lock_guard lock(mutex_);
        items_.push_back(std::move(v));
    }

    void push_left(V v) {
        std::lock_guard lock(mutex_);
        items_.push_front(std::move(v));
    }

    std::optional<V> pop_right() {
        std::lock_guard lock(mutex_);
        if (items_.empty()) return std::nullopt;
        V v = std::move(items_.back());
        items_.pop_back();
        return v;
    }

    std::optional<V> pop_left() {
        std::lock_guard lock(mutex_);
        if (items_.empty()) return std::nullopt;
        V v = std::move(items_.front());
        items_.pop_front();
        return v;
    }

    bool empty() const {
        std::lock_guard lock(mutex_);
        return items_.empty();
    }

    std::size_t size() const {
        std::lock_guard lock(mutex_);
        return items_.size();
    }

  private:
    mutable std::mutex mutex_;
    std::deque<V> items_;
};

}  // namespace lfrc::snark
