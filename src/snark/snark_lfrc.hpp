// GC-independent Snark deque — the paper's Section 4 example.
//
// This is the right-hand side of Figure 1, completed with the mirrored
// pushLeft and the two pop operations of the underlying Snark algorithm
// (Detlefs et al., "Even better DCAS-based concurrent deques", DISC 2000),
// transformed by the six LFRC steps of §3:
//
//   step 1  rc field            -> snode derives Domain::object
//   step 2  LFRCDestroy         -> snode::lfrc_visit_children
//   step 3  no garbage cycles   -> null pointers replace the original's
//                                  self-pointers (paper lines 36..37, 59);
//                                  pops install null instead of self
//   step 4  typed LFRC ops      -> basic_domain<Engine> templates
//   step 5  replace pointer ops -> every access below is an LFRC op
//   step 6  local pointer mgmt  -> local_ptr<> RAII, null-initialized
//
// Representation: a doubly-linked list with LeftHat/RightHat pointing to the
// leftmost/rightmost nodes of a non-empty deque, and a Dummy node serving as
// sentinel at one or both ends. A node whose R is null is a right sentinel;
// L null, a left sentinel (the original used self-pointers; the null form is
// what makes garbage cycle-free so reference counting can reclaim it). Some
// pops leave a previously popped node behind as a sentinel — LFRC keeps it
// alive exactly as long as a hat references it.
//
// Known post-publication caveat: the underlying Snark algorithm has a subtle
// double-pop bug found by Doherty et al. (SPAA 2004), orthogonal to the LFRC
// methodology; see snark_fixed.hpp for the value-claiming corrected variant
// and DESIGN.md §3 for discussion.
//
// The destructor follows Figure 1 lines 40..44: drain, then null the three
// shared pointers so everything reachable is destroyed. As the paper notes,
// it must not run concurrently with other operations.
//
// Beyond the paper: the retry-loop reads use the epoch-borrowed fast path
// (Domain::load_borrowed) instead of counted LFRCLoad, so contended retries
// and empty-deque probes stop hammering the hot nodes' count words. An
// attempt promotes a borrow to a counted local_ptr only right before it
// writes that node's own cells; see docs/ALGORITHMS.md §8 for why that
// discipline preserves the paper's invariants. snark_fixed.hpp keeps the
// all-counted form as a differential baseline.
#pragma once

#include <optional>
#include <utility>

#include "lfrc/domain.hpp"

namespace lfrc::snark {

template <typename Domain, typename V>
class snark_deque {
  public:
    struct snode : Domain::object {  // Figure 1 lines 31..32
        typename Domain::template ptr_field<snode> L;
        typename Domain::template ptr_field<snode> R;
        V value{};

        snode() = default;

        void lfrc_visit_children(typename Domain::child_visitor& visitor) noexcept override {
            visitor.on_child(L.exclusive_get());
            visitor.on_child(R.exclusive_get());
        }
    };

    using local = typename Domain::template local_ptr<snode>;

    snark_deque() {  // lines 33..39
        Domain::store_alloc(dummy_, Domain::template make<snode>());  // line 35
        snode* dummy = dummy_ptr();
        // Lines 36..37: Dummy's L and R are null (ptr_field default),
        // where the original had self-pointers — step 3's cycle removal.
        Domain::store(left_hat_, dummy);   // line 38
        Domain::store(right_hat_, dummy);  // line 39
    }

    /// Lines 40..44. Not concurrency-safe; call at quiescence.
    ~snark_deque() {
        while (pop_left().has_value()) {}  // line 41
        Domain::store(dummy_, static_cast<snode*>(nullptr));      // line 42
        Domain::store(left_hat_, static_cast<snode*>(nullptr));   // line 43
        Domain::store(right_hat_, static_cast<snode*>(nullptr));  // line 44
    }

    snark_deque(const snark_deque&) = delete;
    snark_deque& operator=(const snark_deque&) = delete;

    /// Figure 1 lines 49..68 (the paper returns FULLval on allocation
    /// failure; here `new` throws std::bad_alloc instead).
    ///
    /// Retry-loop reads are epoch borrows (docs/ALGORITHMS.md §8): a failed
    /// attempt costs zero refcount traffic. Only the attempt that is about
    /// to write a hot node's own cells promotes to a counted reference,
    /// which also revalidates the node is still logically alive.
    void push_right(V v) {
        local nd = Domain::template make<snode>();  // line 49
        snode* dummy = dummy_ptr();
        Domain::store(nd->R, dummy);  // line 54
        nd->value = std::move(v);     // line 55
        for (;;) {                    // line 56
            auto rh = Domain::load_borrowed(right_hat_);  // line 57
            auto rhR = Domain::load_borrowed(rh->R);      // line 58
            if (!rhR) {  // line 59: right sentinel => empty
                Domain::store(nd->L, dummy);                 // line 60
                auto lh = Domain::load_borrowed(left_hat_);  // line 61
                // Hat-only DCAS: success proves both hats still count
                // rh/lh, so no promote is needed.
                if (Domain::dcas(right_hat_, left_hat_, rh.get(), lh.get(), nd.get(),
                                 nd.get())) {  // line 62
                    return;  // lines 63..64: locals destroy themselves
                }
            } else {
                // The store below publishes a counted pointer to rh and the
                // DCAS writes rh->R — both need rh logically alive.
                local rh_c = rh.promote();
                if (!rh_c) continue;  // rh died under us; re-read the hat
                Domain::store(nd->L, rh_c.get());  // line 65
                if (Domain::dcas(right_hat_, rh->R, rh.get(), rhR.get(), nd.get(),
                                 nd.get())) {  // line 66
                    return;  // lines 67..68
                }
            }
        }
    }

    /// Mirror image of push_right.
    void push_left(V v) {
        local nd = Domain::template make<snode>();
        snode* dummy = dummy_ptr();
        Domain::store(nd->L, dummy);
        nd->value = std::move(v);
        for (;;) {
            auto lh = Domain::load_borrowed(left_hat_);
            auto lhL = Domain::load_borrowed(lh->L);
            if (!lhL) {  // left sentinel => empty
                Domain::store(nd->R, dummy);
                auto rh = Domain::load_borrowed(right_hat_);
                if (Domain::dcas(left_hat_, right_hat_, lh.get(), rh.get(), nd.get(),
                                 nd.get())) {
                    return;
                }
            } else {
                local lh_c = lh.promote();
                if (!lh_c) continue;
                Domain::store(nd->R, lh_c.get());
                if (Domain::dcas(left_hat_, lh->L, lh.get(), lhL.get(), nd.get(),
                                 nd.get())) {
                    return;
                }
            }
        }
    }

    /// popRight of the original algorithm, LFRC-transformed, null sentinels.
    /// The empty probe and every failed attempt are pure borrows — popping
    /// from an empty deque does not touch a single reference count.
    std::optional<V> pop_right() {
        snode* dummy = dummy_ptr();
        for (;;) {
            auto rh = Domain::load_borrowed(right_hat_);
            auto lh = Domain::load_borrowed(left_hat_);
            auto rhR = Domain::load_borrowed(rh->R);
            if (!rhR) return std::nullopt;  // right sentinel => empty
            if (rh.get() == lh.get()) {
                // Single node: both hats retreat to Dummy. Hat-only DCAS —
                // success proves the hats still counted rh. The borrow pin
                // keeps *rh mapped for the value read even though the DCAS
                // itself dropped rh's last counted references.
                if (Domain::dcas(right_hat_, left_hat_, rh.get(), lh.get(), dummy,
                                 dummy)) {
                    return rh->value;
                }
            } else {
                // This branch writes rh->L and publishes rhL into the hat:
                // promote both before touching any cells.
                local rh_c = rh.promote();
                if (!rh_c) continue;  // rh died under us
                auto rhL = Domain::load_borrowed(rh->L);
                local rhL_c = rhL.promote();
                if (rhL && !rhL_c) continue;  // rhL died under us
                // Swing RightHat left; install null (not a self-pointer) in
                // rh->L so the popped node cannot anchor a garbage cycle.
                if (Domain::dcas(right_hat_, rh->L, rh.get(), rhL.get(), rhL_c.get(),
                                 static_cast<snode*>(nullptr))) {
                    V result = rh->value;  // rh_c keeps rh alive
                    return result;
                }
            }
        }
    }

    /// Mirror image of pop_right.
    std::optional<V> pop_left() {
        snode* dummy = dummy_ptr();
        for (;;) {
            auto lh = Domain::load_borrowed(left_hat_);
            auto rh = Domain::load_borrowed(right_hat_);
            auto lhL = Domain::load_borrowed(lh->L);
            if (!lhL) return std::nullopt;  // left sentinel => empty
            if (lh.get() == rh.get()) {
                if (Domain::dcas(left_hat_, right_hat_, lh.get(), rh.get(), dummy,
                                 dummy)) {
                    return lh->value;
                }
            } else {
                local lh_c = lh.promote();
                if (!lh_c) continue;
                auto lhR = Domain::load_borrowed(lh->R);
                local lhR_c = lhR.promote();
                if (lhR && !lhR_c) continue;
                if (Domain::dcas(left_hat_, lh->R, lh.get(), lhR.get(), lhR_c.get(),
                                 static_cast<snode*>(nullptr))) {
                    V result = lh->value;
                    return result;
                }
            }
        }
    }

    /// Racy emptiness probe (exact only at quiescence). Pure borrow: no
    /// refcount traffic.
    bool empty() const {
        auto& self = const_cast<snark_deque&>(*this);
        auto rh = Domain::load_borrowed(self.right_hat_);
        auto rhR = Domain::load_borrowed(rh->R);
        return !rhR;
    }

  private:
    /// Dummy is written only by the constructor/destructor, so reading it
    /// without a counted load is safe during normal operation; its lifetime
    /// is pinned by the dummy_ field's own count.
    // lfrc-lint: quiescent
    snode* dummy_ptr() const noexcept { return dummy_.exclusive_get(); }

    typename Domain::template ptr_field<snode> dummy_;      // line 33
    typename Domain::template ptr_field<snode> left_hat_;   // line 33
    typename Domain::template ptr_field<snode> right_hat_;  // line 33
};

}  // namespace lfrc::snark
