// GC-independent Snark deque — the paper's Section 4 example.
//
// This is the right-hand side of Figure 1, completed with the mirrored
// pushLeft and the two pop operations of the underlying Snark algorithm
// (Detlefs et al., "Even better DCAS-based concurrent deques", DISC 2000),
// transformed by the six LFRC steps of §3:
//
//   step 1  rc field            -> snode derives Domain::object
//   step 2  LFRCDestroy         -> snode::lfrc_visit_children
//   step 3  no garbage cycles   -> null pointers replace the original's
//                                  self-pointers (paper lines 36..37, 59);
//                                  pops install null instead of self
//   step 4  typed LFRC ops      -> basic_domain<Engine> templates
//   step 5  replace pointer ops -> every access below is an LFRC op
//   step 6  local pointer mgmt  -> local_ptr<> RAII, null-initialized
//
// Representation: a doubly-linked list with LeftHat/RightHat pointing to the
// leftmost/rightmost nodes of a non-empty deque, and a Dummy node serving as
// sentinel at one or both ends. A node whose R is null is a right sentinel;
// L null, a left sentinel (the original used self-pointers; the null form is
// what makes garbage cycle-free so reference counting can reclaim it). Some
// pops leave a previously popped node behind as a sentinel — LFRC keeps it
// alive exactly as long as a hat references it.
//
// Known post-publication caveat: the underlying Snark algorithm has a subtle
// double-pop bug found by Doherty et al. (SPAA 2004), orthogonal to the LFRC
// methodology; see snark_fixed.hpp for the value-claiming corrected variant
// and DESIGN.md §3 for discussion.
//
// The destructor follows Figure 1 lines 40..44: drain, then null the three
// shared pointers so everything reachable is destroyed. As the paper notes,
// it must not run concurrently with other operations.
#pragma once

#include <optional>
#include <utility>

#include "lfrc/domain.hpp"

namespace lfrc::snark {

template <typename Domain, typename V>
class snark_deque {
  public:
    struct snode : Domain::object {  // Figure 1 lines 31..32
        typename Domain::template ptr_field<snode> L;
        typename Domain::template ptr_field<snode> R;
        V value{};

        snode() = default;

        void lfrc_visit_children(typename Domain::child_visitor& visitor) noexcept override {
            visitor.on_child(L.exclusive_get());
            visitor.on_child(R.exclusive_get());
        }
    };

    using local = typename Domain::template local_ptr<snode>;

    snark_deque() {  // lines 33..39
        Domain::store_alloc(dummy_, Domain::template make<snode>());  // line 35
        snode* dummy = dummy_ptr();
        // Lines 36..37: Dummy's L and R are null (ptr_field default),
        // where the original had self-pointers — step 3's cycle removal.
        Domain::store(left_hat_, dummy);   // line 38
        Domain::store(right_hat_, dummy);  // line 39
    }

    /// Lines 40..44. Not concurrency-safe; call at quiescence.
    ~snark_deque() {
        while (pop_left().has_value()) {}  // line 41
        Domain::store(dummy_, static_cast<snode*>(nullptr));      // line 42
        Domain::store(left_hat_, static_cast<snode*>(nullptr));   // line 43
        Domain::store(right_hat_, static_cast<snode*>(nullptr));  // line 44
    }

    snark_deque(const snark_deque&) = delete;
    snark_deque& operator=(const snark_deque&) = delete;

    /// Figure 1 lines 49..68 (the paper returns FULLval on allocation
    /// failure; here `new` throws std::bad_alloc instead).
    void push_right(V v) {
        local nd = Domain::template make<snode>();  // line 49
        local rh, rhR, lh;                          // line 50: null-initialized
        snode* dummy = dummy_ptr();
        Domain::store(nd->R, dummy);  // line 54
        nd->value = std::move(v);     // line 55
        for (;;) {                    // line 56
            Domain::load(right_hat_, rh);  // line 57
            Domain::load(rh->R, rhR);      // line 58
            if (!rhR) {                    // line 59: right sentinel => empty
                Domain::store(nd->L, dummy);  // line 60
                Domain::load(left_hat_, lh);  // line 61
                if (Domain::dcas(right_hat_, left_hat_, rh.get(), lh.get(), nd.get(),
                                 nd.get())) {  // line 62
                    return;  // lines 63..64: locals destroy themselves
                }
            } else {
                Domain::store(nd->L, rh.get());  // line 65
                if (Domain::dcas(right_hat_, rh->R, rh.get(), rhR.get(), nd.get(),
                                 nd.get())) {  // line 66
                    return;  // lines 67..68
                }
            }
        }
    }

    /// Mirror image of push_right.
    void push_left(V v) {
        local nd = Domain::template make<snode>();
        local lh, lhL, rh;
        snode* dummy = dummy_ptr();
        Domain::store(nd->L, dummy);
        nd->value = std::move(v);
        for (;;) {
            Domain::load(left_hat_, lh);
            Domain::load(lh->L, lhL);
            if (!lhL) {  // left sentinel => empty
                Domain::store(nd->R, dummy);
                Domain::load(right_hat_, rh);
                if (Domain::dcas(left_hat_, right_hat_, lh.get(), rh.get(), nd.get(),
                                 nd.get())) {
                    return;
                }
            } else {
                Domain::store(nd->R, lh.get());
                if (Domain::dcas(left_hat_, lh->L, lh.get(), lhL.get(), nd.get(),
                                 nd.get())) {
                    return;
                }
            }
        }
    }

    /// popRight of the original algorithm, LFRC-transformed, null sentinels.
    std::optional<V> pop_right() {
        local rh, lh, rhR, rhL;
        snode* dummy = dummy_ptr();
        for (;;) {
            Domain::load(right_hat_, rh);
            Domain::load(left_hat_, lh);
            Domain::load(rh->R, rhR);
            if (!rhR) return std::nullopt;  // right sentinel => empty
            if (rh == lh) {
                // Single node: both hats retreat to Dummy.
                if (Domain::dcas(right_hat_, left_hat_, rh.get(), lh.get(), dummy,
                                 dummy)) {
                    return rh->value;
                }
            } else {
                Domain::load(rh->L, rhL);
                // Swing RightHat left; install null (not a self-pointer) in
                // rh->L so the popped node cannot anchor a garbage cycle.
                if (Domain::dcas(right_hat_, rh->L, rh.get(), rhL.get(), rhL.get(),
                                 static_cast<snode*>(nullptr))) {
                    V result = rh->value;
                    return result;
                }
            }
        }
    }

    /// Mirror image of pop_right.
    std::optional<V> pop_left() {
        local lh, rh, lhL, lhR;
        snode* dummy = dummy_ptr();
        for (;;) {
            Domain::load(left_hat_, lh);
            Domain::load(right_hat_, rh);
            Domain::load(lh->L, lhL);
            if (!lhL) return std::nullopt;  // left sentinel => empty
            if (lh == rh) {
                if (Domain::dcas(left_hat_, right_hat_, lh.get(), rh.get(), dummy,
                                 dummy)) {
                    return lh->value;
                }
            } else {
                Domain::load(lh->R, lhR);
                if (Domain::dcas(left_hat_, lh->R, lh.get(), lhR.get(), lhR.get(),
                                 static_cast<snode*>(nullptr))) {
                    V result = lh->value;
                    return result;
                }
            }
        }
    }

    /// Racy emptiness probe (exact only at quiescence).
    bool empty() const {
        auto& self = const_cast<snark_deque&>(*this);
        local rh = Domain::load_get(self.right_hat_);
        local rhR = Domain::load_get(rh->R);
        return !rhR;
    }

  private:
    /// Dummy is written only by the constructor/destructor, so reading it
    /// without a counted load is safe during normal operation; its lifetime
    /// is pinned by the dummy_ field's own count.
    snode* dummy_ptr() const noexcept { return dummy_.exclusive_get(); }

    typename Domain::template ptr_field<snode> dummy_;      // line 33
    typename Domain::template ptr_field<snode> left_hat_;   // line 33
    typename Domain::template ptr_field<snode> right_hat_;  // line 33
};

}  // namespace lfrc::snark
