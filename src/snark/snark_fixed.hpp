// Snark deque with value-claiming pops — hardening against the
// post-publication double-pop bug.
//
// Doherty et al. ("DCAS is not a Silver Bullet for Nonblocking Algorithm
// Design", SPAA 2004) found, via mechanized verification, an interleaving in
// which two pop operations of the published Snark both succeed for the same
// node, returning one value twice and losing another. The bug is a property
// of the deque algorithm, not of the LFRC methodology (LFRC reproduces the
// algorithm it is given, faithfully — including its bugs).
//
// This variant makes pops claim the value atomically after unlinking: the
// value slot is a 64-bit atomic and a successful hat-transition is followed
// by an exchange with a reserved CLAIMED marker. If two pops ever unlink the
// same node, exactly one wins the exchange; the loser retries. Values are
// therefore returned at most once regardless of the underlying race, which
// restores conservation (the property our stress suites check). The cost is
// restricting the element type to 64-bit values distinct from the marker.
//
// Everything else is identical to snark_lfrc.hpp (same LFRC transformation,
// same null-sentinel convention).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>

#include "lfrc/domain.hpp"

namespace lfrc::snark {

template <typename Domain>
class snark_deque_fixed {
  public:
    using value_type = std::uint64_t;

    /// Reserved marker: pushing it is a precondition violation.
    static constexpr value_type claimed = ~std::uint64_t{0};

    struct snode : Domain::object {
        typename Domain::template ptr_field<snode> L;
        typename Domain::template ptr_field<snode> R;
        std::atomic<value_type> value{claimed};

        void lfrc_visit_children(typename Domain::child_visitor& visitor) noexcept override {
            visitor.on_child(L.exclusive_get());
            visitor.on_child(R.exclusive_get());
        }
    };

    using local = typename Domain::template local_ptr<snode>;

    snark_deque_fixed() {
        Domain::store_alloc(dummy_, Domain::template make<snode>());
        snode* dummy = dummy_ptr();
        Domain::store(left_hat_, dummy);
        Domain::store(right_hat_, dummy);
    }

    ~snark_deque_fixed() {
        while (pop_left().has_value()) {}
        Domain::store(dummy_, static_cast<snode*>(nullptr));
        Domain::store(left_hat_, static_cast<snode*>(nullptr));
        Domain::store(right_hat_, static_cast<snode*>(nullptr));
    }

    snark_deque_fixed(const snark_deque_fixed&) = delete;
    snark_deque_fixed& operator=(const snark_deque_fixed&) = delete;

    void push_right(value_type v) {
        assert(v != claimed && "the CLAIMED marker cannot be pushed");
        local nd = Domain::template make<snode>();
        local rh, rhR, lh;
        snode* dummy = dummy_ptr();
        Domain::store(nd->R, dummy);
        nd->value.store(v, std::memory_order_relaxed);
        for (;;) {
            Domain::load(right_hat_, rh);
            Domain::load(rh->R, rhR);
            if (!rhR) {
                Domain::store(nd->L, dummy);
                Domain::load(left_hat_, lh);
                if (Domain::dcas(right_hat_, left_hat_, rh.get(), lh.get(), nd.get(),
                                 nd.get())) {
                    return;
                }
            } else {
                Domain::store(nd->L, rh.get());
                if (Domain::dcas(right_hat_, rh->R, rh.get(), rhR.get(), nd.get(),
                                 nd.get())) {
                    return;
                }
            }
        }
    }

    void push_left(value_type v) {
        assert(v != claimed && "the CLAIMED marker cannot be pushed");
        local nd = Domain::template make<snode>();
        local lh, lhL, rh;
        snode* dummy = dummy_ptr();
        Domain::store(nd->L, dummy);
        nd->value.store(v, std::memory_order_relaxed);
        for (;;) {
            Domain::load(left_hat_, lh);
            Domain::load(lh->L, lhL);
            if (!lhL) {
                Domain::store(nd->R, dummy);
                Domain::load(right_hat_, rh);
                if (Domain::dcas(left_hat_, right_hat_, lh.get(), rh.get(), nd.get(),
                                 nd.get())) {
                    return;
                }
            } else {
                Domain::store(nd->R, lh.get());
                if (Domain::dcas(left_hat_, lh->L, lh.get(), lhL.get(), nd.get(),
                                 nd.get())) {
                    return;
                }
            }
        }
    }

    std::optional<value_type> pop_right() {
        local rh, lh, rhR, rhL;
        snode* dummy = dummy_ptr();
        for (;;) {
            Domain::load(right_hat_, rh);
            Domain::load(left_hat_, lh);
            Domain::load(rh->R, rhR);
            if (!rhR) return std::nullopt;
            if (rh == lh) {
                if (Domain::dcas(right_hat_, left_hat_, rh.get(), lh.get(), dummy,
                                 dummy)) {
                    const value_type v = rh->value.exchange(claimed);
                    if (v != claimed) return v;
                    // A conflicting pop already took this node's value
                    // (the Doherty interleaving): retry instead of
                    // duplicating it.
                }
            } else {
                Domain::load(rh->L, rhL);
                if (Domain::dcas(right_hat_, rh->L, rh.get(), rhL.get(), rhL.get(),
                                 static_cast<snode*>(nullptr))) {
                    const value_type v = rh->value.exchange(claimed);
                    if (v != claimed) return v;
                }
            }
        }
    }

    std::optional<value_type> pop_left() {
        local lh, rh, lhL, lhR;
        snode* dummy = dummy_ptr();
        for (;;) {
            Domain::load(left_hat_, lh);
            Domain::load(right_hat_, rh);
            Domain::load(lh->L, lhL);
            if (!lhL) return std::nullopt;
            if (lh == rh) {
                if (Domain::dcas(left_hat_, right_hat_, lh.get(), rh.get(), dummy,
                                 dummy)) {
                    const value_type v = lh->value.exchange(claimed);
                    if (v != claimed) return v;
                }
            } else {
                Domain::load(lh->R, lhR);
                if (Domain::dcas(left_hat_, lh->R, lh.get(), lhR.get(), lhR.get(),
                                 static_cast<snode*>(nullptr))) {
                    const value_type v = lh->value.exchange(claimed);
                    if (v != claimed) return v;
                }
            }
        }
    }

    bool empty() const {
        auto& self = const_cast<snark_deque_fixed&>(*this);
        local rh = Domain::load_get(self.right_hat_);
        local rhR = Domain::load_get(rh->R);
        return !rhR;
    }

  private:
    // dummy_ is written only under exclusive access (ctor/dtor); normal
    // operation reads a pointer pinned by the field's own count.
    // lfrc-lint: quiescent
    snode* dummy_ptr() const noexcept { return dummy_.exclusive_get(); }

    typename Domain::template ptr_field<snode> dummy_;
    typename Domain::template ptr_field<snode> left_hat_;
    typename Domain::template ptr_field<snode> right_hat_;
};

}  // namespace lfrc::snark
