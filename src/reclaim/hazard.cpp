#include "reclaim/hazard.hpp"

#include <cstdio>
#include <cstdlib>

namespace lfrc::reclaim {

hazard_domain::~hazard_domain() {
    // Requires quiescence, like epoch_domain::~epoch_domain.
    for (auto& padded_slot : slots_) {
        retired_node* node = padded_slot->retired.exchange(nullptr, std::memory_order_acquire);  // lfrc-lint: order(hp-retired-list)
        while (node != nullptr) {
            retired_node* next = node->next;
            node->deleter(node->object);
            delete node;
            node = next;
        }
    }
}

hazard_domain& hazard_domain::global() {
    static hazard_domain domain;
    return domain;
}

hazard_domain::hp::hp(hazard_domain& d) : domain_(d) {
    slot_record& rec = *d.slots_[util::thread_registry::instance().slot()];
    for (std::size_t i = 0; i < slots_per_thread; ++i) {
        if (!rec.in_use[i]) {
            rec.in_use[i] = true;
            index_ = i;
            slot_ = &rec.hazards[i];
            return;
        }
    }
    std::fprintf(stderr, "lfrc: more than %zu live hazard pointers in one thread\n",
                 slots_per_thread);
    std::abort();
}

hazard_domain::hp::~hp() {
    slot_->store(nullptr, std::memory_order_release);  // lfrc-lint: order(hp-clear)
    slot_record& rec = *domain_.slots_[util::thread_registry::instance().slot()];
    rec.in_use[index_] = false;
}

void hazard_domain::retire(void* object, void (*deleter)(void*)) {
    const std::size_t slot = util::thread_registry::instance().slot();
    auto* node = new retired_node{nullptr, object, deleter};
    push_retired(slot, node);
    pending_.fetch_add(1, std::memory_order_relaxed);  // lfrc-lint: order(hp-pending-counter)
    slot_record& rec = *slots_[slot];
    if (++rec.retires_since_scan >= scan_threshold) {
        rec.retires_since_scan = 0;
        scan_and_free(slot);
    }
}

void hazard_domain::push_retired(std::size_t slot, retired_node* node) noexcept {
    std::atomic<retired_node*>& head = slots_[slot]->retired;
    retired_node* old_head = head.load(std::memory_order_relaxed);  // lfrc-lint: order(hp-retired-list)
    do {
        node->next = old_head;
    } while (!head.compare_exchange_weak(old_head, node, std::memory_order_acq_rel));  // lfrc-lint: order(hp-retired-list)
}

bool hazard_domain::is_protected(const void* p) const noexcept {
    const std::size_t high = util::thread_registry::instance().high_water();
    for (std::size_t s = 0; s < high; ++s) {
        for (const auto& h : slots_[s]->hazards) {
            if (h.load(std::memory_order_seq_cst) == p) return true;
        }
    }
    return false;
}

void hazard_domain::scan_and_free(std::size_t slot) {
    retired_node* stolen = slots_[slot]->retired.exchange(nullptr, std::memory_order_acq_rel);  // lfrc-lint: order(hp-retired-list)
    retired_node* survivors = nullptr;
    while (stolen != nullptr) {
        retired_node* next = stolen->next;
        if (is_protected(stolen->object)) {
            stolen->next = survivors;
            survivors = stolen;
        } else {
            stolen->deleter(stolen->object);
            delete stolen;
            pending_.fetch_sub(1, std::memory_order_relaxed);  // lfrc-lint: order(hp-pending-counter)
        }
        stolen = next;
    }
    const std::size_t my_slot = util::thread_registry::instance().slot();
    while (survivors != nullptr) {
        retired_node* next = survivors->next;
        push_retired(my_slot, survivors);
        survivors = next;
    }
}

void hazard_domain::drain_all() {
    const std::size_t high = util::thread_registry::instance().high_water();
    for (std::size_t s = 0; s < high; ++s) scan_and_free(s);
}

}  // namespace lfrc::reclaim
