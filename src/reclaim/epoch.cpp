#include "reclaim/epoch.hpp"

#include <cassert>

namespace lfrc::reclaim {

namespace {
constexpr std::uint64_t active_bit = 1;

std::uint64_t make_state(std::uint64_t epoch) noexcept { return (epoch << 1) | active_bit; }
bool state_active(std::uint64_t s) noexcept { return (s & active_bit) != 0; }
std::uint64_t state_epoch(std::uint64_t s) noexcept { return s >> 1; }
}  // namespace

epoch_domain::~epoch_domain() {
    // Destruction requires quiescence (no thread inside a guard, none will
    // enter). Everything pending is then trivially past its grace period.
    for (auto& padded_slot : slots_) {
        retired_node* node = padded_slot->retired.exchange(nullptr, std::memory_order_acquire);  // lfrc-lint: order(epoch-retired-list)
        while (node != nullptr) {
            retired_node* next = node->next;
            node->deleter(node->object);
            node_pool_.deallocate(node);
            node = next;
        }
    }
}

auto epoch_domain::acquire_node() -> retired_node* {
    // Single-consumer pop from the owner's free stack (only the owner pops,
    // so the unsynchronized `next` read cannot see a recycled node).
    slot_record& rec = *slots_[util::thread_registry::instance().slot()];
    retired_node* head = rec.free_nodes.load(std::memory_order_acquire);  // lfrc-lint: order(free-node-stack)
    while (head != nullptr) {
        if (rec.free_nodes.compare_exchange_weak(head, head->next,  // lfrc-lint: order(free-node-stack)
                                                 std::memory_order_acq_rel)) {
            return head;
        }
    }
    return static_cast<retired_node*>(node_pool_.allocate());
}

void epoch_domain::release_node(retired_node* node) noexcept {
    // Multi-producer push onto the releasing thread's own slot.
    slot_record& rec = *slots_[util::thread_registry::instance().slot()];
    retired_node* head = rec.free_nodes.load(std::memory_order_relaxed);  // lfrc-lint: order(free-node-stack)
    do {
        node->next = head;
    } while (!rec.free_nodes.compare_exchange_weak(head, node, std::memory_order_acq_rel));  // lfrc-lint: order(free-node-stack)
}

std::uint64_t epoch_domain::pending() const noexcept {
    std::int64_t total = 0;
    const std::size_t high = util::thread_registry::instance().high_water();
    for (std::size_t s = 0; s < high; ++s) {
        total += slots_[s]->pending_delta.load(std::memory_order_acquire);  // lfrc-lint: order(epoch-pending-counter)
    }
    std::uint64_t sum = total > 0 ? static_cast<std::uint64_t>(total) : 0;
    if (auto* f = aux_pending_.load(std::memory_order_acquire)) sum += f();  // lfrc-lint: order(aux-hook-install)
    return sum;
}

bool epoch_domain::quiescent() const noexcept {
    const std::size_t high = util::thread_registry::instance().high_water();
    for (std::size_t s = 0; s < high; ++s) {
        if (state_active(slots_[s]->state.load(std::memory_order_seq_cst))) return false;
    }
    return true;
}

void epoch_domain::register_aux(std::uint64_t (*pending_fn)() noexcept, void (*drain_fn)() noexcept,
                                void (*clear_slot_fn)(std::size_t) noexcept) noexcept {
    // One layered scheme only: a second registration would silently
    // disconnect the first scheme's backlog from pending()/drain_all().
    assert(aux_pending_.load(std::memory_order_relaxed) == nullptr &&  // lfrc-lint: order(aux-hook-install)
           "register_aux: an aux reclaimer is already registered");
    aux_pending_.store(pending_fn, std::memory_order_release);  // lfrc-lint: order(aux-hook-install)
    aux_drain_.store(drain_fn, std::memory_order_release);  // lfrc-lint: order(aux-hook-install)
    aux_clear_slot_.store(clear_slot_fn, std::memory_order_release);  // lfrc-lint: order(aux-hook-install)
}

void epoch_domain::register_slot_reset(void (*fn)(std::size_t) noexcept) noexcept {
    assert(slot_reset_.load(std::memory_order_relaxed) == nullptr &&  // lfrc-lint: order(aux-hook-install)
           "register_slot_reset: a slot-reset hook is already registered");
    slot_reset_.store(fn, std::memory_order_release);  // lfrc-lint: order(aux-hook-install)
}

epoch_domain& epoch_domain::global() {
    // Intentionally leaked: retires (and their deleters) can happen during
    // static destruction, which must never race the domain's own teardown.
    static auto* domain = new epoch_domain;
    return *domain;
}

void epoch_domain::enter() noexcept {
    slot_record& rec = *slots_[util::thread_registry::instance().slot()];
    if (rec.depth++ != 0) return;  // nested: already pinned
    // Announce/validate loop: after this, our announced epoch is at most one
    // behind the global epoch at every later instant (see header comment).
    for (;;) {
        const std::uint64_t e = global_epoch_->load(std::memory_order_seq_cst);
        rec.state.store(make_state(e), std::memory_order_seq_cst);
        if (global_epoch_->load(std::memory_order_seq_cst) == e) return;
    }
}

void epoch_domain::exit() noexcept {
    slot_record& rec = *slots_[util::thread_registry::instance().slot()];
    if (--rec.depth != 0) return;
    rec.state.store(0, std::memory_order_release);  // lfrc-lint: order(slot-unpin)
}

void epoch_domain::retire(void* object, void (*deleter)(void*)) {
    const std::size_t slot = util::thread_registry::instance().slot();
    retired_node* node = acquire_node();
    node->next = nullptr;
    node->epoch = global_epoch();
    node->object = object;
    node->deleter = deleter;
    push_retired(slot, node);
    slot_record& rec = *slots_[slot];
    rec.pending_delta.fetch_add(1, std::memory_order_relaxed);  // lfrc-lint: order(epoch-pending-counter)
    if (++rec.retires_since_scan >= scan_threshold) {
        rec.retires_since_scan = 0;
        reclaim_some(slot, /*force=*/false);
    }
}

void epoch_domain::push_retired(std::size_t slot, retired_node* node) noexcept {
    std::atomic<retired_node*>& head = slots_[slot]->retired;
    retired_node* old_head = head.load(std::memory_order_relaxed);  // lfrc-lint: order(epoch-retired-list)
    do {
        node->next = old_head;
    } while (!head.compare_exchange_weak(old_head, node, std::memory_order_acq_rel));  // lfrc-lint: order(epoch-retired-list)
}

void epoch_domain::push_retired_chain(std::size_t slot, retired_node* chain_head) noexcept {
    retired_node* tail = chain_head;
    while (tail->next != nullptr) tail = tail->next;
    std::atomic<retired_node*>& head = slots_[slot]->retired;
    retired_node* old_head = head.load(std::memory_order_relaxed);  // lfrc-lint: order(epoch-retired-list)
    do {
        tail->next = old_head;
    } while (!head.compare_exchange_weak(old_head, chain_head, std::memory_order_acq_rel));  // lfrc-lint: order(epoch-retired-list)
}

bool epoch_domain::try_advance() noexcept {
    const std::uint64_t e = global_epoch_->load(std::memory_order_seq_cst);
    const std::size_t high = util::thread_registry::instance().high_water();
    for (std::size_t s = 0; s < high; ++s) {
        const std::uint64_t st = slots_[s]->state.load(std::memory_order_seq_cst);
        if (state_active(st) && state_epoch(st) != e) return false;
    }
    std::uint64_t expected = e;
    return global_epoch_->compare_exchange_strong(expected, e + 1,
                                                  std::memory_order_seq_cst);
}

auto epoch_domain::free_eligible(retired_node* head, std::uint64_t eligible_before)
    -> retired_node* {
    retired_node* survivors = nullptr;
    while (head != nullptr) {
        retired_node* next = head->next;
        if (head->epoch < eligible_before) {
            head->deleter(head->object);
            release_node(head);
            slots_[util::thread_registry::instance().slot()]->pending_delta.fetch_sub(
                1, std::memory_order_relaxed);  // lfrc-lint: order(epoch-pending-counter)
        } else {
            head->next = survivors;
            survivors = head;
        }
        head = next;
    }
    return survivors;
}

void epoch_domain::reclaim_some(std::size_t slot, bool force) {
    try_advance();
    const std::uint64_t g = global_epoch();
    if (g < grace_epochs) return;
    slot_record& rec = *slots_[slot];
    if (!force && rec.last_scan_epoch.load(std::memory_order_relaxed) == g) {  // lfrc-lint: order(unpaired-owner-scan-cache)
        return;  // nothing new can be eligible; avoid an O(pending) no-op walk
    }
    rec.last_scan_epoch.store(g, std::memory_order_relaxed);  // lfrc-lint: order(unpaired-owner-scan-cache)
    retired_node* stolen = rec.retired.exchange(nullptr, std::memory_order_acq_rel);  // lfrc-lint: order(epoch-retired-list)
    retired_node* survivors = free_eligible(stolen, g - grace_epochs + 1);
    // Re-home survivors (as one chain, one CAS) onto our own slot — we
    // might be draining another thread's leftovers via drain_all.
    if (survivors != nullptr) {
        push_retired_chain(util::thread_registry::instance().slot(), survivors);
    }
}

void epoch_domain::clear_slot(std::size_t s) noexcept {
    // Flush any layered per-slot state (smr::deferred's delta table) while
    // the slot still counts as pinned: the aux flush applies count deltas
    // whose safety argument assumes the owner held its pin when they were
    // recorded. The abandoned fiber never runs again, so this is the
    // thread-exit flush it will never perform itself.
    if (auto* f = aux_clear_slot_.load(std::memory_order_acquire)) f(s);  // lfrc-lint: order(aux-hook-install)
    // Then invalidate engine-local per-slot state (descriptor sequences):
    // after this, stale helpers racing the teardown can no longer complete
    // the abandoned slot's operations.
    if (auto* f = slot_reset_.load(std::memory_order_acquire)) f(s);  // lfrc-lint: order(aux-hook-install)
    slot_record& rec = *slots_[s];
    rec.depth = 0;
    rec.state.store(0, std::memory_order_release);  // lfrc-lint: order(slot-unpin)
}

void epoch_domain::clear_slots(const std::size_t* slots, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) clear_slot(slots[i]);
}

void epoch_domain::drain_all() {
    try_advance();
    const std::size_t high = util::thread_registry::instance().high_water();
    for (std::size_t s = 0; s < high; ++s) reclaim_some(s, /*force=*/true);
    if (auto* f = aux_drain_.load(std::memory_order_acquire)) f();  // lfrc-lint: order(aux-hook-install)
}

}  // namespace lfrc::reclaim
