// Hazard pointers (Michael 2002) — comparator reclamation scheme.
//
// The paper's §6 discusses alternatives to LFRC; hazard pointers are the
// canonical CAS-only competitor (published contemporaneously), so the E5/E6
// benchmarks pit LFRC's counted loads against HP's protect/validate loads.
//
// Per registered thread there are `slots_per_thread` hazard slots. Readers
// publish the pointer they are about to dereference and re-validate the
// source; reclaimers scan all published hazards and free only unprotected
// retired nodes. Retire stacks mirror the epoch domain's: per-slot Treiber
// stacks that any thread may steal and drain.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/cacheline.hpp"
#include "util/thread_registry.hpp"

namespace lfrc::reclaim {

class hazard_domain {
  public:
    static constexpr std::size_t slots_per_thread = 4;

    hazard_domain() = default;
    hazard_domain(const hazard_domain&) = delete;
    hazard_domain& operator=(const hazard_domain&) = delete;
    ~hazard_domain();

    /// RAII ownership of one of the calling thread's hazard slots.
    class hp {
      public:
        explicit hp(hazard_domain& d);
        ~hp();
        hp(const hp&) = delete;
        hp& operator=(const hp&) = delete;

        /// Announce-and-validate load: returns a pointer that is safe to
        /// dereference until the hp is cleared/destroyed.
        template <typename T>
        T* protect(const std::atomic<T*>& src) noexcept {
            for (;;) {
                T* p = src.load(std::memory_order_acquire);  // lfrc-lint: order(unpaired-guarded-source-read)
                announce(p);
                if (src.load(std::memory_order_seq_cst) == p) return p;
            }
        }

        /// Publish an already-loaded pointer (caller re-validates).
        void announce(const void* p) noexcept {
            slot_->store(p, std::memory_order_seq_cst);
        }

        void clear() noexcept { slot_->store(nullptr, std::memory_order_release); }  // lfrc-lint: order(hp-clear)

      private:
        hazard_domain& domain_;
        std::atomic<const void*>* slot_;
        std::size_t index_;
    };

    void retire(void* object, void (*deleter)(void*));

    template <typename T>
    void retire(T* object) {
        retire(object, [](void* p) { delete static_cast<T*>(p); });
    }

    /// Scan hazards and free every unprotected retired node, from all slots.
    void drain_all();

    std::uint64_t pending() const noexcept {
        return pending_.load(std::memory_order_acquire);  // lfrc-lint: order(hp-pending-counter)
    }

    static hazard_domain& global();

  private:
    struct retired_node {
        retired_node* next;
        void* object;
        void (*deleter)(void*);
    };

    struct slot_record {
        std::atomic<const void*> hazards[slots_per_thread] = {};
        // Owner-only: which hazard indices are handed out as hp objects.
        bool in_use[slots_per_thread] = {};
        std::atomic<retired_node*> retired{nullptr};
        std::uint64_t retires_since_scan = 0;
    };

    static constexpr std::uint64_t scan_threshold = 64;

    void push_retired(std::size_t slot, retired_node* node) noexcept;
    void scan_and_free(std::size_t slot);
    bool is_protected(const void* p) const noexcept;

    std::atomic<std::uint64_t> pending_{0};
    util::padded<slot_record> slots_[util::thread_registry::max_threads];
};

}  // namespace lfrc::reclaim
