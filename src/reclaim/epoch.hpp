// Epoch-based reclamation (EBR).
//
// Two roles in this repo:
//  1. A comparator reclamation scheme for the GC-dependent container
//     baselines (experiment E5) — retire-on-unlink, free after a grace
//     period.
//  2. The recycler for the lock-free DCAS emulation's descriptors
//     (dcas::mcas_engine): helpers may dereference a descriptor pointer
//     found in a cell, so descriptors are freed only after every thread that
//     could have seen that pointer has left its critical section.
//
// Protocol (classic three-epoch scheme):
//  * A thread entering a critical section announces the current global
//    epoch in its registry slot, then re-validates the global epoch
//    (announce/validate loop). This bounds the lag of any active thread to
//    at most one epoch behind the global.
//  * try_advance() bumps the global epoch only when every active thread has
//    announced the current one.
//  * An object retired at epoch r is freed once global >= r + 3. (r + 2 is
//    the textbook bound; the extra epoch is a deliberate safety margin —
//    reclaiming later is always sound.)
//
// Retired objects go on per-slot lock-free Treiber stacks. Any thread may
// *steal* a slot's whole stack with an atomic exchange, free the eligible
// entries, and push the remainder onto its own stack — so nodes retired by
// exited threads are eventually drained, and `drain_all()` lets quiescent
// tests flush everything.
//
// Progress note (matches DESIGN.md §2): all operations here are lock-free,
// but a thread parked *inside* a critical section stalls epoch advance and
// therefore reclamation. Memory grows; nobody blocks.
#pragma once

#include <atomic>
#include <cstdint>

#include "alloc/block_pool.hpp"
#include "sim/instrumented.hpp"
#include "util/cacheline.hpp"
#include "util/thread_registry.hpp"

namespace lfrc::reclaim {

class epoch_domain {
  public:
    epoch_domain() = default;
    epoch_domain(const epoch_domain&) = delete;
    epoch_domain& operator=(const epoch_domain&) = delete;
    ~epoch_domain();

    /// RAII critical-section pin. Re-entrant (nested guards are cheap).
    class guard {
      public:
        explicit guard(epoch_domain& d) noexcept : domain_(d) { domain_.enter(); }
        ~guard() { domain_.exit(); }
        guard(const guard&) = delete;
        guard& operator=(const guard&) = delete;

      private:
        epoch_domain& domain_;
    };

    void enter() noexcept;
    void exit() noexcept;

    /// Hand an unlinked object to the domain; `deleter(object)` runs after
    /// the grace period. Must be called by a thread (typically inside a
    /// guard, but that is not required for safety of the domain itself).
    void retire(void* object, void (*deleter)(void*));

    template <typename T>
    void retire(T* object) {
        retire(object, [](void* p) { delete static_cast<T*>(p); });
    }

    /// Attempt one epoch advance; returns true if the epoch moved.
    bool try_advance() noexcept;

    /// Drain every slot's retire stack as far as grace periods allow.
    /// Safe concurrently; tests call it after joining worker threads
    /// (repeatedly, interleaved with try_advance) to reach zero.
    void drain_all();

    /// Forcibly un-pin a slot: reset nesting depth and announced state.
    /// For virtual-thread harnesses (src/sim) that abandon a fiber mid
    /// critical section — the harness guarantees the abandoned fiber never
    /// runs again, so dropping its pin is the moral equivalent of the
    /// thread-exit quiescence the destructor comment relies on. Never call
    /// this for a slot whose owner may still execute.
    void clear_slot(std::size_t s) noexcept;

    /// Batch clear_slot for the joined-worker teardown idiom shared by the
    /// workload driver and the net server: each worker records its slot
    /// index before the join; after the join the slots can never run again,
    /// so clearing them releases any pins the vanished threads held (their
    /// thread_local destructors ran, but a worker parked inside a guard at
    /// join time would otherwise stall the epoch forever). Same legality
    /// contract as clear_slot, per entry.
    void clear_slots(const std::size_t* slots, std::size_t n) noexcept;

    /// True when no slot is currently pinned. A quiescent observation is
    /// only meaningful to callers that already know no thread is about to
    /// pin (teardown, joined-worker drains); it is advisory, not a fence.
    bool quiescent() const noexcept;

    /// Auxiliary reclaimer hooks. A scheme layered on this domain's epochs
    /// (smr::deferred's review queue) registers itself once so that
    /// pending() reflects its backlog, drain_all() drives its processing,
    /// and clear_slot() flushes its per-slot state for abandoned fibers —
    /// every existing drain/teardown loop then covers it with no caller
    /// changes. Hooks must be callable from any thread. Exactly one layered
    /// scheme is supported: registering a second asserts rather than
    /// silently replacing the first.
    void register_aux(std::uint64_t (*pending_fn)() noexcept, void (*drain_fn)() noexcept,
                      void (*clear_slot_fn)(std::size_t) noexcept) noexcept;

    /// Engine-local per-slot state hook: invoked by clear_slot(s) so a DCAS
    /// engine with permanent per-slot descriptors (dcas::mcas_engine) can
    /// invalidate the abandoned slot's descriptors — bump their sequences so
    /// stale helpers cannot complete them. Deliberately separate from
    /// register_aux, which is the layered-*reclaimer* seam (pending/drain
    /// accounting) and is already taken by smr::deferred. One registrant;
    /// a second registration asserts.
    void register_slot_reset(void (*fn)(std::size_t) noexcept) noexcept;

    std::uint64_t global_epoch() const noexcept {
        return global_epoch_->load(std::memory_order_acquire);  // lfrc-lint: order(unpaired-epoch-read)
    }

    /// Retired-but-not-yet-freed objects (approximate under concurrency).
    std::uint64_t pending() const noexcept;

    /// Domain used for MCAS descriptors and anything else process-wide.
    static epoch_domain& global();

  private:
    struct retired_node {
        retired_node* next;
        std::uint64_t epoch;
        void* object;
        void (*deleter)(void*);
    };

    struct slot_record {
        // Bit 0: active flag; bits 1..: announced epoch. Instrumented: the
        // announce/validate handshake with try_advance is exactly the race
        // the sim scheduler must be able to interleave.
        sim::instrumented_atomic<std::uint64_t> state{0};
        // Owner-only nesting depth (never touched by other threads).
        std::uint64_t depth = 0;
        // Owner pushes; anyone may steal the whole stack via exchange.
        std::atomic<retired_node*> retired{nullptr};
        // Owner-only counter driving periodic reclamation.
        std::uint64_t retires_since_scan = 0;
        // Epoch at the last reclamation attempt (advisory; races with
        // drain_all are harmless). If the global epoch has not moved since,
        // nothing new can be eligible and the scan is skipped — without
        // this, a peer parked inside a guard makes every scan an O(pending)
        // walk that frees nothing (quadratic in the stall length).
        std::atomic<std::uint64_t> last_scan_epoch{0};
        // Free bookkeeping nodes: multi-producer (any drainer) push,
        // single-consumer (owner) pop — keeps the hot retire path off the
        // shared backing pool.
        std::atomic<retired_node*> free_nodes{nullptr};
        // Per-slot pending delta; pending() sums across slots. Avoids a
        // process-wide contended counter on the retire path.
        std::atomic<std::int64_t> pending_delta{0};
    };

    static constexpr std::uint64_t grace_epochs = 3;
    static constexpr std::uint64_t scan_threshold = 64;

    void push_retired(std::size_t slot, retired_node* node) noexcept;
    void push_retired_chain(std::size_t slot, retired_node* chain_head) noexcept;
    void reclaim_some(std::size_t slot, bool force);
    /// Frees eligible entries of a stolen list; returns the survivors.
    retired_node* free_eligible(retired_node* head, std::uint64_t eligible_before);
    retired_node* acquire_node();
    void release_node(retired_node* node) noexcept;

    util::padded<sim::instrumented_atomic<std::uint64_t>> global_epoch_{std::uint64_t{1}};
    // Aux reclaimer hooks (register_aux). Null until a layered scheme
    // registers; checked with an acquire load on the paths they touch.
    std::atomic<std::uint64_t (*)() noexcept> aux_pending_{nullptr};
    std::atomic<void (*)() noexcept> aux_drain_{nullptr};
    std::atomic<void (*)(std::size_t) noexcept> aux_clear_slot_{nullptr};
    // Engine per-slot reset hook (register_slot_reset).
    std::atomic<void (*)(std::size_t) noexcept> slot_reset_{nullptr};
    // Internal bookkeeping nodes come from an untracked pool so the hot
    // retire path performs no heap allocation and leak accounting stays
    // application-only.
    alloc::block_pool<sizeof(retired_node)> node_pool_{/*track_stats=*/false};
    util::padded<slot_record> slots_[util::thread_registry::max_threads];
};

}  // namespace lfrc::reclaim
