#include "alloc/stats.hpp"

namespace lfrc::alloc {

namespace {

// Plain global atomics; the counters are off the data-structure hot path in
// release benchmarks only by a couple of uncontended RMWs, and precision
// matters more than nanoseconds here.
std::atomic<std::int64_t> g_live_bytes{0};
std::atomic<std::int64_t> g_live_objects{0};
std::atomic<std::uint64_t> g_total_allocations{0};
std::atomic<std::uint64_t> g_total_frees{0};

}  // namespace

void note_alloc(std::size_t bytes) noexcept {
    g_live_bytes.fetch_add(static_cast<std::int64_t>(bytes), std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
    g_live_objects.fetch_add(1, std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
    g_total_allocations.fetch_add(1, std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
}

void note_free(std::size_t bytes) noexcept {
    g_live_bytes.fetch_sub(static_cast<std::int64_t>(bytes), std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
    g_live_objects.fetch_sub(1, std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
    g_total_frees.fetch_add(1, std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
}

stats_snapshot snapshot() noexcept {
    stats_snapshot s;
    s.live_bytes = g_live_bytes.load(std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
    s.live_objects = g_live_objects.load(std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
    s.total_allocations = g_total_allocations.load(std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
    s.total_frees = g_total_frees.load(std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
    return s;
}

std::int64_t live_bytes() noexcept { return g_live_bytes.load(std::memory_order_relaxed); }  // lfrc-lint: order(unpaired-stats-counter)
std::int64_t live_objects() noexcept {
    return g_live_objects.load(std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
}

}  // namespace lfrc::alloc
