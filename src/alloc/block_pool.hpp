// Lock-free, type-stable block pool.
//
// This is the allocation regime the paper contrasts LFRC against: memory is
// recycled through a LIFO freelist but *never returned to the system* while
// the pool lives (Valois [19] and other freelist-based schemes require
// exactly this "type-stable" property). Consumers in this repo:
//
//  * containers::valois_stack — the comparator whose footprint cannot
//    shrink (experiment E4);
//  * reclaim::epoch_domain — its retire bookkeeping nodes (track_stats
//    off: infrastructure, not application footprint);
//  * the frozen allocate+retire DCAS baseline in bench_e10;
//  * tests/test_aba_demo.cpp — the LIFO reuse makes ABA reproduce reliably,
//    demonstrating why CAS-only reference counting on reusable memory is
//    unsound (paper §1) while LFRC on fresh heap memory is not.
//
// Storage comes from the shared slab chunk directory (alloc/slab.hpp, the
// same engine under lfrc::alloc::arena); this class adds one single-list
// freelist over it. Freelist ABA is prevented with the 32-bit tag packed
// next to the 32-bit slot index in a single 64-bit head word (tagged_head),
// so no double-width CAS is needed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>

#include "alloc/slab.hpp"

namespace lfrc::alloc {

template <std::size_t BlockSize>
class block_pool {
  public:
    static constexpr std::size_t blocks_per_chunk = slab_directory::slots_per_chunk;
    static constexpr std::size_t max_chunks = slab_directory::max_chunks;

    /// `track_stats == false` keeps this pool's chunks out of the global
    /// allocation counters — used by infrastructure pools (DCAS descriptors,
    /// epoch retire nodes) whose footprint would otherwise pollute
    /// application-level leak accounting.
    explicit block_pool(bool track_stats = true) noexcept
        : dir_(slot_bytes, track_stats) {}
    block_pool(const block_pool&) = delete;
    block_pool& operator=(const block_pool&) = delete;

    /// Returns a BlockSize-byte region. Lock-free; recycled blocks are
    /// returned most-recently-freed first.
    void* allocate() {
        bool fresh_unused;
        return allocate_ex(fresh_unused);
    }

    /// Like allocate(), reporting whether the block is freshly carved
    /// (never used before) or recycled. Reference-counting schemes over
    /// type-stable memory need the distinction: recycled blocks may still
    /// receive stale accesses from their previous life and must not be
    /// blindly re-initialized (see containers::valois_stack).
    void* allocate_ex(bool& fresh) {
        // Fast path: pop the freelist. The pre-read `next` is only valid if
        // the head did not change underneath us — the tag turns "same index,
        // different list" into a CAS failure.
        std::uint64_t head = head_.load(std::memory_order_acquire);  // lfrc-lint: order(pool-head)
        while (tagged_head::index_of(head) != tagged_head::null_index) {
            std::byte* slot = dir_.slot_at(tagged_head::index_of(head));
            std::uint32_t next;
            std::memcpy(&next, slot + sizeof(std::uint32_t), sizeof(next));
            const std::uint64_t desired =
                tagged_head::pack(tagged_head::tag_of(head) + 1, next);
            if (head_.compare_exchange_weak(head, desired, std::memory_order_acq_rel)) {  // lfrc-lint: order(pool-head)
                fresh = false;
                return slot + header_bytes;
            }
        }
        // Slow path: carve a fresh block and stamp its index.
        fresh = true;
        std::uint32_t index;
        std::byte* slot = dir_.carve(index);
        std::memcpy(slot, &index, sizeof(index));
        return slot + header_bytes;
    }

    void deallocate(void* p) noexcept {
        auto* slot = static_cast<std::byte*>(p) - header_bytes;
        std::uint32_t index;
        std::memcpy(&index, slot, sizeof(index));
        std::uint64_t head = head_.load(std::memory_order_acquire);  // lfrc-lint: order(pool-head)
        for (;;) {
            const std::uint32_t old_top = tagged_head::index_of(head);
            std::memcpy(slot + sizeof(std::uint32_t), &old_top, sizeof(old_top));
            const std::uint64_t desired =
                tagged_head::pack(tagged_head::tag_of(head) + 1, index);
            if (head_.compare_exchange_weak(head, desired, std::memory_order_acq_rel)) return;  // lfrc-lint: order(pool-head)
        }
    }

    /// Bytes this pool holds from the system (never decreases while alive).
    std::size_t footprint_bytes() const noexcept { return dir_.footprint_bytes(); }

    std::uint64_t blocks_carved() const noexcept { return dir_.slots_carved(); }

  private:
    static constexpr std::size_t header_bytes = 8;  // 4B index + 4B freelist next
    static constexpr std::size_t slot_align = slab_directory::slot_align;
    static constexpr std::size_t slot_bytes =
        (header_bytes + BlockSize + slot_align - 1) / slot_align * slot_align;

    slab_directory dir_;
    std::atomic<std::uint64_t> head_{tagged_head::pack(0, tagged_head::null_index)};
};

/// Typed facade: allocate() gives raw storage for a T (caller placement-news
/// it; the whole point of type-stable pools is that reused storage may still
/// be read as a T by stale threads, so the pool never runs destructors).
template <typename T>
class typed_pool {
  public:
    void* allocate_raw() { return pool_.allocate(); }
    void* allocate_raw_ex(bool& fresh) { return pool_.allocate_ex(fresh); }
    void deallocate_raw(void* p) noexcept { pool_.deallocate(p); }

    template <typename... Args>
    T* create(Args&&... args) {
        return ::new (pool_.allocate()) T(std::forward<Args>(args)...);
    }

    /// Returns storage to the freelist WITHOUT running ~T (type-stability).
    void recycle(T* p) noexcept { pool_.deallocate(p); }

    std::size_t footprint_bytes() const noexcept { return pool_.footprint_bytes(); }
    std::uint64_t blocks_carved() const noexcept { return pool_.blocks_carved(); }

  private:
    block_pool<sizeof(T)> pool_;
};

}  // namespace lfrc::alloc
