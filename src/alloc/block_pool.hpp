// Lock-free, type-stable block pool.
//
// This is the allocation regime the paper contrasts LFRC against: memory is
// recycled through a LIFO freelist but *never returned to the system* while
// the pool lives (Valois [19] and other freelist-based schemes require
// exactly this "type-stable" property). Two consumers in this repo:
//
//  * containers::valois_stack — the comparator whose footprint cannot
//    shrink (experiment E4);
//  * tests/test_aba_demo.cpp — the LIFO reuse makes ABA reproduce reliably,
//    demonstrating why CAS-only reference counting on reusable memory is
//    unsound (paper §1) while LFRC on fresh heap memory is not.
//
// Freelist ABA within the pool itself is prevented with a 32-bit tag packed
// next to a 32-bit block index in a single 64-bit head word; blocks are
// addressed by index through a chunk directory, so no double-width CAS is
// needed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>

#include "alloc/stats.hpp"

namespace lfrc::alloc {

template <std::size_t BlockSize>
class block_pool {
  public:
    static constexpr std::size_t blocks_per_chunk = 1024;
    static constexpr std::size_t max_chunks = 4096;

    /// `track_stats == false` keeps this pool's chunks out of the global
    /// allocation counters — used by infrastructure pools (DCAS descriptors,
    /// epoch retire nodes) whose footprint would otherwise pollute
    /// application-level leak accounting.
    explicit block_pool(bool track_stats = true) noexcept : track_stats_(track_stats) {}
    block_pool(const block_pool&) = delete;
    block_pool& operator=(const block_pool&) = delete;

    ~block_pool() {
        for (std::size_t c = 0; c < max_chunks; ++c) {
            std::byte* chunk = chunks_[c].load(std::memory_order_relaxed);
            if (chunk != nullptr) {
                if (track_stats_) note_free(chunk_bytes);
                ::operator delete[](chunk, std::align_val_t{slot_align});
            }
        }
    }

    /// Returns a BlockSize-byte region. Lock-free; recycled blocks are
    /// returned most-recently-freed first.
    void* allocate() {
        bool fresh_unused;
        return allocate_ex(fresh_unused);
    }

    /// Like allocate(), reporting whether the block is freshly carved
    /// (never used before) or recycled. Reference-counting schemes over
    /// type-stable memory need the distinction: recycled blocks may still
    /// receive stale accesses from their previous life and must not be
    /// blindly re-initialized (see containers::valois_stack).
    void* allocate_ex(bool& fresh) {
        // Fast path: pop the freelist.
        std::uint64_t head = head_.load(std::memory_order_acquire);
        while (index_of(head) != null_index) {
            std::byte* slot = slot_at(index_of(head));
            std::uint32_t next;
            std::memcpy(&next, slot + sizeof(std::uint32_t), sizeof(next));
            const std::uint64_t desired = pack(tag_of(head) + 1, next);
            if (head_.compare_exchange_weak(head, desired, std::memory_order_acq_rel)) {
                fresh = false;
                return slot + header_bytes;
            }
        }
        // Slow path: carve a fresh block.
        fresh = true;
        const std::uint64_t block_index = fresh_.fetch_add(1, std::memory_order_relaxed);
        const std::size_t chunk_index = block_index / blocks_per_chunk;
        if (chunk_index >= max_chunks) throw std::bad_alloc{};
        std::byte* chunk = ensure_chunk(chunk_index);
        std::byte* slot = chunk + (block_index % blocks_per_chunk) * slot_bytes;
        const auto index = static_cast<std::uint32_t>(block_index);
        std::memcpy(slot, &index, sizeof(index));
        return slot + header_bytes;
    }

    void deallocate(void* p) noexcept {
        auto* slot = static_cast<std::byte*>(p) - header_bytes;
        std::uint32_t index;
        std::memcpy(&index, slot, sizeof(index));
        std::uint64_t head = head_.load(std::memory_order_acquire);
        for (;;) {
            const std::uint32_t old_top = index_of(head);
            std::memcpy(slot + sizeof(std::uint32_t), &old_top, sizeof(old_top));
            const std::uint64_t desired = pack(tag_of(head) + 1, index);
            if (head_.compare_exchange_weak(head, desired, std::memory_order_acq_rel)) return;
        }
    }

    /// Bytes this pool holds from the system (never decreases while alive).
    std::size_t footprint_bytes() const noexcept {
        std::size_t chunks = 0;
        for (std::size_t c = 0; c < max_chunks; ++c) {
            if (chunks_[c].load(std::memory_order_relaxed) != nullptr) ++chunks;
        }
        return chunks * chunk_bytes;
    }

    std::uint64_t blocks_carved() const noexcept {
        return fresh_.load(std::memory_order_relaxed);
    }

  private:
    static constexpr std::size_t header_bytes = 8;  // 4B index + 4B freelist next
    static constexpr std::size_t slot_align = 16;
    static constexpr std::size_t slot_bytes =
        (header_bytes + BlockSize + slot_align - 1) / slot_align * slot_align;
    static constexpr std::size_t chunk_bytes = slot_bytes * blocks_per_chunk;
    static constexpr std::uint32_t null_index = 0xffffffffu;

    static std::uint32_t index_of(std::uint64_t head) noexcept {
        return static_cast<std::uint32_t>(head);
    }
    static std::uint32_t tag_of(std::uint64_t head) noexcept {
        return static_cast<std::uint32_t>(head >> 32);
    }
    static std::uint64_t pack(std::uint32_t tag, std::uint32_t index) noexcept {
        return (static_cast<std::uint64_t>(tag) << 32) | index;
    }

    std::byte* slot_at(std::uint32_t index) const noexcept {
        std::byte* chunk = chunks_[index / blocks_per_chunk].load(std::memory_order_acquire);
        return chunk + (index % blocks_per_chunk) * slot_bytes;
    }

    std::byte* ensure_chunk(std::size_t chunk_index) {
        std::byte* chunk = chunks_[chunk_index].load(std::memory_order_acquire);
        if (chunk != nullptr) return chunk;
        auto* fresh_chunk = static_cast<std::byte*>(
            ::operator new[](chunk_bytes, std::align_val_t{slot_align}));
        std::byte* expected = nullptr;
        if (chunks_[chunk_index].compare_exchange_strong(expected, fresh_chunk,
                                                         std::memory_order_acq_rel)) {
            if (track_stats_) note_alloc(chunk_bytes);
            return fresh_chunk;
        }
        ::operator delete[](fresh_chunk, std::align_val_t{slot_align});
        return expected;
    }

    const bool track_stats_ = true;
    std::atomic<std::uint64_t> head_{pack(0, null_index)};
    std::atomic<std::uint64_t> fresh_{0};
    std::atomic<std::byte*> chunks_[max_chunks] = {};
};

/// Typed facade: allocate() gives raw storage for a T (caller placement-news
/// it; the whole point of type-stable pools is that reused storage may still
/// be read as a T by stale threads, so the pool never runs destructors).
template <typename T>
class typed_pool {
  public:
    void* allocate_raw() { return pool_.allocate(); }
    void* allocate_raw_ex(bool& fresh) { return pool_.allocate_ex(fresh); }
    void deallocate_raw(void* p) noexcept { pool_.deallocate(p); }

    template <typename... Args>
    T* create(Args&&... args) {
        return ::new (pool_.allocate()) T(std::forward<Args>(args)...);
    }

    /// Returns storage to the freelist WITHOUT running ~T (type-stability).
    void recycle(T* p) noexcept { pool_.deallocate(p); }

    std::size_t footprint_bytes() const noexcept { return pool_.footprint_bytes(); }
    std::uint64_t blocks_carved() const noexcept { return pool_.blocks_carved(); }

  private:
    block_pool<sizeof(T)> pool_;
};

}  // namespace lfrc::alloc
