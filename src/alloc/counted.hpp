// Counted allocation helpers: new/delete wrappers that report to
// alloc::stats. LFRC-managed objects route through these via their base
// class; tests and comparator structures use them directly so that all
// footprint numbers are measured with the same instrument.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

#include "alloc/arena.hpp"
#include "alloc/stats.hpp"

#if defined(LFRC_SIM)
#include "sim/runtime.hpp"
#endif

namespace lfrc::alloc {

template <typename T, typename... Args>
T* counted_new(Args&&... args) {
    T* p = new T(std::forward<Args>(args)...);
    note_alloc(sizeof(T));
    return p;
}

template <typename T>
void counted_delete(T* p) noexcept {
    if (p == nullptr) return;
    note_free(sizeof(T));
    delete p;
}

/// Mixin: derive to get allocation-counted operator new/delete. This is THE
/// allocation seam: every LFRC-managed node type (smr::manual node_base,
/// smr::deferred_node, lfrc::domain object) inherits these, so rewiring
/// here re-plumbs make_owner / domain::make / every reclaimer deleter in
/// one place with zero call-site changes. `sz` is passed by the compiler,
/// so derived-class sizes are exact.
///
/// Outside the simulator, storage comes from the process-wide
/// alloc::arena — per-registry-slot size-class slabs with O(1) recycled
/// frees (alloc/arena.hpp; LFRC_ARENA=0 restores the system heap). The
/// note_alloc/note_free calls stay per-object, so scope_check and the E4
/// footprint sample keep their logical-object accounting even though the
/// arena's slabs themselves are untracked.
///
/// Under -DLFRC_SIM this is instead the shadow-heap seam: LFRC-managed
/// objects come from the sim arena during a schedule, frees are quarantined
/// instead of recycled, and double frees are flagged (sim/runtime.hpp) —
/// arena recycling must not mask model-level UAFs.
struct counted_base {
    static void* operator new(std::size_t sz) {
#if defined(LFRC_SIM)
        void* p = sim::managed_alloc(sz);
#else
        void* p = arena::instance().allocate(sz);
#endif
        note_alloc(sz);
        return p;
    }
    static void operator delete(void* p, std::size_t sz) noexcept {
        note_free(sz);
#if defined(LFRC_SIM)
        sim::managed_free(p, sz);
#else
        arena::instance().deallocate(p, sz);
#endif
    }
    // Over-aligned node types bypass the arena (its payloads are 16-aligned
    // only). No such node type exists today; these overloads keep the seam
    // safe if one appears.
    static void* operator new(std::size_t sz, std::align_val_t al) {
        void* p = ::operator new(sz, al);
        note_alloc(sz);
        return p;
    }
    static void operator delete(void* p, std::size_t sz, std::align_val_t al) noexcept {
        note_free(sz);
        ::operator delete(p, al);
    }
};

}  // namespace lfrc::alloc
