// Counted allocation helpers: new/delete wrappers that report to
// alloc::stats. LFRC-managed objects route through these via their base
// class; tests and comparator structures use them directly so that all
// footprint numbers are measured with the same instrument.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

#include "alloc/stats.hpp"

#if defined(LFRC_SIM)
#include "sim/runtime.hpp"
#endif

namespace lfrc::alloc {

template <typename T, typename... Args>
T* counted_new(Args&&... args) {
    T* p = new T(std::forward<Args>(args)...);
    note_alloc(sizeof(T));
    return p;
}

template <typename T>
void counted_delete(T* p) noexcept {
    if (p == nullptr) return;
    note_free(sizeof(T));
    delete p;
}

/// Mixin: derive to get allocation-counted operator new/delete.
/// `sz` is passed by the compiler, so derived-class sizes are exact.
///
/// Under -DLFRC_SIM this is also the shadow-heap seam: LFRC-managed objects
/// come from the sim arena during a schedule, frees are quarantined instead
/// of returned to the OS, and double frees are flagged (sim/runtime.hpp).
struct counted_base {
    static void* operator new(std::size_t sz) {
#if defined(LFRC_SIM)
        void* p = sim::managed_alloc(sz);
#else
        void* p = ::operator new(sz);
#endif
        note_alloc(sz);
        return p;
    }
    static void operator delete(void* p, std::size_t sz) noexcept {
        note_free(sz);
#if defined(LFRC_SIM)
        sim::managed_free(p, sz);
#else
        ::operator delete(p);
#endif
    }
};

}  // namespace lfrc::alloc
