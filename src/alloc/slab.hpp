// Shared slab chunk directory — the storage engine under every pool in
// this repo (alloc::block_pool, the epoch retire-node pool, the frozen
// DCAS baseline pools in bench_e10, and lfrc::alloc::arena).
//
// A slab_directory owns up to max_chunks chunks of slots_per_chunk
// fixed-size slots each, addressed by a 32-bit slot index through an array
// of atomic chunk pointers. Chunks are carved on demand, installed with a
// single CAS, and *never unmapped* while the directory lives — the
// type-stable property the Valois-style freelist regime (paper §1) and
// every tagged-freelist consumer here depend on: a stale thread may still
// dereference a recycled slot, so the storage under any index handed out
// once must stay readable forever.
//
// Freelist policy is the CONSUMER's job: this class only carves and
// resolves indices. Consumers string slots together with the 32-bit-tag /
// 32-bit-index packed head word (tagged_head below) so a single 64-bit CAS
// both swings the list and advances the ABA tag.
//
// Optional hugepage backing (arena: LFRC_ARENA_HUGEPAGES=1): chunks come
// from anonymous mmap rounded to 2 MiB and advised MADV_HUGEPAGE, so slab
// walks touch fewer TLB entries. Non-Linux hosts silently fall back to the
// aligned-new path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "alloc/stats.hpp"

namespace lfrc::alloc {

/// Packing helpers for the 64-bit freelist head word shared by every
/// tagged-freelist consumer: high 32 bits an ABA tag, low 32 bits a slot
/// index into a slab_directory. The tag advances on every successful head
/// CAS, so a head that returns to an old index cannot match an old tag —
/// the single-word DCAS substitute that defeats freelist ABA.
struct tagged_head {
    static constexpr std::uint32_t null_index = 0xffffffffu;

    static std::uint32_t index_of(std::uint64_t head) noexcept {
        return static_cast<std::uint32_t>(head);
    }
    static std::uint32_t tag_of(std::uint64_t head) noexcept {
        return static_cast<std::uint32_t>(head >> 32);
    }
    static std::uint64_t pack(std::uint32_t tag, std::uint32_t index) noexcept {
        return (static_cast<std::uint64_t>(tag) << 32) | index;
    }
};

class slab_directory {
  public:
    static constexpr std::size_t slots_per_chunk = 1024;
    static constexpr std::size_t max_chunks = 4096;
    static constexpr std::size_t slot_align = 16;

    /// `track_stats == false` keeps chunk footprint out of the global
    /// allocation counters — infrastructure pools (DCAS descriptors, epoch
    /// retire nodes, the arena's own slabs) must not pollute the per-object
    /// leak accounting tests and E4 sample.
    explicit slab_directory(std::size_t slot_bytes, bool track_stats = true,
                            bool hugepages = false) noexcept
        : slot_bytes_((slot_bytes + slot_align - 1) / slot_align * slot_align),
          chunk_bytes_(slot_bytes_ * slots_per_chunk),
#if defined(__linux__)
          hugepages_(hugepages),
#else
          hugepages_(false),
#endif
          track_stats_(track_stats) {
        (void)hugepages;
    }
    slab_directory(const slab_directory&) = delete;
    slab_directory& operator=(const slab_directory&) = delete;

    ~slab_directory() {
        for (std::size_t c = 0; c < max_chunks; ++c) {
            std::byte* chunk = chunks_[c].load(std::memory_order_relaxed);  // lfrc-lint: order(unpaired-dtor-teardown)
            if (chunk == nullptr) continue;
            if (track_stats_) note_free(chunk_bytes_);
            release_chunk(chunk);
        }
    }

    /// Carve one never-used slot; returns its storage and writes its index.
    /// Lock-free; throws bad_alloc past max_chunks * slots_per_chunk.
    std::byte* carve(std::uint32_t& index) {
        const std::uint64_t slot = fresh_.fetch_add(1, std::memory_order_relaxed);  // lfrc-lint: order(unpaired-fresh-cursor)
        const std::size_t chunk_index = slot / slots_per_chunk;
        if (chunk_index >= max_chunks) throw std::bad_alloc{};
        std::byte* chunk = ensure_chunk(chunk_index);
        index = static_cast<std::uint32_t>(slot);
        return chunk + (slot % slots_per_chunk) * slot_bytes_;
    }

    /// Resolve an index carve() handed out earlier. The chunk pointer is
    /// immutable once installed, so this is one acquire load + arithmetic.
    std::byte* slot_at(std::uint32_t index) const noexcept {
        std::byte* chunk = chunks_[index / slots_per_chunk].load(std::memory_order_acquire);  // lfrc-lint: order(chunk-install)
        return chunk + (index % slots_per_chunk) * slot_bytes_;
    }

    std::size_t slot_bytes() const noexcept { return slot_bytes_; }

    /// Bytes held from the system (never decreases while alive).
    std::size_t footprint_bytes() const noexcept {
        std::size_t chunks = 0;
        for (std::size_t c = 0; c < max_chunks; ++c) {
            if (chunks_[c].load(std::memory_order_relaxed) != nullptr) ++chunks;  // lfrc-lint: order(unpaired-footprint-scan)
        }
        return chunks * chunk_bytes_;
    }

    std::uint64_t slots_carved() const noexcept {
        return fresh_.load(std::memory_order_relaxed);  // lfrc-lint: order(unpaired-fresh-cursor)
    }

  private:
    static constexpr std::size_t huge_page_bytes = std::size_t{2} << 20;

    std::size_t map_bytes() const noexcept {
        return (chunk_bytes_ + huge_page_bytes - 1) / huge_page_bytes * huge_page_bytes;
    }

    std::byte* acquire_chunk() {
#if defined(__linux__)
        if (hugepages_) {
            void* p = ::mmap(nullptr, map_bytes(), PROT_READ | PROT_WRITE,
                             MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
            if (p == MAP_FAILED) throw std::bad_alloc{};
            ::madvise(p, map_bytes(), MADV_HUGEPAGE);  // advisory; THP optional
            return static_cast<std::byte*>(p);
        }
#endif
        return static_cast<std::byte*>(
            ::operator new[](chunk_bytes_, std::align_val_t{slot_align}));
    }

    void release_chunk(std::byte* chunk) noexcept {
#if defined(__linux__)
        if (hugepages_) {
            ::munmap(chunk, map_bytes());
            return;
        }
#endif
        ::operator delete[](chunk, std::align_val_t{slot_align});
    }

    std::byte* ensure_chunk(std::size_t chunk_index) {
        std::byte* chunk = chunks_[chunk_index].load(std::memory_order_acquire);  // lfrc-lint: order(chunk-install)
        if (chunk != nullptr) return chunk;
        std::byte* fresh_chunk = acquire_chunk();
        std::byte* expected = nullptr;
        if (chunks_[chunk_index].compare_exchange_strong(expected, fresh_chunk,  // lfrc-lint: order(chunk-install)
                                                         std::memory_order_acq_rel)) {
            if (track_stats_) note_alloc(chunk_bytes_);
            return fresh_chunk;
        }
        release_chunk(fresh_chunk);  // lost the install race
        return expected;
    }

    const std::size_t slot_bytes_;
    const std::size_t chunk_bytes_;
    const bool hugepages_;
    const bool track_stats_;
    std::atomic<std::uint64_t> fresh_{0};
    std::atomic<std::byte*> chunks_[max_chunks] = {};
};

}  // namespace lfrc::alloc
