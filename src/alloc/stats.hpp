// Process-wide allocation statistics.
//
// Every LFRC-managed object and every pool allocator reports through these
// counters. Tests use `scope_check` to assert that a workload returns the
// heap to its starting state (the paper's "no memory leaks" claim), and the
// footprint benchmarks (experiment E4) sample `live_bytes()` between phases.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace lfrc::alloc {

struct stats_snapshot {
    std::int64_t live_bytes = 0;
    std::int64_t live_objects = 0;
    std::uint64_t total_allocations = 0;
    std::uint64_t total_frees = 0;
};

void note_alloc(std::size_t bytes) noexcept;
void note_free(std::size_t bytes) noexcept;

stats_snapshot snapshot() noexcept;

std::int64_t live_bytes() noexcept;
std::int64_t live_objects() noexcept;

/// RAII leak check for tests: captures live-object count on construction and
/// reports the delta on request. (Assertions live in the tests, not here, so
/// this header stays gtest-free.)
class scope_check {
  public:
    scope_check() noexcept : start_(snapshot()) {}

    std::int64_t leaked_objects() const noexcept {
        return live_objects() - start_.live_objects;
    }
    std::int64_t leaked_bytes() const noexcept { return live_bytes() - start_.live_bytes; }

  private:
    stats_snapshot start_;
};

}  // namespace lfrc::alloc
