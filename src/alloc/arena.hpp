// lfrc::alloc::arena — type-stable, slot-sharded size-class slab arenas.
//
// The physical allocator behind alloc::counted_base, i.e. behind every
// smr::owner make_owner (manual.hpp, deferred.hpp, counted.hpp),
// lfrc::domain::make, and every reclaimer deleter — one seam, every layer.
// E9/E11 showed the global allocator becoming the contended resource at
// server scale (~190k retires / 0.4 s at 8 threads); pairing reclamation
// with a pooled, never-unmapped allocator (Brown; Arbel-Raviv & Brown,
// "Reuse, don't Recycle") turns the free half of every retire path into an
// O(1) pointer push and the allocate half into a thread-local array pop.
//
// Design (DESIGN.md §15):
//
//   size classes   12 payload classes, 48..2048 bytes; each class owns a
//                  slab_directory (alloc/slab.hpp — 1024-slot chunks behind
//                  atomic chunk pointers, never unmapped: type-stable).
//                  Payloads above 2048 fall through to the system heap,
//                  routed consistently by size on both ends.
//   block header   16 bytes ahead of each payload: {index, class, home,
//                  next}. `home` is the registry slot that carved the block
//                  and never changes — every free of this block routes back
//                  to its home shard, so blocks do not migrate and each
//                  shard's freelist stays hot in its owner's cache.
//   magazine       per (class × registry slot): a plain array of slot
//                  indices only its owner touches. Same-slot frees push
//                  here; allocation pops here first. No atomics at all on
//                  the hit path.
//   remote list    per (class × registry slot): a Treiber stack of blocks
//                  freed by OTHER slots, head = the tagged_head 64-bit
//                  word (32-bit ABA tag | 32-bit index — block_pool's
//                  idiom, shared via slab.hpp). The owner pops one block at
//                  a time and REUSES ITS PRE-READ `next`, so the tag is
//                  load-bearing: a thief can steal the whole chain, recycle
//                  a block, and push it back with the same head index; only
//                  the advanced tag turns that recurrence into a CAS
//                  failure. The remote-free vs local-pop race is
//                  model-checked (tests/sim/sim_arena_test.cpp) against the
//                  seeded strip-the-tag mutant below.
//   steal          a slot whose magazine and remote list are both empty
//                  grabs a peer's whole remote chain with one CAS (chain
//                  grabs never reuse pre-read data, so they are ABA-safe by
//                  construction), keeps the first block, and stashes the
//                  rest in its magazine.
//   ASan interop   recycling defeats the heap sanitizer's use-after-free
//                  detection unless we teach it: payloads are manually
//                  poisoned on free and unpoisoned on allocate, so a stale
//                  read of a recycled *node* still dies under
//                  LFRC_SANITIZE=address (scripts/ci.sh asan cell probes
//                  this with tests/arena_uaf_probe). Headers stay
//                  unpoisoned — the freelist itself must write them.
//                  (valois_stack's typed_pool is NOT poisoned: stale reads
//                  of recycled comparator nodes are that design's point.)
//   sim interop    under -DLFRC_SIM, counted_base keeps routing through the
//                  shadow heap (sim::managed_alloc/managed_free), so every
//                  schedule retains quarantine-based UAF/double-free/leak
//                  checking — recycling never masks a model-level UAF. The
//                  arena's remote heads are instrumented atomics, so the
//                  arena's own protocol is schedule-explorable.
//
// Environment gates (latched at first use):
//   LFRC_ARENA=0            bypass — route straight to the system heap
//   LFRC_ARENA_HUGEPAGES=1  back chunks with MADV_HUGEPAGE mmap (Linux)
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <optional>

#include "alloc/slab.hpp"
#include "sim/instrumented.hpp"
#include "util/thread_registry.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define LFRC_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LFRC_ARENA_ASAN 1
#endif
#endif

#if defined(LFRC_ARENA_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace lfrc::alloc {

namespace arena_detail {

inline void poison_payload(void* p, std::size_t n) noexcept {
#if defined(LFRC_ARENA_ASAN)
    __asan_poison_memory_region(p, n);
#else
    (void)p;
    (void)n;
#endif
}

inline void unpoison_payload(void* p, std::size_t n) noexcept {
#if defined(LFRC_ARENA_ASAN)
    __asan_unpoison_memory_region(p, n);
#else
    (void)p;
    (void)n;
#endif
}

}  // namespace arena_detail

class arena {
  public:
    static constexpr std::size_t num_classes = 12;
    /// Payload bytes per class; multiples of 16 so payloads stay 16-aligned
    /// behind the 16-byte header.
    static constexpr std::size_t class_sizes[num_classes] = {
        48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048};
    static constexpr std::size_t max_payload = class_sizes[num_classes - 1];
    static constexpr std::size_t magazine_cap = 64;

    arena() {
        const bool huge = hugepages_requested();
        for (std::size_t k = 0; k < num_classes; ++k) {
            classes_[k].emplace(class_sizes[k], huge);
        }
    }
    arena(const arena&) = delete;
    arena& operator=(const arena&) = delete;

    /// The process-wide arena behind counted_base. Leaked (like the epoch
    /// domain): node frees can run during static destruction.
    static arena& instance() {
        static auto* a = new arena;
        return *a;
    }

    /// True unless LFRC_ARENA=0 — one latched read; allocate/deallocate
    /// must route identically for the whole process lifetime.
    static bool enabled() noexcept {
        static const bool on = [] {
            const char* e = std::getenv("LFRC_ARENA");
            return !(e != nullptr && e[0] == '0' && e[1] == '\0');
        }();
        return on;
    }

    void* allocate(std::size_t sz) {
        const int k = klass_of(sz);
        if (k < 0 || !enabled()) {
            fallback_allocs_.fetch_add(1, std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
            return ::operator new(sz);
        }
        class_state& cs = *classes_[static_cast<std::size_t>(k)];
        const std::size_t s = util::thread_registry::instance().slot();
        shard& sh = cs.shards[s];

        // 1) magazine: owner-only array pop, no atomics on the hit path.
        const std::uint32_t n = sh.mag_count.load(std::memory_order_relaxed);  // lfrc-lint: order(unpaired-owner-magazine)
        if (n != 0) {
            const std::uint32_t idx = sh.magazine[n - 1];
            sh.mag_count.store(n - 1, std::memory_order_relaxed);  // lfrc-lint: order(unpaired-owner-magazine)
            tick(sh.magazine_hits);
            return payload_of(cs, idx);
        }

        // 2) own remote list: single-block tagged pop. `next` is read
        // BEFORE the CAS — the advanced tag is what makes that sound.
        // Orders come from pop_load_order/pop_cas_order (acquire/acq_rel;
        // both ends of the `remote-head` pairing are annotated there) so
        // the R6 mutation can sever the edge for the TSan twin.
        std::uint64_t head = sh.remote_head.load(pop_load_order());
        while (tagged_head::index_of(head) != tagged_head::null_index) {
            const std::uint32_t idx = tagged_head::index_of(head);
            const std::uint32_t next = load_next(cs.dir.slot_at(idx));
            const std::uint64_t desired =
                tagged_head::pack(next_tag(tagged_head::tag_of(head)), next);
            if (sh.remote_head.compare_exchange_weak(head, desired,
                                                     pop_cas_order())) {
                tick(sh.remote_pops);
                return payload_of(cs, idx);
            }
        }

        // 3) steal a peer's whole remote chain (chain grabs use no pre-read
        // data, so they are ABA-safe; the tag still advances so the owner's
        // in-flight single pop fails cleanly).
        const std::size_t high = util::thread_registry::instance().high_water();
        for (std::size_t t = 0; t < high; ++t) {
            if (t == s) continue;
            shard& peer = cs.shards[t];
            std::uint64_t ph = peer.remote_head.load(std::memory_order_acquire);  // lfrc-lint: order(remote-head)
            while (tagged_head::index_of(ph) != tagged_head::null_index) {
                const std::uint64_t empty = tagged_head::pack(
                    next_tag(tagged_head::tag_of(ph)), tagged_head::null_index);
                if (peer.remote_head.compare_exchange_weak(ph, empty,  // lfrc-lint: order(remote-head)
                                                           std::memory_order_acq_rel)) {
                    tick(sh.chain_steals);
                    return adopt_chain(cs, sh, tagged_head::index_of(ph));
                }
            }
        }

        // 4) carve fresh; `home` is stamped once and never changes.
        std::uint32_t idx;
        std::byte* slot = cs.dir.carve(idx);
        block_header h;
        h.index = idx;
        h.klass = static_cast<std::uint16_t>(k);
        h.home = static_cast<std::uint16_t>(s);
        h.next = tagged_head::null_index;
        std::memcpy(slot, &h, sizeof(h));
        return slot + header_bytes;
    }

    void deallocate(void* p, std::size_t sz) noexcept {
        const int k = klass_of(sz);
        if (k < 0 || !enabled()) {
            ::operator delete(p);
            return;
        }
        class_state& cs = *classes_[static_cast<std::size_t>(k)];
        std::byte* slot = static_cast<std::byte*>(p) - header_bytes;
        block_header h;
        std::memcpy(&h, slot, sizeof(h));
        // Freed payload becomes poison until its next allocation: a stale
        // read of a recycled node dies under ASan instead of silently
        // reading the next tenant's bytes.
        arena_detail::poison_payload(p, class_sizes[static_cast<std::size_t>(k)]);
        const std::size_t s = util::thread_registry::instance().slot();
        shard& sh = cs.shards[s];
        if (h.home == s) {
            const std::uint32_t n = sh.mag_count.load(std::memory_order_relaxed);  // lfrc-lint: order(unpaired-owner-magazine)
            if (n < magazine_cap) {
                sh.magazine[n] = h.index;
                sh.mag_count.store(n + 1, std::memory_order_relaxed);  // lfrc-lint: order(unpaired-owner-magazine)
                tick(sh.local_frees);
                return;
            }
        }
        // Cross-slot (or magazine-overflow) free: tagged push onto the
        // block's HOME shard, so storage stays with its carving slot.
        tick(sh.remote_frees);
        push_remote(cs, cs.shards[h.home], h.index);
    }

    // ---- stats -----------------------------------------------------------

    struct stats {
        std::size_t footprint_bytes = 0;  ///< slab bytes held from the system
        std::uint64_t carved = 0;         ///< fresh blocks ever carved
        std::uint64_t magazine_hits = 0;  ///< allocations served by magazines
        std::uint64_t remote_pops = 0;    ///< single-block remote-list pops
        std::uint64_t chain_steals = 0;   ///< whole-chain grabs from peers
        std::uint64_t local_frees = 0;    ///< frees into the owner magazine
        std::uint64_t remote_frees = 0;   ///< cross-slot tagged pushes
        std::uint64_t fallback_allocs = 0;  ///< >2048B or LFRC_ARENA=0 routes
    };

    stats snapshot() const noexcept {
        stats out;
        const std::size_t high = util::thread_registry::instance().high_water();
        for (std::size_t k = 0; k < num_classes; ++k) {
            const class_state& cs = *classes_[k];
            out.footprint_bytes += cs.dir.footprint_bytes();
            out.carved += cs.dir.slots_carved();
            for (std::size_t s = 0; s < high; ++s) {
                const shard& sh = cs.shards[s];
                out.magazine_hits += sh.magazine_hits.load(std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
                out.remote_pops += sh.remote_pops.load(std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
                out.chain_steals += sh.chain_steals.load(std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
                out.local_frees += sh.local_frees.load(std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
                out.remote_frees += sh.remote_frees.load(std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
            }
        }
        out.fallback_allocs = fallback_allocs_.load(std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
        return out;
    }

#if defined(LFRC_ENABLE_MUTATIONS)
    /// Seeded freelist-ABA bug for mutation testing (tests/sim/
    /// sim_arena_test.cpp): when set, head CASes stop advancing the tag, so
    /// a head word can recur exactly — the owner's in-flight single-block
    /// pop then succeeds against a reborn head and installs its STALE
    /// pre-read `next`, handing one block to two owners. This is the
    /// classic recycled-freelist bug the tag exists to exclude.
    static std::atomic<bool>& mutate_strip_arena_tag() noexcept {
        static std::atomic<bool> flag{false};
        return flag;
    }

    /// Seeded memory-order bug for R6's dynamic twin (tests/
    /// order_race_probe.cpp): when set, the owner's single-block remote pop
    /// runs BOTH its head pre-read and its claiming CAS relaxed, severing
    /// the `remote-head` release/acquire pairing (docs/fence_pairings.md).
    /// A popped block then reaches the allocator's caller with no
    /// happens-before edge from the remote freer's last payload writes —
    /// a data race TSan reports on the first cross-thread recycle. Either
    /// order alone restores the edge (the CAS's success order or the
    /// pre-read's acquire), which is exactly why R6 makes every site of
    /// the pairing name it: weakening one end is invisible to eyeballs.
    static std::atomic<bool>& mutate_weaken_pop_acquire() noexcept {
        static std::atomic<bool> flag{false};
        return flag;
    }
#endif

  private:
    friend struct arena_testing;

    struct block_header {
        std::uint32_t index;  ///< slot index within the class directory
        std::uint16_t klass;  ///< size-class ordinal (consistency checks)
        std::uint16_t home;   ///< carving registry slot; immutable
        std::uint32_t next;   ///< freelist link while on a remote list
        std::uint32_t reserved = 0;
    };
    static constexpr std::size_t header_bytes = 16;
    static_assert(sizeof(block_header) == header_bytes);
    static constexpr std::size_t next_offset = offsetof(block_header, next);
    static_assert(next_offset % alignof(std::uint32_t) == 0);

    /// The `next` link is the one header field read/written while a block
    /// is visible to other threads: a popping owner pre-reads the head's
    /// `next` BEFORE its CAS, so a thief that already took the block may be
    /// rewriting that field concurrently (the stale read is harmless — the
    /// advanced tag fails the reader's CAS). Relaxed atomic_ref makes those
    /// bytes well-defined to race on (plain loads/stores on x86) without
    /// making the whole header atomic.
    static std::uint32_t load_next(std::byte* slot) noexcept {
        return std::atomic_ref<std::uint32_t>(
                   *reinterpret_cast<std::uint32_t*>(slot + next_offset))
            .load(std::memory_order_relaxed);  // lfrc-lint: order(next-link)
    }
    static void store_next(std::byte* slot, std::uint32_t v) noexcept {
        std::atomic_ref<std::uint32_t>(
            *reinterpret_cast<std::uint32_t*>(slot + next_offset))
            .store(v, std::memory_order_relaxed);  // lfrc-lint: order(next-link)
    }

    /// Per (class × registry slot) free storage. The magazine half is
    /// owner-only (mag_count is atomic solely so stats reads are defined);
    /// the remote head is the only cross-thread word.
    struct alignas(64) shard {
        sim::instrumented_atomic<std::uint64_t> remote_head{
            tagged_head::pack(0, tagged_head::null_index)};
        std::uint32_t magazine[magazine_cap] = {};
        std::atomic<std::uint32_t> mag_count{0};
        std::atomic<std::uint64_t> magazine_hits{0};
        std::atomic<std::uint64_t> remote_pops{0};
        std::atomic<std::uint64_t> chain_steals{0};
        std::atomic<std::uint64_t> local_frees{0};
        std::atomic<std::uint64_t> remote_frees{0};
    };

    struct class_state {
        class_state(std::size_t payload, bool hugepages)
            : dir(payload + header_bytes, /*track_stats=*/false, hugepages) {}
        slab_directory dir;
        shard shards[util::thread_registry::max_threads];
    };

    /// Class ordinal for a payload size, or -1 for the system-heap route.
    static int klass_of(std::size_t sz) noexcept {
        if (sz > max_payload) return -1;
        for (std::size_t k = 0; k < num_classes; ++k) {
            if (sz <= class_sizes[k]) return static_cast<int>(k);
        }
        return -1;  // unreachable
    }

    /// Tag successor for every head CAS; the mutation strips the advance.
    static std::uint32_t next_tag(std::uint32_t tag) noexcept {
#if defined(LFRC_ENABLE_MUTATIONS)
        if (mutate_strip_arena_tag().load(std::memory_order_relaxed)) return tag;  // lfrc-lint: order(unpaired-mutation-flag)
#endif
        return tag + 1;  // 32-bit wraparound is benign: equality is all that matters
    }

    /// Memory orders for the owner's single-block remote pop (allocate
    /// step 2). Funneled through one place so the R6 mutation can weaken
    /// both ends at once; these ARE the pop side of the `remote-head`
    /// pairing — see docs/fence_pairings.md.
    static std::memory_order pop_load_order() noexcept {
#if defined(LFRC_ENABLE_MUTATIONS)
        if (mutate_weaken_pop_acquire().load(std::memory_order_relaxed)) {  // lfrc-lint: order(unpaired-mutation-flag)
            return std::memory_order_relaxed;  // lfrc-lint: order(remote-head)
        }
#endif
        return std::memory_order_acquire;  // lfrc-lint: order(remote-head)
    }
    static std::memory_order pop_cas_order() noexcept {
#if defined(LFRC_ENABLE_MUTATIONS)
        if (mutate_weaken_pop_acquire().load(std::memory_order_relaxed)) {  // lfrc-lint: order(unpaired-mutation-flag)
            return std::memory_order_relaxed;  // lfrc-lint: order(remote-head)
        }
#endif
        return std::memory_order_acq_rel;  // lfrc-lint: order(remote-head)
    }

    static void tick(std::atomic<std::uint64_t>& c) noexcept {
        // Owner-only counter: load+store, no RMW on the hot path.
        c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);  // lfrc-lint: order(unpaired-stats-counter)
    }

    void* payload_of(class_state& cs, std::uint32_t idx) noexcept {
        std::byte* slot = cs.dir.slot_at(idx);
        void* p = slot + header_bytes;
        arena_detail::unpoison_payload(p, cs.dir.slot_bytes() - header_bytes);
        return p;
    }

    /// After a successful chain grab: keep the first block, stash the rest
    /// in the caller's magazine, overflow back onto the caller's own remote
    /// list. The chain is exclusively ours post-CAS, so the link walk is
    /// single-owner code.
    void* adopt_chain(class_state& cs, shard& sh, std::uint32_t first) noexcept {
        std::uint32_t cur = load_next(cs.dir.slot_at(first));
        std::uint32_t n = sh.mag_count.load(std::memory_order_relaxed);  // lfrc-lint: order(unpaired-owner-magazine)
        while (cur != tagged_head::null_index && n < magazine_cap) {
            const std::uint32_t nxt = load_next(cs.dir.slot_at(cur));
            sh.magazine[n++] = cur;
            cur = nxt;
        }
        sh.mag_count.store(n, std::memory_order_relaxed);  // lfrc-lint: order(unpaired-owner-magazine)
        while (cur != tagged_head::null_index) {
            const std::uint32_t nxt = load_next(cs.dir.slot_at(cur));
            push_remote(cs, sh, cur);
            cur = nxt;
        }
        return payload_of(cs, first);
    }

    void push_remote(class_state& cs, shard& dst, std::uint32_t index) noexcept {
        std::byte* slot = cs.dir.slot_at(index);
        std::uint64_t head = dst.remote_head.load(std::memory_order_acquire);  // lfrc-lint: order(remote-head)
        for (;;) {
            store_next(slot, tagged_head::index_of(head));
            const std::uint64_t desired =
                tagged_head::pack(next_tag(tagged_head::tag_of(head)), index);
            if (dst.remote_head.compare_exchange_weak(head, desired,  // lfrc-lint: order(remote-head)
                                                      std::memory_order_acq_rel)) {
                return;
            }
        }
    }

    static bool hugepages_requested() noexcept {
        const char* e = std::getenv("LFRC_ARENA_HUGEPAGES");
        return e != nullptr && e[0] == '1' && e[1] == '\0';
    }

    std::optional<class_state> classes_[num_classes];
    std::atomic<std::uint64_t> fallback_allocs_{0};
};

/// White-box seams for the unit suite and the sim model check. Tests-only;
/// production code must go through allocate/deallocate.
struct arena_testing {
    static int klass_of(std::size_t sz) noexcept { return arena::klass_of(sz); }

    static std::uint64_t remote_head(const arena& a, std::size_t k, std::size_t s) noexcept {
        return a.classes_[k]->shards[s].remote_head.load(std::memory_order_acquire);  // lfrc-lint: order(remote-head)
    }
    /// Force a shard's remote tag (wraparound tests).
    static void set_remote_tag(arena& a, std::size_t k, std::size_t s,
                               std::uint32_t tag) noexcept {
        auto& head = a.classes_[k]->shards[s].remote_head;
        const std::uint64_t cur = head.load(std::memory_order_acquire);  // lfrc-lint: order(remote-head)
        head.store(tagged_head::pack(tag, tagged_head::index_of(cur)),  // lfrc-lint: order(remote-head)
                   std::memory_order_release);
    }
    static std::uint32_t magazine_size(const arena& a, std::size_t k,
                                       std::size_t s) noexcept {
        return a.classes_[k]->shards[s].mag_count.load(std::memory_order_relaxed);  // lfrc-lint: order(unpaired-owner-magazine)
    }
    static std::uint16_t home_of(const void* payload) noexcept {
        arena::block_header h;
        std::memcpy(&h, static_cast<const std::byte*>(payload) - arena::header_bytes,
                    sizeof(h));
        return h.home;
    }
    static std::uint16_t klass_field_of(const void* payload) noexcept {
        arena::block_header h;
        std::memcpy(&h, static_cast<const std::byte*>(payload) - arena::header_bytes,
                    sizeof(h));
        return h.klass;
    }

#if defined(LFRC_SIM)
    /// Carve a fresh block stamped home=s and push it onto that shard's
    /// remote list via UNSCHEDULED accesses (peek/poke) — sim-test setup
    /// that costs zero scheduler steps, so schedule exploration spends its
    /// whole preemption budget on the remote-pop race under test rather
    /// than on reaching the preconditions.
    static void seed_remote_block(arena& a, std::size_t k, std::size_t s) {
        auto& cs = *a.classes_[k];
        auto& sh = cs.shards[s];
        std::uint32_t idx;
        std::byte* slot = cs.dir.carve(idx);
        const std::uint64_t head = sh.remote_head.peek();
        arena::block_header h;
        h.index = idx;
        h.klass = static_cast<std::uint16_t>(k);
        h.home = static_cast<std::uint16_t>(s);
        h.next = tagged_head::index_of(head);
        std::memcpy(slot, &h, sizeof(h));
        sh.remote_head.poke(tagged_head::pack(tagged_head::tag_of(head), idx));
    }
#endif
};

}  // namespace lfrc::alloc
