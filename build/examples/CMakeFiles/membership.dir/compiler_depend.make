# Empty compiler generated dependencies file for membership.
# This may be replaced when dependencies are built.
