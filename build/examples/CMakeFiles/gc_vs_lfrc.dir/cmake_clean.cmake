file(REMOVE_RECURSE
  "CMakeFiles/gc_vs_lfrc.dir/gc_vs_lfrc.cpp.o"
  "CMakeFiles/gc_vs_lfrc.dir/gc_vs_lfrc.cpp.o.d"
  "gc_vs_lfrc"
  "gc_vs_lfrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_vs_lfrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
