# Empty dependencies file for gc_vs_lfrc.
# This may be replaced when dependencies are built.
