file(REMOVE_RECURSE
  "CMakeFiles/conversion_tutorial.dir/conversion_tutorial.cpp.o"
  "CMakeFiles/conversion_tutorial.dir/conversion_tutorial.cpp.o.d"
  "conversion_tutorial"
  "conversion_tutorial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conversion_tutorial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
