# Empty dependencies file for conversion_tutorial.
# This may be replaced when dependencies are built.
