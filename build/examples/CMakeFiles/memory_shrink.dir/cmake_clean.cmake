file(REMOVE_RECURSE
  "CMakeFiles/memory_shrink.dir/memory_shrink.cpp.o"
  "CMakeFiles/memory_shrink.dir/memory_shrink.cpp.o.d"
  "memory_shrink"
  "memory_shrink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_shrink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
