# Empty dependencies file for memory_shrink.
# This may be replaced when dependencies are built.
