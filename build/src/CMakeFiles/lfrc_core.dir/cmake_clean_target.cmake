file(REMOVE_RECURSE
  "liblfrc_core.a"
)
