file(REMOVE_RECURSE
  "CMakeFiles/lfrc_core.dir/alloc/stats.cpp.o"
  "CMakeFiles/lfrc_core.dir/alloc/stats.cpp.o.d"
  "CMakeFiles/lfrc_core.dir/gc/heap.cpp.o"
  "CMakeFiles/lfrc_core.dir/gc/heap.cpp.o.d"
  "CMakeFiles/lfrc_core.dir/reclaim/epoch.cpp.o"
  "CMakeFiles/lfrc_core.dir/reclaim/epoch.cpp.o.d"
  "CMakeFiles/lfrc_core.dir/reclaim/hazard.cpp.o"
  "CMakeFiles/lfrc_core.dir/reclaim/hazard.cpp.o.d"
  "CMakeFiles/lfrc_core.dir/util/thread_registry.cpp.o"
  "CMakeFiles/lfrc_core.dir/util/thread_registry.cpp.o.d"
  "liblfrc_core.a"
  "liblfrc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfrc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
