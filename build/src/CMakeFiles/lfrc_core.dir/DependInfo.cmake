
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/stats.cpp" "src/CMakeFiles/lfrc_core.dir/alloc/stats.cpp.o" "gcc" "src/CMakeFiles/lfrc_core.dir/alloc/stats.cpp.o.d"
  "/root/repo/src/gc/heap.cpp" "src/CMakeFiles/lfrc_core.dir/gc/heap.cpp.o" "gcc" "src/CMakeFiles/lfrc_core.dir/gc/heap.cpp.o.d"
  "/root/repo/src/reclaim/epoch.cpp" "src/CMakeFiles/lfrc_core.dir/reclaim/epoch.cpp.o" "gcc" "src/CMakeFiles/lfrc_core.dir/reclaim/epoch.cpp.o.d"
  "/root/repo/src/reclaim/hazard.cpp" "src/CMakeFiles/lfrc_core.dir/reclaim/hazard.cpp.o" "gcc" "src/CMakeFiles/lfrc_core.dir/reclaim/hazard.cpp.o.d"
  "/root/repo/src/util/thread_registry.cpp" "src/CMakeFiles/lfrc_core.dir/util/thread_registry.cpp.o" "gcc" "src/CMakeFiles/lfrc_core.dir/util/thread_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
