# Empty compiler generated dependencies file for lfrc_core.
# This may be replaced when dependencies are built.
