# Empty compiler generated dependencies file for test_kcas.
# This may be replaced when dependencies are built.
