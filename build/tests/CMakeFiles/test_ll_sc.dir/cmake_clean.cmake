file(REMOVE_RECURSE
  "CMakeFiles/test_ll_sc.dir/test_ll_sc.cpp.o"
  "CMakeFiles/test_ll_sc.dir/test_ll_sc.cpp.o.d"
  "test_ll_sc"
  "test_ll_sc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ll_sc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
