# Empty compiler generated dependencies file for test_aba_demo.
# This may be replaced when dependencies are built.
