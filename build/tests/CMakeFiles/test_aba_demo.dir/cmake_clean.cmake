file(REMOVE_RECURSE
  "CMakeFiles/test_aba_demo.dir/test_aba_demo.cpp.o"
  "CMakeFiles/test_aba_demo.dir/test_aba_demo.cpp.o.d"
  "test_aba_demo"
  "test_aba_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aba_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
