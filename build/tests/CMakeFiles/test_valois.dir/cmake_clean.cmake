file(REMOVE_RECURSE
  "CMakeFiles/test_valois.dir/test_valois.cpp.o"
  "CMakeFiles/test_valois.dir/test_valois.cpp.o.d"
  "test_valois"
  "test_valois.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_valois.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
