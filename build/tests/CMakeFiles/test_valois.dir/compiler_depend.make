# Empty compiler generated dependencies file for test_valois.
# This may be replaced when dependencies are built.
