file(REMOVE_RECURSE
  "CMakeFiles/test_lfrc_list.dir/test_lfrc_list.cpp.o"
  "CMakeFiles/test_lfrc_list.dir/test_lfrc_list.cpp.o.d"
  "test_lfrc_list"
  "test_lfrc_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lfrc_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
