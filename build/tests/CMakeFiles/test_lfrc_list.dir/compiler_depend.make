# Empty compiler generated dependencies file for test_lfrc_list.
# This may be replaced when dependencies are built.
