file(REMOVE_RECURSE
  "CMakeFiles/test_snark_seq.dir/test_snark_seq.cpp.o"
  "CMakeFiles/test_snark_seq.dir/test_snark_seq.cpp.o.d"
  "test_snark_seq"
  "test_snark_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snark_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
