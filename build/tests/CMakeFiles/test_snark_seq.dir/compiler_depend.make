# Empty compiler generated dependencies file for test_snark_seq.
# This may be replaced when dependencies are built.
