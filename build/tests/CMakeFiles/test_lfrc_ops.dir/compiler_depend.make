# Empty compiler generated dependencies file for test_lfrc_ops.
# This may be replaced when dependencies are built.
