file(REMOVE_RECURSE
  "CMakeFiles/test_lfrc_ops.dir/test_lfrc_ops.cpp.o"
  "CMakeFiles/test_lfrc_ops.dir/test_lfrc_ops.cpp.o.d"
  "test_lfrc_ops"
  "test_lfrc_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lfrc_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
