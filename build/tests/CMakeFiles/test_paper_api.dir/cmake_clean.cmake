file(REMOVE_RECURSE
  "CMakeFiles/test_paper_api.dir/test_paper_api.cpp.o"
  "CMakeFiles/test_paper_api.dir/test_paper_api.cpp.o.d"
  "test_paper_api"
  "test_paper_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
