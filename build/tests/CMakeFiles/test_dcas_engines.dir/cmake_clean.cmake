file(REMOVE_RECURSE
  "CMakeFiles/test_dcas_engines.dir/test_dcas_engines.cpp.o"
  "CMakeFiles/test_dcas_engines.dir/test_dcas_engines.cpp.o.d"
  "test_dcas_engines"
  "test_dcas_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dcas_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
