# Empty compiler generated dependencies file for test_dcas_engines.
# This may be replaced when dependencies are built.
