file(REMOVE_RECURSE
  "CMakeFiles/test_snark_edges.dir/test_snark_edges.cpp.o"
  "CMakeFiles/test_snark_edges.dir/test_snark_edges.cpp.o.d"
  "test_snark_edges"
  "test_snark_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snark_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
