file(REMOVE_RECURSE
  "CMakeFiles/test_lfrc_edge_cases.dir/test_lfrc_edge_cases.cpp.o"
  "CMakeFiles/test_lfrc_edge_cases.dir/test_lfrc_edge_cases.cpp.o.d"
  "test_lfrc_edge_cases"
  "test_lfrc_edge_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lfrc_edge_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
