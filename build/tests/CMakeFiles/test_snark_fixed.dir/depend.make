# Empty dependencies file for test_snark_fixed.
# This may be replaced when dependencies are built.
