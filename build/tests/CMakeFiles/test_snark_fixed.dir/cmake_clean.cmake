file(REMOVE_RECURSE
  "CMakeFiles/test_snark_fixed.dir/test_snark_fixed.cpp.o"
  "CMakeFiles/test_snark_fixed.dir/test_snark_fixed.cpp.o.d"
  "test_snark_fixed"
  "test_snark_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snark_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
