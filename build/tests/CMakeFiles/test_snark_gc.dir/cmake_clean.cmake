file(REMOVE_RECURSE
  "CMakeFiles/test_snark_gc.dir/test_snark_gc.cpp.o"
  "CMakeFiles/test_snark_gc.dir/test_snark_gc.cpp.o.d"
  "test_snark_gc"
  "test_snark_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snark_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
