# Empty compiler generated dependencies file for test_snark_gc.
# This may be replaced when dependencies are built.
