file(REMOVE_RECURSE
  "CMakeFiles/test_gc_heap.dir/test_gc_heap.cpp.o"
  "CMakeFiles/test_gc_heap.dir/test_gc_heap.cpp.o.d"
  "test_gc_heap"
  "test_gc_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gc_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
