# Empty compiler generated dependencies file for test_gc_heap.
# This may be replaced when dependencies are built.
