file(REMOVE_RECURSE
  "CMakeFiles/test_snark_concurrent.dir/test_snark_concurrent.cpp.o"
  "CMakeFiles/test_snark_concurrent.dir/test_snark_concurrent.cpp.o.d"
  "test_snark_concurrent"
  "test_snark_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snark_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
