# Empty compiler generated dependencies file for test_snark_concurrent.
# This may be replaced when dependencies are built.
