# Empty compiler generated dependencies file for test_gc_containers.
# This may be replaced when dependencies are built.
