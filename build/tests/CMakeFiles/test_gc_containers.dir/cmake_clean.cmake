file(REMOVE_RECURSE
  "CMakeFiles/test_gc_containers.dir/test_gc_containers.cpp.o"
  "CMakeFiles/test_gc_containers.dir/test_gc_containers.cpp.o.d"
  "test_gc_containers"
  "test_gc_containers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gc_containers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
