# Empty compiler generated dependencies file for bench_e2_lfrc_ops.
# This may be replaced when dependencies are built.
