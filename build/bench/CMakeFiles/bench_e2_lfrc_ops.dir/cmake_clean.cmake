file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_lfrc_ops.dir/bench_e2_lfrc_ops.cpp.o"
  "CMakeFiles/bench_e2_lfrc_ops.dir/bench_e2_lfrc_ops.cpp.o.d"
  "bench_e2_lfrc_ops"
  "bench_e2_lfrc_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_lfrc_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
