# Empty dependencies file for bench_e7_destroy_latency.
# This may be replaced when dependencies are built.
