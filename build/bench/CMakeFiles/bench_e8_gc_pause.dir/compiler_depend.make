# Empty compiler generated dependencies file for bench_e8_gc_pause.
# This may be replaced when dependencies are built.
