file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_gc_pause.dir/bench_e8_gc_pause.cpp.o"
  "CMakeFiles/bench_e8_gc_pause.dir/bench_e8_gc_pause.cpp.o.d"
  "bench_e8_gc_pause"
  "bench_e8_gc_pause.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_gc_pause.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
