# Empty compiler generated dependencies file for bench_e1_deque_throughput.
# This may be replaced when dependencies are built.
