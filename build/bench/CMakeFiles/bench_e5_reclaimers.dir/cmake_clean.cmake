file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_reclaimers.dir/bench_e5_reclaimers.cpp.o"
  "CMakeFiles/bench_e5_reclaimers.dir/bench_e5_reclaimers.cpp.o.d"
  "bench_e5_reclaimers"
  "bench_e5_reclaimers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_reclaimers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
