# Empty dependencies file for bench_e5_reclaimers.
# This may be replaced when dependencies are built.
