# Empty dependencies file for bench_a1_kcas_width.
# This may be replaced when dependencies are built.
