file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_kcas_width.dir/bench_a1_kcas_width.cpp.o"
  "CMakeFiles/bench_a1_kcas_width.dir/bench_a1_kcas_width.cpp.o.d"
  "bench_a1_kcas_width"
  "bench_a1_kcas_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_kcas_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
