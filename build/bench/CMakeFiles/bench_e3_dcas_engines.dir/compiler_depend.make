# Empty compiler generated dependencies file for bench_e3_dcas_engines.
# This may be replaced when dependencies are built.
