file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_dcas_engines.dir/bench_e3_dcas_engines.cpp.o"
  "CMakeFiles/bench_e3_dcas_engines.dir/bench_e3_dcas_engines.cpp.o.d"
  "bench_e3_dcas_engines"
  "bench_e3_dcas_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_dcas_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
