# Empty compiler generated dependencies file for bench_e6_refcount_contention.
# This may be replaced when dependencies are built.
