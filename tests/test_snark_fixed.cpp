// Tests for the value-claiming Snark variant (snark_fixed.hpp): identical
// functional behaviour to the published algorithm, plus heavier conservation
// stress — the variant exists precisely to make double-pops impossible.
#include <gtest/gtest.h>

#include <deque>
#include <thread>
#include <vector>

#include "lfrc_test_helpers.hpp"
#include "snark/snark_fixed.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"

namespace {

using namespace lfrc;
using lfrc_tests::drain_epochs;

template <typename D>
class SnarkFixedTest : public ::testing::Test {
  protected:
    using deque_t = snark::snark_deque_fixed<D>;
};

using Domains = ::testing::Types<domain, locked_domain>;
TYPED_TEST_SUITE(SnarkFixedTest, Domains);

TYPED_TEST(SnarkFixedTest, BasicSequentialSemantics) {
    typename TestFixture::deque_t dq;
    EXPECT_TRUE(dq.empty());
    dq.push_right(1);
    dq.push_left(0);
    dq.push_right(2);
    EXPECT_EQ(dq.pop_left(), 0u);
    EXPECT_EQ(dq.pop_right(), 2u);
    EXPECT_EQ(dq.pop_left(), 1u);
    EXPECT_EQ(dq.pop_left(), std::nullopt);
    EXPECT_EQ(dq.pop_right(), std::nullopt);
}

TYPED_TEST(SnarkFixedTest, MatchesModelOnRandomTape) {
    typename TestFixture::deque_t dq;
    std::deque<std::uint64_t> model;
    util::xoshiro256 rng{77};
    std::uint64_t token = 1;
    for (int i = 0; i < 4000; ++i) {
        switch (rng.below(4)) {
            case 0: dq.push_left(token); model.push_front(token); ++token; break;
            case 1: dq.push_right(token); model.push_back(token); ++token; break;
            case 2: {
                const auto got = dq.pop_left();
                if (model.empty()) {
                    ASSERT_EQ(got, std::nullopt);
                } else {
                    ASSERT_EQ(got, model.front());
                    model.pop_front();
                }
                break;
            }
            default: {
                const auto got = dq.pop_right();
                if (model.empty()) {
                    ASSERT_EQ(got, std::nullopt);
                } else {
                    ASSERT_EQ(got, model.back());
                    model.pop_back();
                }
                break;
            }
        }
    }
}

TYPED_TEST(SnarkFixedTest, HeavyConservationStress) {
    // The variant's reason to exist: every token out exactly once, under the
    // nastiest mix we can schedule (both ends, frequent emptiness).
    for (std::uint64_t round = 0; round < 3; ++round) {
        typename TestFixture::deque_t dq;
        constexpr int threads = 4;
        constexpr int per_thread = 3000;
        const std::uint64_t total = static_cast<std::uint64_t>(threads) * per_thread;
        std::vector<std::atomic<int>> seen(total);
        for (auto& s : seen) s.store(0);
        util::spin_barrier barrier{threads};
        std::vector<std::thread> pool;
        for (int t = 0; t < threads; ++t) {
            pool.emplace_back([&, t] {
                util::xoshiro256 rng{round * 1000 + static_cast<std::uint64_t>(t)};
                barrier.arrive_and_wait();
                std::uint64_t next = static_cast<std::uint64_t>(t) * per_thread;
                const std::uint64_t limit = next + per_thread;
                while (next < limit) {
                    if (rng.below(100) < 52) {  // near-empty operation most of the time
                        if (rng.below(2) == 0) {
                            dq.push_left(next);
                        } else {
                            dq.push_right(next);
                        }
                        ++next;
                    } else {
                        const auto got = rng.below(2) == 0 ? dq.pop_left() : dq.pop_right();
                        if (got) seen[*got].fetch_add(1);
                    }
                }
            });
        }
        for (auto& t : pool) t.join();
        while (auto got = dq.pop_left()) seen[*got].fetch_add(1);
        for (std::uint64_t i = 0; i < total; ++i) {
            ASSERT_EQ(seen[i].load(), 1)
                << "round " << round << " token " << i << " seen " << seen[i].load();
        }
    }
}

TYPED_TEST(SnarkFixedTest, NoLeaksAfterChurn) {
    using D = TypeParam;
    drain_epochs();
    const auto before = D::counters().snapshot();
    {
        typename TestFixture::deque_t dq;
        std::vector<std::thread> pool;
        for (int t = 0; t < 4; ++t) {
            pool.emplace_back([&] {
                for (int i = 0; i < 4000; ++i) {
                    if ((i & 1) != 0) {
                        dq.push_right(static_cast<std::uint64_t>(i));
                    } else {
                        dq.pop_left();
                    }
                }
            });
        }
        for (auto& t : pool) t.join();
    }
    drain_epochs();
    const auto after = D::counters().snapshot();
    EXPECT_EQ(after.objects_created - before.objects_created,
              after.objects_destroyed - before.objects_destroyed);
}

}  // namespace
