// Tests for supporting infrastructure not covered elsewhere: CLI flag
// parsing, the benchmark driver, and block-pool details (fresh/recycled
// reporting, index round-trips, stats opt-out).
#include <gtest/gtest.h>

#include <atomic>

#include "alloc/block_pool.hpp"
#include "alloc/stats.hpp"
#include "util/bench_support.hpp"
#include "util/cli.hpp"

namespace {

using namespace lfrc;

TEST(CliFlags, ParsesKeyValuePairs) {
    const char* argv[] = {"prog", "--threads=8", "--duration=0.25", "--name=abc",
                          "--verbose"};
    util::cli_flags flags(5, const_cast<char**>(argv));
    EXPECT_EQ(flags.get_u64("threads", 1), 8u);
    EXPECT_DOUBLE_EQ(flags.get_double("duration", 1.0), 0.25);
    EXPECT_EQ(flags.get_string("name", "x"), "abc");
    EXPECT_TRUE(flags.has("verbose"));
    EXPECT_EQ(flags.get_u64("verbose", 0), 1u) << "bare flags read as 1";
}

TEST(CliFlags, FallsBackWhenAbsent) {
    const char* argv[] = {"prog"};
    util::cli_flags flags(1, const_cast<char**>(argv));
    EXPECT_EQ(flags.get_u64("missing", 42), 42u);
    EXPECT_DOUBLE_EQ(flags.get_double("missing", 2.5), 2.5);
    EXPECT_EQ(flags.get_string("missing", "dflt"), "dflt");
    EXPECT_FALSE(flags.has("missing"));
}

TEST(CliFlags, IgnoresNonFlagArguments) {
    const char* argv[] = {"prog", "positional", "-single", "--good=1"};
    util::cli_flags flags(4, const_cast<char**>(argv));
    EXPECT_TRUE(flags.has("good"));
    EXPECT_FALSE(flags.has("positional"));
    EXPECT_FALSE(flags.has("single"));
}

TEST(BenchSupport, RunForCountsAndTimes) {
    std::atomic<std::uint64_t> side_effect{0};
    const auto result = util::run_for(2, 0.1, [&](int) {
        side_effect.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(result.total_ops, side_effect.load());
    EXPECT_GT(result.total_ops, 0u);
    EXPECT_GE(result.seconds, 0.1);
    EXPECT_LT(result.seconds, 5.0);
    EXPECT_GT(result.ops_per_sec(), 0.0);
    EXPECT_NEAR(result.mops_per_sec() * 1e6, result.ops_per_sec(), 1.0);
}

TEST(BenchSupport, LatencySamplingRecords) {
    const auto result = util::run_for(1, 0.05, [](int) {}, /*record_latency=*/true);
    EXPECT_GT(result.latency.count(), 0u);
    EXPECT_LE(result.latency.count(), result.total_ops);
}

TEST(BenchSupport, ThreadIndexIsPassed) {
    std::atomic<int> seen_mask{0};
    util::run_for(3, 0.05, [&](int t) { seen_mask.fetch_or(1 << t); });
    EXPECT_EQ(seen_mask.load(), 0b111);
}

TEST(BlockPool, AllocateExReportsFreshThenRecycled) {
    alloc::block_pool<16> pool;
    bool fresh = false;
    void* a = pool.allocate_ex(fresh);
    EXPECT_TRUE(fresh) << "first carve is fresh";
    pool.deallocate(a);
    void* b = pool.allocate_ex(fresh);
    EXPECT_FALSE(fresh) << "freelist hit is recycled";
    EXPECT_EQ(a, b);
    pool.deallocate(b);
}

TEST(BlockPool, UntrackedPoolStaysOutOfStats) {
    const auto before = alloc::live_bytes();
    {
        alloc::block_pool<64> pool{/*track_stats=*/false};
        for (int i = 0; i < 2000; ++i) pool.allocate();  // forces chunks
        EXPECT_EQ(alloc::live_bytes(), before) << "untracked pool leaked into stats";
    }
    EXPECT_EQ(alloc::live_bytes(), before);
}

TEST(BlockPool, TrackedPoolCountsChunks) {
    const auto before = alloc::live_bytes();
    {
        alloc::block_pool<64> pool;  // tracked by default
        pool.allocate();
        EXPECT_GT(alloc::live_bytes(), before);
    }
    EXPECT_EQ(alloc::live_bytes(), before) << "chunk bytes returned at destruction";
}

TEST(BlockPool, ManyChunksAddressedCorrectly) {
    // Cross the chunk boundary (1024 blocks/chunk) and verify every block
    // is writable and distinct.
    alloc::block_pool<8> pool;
    std::vector<void*> blocks;
    constexpr int n = 3000;
    for (int i = 0; i < n; ++i) {
        void* p = pool.allocate();
        *static_cast<std::uint64_t*>(p) = static_cast<std::uint64_t>(i);
        blocks.push_back(p);
    }
    for (int i = 0; i < n; ++i) {
        EXPECT_EQ(*static_cast<std::uint64_t*>(blocks[static_cast<std::size_t>(i)]),
                  static_cast<std::uint64_t>(i));
    }
    EXPECT_GE(pool.footprint_bytes(), static_cast<std::size_t>(n) * 8);
    for (void* p : blocks) pool.deallocate(p);
}

}  // namespace
