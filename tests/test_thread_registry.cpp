// Tests for slot acquisition, stability, reuse, and the high-water mark.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "util/thread_registry.hpp"

namespace {

using lfrc::util::thread_registry;

TEST(ThreadRegistry, SlotStableWithinThread) {
    auto& reg = thread_registry::instance();
    const auto s1 = reg.slot();
    const auto s2 = reg.slot();
    EXPECT_EQ(s1, s2);
    EXPECT_LT(s1, thread_registry::max_threads);
    EXPECT_TRUE(reg.in_use(s1));
}

TEST(ThreadRegistry, DistinctSlotsForConcurrentThreads) {
    auto& reg = thread_registry::instance();
    constexpr int threads = 8;
    std::vector<std::size_t> slots(threads);
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            slots[t] = reg.slot();
            ready.fetch_add(1);
            while (!go.load()) std::this_thread::yield();  // hold the slot
        });
    }
    while (ready.load() < threads) std::this_thread::yield();
    std::set<std::size_t> unique(slots.begin(), slots.end());
    EXPECT_EQ(unique.size(), static_cast<std::size_t>(threads));
    go = true;
    for (auto& t : pool) t.join();
}

TEST(ThreadRegistry, SlotsReusedAfterThreadExit) {
    auto& reg = thread_registry::instance();
    std::size_t first = 0;
    std::thread a([&] { first = reg.slot(); });
    a.join();
    EXPECT_FALSE(reg.in_use(first));
    std::size_t second = 0;
    std::thread b([&] { second = reg.slot(); });
    b.join();
    EXPECT_EQ(first, second) << "lowest free slot should be reused";
}

TEST(ThreadRegistry, HighWaterCoversAllAcquiredSlots) {
    auto& reg = thread_registry::instance();
    const auto own = reg.slot();
    EXPECT_GT(reg.high_water(), own);
    std::size_t other = 0;
    std::thread t([&] { other = reg.slot(); });
    t.join();
    EXPECT_GT(reg.high_water(), other);
}

}  // namespace
