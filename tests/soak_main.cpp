// Standalone soak runner (NOT part of ctest): hammers every LFRC structure
// concurrently for a configurable duration, checking conservation and leak
// invariants continuously. Use for long-running validation:
//
//   $ ./build/tests/soak --seconds=60 --threads=4
//
// Exit code 0 iff every invariant held.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "containers/lfrc_hash_set.hpp"
#include "containers/ms_queue.hpp"
#include "containers/treiber_stack.hpp"
#include "lfrc/lfrc.hpp"
#include "snark/snark_fixed.hpp"
#include "snark/snark_lfrc.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/stopwatch.hpp"

using dom = lfrc::domain;

int main(int argc, char** argv) {
    lfrc::util::cli_flags flags(argc, argv);
    const double seconds = flags.get_double("seconds", 10.0);
    const int threads = static_cast<int>(flags.get_u64("threads", 4));

    std::printf("soak: %d threads, %.0f s, all structures, mcas engine\n", threads,
                seconds);

    const auto before = dom::counters().snapshot();
    std::atomic<std::uint64_t> violations{0};
    std::atomic<std::int64_t> deque_balance{0};  // pushes - pops that returned
    std::atomic<std::int64_t> stack_balance{0};
    std::atomic<std::int64_t> queue_balance{0};
    {
        lfrc::snark::snark_deque<dom, std::int64_t> deque;
        lfrc::snark::snark_deque_fixed<dom> fixed_deque;
        lfrc::containers::treiber_stack<dom, std::int64_t> stack;
        lfrc::containers::ms_queue<dom, std::int64_t> queue;
        lfrc::containers::lfrc_hash_set<dom, std::int64_t> set{32};

        std::atomic<bool> stop{false};
        std::vector<std::thread> pool;
        for (int t = 0; t < threads; ++t) {
            pool.emplace_back([&, t] {
                lfrc::util::xoshiro256 rng{static_cast<std::uint64_t>(t) * 7 + 3};
                while (!stop.load(std::memory_order_acquire)) {
                    switch (rng.below(10)) {
                        case 0:
                            deque.push_left(1);
                            deque_balance.fetch_add(1);
                            break;
                        case 1:
                            deque.push_right(1);
                            deque_balance.fetch_add(1);
                            break;
                        case 2:
                            if (deque.pop_left()) deque_balance.fetch_sub(1);
                            break;
                        case 3:
                            if (deque.pop_right()) deque_balance.fetch_sub(1);
                            break;
                        case 4:
                            stack.push(7);
                            stack_balance.fetch_add(1);
                            break;
                        case 5:
                            if (stack.pop()) stack_balance.fetch_sub(1);
                            break;
                        case 6:
                            queue.enqueue(9);
                            queue_balance.fetch_add(1);
                            break;
                        case 7:
                            if (queue.dequeue()) queue_balance.fetch_sub(1);
                            break;
                        case 8: {
                            const auto k = static_cast<std::int64_t>(rng.below(512));
                            if (rng.below(2) == 0) {
                                set.insert(k);
                            } else {
                                set.erase(k);
                            }
                            break;
                        }
                        default: {
                            fixed_deque.push_right(3);
                            if (!fixed_deque.pop_left() && !fixed_deque.pop_right()) {
                                // We just pushed; with other poppers around a
                                // miss is fine, but track gross anomalies via
                                // the balances below instead.
                            }
                            break;
                        }
                    }
                }
            });
        }
        lfrc::util::stopwatch clock;
        while (clock.elapsed_seconds() < seconds) {
            std::this_thread::sleep_for(std::chrono::milliseconds(200));
        }
        stop = true;
        for (auto& t : pool) t.join();

        // Drain and check balances.
        while (deque.pop_left()) deque_balance.fetch_sub(1);
        while (stack.pop()) stack_balance.fetch_sub(1);
        while (queue.dequeue()) queue_balance.fetch_sub(1);
        while (fixed_deque.pop_left()) {}
        if (deque_balance.load() != 0) {
            std::printf("VIOLATION: deque balance %lld\n",
                        static_cast<long long>(deque_balance.load()));
            violations.fetch_add(1);
        }
        if (stack_balance.load() != 0) {
            std::printf("VIOLATION: stack balance %lld\n",
                        static_cast<long long>(stack_balance.load()));
            violations.fetch_add(1);
        }
        if (queue_balance.load() != 0) {
            std::printf("VIOLATION: queue balance %lld\n",
                        static_cast<long long>(queue_balance.load()));
            violations.fetch_add(1);
        }
    }
    lfrc::flush_deferred_frees(256);
    const auto after = dom::counters().snapshot();
    const auto leaked = (after.objects_created - before.objects_created) -
                        (after.objects_destroyed - before.objects_destroyed);
    if (leaked != 0) {
        std::printf("VIOLATION: %llu objects leaked\n",
                    static_cast<unsigned long long>(leaked));
        violations.fetch_add(1);
    }
    std::printf("soak done: %llu violations, %llu objects churned\n",
                static_cast<unsigned long long>(violations.load()),
                static_cast<unsigned long long>(after.objects_created -
                                                before.objects_created));
    return violations.load() == 0 ? 0 : 1;
}
