// Tests for the sorted LFRC list set with DCAS-based deletion
// (containers::lfrc_list_set): set semantics, order, the dead-flag
// protocol, randomized differential testing against std::set, concurrent
// conservation, and leak checks.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "containers/lfrc_list.hpp"
#include "lfrc_test_helpers.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"

namespace {

using namespace lfrc;
using lfrc_tests::drain_epochs;

template <typename D>
class LfrcListTest : public ::testing::Test {
  protected:
    using set_t = containers::lfrc_list_set<D, std::int64_t>;
};

using Domains = ::testing::Types<domain, locked_domain>;
TYPED_TEST_SUITE(LfrcListTest, Domains);

TYPED_TEST(LfrcListTest, InsertContainsErase) {
    typename TestFixture::set_t s;
    EXPECT_FALSE(s.contains(5));
    EXPECT_TRUE(s.insert(5));
    EXPECT_TRUE(s.contains(5));
    EXPECT_FALSE(s.insert(5)) << "duplicate insert must fail";
    EXPECT_TRUE(s.erase(5));
    EXPECT_FALSE(s.contains(5));
    EXPECT_FALSE(s.erase(5)) << "double erase must fail";
}

TYPED_TEST(LfrcListTest, KeepsSortedOrderInvariant) {
    typename TestFixture::set_t s;
    for (std::int64_t k : {5, 1, 9, 3, 7, 2, 8, 4, 6, 0}) EXPECT_TRUE(s.insert(k));
    EXPECT_EQ(s.size(), 10u);
    for (std::int64_t k = 0; k < 10; ++k) EXPECT_TRUE(s.contains(k));
    EXPECT_FALSE(s.contains(10));
    EXPECT_FALSE(s.contains(-1));
}

TYPED_TEST(LfrcListTest, EraseMiddleFrontBack) {
    typename TestFixture::set_t s;
    for (std::int64_t k = 0; k < 5; ++k) s.insert(k);
    EXPECT_TRUE(s.erase(2));  // middle
    EXPECT_TRUE(s.erase(0));  // front
    EXPECT_TRUE(s.erase(4));  // back
    EXPECT_EQ(s.size(), 2u);
    EXPECT_TRUE(s.contains(1));
    EXPECT_TRUE(s.contains(3));
}

TYPED_TEST(LfrcListTest, ReinsertAfterErase) {
    typename TestFixture::set_t s;
    for (int round = 0; round < 50; ++round) {
        EXPECT_TRUE(s.insert(7));
        EXPECT_TRUE(s.erase(7));
    }
    EXPECT_FALSE(s.contains(7));
    EXPECT_EQ(s.size(), 0u);
}

TYPED_TEST(LfrcListTest, MatchesStdSetOnRandomTape) {
    typename TestFixture::set_t s;
    std::set<std::int64_t> model;
    util::xoshiro256 rng{321};
    for (int i = 0; i < 6000; ++i) {
        const auto key = static_cast<std::int64_t>(rng.below(64));
        switch (rng.below(3)) {
            case 0:
                ASSERT_EQ(s.insert(key), model.insert(key).second) << "op " << i;
                break;
            case 1:
                ASSERT_EQ(s.erase(key), model.erase(key) > 0) << "op " << i;
                break;
            default:
                ASSERT_EQ(s.contains(key), model.count(key) > 0) << "op " << i;
                break;
        }
    }
    EXPECT_EQ(s.size(), model.size());
}

TYPED_TEST(LfrcListTest, NoLeaksAfterChurn) {
    using D = TypeParam;
    drain_epochs();
    const auto before = D::counters().snapshot();
    {
        typename TestFixture::set_t s;
        util::xoshiro256 rng{11};
        for (int i = 0; i < 5000; ++i) {
            const auto key = static_cast<std::int64_t>(rng.below(128));
            if (rng.below(2) == 0) {
                s.insert(key);
            } else {
                s.erase(key);
            }
        }
    }
    drain_epochs();
    const auto after = D::counters().snapshot();
    EXPECT_EQ(after.objects_created - before.objects_created,
              after.objects_destroyed - before.objects_destroyed);
}

// Concurrent: disjoint key ranges per thread — every thread's inserts and
// erases must behave as if alone (per-key linearizability).
TYPED_TEST(LfrcListTest, ConcurrentDisjointRanges) {
    typename TestFixture::set_t s;
    constexpr int threads = 4;
    constexpr int keys_per_thread = 300;
    std::atomic<int> failures{0};
    util::spin_barrier barrier{threads};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            const std::int64_t base = static_cast<std::int64_t>(t) * keys_per_thread;
            barrier.arrive_and_wait();
            for (int round = 0; round < 5; ++round) {
                for (int k = 0; k < keys_per_thread; ++k) {
                    if (!s.insert(base + k)) failures.fetch_add(1);
                }
                for (int k = 0; k < keys_per_thread; ++k) {
                    if (!s.contains(base + k)) failures.fetch_add(1);
                }
                for (int k = 0; k < keys_per_thread; ++k) {
                    if (!s.erase(base + k)) failures.fetch_add(1);
                }
            }
        });
    }
    for (auto& t : pool) t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(s.size(), 0u);
}

// Concurrent: all threads fight over the same small key space; final
// contents must equal the union of successful inserts minus successful
// erases (tracked per key with counters).
TYPED_TEST(LfrcListTest, ConcurrentContendedKeysBalance) {
    typename TestFixture::set_t s;
    constexpr int threads = 4;
    constexpr int key_space = 16;
    constexpr int iters = 4000;
    std::vector<std::atomic<int>> balance(key_space);  // +1 insert ok, -1 erase ok
    for (auto& b : balance) b.store(0);
    util::spin_barrier barrier{threads};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            util::xoshiro256 rng{static_cast<std::uint64_t>(t) * 131 + 17};
            barrier.arrive_and_wait();
            for (int i = 0; i < iters; ++i) {
                const auto key = static_cast<std::int64_t>(rng.below(key_space));
                if (rng.below(2) == 0) {
                    if (s.insert(key)) balance[static_cast<std::size_t>(key)].fetch_add(1);
                } else {
                    if (s.erase(key)) balance[static_cast<std::size_t>(key)].fetch_sub(1);
                }
            }
        });
    }
    for (auto& t : pool) t.join();
    for (int k = 0; k < key_space; ++k) {
        const int b = balance[static_cast<std::size_t>(k)].load();
        ASSERT_TRUE(b == 0 || b == 1) << "key " << k << " balance " << b
                                      << " (duplicate insert or phantom erase)";
        EXPECT_EQ(s.contains(k), b == 1) << "key " << k;
    }
}

}  // namespace
