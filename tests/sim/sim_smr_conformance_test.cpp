// Sim conformance for the smr policy layer: the SAME generic stack core,
// model-checked under every policy that can run on the cooperative fiber
// scheduler — counted, borrowed (on the ideal-DCAS domain, per
// sim_test_support's density advice), and the manual ebr/hp/leaky schemes.
// Each schedule races two push-then-pop fibers and asserts conservation at
// quiescence while the shadow heap watches for use-after-free/double-free;
// a CHESS-style preemption bound keeps the container-sized step space
// tractable (see sim_mutation_test for the calibration).
//
// smr::gc_heap is exercised by test_smr_conformance/test_gc_containers
// instead: its stop-the-world handshake parks mutators on OS-thread
// safepoints, which the single-threaded fiber scheduler does not model.
#include <gtest/gtest.h>

#include <memory>
#include <type_traits>

#include "containers/stack_core.hpp"
#include "sim_test_support.hpp"
#include "smr/smr.hpp"

namespace {

using namespace sim_tests;
namespace smr = lfrc::smr;

template <typename P>
sim::result run_stack_race(std::uint64_t seed, int schedules, bool check_leaks) {
    auto o = opts(seed, schedules);
    o.check_leaks = check_leaks;  // leaky's popped nodes ARE leaks, by design
    o.preemption_bound = 3;
    return sim::explore(o, [](sim::env& e) {
        struct state {
            lfrc::containers::stack_core<int, P> st;
            long push_sum = 0;
            long pop_sum = 0;
        };
        auto s = std::make_shared<state>();
        e.spawn("a", [s] {
            s->st.push(1);
            s->push_sum += 1;
            if (auto got = s->st.pop()) s->pop_sum += *got;
        });
        e.spawn("b", [s] {
            s->st.push(2);
            s->push_sum += 2;
            if (auto got = s->st.pop()) s->pop_sum += *got;
        });
        e.on_quiesce([s] {
            while (auto got = s->st.pop()) s->pop_sum += *got;
            if (s->push_sum != s->pop_sum) {
                sim::fail_here("lost-update", "stack dropped or duplicated a value");
            }
            s->st.policy().drain(64);
            expect_quiesced_drain();
        });
    });
}

template <typename P>
class SimSmrConformance : public ::testing::Test {};

using SimPolicies =
    ::testing::Types<smr::counted<ideal_dom>, smr::borrowed<ideal_dom>,
                     smr::ebr<>, smr::hp<>, smr::leaky<>, smr::deferred<>>;
TYPED_TEST_SUITE(SimSmrConformance, SimPolicies);

TYPED_TEST(SimSmrConformance, StackRaceConservesAndStaysMemorySafe) {
    constexpr bool leaks_by_design = std::is_same_v<TypeParam, smr::leaky<>>;
    const auto res = run_stack_race<TypeParam>(777, 1000, !leaks_by_design);
    EXPECT_CLEAN(res);
}

}  // namespace
