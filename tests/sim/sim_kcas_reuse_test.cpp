// Descriptor-reuse regression tests for the sequence-tagged MCAS engine
// (dcas/mcas_engine.hpp, "Reuse, don't Recycle").
//
// This is the DYNAMIC TWIN of lint rule R7 (tools/lfrc_lint, descriptor-
// sequence discipline; DESIGN.md §16): R7 statically requires every
// snapshot-field read of a pooled descriptor to be re-validated against
// its sequence and every decision CAS to carry that sequence. The seeded
// mutant below is exactly the code shape R7 flags — a decision path with
// the revalidation stripped — and this test proves that shape is a real
// torn-MCAS bug, not lint pedantry. Static rule and sim test must be
// kept in sync: weakening one without the other re-opens the hole.
//
// The bug class these tests exist for: a helper that read a descriptor's
// tagged word, walked phase 1, and was then descheduled across an OWNER-SIDE
// REUSE of that descriptor must not be able to impose its stale phase-1
// verdict on the descriptor's NEW operation. The engine excludes it by
// embedding the help ticket's sequence in the decision CAS; the seeded
// mutant (mcas_engine::mutate_strip_seq_validation) re-reads the status word
// and trusts whatever sequence it carries — exactly the validation the
// design says is load-bearing.
//
// Black-box workloads are NOT evidence against this bug (see the PR-3
// post-mortem pattern): the window is a handful of instrumented steps wide
// and requires the helper to stall across a complete + 4-op reuse distance,
// which random scheduling essentially never produces. The test is therefore
// WHITE-BOX: the owner fiber stages a mid-help descriptor via
// testing::begin_op, hands the helper its window with one voluntary yield,
// then completes and recycles the descriptor; preemption_bound = 1 makes
// the post-park owner run deterministic (pick_next runs the last fiber on
// once the bound is exhausted), so the only randomness is WHERE the single
// preemption lands.
//
// Reproduction budget (measured, and why it is seed-stable): the exploit
// needs the scheduler to (a) keep the owner running through its 4
// pre-publish instrumented steps, (b) hand the voluntary yield to the
// helper, (c) keep the helper running through its 4 pre-decision steps, and
// (d) spend the one preemption parking the helper right before the decision
// CAS — about 10 fair coin flips, i.e. ~1/1024 per schedule. Measured
// first-catch indices across base seeds {1,2,3,4,5,6161,11}: 1381, 2, 2736,
// 11, 1127, 546, 274 — consistent with that estimate. Exploration is
// deterministic in the base seed, so the schedule index of the first catch
// is a build-stable constant; the pinned base seed 4 catches at schedule 11
// (asserted <= k_budget, and comfortably inside the CI quick cell's
// LFRC_SIM_SCHEDULES=500 cap). The clean control runs the identical harness
// for the full budget.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <memory>

#include "dcas/mcas_engine.hpp"
#include "sim_test_support.hpp"
#include "smr/counted.hpp"
#include "store/store.hpp"
#include "util/backoff.hpp"

namespace {

using namespace sim_tests;
using engine = lfrc::dcas::mcas_engine;

constexpr int k_budget = 3000;  // schedules the mutant must be caught within

// Clean (tag 00) cell values. op1 swings A and B; op5 — the REUSE of op1's
// descriptor — wants B:B1->BX and C:C9->CY, but C actually holds C0, so a
// correct engine can only ever decide op5 FAILED. A torn op5 (B updated, C
// neither checked nor written) is precisely what a stale helper's decision
// produces under the mutant.
constexpr std::uint64_t A0 = 0x100, A1 = 0x104;
constexpr std::uint64_t B0 = 0x200, B1 = 0x204, BX = 0x208;
constexpr std::uint64_t C0 = 0x300, C9 = 0x304, CY = 0x308;
constexpr std::uint64_t D0 = 0x400, E0 = 0x500;

struct cells_t {
    lfrc::dcas::cell a{A0}, b{B0}, c{C0}, d{D0}, e{E0};
    // Publication channel for op1's tagged word: a PLAIN atomic, so reading
    // it is not a model step (fibers are co-routines; no race to model).
    std::atomic<std::uint64_t> md1{0};
};

std::function<void(sim::env&)> reuse_race_build() {
    return [](sim::env& e) {
        auto s = std::make_shared<cells_t>();
        e.spawn("owner", [s] {
            // Stage op1 mid-help: descriptor filled and installed in both
            // cells, not yet decided.
            engine::casn_op op1[2] = {{&s->a, A0, A1}, {&s->b, B0, B1}};
            const std::uint64_t md1 = engine::testing::begin_op(op1, 2);
            s->md1.store(md1, std::memory_order_relaxed);
            // One voluntary yield: the helper gets its window without
            // costing the schedule its single preemption.
            lfrc::util::backoff bo;
            bo();
            // Complete op1 and walk the round-robin cursor all the way
            // around the pool so the next acquire recycles op1's descriptor.
            engine::testing::complete_op(md1);
            for (std::uint64_t k = 0; k < engine::testing::pool_entries - 1; ++k) {
                engine::casn_op fill[2] = {{&s->d, D0 + 4 * k, D0 + 4 * (k + 1)},
                                           {&s->e, E0 + 4 * k, E0 + 4 * (k + 1)}};
                const bool ok = engine::casn(fill, 2);
                if (!ok) sim::fail_here("test-bug", "uncontended filler casn failed");
            }
            // The reuse: same descriptor object, bumped sequence. Installed
            // in B only (C holds C0 != C9), left UNDECIDED — in a correct
            // engine only a fresh helper (the quiesce read below) may decide
            // it, and only as FAILED.
            engine::casn_op op5[2] = {{&s->b, B1, BX}, {&s->c, C9, CY}};
            (void)engine::testing::begin_op(op5, 2);
        });
        e.spawn("helper", [s] {
            lfrc::util::backoff bo;
            std::uint64_t md1;
            while ((md1 = s->md1.load(std::memory_order_relaxed)) == 0) bo();
            // Real helper path (mcas_help), same code production readers
            // run when they hit op1's word in a cell.
            (void)engine::testing::help(md1);
        });
        e.on_quiesce([s] {
            // read(b) helps whatever occupies B — in a correct engine that
            // decides op5 FAILED and restores B1.
            const std::uint64_t a = engine::read(s->a);
            const std::uint64_t b = engine::read(s->b);
            const std::uint64_t c = engine::read(s->c);
            if (a != A1 || b != B1 || c != C0) {
                sim::fail_here("stale-reuse-completion",
                               "a stale helper committed a recycled descriptor's "
                               "operation (torn casn)");
            }
            expect_quiesced_drain();
        });
    };
}

template <bool Mutated>
sim::result run_reuse_race(std::uint64_t seed, int schedules) {
    engine::mutate_strip_seq_validation().store(Mutated, std::memory_order_relaxed);
    auto o = opts(seed, schedules);
    o.preemption_bound = 1;
    const auto res = sim::explore(o, reuse_race_build());
    engine::mutate_strip_seq_validation().store(false, std::memory_order_relaxed);
    return res;
}

TEST(SimKcasReuse, StaleHelperDecisionMutantIsCaughtWithinBudget) {
    const auto res = run_reuse_race</*Mutated=*/true>(4, k_budget);
    ASSERT_TRUE(res.failed)
        << "the stripped-sequence-validation mutant survived " << k_budget
        << " schedules at preemption_bound=1 — the decision CAS's sequence "
        << "check is not what the harness is actually exercising";
    EXPECT_EQ(res.kind, "stale-reuse-completion") << res.report;
    EXPECT_LE(res.schedules_run, k_budget);
}

TEST(SimKcasReuse, ValidatedDecisionPassesTheSameHarness) {
    const auto res = run_reuse_race</*Mutated=*/false>(4, k_budget);
    EXPECT_CLEAN(res);
    // The clean run must exhaust the budget actually in force — the CI
    // quick cell shrinks it via LFRC_SIM_SCHEDULES (sim::explore docs).
    int expected = k_budget;
    if (const char* cap = std::getenv("LFRC_SIM_SCHEDULES")) {
        const long v = std::atol(cap);
        if (v > 0 && v < expected) expected = static_cast<int>(v);
    }
    EXPECT_EQ(res.schedules_run, expected);
}

TEST(SimKcasReuse, FailingSeedReplaysDeterministically) {
    const auto found = run_reuse_race</*Mutated=*/true>(4, k_budget);
    ASSERT_TRUE(found.failed);
    engine::mutate_strip_seq_validation().store(true, std::memory_order_relaxed);
    auto o = opts(4, 1);
    o.preemption_bound = 1;
    const auto replayed = sim::replay(found.failing_seed, o, reuse_race_build());
    engine::mutate_strip_seq_validation().store(false, std::memory_order_relaxed);
    EXPECT_TRUE(replayed.failed)
        << "failing seed " << found.failing_seed << " did not reproduce";
    EXPECT_EQ(replayed.kind, found.kind);
}

// ---------------------------------------------------------------------------
// The store's put-vs-erase lost-update invariant, re-armed against the
// smr::counted_flag_blind mutant: vinstall_if_live downgraded from the
// 3-word CASN (pointer, version, dead-flag) to the flag-blind 2-word
// store_conditional — the pre-PR-3 bug — proving the detector still has
// teeth with the sequence-tagged engine underneath.
//
// Why this is staged at the POLICY seam and not through kv_store: the
// version word already arbitrates most put/erase orderings (the claim bumps
// it), so the flag is load-bearing only in the gap between put's dead-check
// and its version witness — a 1-2 step window that the eraser's ENTIRE
// find+claim must fit inside. A black-box kv_store put-vs-erase race was
// measured at 0 catches in 360,000 schedules (seeds 1-5 and 6262 at
// preemption bounds 1, 2 and 3, 20,000 schedules each) — black-box
// workloads are NOT evidence against this mutant. The staged run below
// replays the store's exact put idiom (flag_load -> vprotect ->
// vinstall_if_live) with the eraser's claim wedged into that gap via plain
// signals and voluntary yields, so the mutant is caught on the FIRST
// schedule and the catch is deterministic (no seed shopping, immune to the
// CI LFRC_SIM_SCHEDULES cap).

template <class P>
struct box_node : P::template node_base<box_node<P>> {
    int payload;
    explicit box_node(int v) : payload(v) {}
    static constexpr std::size_t smr_link_count = 0;
    template <typename F>
    void smr_children(F&&) {}
};

template <class P>
struct entry_state {
    P policy{};
    typename P::template vslot<box_node<P>> val;  // the entry's value slot
    typename P::flag dead;                        // the entry's dead flag
    std::atomic<int> stage{0};  // plain: staging, not a model step
};

template <class P>
sim::result run_staged_put_vs_erase(std::uint64_t seed, int schedules) {
    return sim::explore(opts(seed, schedules), [](sim::env& e) {
        auto s = std::make_shared<entry_state<P>>();
        e.spawn("put", [s] {
            using box_t = box_node<P>;
            auto box = s->policy.template make_owner<box_t>(42);
            typename P::guard g(s->policy);
            lfrc::util::backoff bo;
            // The store's put inner loop (store.hpp put), with the eraser's
            // whole claim staged into the dead-check -> vprotect gap.
            while (!s->policy.flag_load(s->dead)) {
                if (s->stage.load(std::memory_order_relaxed) == 0) {
                    s->stage.store(1, std::memory_order_relaxed);
                    while (s->stage.load(std::memory_order_relaxed) != 2) bo();
                }
                std::uint64_t version = 0;
                box_t* cur = g.template vprotect<box_t>(3, s->val, version);
                if (s->policy.vinstall_if_live(s->val, version, cur, box.get(),
                                               s->dead)) {
                    s->policy.publish_ok(box);
                    return;  // the store would consider the put done here
                }
            }
            // Entry died under us: the real put re-searches the bucket; the
            // value never lands in the claimed entry.
        });
        e.spawn("erase", [s] {
            using box_t = box_node<P>;
            lfrc::util::backoff bo;
            while (s->stage.load(std::memory_order_relaxed) != 1) bo();
            {
                typename P::guard g(s->policy);
                std::uint64_t version = 0;
                box_t* cur = g.template vprotect<box_t>(3, s->val, version);
                // Claims an EMPTY slot (cur == nullptr): the store's erase
                // would report "nothing removed" — not user-visible.
                if (!s->policy.vclaim_mark_dead(s->val, version, cur, s->dead)) {
                    sim::fail_here("test-bug", "staged claim unexpectedly failed");
                }
            }
            s->stage.store(2, std::memory_order_relaxed);
        });
        e.on_quiesce([s] {
            using box_t = box_node<P>;
            // Lost-update invariant: the eraser claimed an EMPTY entry, so
            // no value may ever be visible in it afterwards. A box in the
            // dead entry is the put that vanished without a user-visible
            // erase.
            box_t* leftover = s->val.exclusive_get();
            const bool entry_dead = s->policy.flag_load(s->dead);
            mcas_dom::ll_store(s->val, static_cast<box_t*>(nullptr));  // cleanup
            if (leftover != nullptr && entry_dead) {
                sim::fail_here("store-invariant",
                               "put vanished without a user-visible erase "
                               "(value landed in a claimed entry)");
            }
            expect_quiesced_drain();
        });
    });
}

TEST(SimKcasReuse, FlagBlindInstallMutantStillTripsStoreDetector) {
    const auto res =
        run_staged_put_vs_erase<lfrc::smr::counted_flag_blind<mcas_dom>>(6262, 200);
    ASSERT_TRUE(res.failed)
        << "the flag-blind vinstall mutant survived the staged put-vs-erase "
        << "window — the dead-flag word is not actually part of the install";
    EXPECT_EQ(res.kind, "store-invariant") << res.report;
    EXPECT_EQ(res.schedules_run, 1) << "the staged catch should be deterministic";
}

TEST(SimKcasReuse, FlagCheckedInstallPassesTheSameHarness) {
    const auto res = run_staged_put_vs_erase<lfrc::smr::counted<mcas_dom>>(6262, 200);
    EXPECT_CLEAN(res);
}

// Black-box conformance ride-along: the real kv_store put/erase/get race
// from sim_store_test, run against the reuse engine through the counted
// policy spelling — the detector harness itself stays green on correct code.
TEST(SimKcasReuse, StorePutVsEraseStaysCleanOnReuseEngine) {
    using store_t = lfrc::store::kv_store<lfrc::smr::counted<mcas_dom>, int, int>;
    auto o = opts(6363, 300);
    o.preemption_bound = 3;
    const auto res = sim::explore(o, [](sim::env& e) {
        auto s = std::make_shared<store_t>(typename store_t::config{1, 1});
        auto erased = std::make_shared<bool>(false);
        e.spawn("put", [s] { s->put(1, 42); });
        e.spawn("erase", [s, erased] { *erased = s->erase(1); });
        e.on_quiesce([s, erased] {
            const bool present = s->get(1).has_value();
            if (!present && !*erased) {
                sim::fail_here("store-invariant",
                               "put vanished without a user-visible erase");
            }
            if (s->drain() != 0) {
                sim::fail_here("residual-pending", "store drain left deferred frees");
            }
            expect_quiesced_drain();
        });
    });
    EXPECT_CLEAN(res);
}

}  // namespace
