// Model checks for smr::deferred's delta-table / review-queue machinery
// (the races the conformance stack test only hits incidentally):
//
//  1. GraceProtectsPinnedReader — a reader holding only an epoch pin (its
//     protection is a raw pointer read; no count, no hazard slot)
//     dereferences a node while another fiber performs the final release
//     and then aggressively drives the reviewer. The shadow heap fails the
//     schedule if the review queue frees the node before the reader's pin
//     has aged out of the grace window.
//
//  2. FlushRacesFinalRelease — one fiber links/unlinks a node through a
//     second root, so a +1/-1 pair for the node sits unflushed in its delta
//     table while another fiber applies the final release of the original
//     link. Depending on the interleaving, the authoritative count touches
//     zero while the table still owes the node a +1 (resurrection through
//     the review queue's re-check), or the flush lands first and the
//     release is the true final one. Either way the node must be freed
//     exactly once and nothing may leak — double-free is caught by the
//     shadow heap, a leak by the arena check, a stuck review queue by the
//     residual-pending check at quiescence.
//
//  3. TwoReviewersRaceResurrection — white-box check of the reviewer's
//     resurrection claim handoff, driving deferred_detail::runtime
//     directly: setup zero-crosses a node (queued) and resurrects it with
//     a +1, reviewer A steals it (count > 0 path), while fiber B performs
//     the final release and drives its own unpinned review to the free.
//     The dangerous schedule: A relinquishes the queue claim, B's release
//     re-queues the node and B's reviewer advances epochs and frees it —
//     any access A makes after losing the claim is a UAF the shadow heap
//     flags. A must therefore release the claim only through a CAS that
//     requires count > 0 (failure = claim still held). A preemption bound
//     of 1 makes this a dense search over A's preemption point; the
//     pre-fix code (claim released with fetch_and, then re-read) fails
//     this test within ~700 schedules at this seed.
#include <gtest/gtest.h>

#include <memory>

#include "sim_test_support.hpp"
#include "smr/smr.hpp"

namespace {

using namespace sim_tests;
namespace smr = lfrc::smr;

using policy = smr::deferred<>;
using rt = smr::deferred_detail::runtime;

struct node : policy::node_base<node> {
    static constexpr std::size_t smr_link_count = 1;
    policy::link<node> next;
    template <typename F>
    void smr_children(F&& f) {
        f(next);
    }
};
static_assert(smr::detail::children_cover_all_links_v<node>);

struct fixture {
    policy pol;
    policy::link<node> root1;
    policy::link<node> root2;
    node* x = nullptr;

    fixture() {
        auto o = pol.make_owner<node>();
        x = o.get();
        pol.init_link(root1, x);  // x's count: birth + root1 link
        pol.publish_ok(o);        // birth released by owner dtor → root1 owns x
    }

    void teardown(bool conserve_check) {
        pol.reset_chain(root1);
        pol.reset_chain(root2);
        pol.drain(64);
        expect_quiesced_drain();
        (void)conserve_check;
    }
};

TEST(SimDeferred, GraceProtectsPinnedReader) {
    const auto res = sim::explore(opts(4242, 1500), [](sim::env& e) {
        auto s = std::make_shared<fixture>();
        e.spawn("reader", [s] {
            policy::guard g(s->pol);
            node* p = g.protect(0, s->root1);
            if (p != nullptr) {
                // Instrumented access through the (possibly already
                // unlinked) node: the shadow heap flags it if the reviewer
                // freed p under our pin.
                (void)g.traverse(1, p->next);
            }
        });
        e.spawn("releaser", [s] {
            node* p;
            {
                policy::guard g(s->pol);
                p = g.protect(0, s->root1);
            }
            if (p != nullptr && s->pol.cas_link(s->root1, p, static_cast<node*>(nullptr))) {
                // Final release is in our table until the guard above
                // closed; now race the reviewer against the reader's pin.
                s->pol.drain(8);
            }
        });
        e.on_quiesce([s] { s->teardown(true); });
    });
    EXPECT_CLEAN(res);
}

TEST(SimDeferred, FlushRacesFinalRelease) {
    const auto res = sim::explore(opts(90125, 1500), [](sim::env& e) {
        auto s = std::make_shared<fixture>();
        e.spawn("relinker", [s] {
            {
                policy::guard g(s->pol);
                node* p = g.protect(0, s->root1);
                if (p != nullptr) {
                    // +1 for x parks in our delta table...
                    s->pol.cas_link(s->root2, static_cast<node*>(nullptr), p);
                }
            }  // ...and flushes here, racing the releaser's -1.
            {
                policy::guard g(s->pol);
                node* q = g.protect(0, s->root2);
                if (q != nullptr) {
                    s->pol.cas_link(s->root2, q, static_cast<node*>(nullptr));
                }
            }
        });
        e.spawn("releaser", [s] {
            node* p;
            {
                policy::guard g(s->pol);
                p = g.protect(0, s->root1);
            }
            if (p != nullptr && s->pol.cas_link(s->root1, p, static_cast<node*>(nullptr))) {
                s->pol.drain(8);
            }
        });
        e.on_quiesce([s] { s->teardown(true); });
    });
    EXPECT_CLEAN(res);
}

TEST(SimDeferred, TwoReviewersRaceResurrection) {
    auto o = opts(60609, 2000);
    o.preemption_bound = 1;  // one involuntary switch: A's claim handoff
    const auto res = sim::explore(o, [](sim::env& e) {
        // One plain node, no roots: the counts are driven directly so the
        // count>0 review path is reached on (nearly) every schedule.
        auto s = std::make_shared<node*>(nullptr);
        auto& r = rt::instance();
        *s = new node;       // birth reference, count 1
        r.release(*s);       // zero-cross: claimed + queued on our shard
        r.add_ref(*s);       // resurrected: count 1, claim still held
        e.spawn("reviewerA", [] {
            // Steals the resurrected node and must hand the claim back.
            rt::instance().process_review(/*max_passes=*/1, /*all_shards=*/true);
        });
        e.spawn("releaserB", [s] {
            auto& rr = rt::instance();
            rr.release(*s);  // final release: re-crosses zero
            // Unpinned reviewer: if A released the claim, this re-queues,
            // outwaits the grace period, and frees — while A may still be
            // parked inside its handoff.
            rr.process_review(/*max_passes=*/0, /*all_shards=*/true);
        });
        e.on_quiesce([] {
            if (lfrc::flush_deferred_frees(64) != 0) {
                sim::fail_here("residual-pending",
                               "review queue stuck at quiescence");
            }
        });
    });
    EXPECT_CLEAN(res);
}

}  // namespace
