// Model checks for the Figure-2 LFRC operations, run on both engines:
//  * mcas_dom — the production lock-free DCAS emulation under the shim
//    (every cell and descriptor-status access is a scheduler step);
//  * ideal_dom — the paper's assumed hardware DCAS as one atomic step.
// Invariants come from the harness (no UAF, no double free, no leak, drains
// at quiescence) plus explicit structural checks at quiesce time.
#include <gtest/gtest.h>

#include <memory>

#include "lfrc_test_helpers.hpp"
#include "sim_test_support.hpp"

namespace {

using namespace sim_tests;

template <class D>
using node = lfrc_tests::test_node<D>;

// Writers race store/store_alloc against a reader's counted loads on one
// shared pointer; any count slip becomes a premature free (UAF), a double
// retire (double free), or a leak.
template <class D>
void check_load_store(std::uint64_t seed, int schedules) {
    struct shared_t {
        typename D::template ptr_field<node<D>> field;
    };
    const auto res = sim::explore(opts(seed, schedules), [](sim::env& e) {
        auto s = std::make_shared<shared_t>();
        e.spawn("w0", [s] {
            for (int i = 0; i < 2; ++i) D::store_alloc(s->field, D::template make<node<D>>(i));
        });
        e.spawn("w1", [s] {
            auto mine = D::template make<node<D>>(100);
            D::store(s->field, mine);
        });
        e.spawn("r", [s] {
            typename D::template local_ptr<node<D>> got;
            for (int i = 0; i < 2; ++i) {
                D::load(s->field, got);
                if (got && got->value < 0) sim::fail_here("corrupt", "impossible payload");
            }
        });
        e.on_quiesce([s] {
            D::store(s->field, static_cast<node<D>*>(nullptr));
            expect_quiesced_drain();
        });
    });
    EXPECT_CLEAN(res);
}

TEST(SimLfrcOps, LoadStoreNoUafNoLeak_Mcas) { check_load_store<mcas_dom>(501, 250); }
TEST(SimLfrcOps, LoadStoreNoUafNoLeak_IdealDcas) { check_load_store<ideal_dom>(502, 400); }

// Two racing LFRCDCASes on the same pair of fields: exactly one commits,
// both its words land together (both-or-neither), and the count bookkeeping
// of winner and loser leaves a drainable heap.
template <class D>
void check_dcas_both_or_neither(std::uint64_t seed, int schedules) {
    struct shared_t {
        typename D::template ptr_field<node<D>> A;
        typename D::template ptr_field<node<D>> B;
        node<D>* a0 = nullptr;
        node<D>* b0 = nullptr;
        node<D>* fresh[2][2] = {};
        bool won[2] = {};
    };
    const auto res = sim::explore(opts(seed, schedules), [](sim::env& e) {
        auto s = std::make_shared<shared_t>();
        {
            auto a = D::template make<node<D>>(1);
            auto b = D::template make<node<D>>(2);
            s->a0 = a.get();
            s->b0 = b.get();
            D::store(s->A, a);
            D::store(s->B, b);
        }
        for (int t = 0; t < 2; ++t) {
            e.spawn([s, t] {
                auto na = D::template make<node<D>>(10 + t);
                auto nb = D::template make<node<D>>(20 + t);
                s->fresh[t][0] = na.get();
                s->fresh[t][1] = nb.get();
                s->won[t] = D::dcas(s->A, s->B, s->a0, s->b0, na.get(), nb.get());
            });
        }
        e.on_quiesce([s] {
            if (s->won[0] == s->won[1]) {
                sim::fail_here("dcas-atomicity", "expected exactly one DCAS to commit");
                return;
            }
            const int w = s->won[0] ? 0 : 1;
            node<D>* const a_now = s->A.exclusive_get();
            node<D>* const b_now = s->B.exclusive_get();
            if (a_now != s->fresh[w][0] || b_now != s->fresh[w][1]) {
                sim::fail_here("dcas-atomicity", "winner's words did not land together");
                return;
            }
            // Bookkeeping: the shared fields hold the only remaining count.
            if (a_now->ref_count() != 1 || b_now->ref_count() != 1) {
                sim::fail_here("refcount", "post-DCAS count is not the field's single +1");
                return;
            }
            D::store(s->A, static_cast<node<D>*>(nullptr));
            D::store(s->B, static_cast<node<D>*>(nullptr));
            expect_quiesced_drain();
        });
    });
    EXPECT_CLEAN(res);
}

TEST(SimLfrcOps, DcasBothOrNeither_Mcas) { check_dcas_both_or_neither<mcas_dom>(601, 200); }
TEST(SimLfrcOps, DcasBothOrNeither_IdealDcas) {
    check_dcas_both_or_neither<ideal_dom>(602, 400);
}

// The §2 motivating race, on the CORRECT operation: LFRCLoad racing the
// final release (store null drops the only count). The DCAS in load must
// never resurrect the dead object — no schedule may produce a UAF or a
// double retire.
template <class D>
void check_load_vs_final_release(std::uint64_t seed, int schedules) {
    struct shared_t {
        typename D::template ptr_field<node<D>> field;
    };
    const auto res = sim::explore(opts(seed, schedules), [](sim::env& e) {
        auto s = std::make_shared<shared_t>();
        D::store_alloc(s->field, D::template make<node<D>>(42));
        e.spawn("loader", [s] {
            typename D::template local_ptr<node<D>> got;
            D::load(s->field, got);
            if (got && got->value != 42) sim::fail_here("corrupt", "payload changed");
        });
        e.spawn("releaser", [s] {
            D::store(s->field, static_cast<node<D>*>(nullptr));
        });
        e.on_quiesce([] { expect_quiesced_drain(); });
    });
    EXPECT_CLEAN(res);
}

TEST(SimLfrcOps, LoadVsFinalRelease_Mcas) { check_load_vs_final_release<mcas_dom>(701, 400); }
TEST(SimLfrcOps, LoadVsFinalRelease_IdealDcas) {
    check_load_vs_final_release<ideal_dom>(702, 600);
}

}  // namespace
