// Model checks for lfrc::store::kv_store — get/put/erase/cas racing on ONE
// shard (config{1,1}: a single bucket list, so every interleaving collides).
// The wall-clock churn test in tests/test_store.cpp hopes to hit these
// interleavings; here they are explored deterministically. Total budget
// across this file stays within the CI quick cell's reach (~1700 schedules;
// the LFRC_SIM_SCHEDULES cap shrinks it further).
//
// The store takes time as explicit now_ns parameters precisely so these
// tests are deterministic: no schedule ever reads a clock.
#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "sim_test_support.hpp"
#include "store/store.hpp"

namespace {

using namespace sim_tests;

template <class D>
using store_t = lfrc::store::kv_store<D, int, int>;

template <class D>
std::shared_ptr<store_t<D>> one_shard_store() {
    return std::make_shared<store_t<D>>(typename store_t<D>::config{1, 1});
}

// Two puts race a borrowed get on the same key: the get sees nothing or a
// put value (never garbage), quiescent state holds exactly one of the two
// values, and the graceful drain reaches zero.
template <class D>
void check_put_put_get(std::uint64_t seed, int schedules) {
    const auto res = sim::explore(opts(seed, schedules), [](sim::env& e) {
        auto s = one_shard_store<D>();
        e.spawn("put-a", [s] { s->put(1, 100); });
        e.spawn("put-b", [s] { s->put(1, 200); });
        e.spawn("get", [s] {
            const auto got = s->get(1);
            if (got && *got != 100 && *got != 200) {
                sim::fail_here("store-invariant", "get returned a value no put wrote");
            }
        });
        e.on_quiesce([s] {
            const auto final = s->get(1);
            if (!final || (*final != 100 && *final != 200)) {
                sim::fail_here("store-invariant", "quiescent value is not a put value");
            }
            if (s->drain() != 0) {
                sim::fail_here("residual-pending", "store drain left deferred frees");
            }
            expect_quiesced_drain();
        });
    });
    EXPECT_CLEAN(res);
}

TEST(SimStore, PutPutGet_Mcas) { check_put_put_get<mcas_dom>(7001, 300); }

// put races erase on a key with NO prior value — the lost-update detector
// for the dead-entry recheck. Sequentially, erase-before-put leaves the key
// present and returns false (nothing to remove); put-before-erase leaves it
// absent with erase true. The illegal outcome a missing recheck produces:
// the put lands in the just-unlinked entry, the key reads absent, and erase
// still reports false — an update lost with no erase to justify it.
template <class D>
void check_put_vs_erase_lost_update(std::uint64_t seed, int schedules) {
    const auto res = sim::explore(opts(seed, schedules), [](sim::env& e) {
        auto s = one_shard_store<D>();
        auto erased = std::make_shared<bool>(false);
        e.spawn("put", [s] { s->put(1, 42); });
        e.spawn("erase", [s, erased] { *erased = s->erase(1); });
        e.spawn("get", [s] {
            const auto got = s->get(1);
            if (got && *got != 42) {
                sim::fail_here("store-invariant", "get saw a value no put wrote");
            }
        });
        e.on_quiesce([s, erased] {
            const bool present = s->get(1).has_value();
            if (!present && !*erased) {
                sim::fail_here("store-invariant",
                               "put vanished without a user-visible erase "
                               "(dead-entry recheck failed)");
            }
            if (present && s->get(1).value_or(0) != 42) {
                sim::fail_here("store-invariant", "surviving value corrupted");
            }
            if (s->drain() != 0) {
                sim::fail_here("residual-pending", "store drain left deferred frees");
            }
            expect_quiesced_drain();
        });
    });
    EXPECT_CLEAN(res);
}

TEST(SimStore, PutVsEraseLostUpdate_Mcas) {
    check_put_vs_erase_lost_update<mcas_dom>(7101, 400);
}
TEST(SimStore, PutVsEraseLostUpdate_IdealDcas) {
    check_put_vs_erase_lost_update<ideal_dom>(7102, 400);
}

// Two cas() calls from the SAME witnessed version: exactly one may win (the
// LL/SC version cell is the arbiter), and the final value must be the
// winner's. A borrowed get rides along to keep the read path in the race.
template <class D>
void check_cas_single_winner(std::uint64_t seed, int schedules) {
    const auto res = sim::explore(opts(seed, schedules), [](sim::env& e) {
        auto s = one_shard_store<D>();
        s->put(1, 7);
        const auto base = s->get_versioned(1);
        auto won = std::make_shared<std::array<bool, 2>>();
        e.spawn("cas-a", [s, won, base] { (*won)[0] = s->cas(1, base.version, 100); });
        e.spawn("cas-b", [s, won, base] { (*won)[1] = s->cas(1, base.version, 200); });
        e.spawn("get", [s] {
            const auto got = s->get(1);
            if (got && *got != 7 && *got != 100 && *got != 200) {
                sim::fail_here("store-invariant", "get saw an impossible value");
            }
        });
        e.on_quiesce([s, won] {
            if ((*won)[0] && (*won)[1]) {
                sim::fail_here("store-invariant", "both cas calls claimed the same version");
            }
            if (!(*won)[0] && !(*won)[1]) {
                sim::fail_here("store-invariant",
                               "no writer intervened, yet neither cas won");
            }
            const int expect = (*won)[0] ? 100 : 200;
            if (s->get(1).value_or(-1) != expect) {
                sim::fail_here("store-invariant", "final value is not the cas winner's");
            }
            if (s->drain() != 0) {
                sim::fail_here("residual-pending", "store drain left deferred frees");
            }
            expect_quiesced_drain();
        });
    });
    EXPECT_CLEAN(res);
}

TEST(SimStore, CasSingleWinner_Mcas) { check_cas_single_winner<mcas_dom>(7201, 300); }

// Two readers race the lazy expiry of the same TTL'd value: the version-tied
// clear fires at most once, the dead mortal value is never served, and a put
// racing the expiry can never be clobbered by it (the sc from the stale
// version fails). A reader CAN legitimately see 9 — the racing immortal put.
template <class D>
void check_lazy_expiry_race(std::uint64_t seed, int schedules) {
    const auto res = sim::explore(opts(seed, schedules), [](sim::env& e) {
        auto s = one_shard_store<D>();
        s->put(1, 5, /*ttl_ns=*/100, /*now_ns=*/0);  // expires at 100
        e.spawn("r0", [s] {
            if (s->get(1, /*now_ns=*/500).value_or(9) != 9) {
                sim::fail_here("store-invariant", "expired value served");
            }
        });
        e.spawn("r1", [s] {
            if (s->get(1, /*now_ns=*/500).value_or(9) != 9) {
                sim::fail_here("store-invariant", "expired value served");
            }
        });
        e.spawn("put", [s] { s->put(1, 9); });  // immortal overwrite
        e.on_quiesce([s] {
            // The racing put must survive: either it overwrote the mortal
            // value (expiry then failed its sc) or it landed after the
            // clear. Its value can never be lost to the expiry path.
            if (s->get(1, 1000).value_or(-1) != 9) {
                sim::fail_here("store-invariant", "lazy expiry clobbered a fresh put");
            }
            if (s->stats().expired > 1) {
                sim::fail_here("store-invariant", "expiry cleared more than once");
            }
            if (s->drain() != 0) {
                sim::fail_here("residual-pending", "store drain left deferred frees");
            }
            expect_quiesced_drain();
        });
    });
    EXPECT_CLEAN(res);
}

TEST(SimStore, LazyExpiryRace_Mcas) { check_lazy_expiry_race<mcas_dom>(7301, 300); }

}  // namespace
