// Harness self-tests: the scheduler, determinism contract, and each shadow-
// heap detector — exercised on tiny synthetic programs before any LFRC code
// is trusted to the harness.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "alloc/counted.hpp"
#include "sim/sim.hpp"
#include "sim_test_support.hpp"
#include "util/spin_barrier.hpp"

namespace {

using namespace sim_tests;

// A managed blob with one instrumented word: the smallest thing the shadow
// heap tracks and the scheduler steps through.
struct blob : lfrc::alloc::counted_base {
    sim::atomic<std::uint64_t> word{0};
};

TEST(SimScheduler, RunsEveryVirtualThreadToCompletion) {
    auto res = sim::explore(opts(101, 50), [](sim::env& e) {
        auto sum = std::make_shared<sim::atomic<std::uint64_t>>();
        for (int t = 0; t < 3; ++t) {
            e.spawn([sum, t] {
                for (int i = 0; i <= t; ++i) sum->fetch_add(1);
            });
        }
        e.on_quiesce([sum] {
            if (sum->load() != 1 + 2 + 3) {
                sim::fail_here("lost-thread", "not every virtual thread ran to the end");
            }
        });
    });
    EXPECT_CLEAN(res);
    EXPECT_EQ(res.schedules_run, 50);
}

TEST(SimScheduler, SameSeedSameTrace) {
    const auto build = [](sim::env& e) {
        auto w = std::make_shared<sim::atomic<std::uint64_t>>();
        e.spawn([w] { for (int i = 0; i < 8; ++i) w->fetch_add(1); });
        e.spawn([w] { for (int i = 0; i < 8; ++i) w->fetch_add(2); });
    };
    const auto a = sim::explore(opts(2024, 40), build);
    const auto b = sim::explore(opts(2024, 40), build);
    EXPECT_CLEAN(a);
    // The determinism contract: equal seeds -> identical schedule choice
    // sequences, step counts and all.
    EXPECT_EQ(a.trace_fingerprint, b.trace_fingerprint);
    EXPECT_EQ(a.total_steps, b.total_steps);

    const auto c = sim::explore(opts(2025, 40), build);
    EXPECT_CLEAN(c);
    EXPECT_NE(a.trace_fingerprint, c.trace_fingerprint)
        << "different base seeds explored identical schedule sequences";
}

// The classic two-thread lost update (read-modify-write torn across an
// interleaving) must be found, and the reported seed must reproduce it.
TEST(SimScheduler, FindsLostUpdateAndReplaysIt) {
    const auto build = [](sim::env& e) {
        auto w = std::make_shared<sim::atomic<std::uint64_t>>();
        for (int t = 0; t < 2; ++t) {
            e.spawn([w] {
                const std::uint64_t v = w->load();  // racy increment
                w->store(v + 1);
            });
        }
        e.on_quiesce([w] {
            if (w->load() != 2) sim::fail_here("lost-update", "increment vanished");
        });
    };
    const auto res = sim::explore(opts(7, 500), build);
    ASSERT_TRUE(res.failed) << "explorer missed the textbook lost update";
    EXPECT_EQ(res.kind, "lost-update");
    EXPECT_LT(res.schedules_run, 500) << "should stop at the first violation";

    const auto again = sim::replay(res.failing_seed, opts(7, 1), build);
    EXPECT_TRUE(again.failed) << "failing seed did not reproduce";
    EXPECT_EQ(again.kind, "lost-update");
}

TEST(SimScheduler, ShadowHeapFlagsUseAfterFree) {
    const auto res = sim::explore(opts(31, 200), [](sim::env& e) {
        blob* b = new blob;  // tracked: build runs inside the schedule
        e.spawn("reader", [b] {
            for (int i = 0; i < 6; ++i) (void)b->word.load();
        });
        e.spawn("freer", [b] {
            b->word.store(1);
            delete b;
        });
    });
    ASSERT_TRUE(res.failed);
    EXPECT_EQ(res.kind, "use-after-free") << res.report;
}

TEST(SimScheduler, ShadowHeapFlagsDoubleFree) {
    const auto res = sim::explore(opts(32, 1), [](sim::env& e) {
        blob* b = new blob;
        e.spawn([b] {
            delete b;
            delete b;  // deliberate
        });
    });
    ASSERT_TRUE(res.failed);
    EXPECT_EQ(res.kind, "double-free") << res.report;
}

TEST(SimScheduler, ShadowHeapFlagsLeaks) {
    const auto res = sim::explore(opts(33, 1), [](sim::env& e) {
        blob* b = new blob;
        e.spawn([b] { b->word.store(7); });  // never freed
    });
    ASSERT_TRUE(res.failed);
    EXPECT_EQ(res.kind, "leak") << res.report;
}

TEST(SimScheduler, StepBudgetCatchesLivelock) {
    const auto res = sim::explore(opts(34, 1, /*max_steps=*/2000), [](sim::env& e) {
        auto w = std::make_shared<sim::atomic<std::uint64_t>>();
        e.spawn([w] {
            while (w->load() == 0) {
            }  // nobody ever stores: spins forever
        });
    });
    ASSERT_TRUE(res.failed);
    EXPECT_EQ(res.kind, "schedule-budget-exceeded") << res.report;
}

// spin_barrier's wait loop must hand control back to the scheduler (the
// satellite fix in util/spin_barrier.hpp) — even under a preemption bound of
// zero, where only *voluntary* yields can unwedge a waiting fiber.
TEST(SimScheduler, SpinBarrierCooperatesWithScheduler) {
    auto o = opts(35, 50, /*max_steps=*/50000);
    o.preemption_bound = 0;
    const auto res = sim::explore(o, [](sim::env& e) {
        auto bar = std::make_shared<lfrc::util::spin_barrier>(2);
        auto after = std::make_shared<sim::atomic<std::uint64_t>>();
        for (int t = 0; t < 2; ++t) {
            e.spawn([bar, after] {
                bar->arrive_and_wait();
                after->fetch_add(1);
            });
        }
        e.on_quiesce([after] {
            if (after->load() != 2) sim::fail_here("barrier", "a party never got past");
        });
    });
    EXPECT_CLEAN(res);
}

// Bounded exploration still finds the lost update (it needs only one
// preemption) and charges fewer context switches doing it.
TEST(SimScheduler, PreemptionBoundedExplorationWorks) {
    auto o = opts(36, 500);
    o.preemption_bound = 2;
    const auto res = sim::explore(o, [](sim::env& e) {
        auto w = std::make_shared<sim::atomic<std::uint64_t>>();
        for (int t = 0; t < 2; ++t) {
            e.spawn([w] {
                const std::uint64_t v = w->load();
                w->store(v + 1);
            });
        }
        e.on_quiesce([w] {
            if (w->load() != 2) sim::fail_here("lost-update", "increment vanished");
        });
    });
    ASSERT_TRUE(res.failed);
    EXPECT_EQ(res.kind, "lost-update");
}

}  // namespace
