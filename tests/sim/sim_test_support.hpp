// Shared pieces for the schedule-exploration test suite (tests/sim).
#pragma once

#include <gtest/gtest.h>

#include "lfrc/lfrc.hpp"
#include "sim/sim.hpp"

namespace sim_tests {

namespace sim = lfrc::sim;

/// The real domain under the shim: MCAS-emulated DCAS, every cell and
/// descriptor-status access a scheduler step. Fine-grained — finds races in
/// the emulation as well as in LFRC itself.
using mcas_dom = lfrc::domain;

/// LFRC on the paper's assumed hardware DCAS (one atomic step). Far fewer
/// steps per operation, so schedule spaces are denser in algorithm-level
/// interleavings; use it for container-level checks.
using ideal_dom = lfrc::basic_domain<sim::ideal_dcas_engine>;

/// Deterministic per-test exploration options. gtest tests pass an explicit
/// base seed so one test's schedule count never shifts another's sequence.
inline sim::options opts(std::uint64_t seed, int schedules,
                         std::uint64_t max_steps = 200000) {
    sim::options o;
    o.seed = seed;
    o.schedules = schedules;
    o.max_steps = max_steps;
    return o;
}

/// Quiesce helper: flush deferred frees and report a model violation if the
/// epoch domain cannot reach zero with every virtual thread finished.
inline void expect_quiesced_drain() {
    const std::uint64_t residual = lfrc::flush_deferred_frees(64);
    if (residual != 0) {
        sim::fail_here("residual-pending",
                       "flush_deferred_frees left pending frees at quiescence");
    }
}

}  // namespace sim_tests

#define EXPECT_CLEAN(res)                                                         \
    EXPECT_FALSE((res).failed) << (res).kind << "\n"                              \
                               << (res).report << "\n(schedules run: "            \
                               << (res).schedules_run << ")"
