// Model checks for the epoch-borrowed fast path (load_borrowed / promote)
// and for container-level races built on it — the interleavings the
// wall-clock stress tests can only hope to hit, explored exhaustively
// enough to trust.
#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "containers/lfrc_hash_set.hpp"
#include "lfrc_test_helpers.hpp"
#include "sim_test_support.hpp"

namespace {

using namespace sim_tests;

template <class D>
using node = lfrc_tests::test_node<D>;

// promote() racing the final release: the increment-if-nonzero CAS must
// either obtain a genuinely counted reference (object stays alive until the
// fiber drops it) or observe zero and return null — never resurrect. The
// borrow's epoch pin must keep the storage mapped throughout.
template <class D>
void check_promote_vs_final_release(std::uint64_t seed, int schedules) {
    struct shared_t {
        typename D::template ptr_field<node<D>> field;
    };
    const auto res = sim::explore(opts(seed, schedules), [](sim::env& e) {
        auto s = std::make_shared<shared_t>();
        D::store_alloc(s->field, D::template make<node<D>>(7));
        e.spawn("borrower", [s] {
            auto b = D::load_borrowed(s->field);
            if (!b) return;
            if (b->value != 7) sim::fail_here("corrupt", "borrowed payload changed");
            auto p = b.promote();
            b.reset();  // pin dropped; only the counted ref (if any) remains
            if (p && p->value != 7) sim::fail_here("corrupt", "promoted payload changed");
        });
        e.spawn("releaser", [s] {
            D::store(s->field, static_cast<node<D>*>(nullptr));
        });
        e.on_quiesce([] { expect_quiesced_drain(); });
    });
    EXPECT_CLEAN(res);
}

TEST(SimBorrow, PromoteVsFinalRelease_Mcas) {
    check_promote_vs_final_release<mcas_dom>(801, 400);
}
TEST(SimBorrow, PromoteVsFinalRelease_IdealDcas) {
    check_promote_vs_final_release<ideal_dom>(802, 600);
}

// hash-set erase uses promote() inside the bucket's unlink protocol; race
// two erasers of the same key against a borrowing reader and an inserter.
// Structural truth at quiescence + the harness's memory invariants.
template <class D>
void check_hash_set_races(std::uint64_t seed, int schedules) {
    using set_t = lfrc::containers::lfrc_hash_set<D, int>;
    const auto res = sim::explore(opts(seed, schedules), [](sim::env& e) {
        auto s = std::make_shared<set_t>(/*bucket_count=*/2);
        for (int k = 1; k <= 3; ++k) ASSERT_TRUE(s->insert(k));
        auto erased = std::make_shared<std::array<bool, 2>>();
        e.spawn("e0", [s, erased] { (*erased)[0] = s->erase(2); });
        e.spawn("e1", [s, erased] { (*erased)[1] = s->erase(2); });
        e.spawn("rw", [s] {
            (void)s->contains(2);  // may be either answer mid-race
            if (!s->contains(1)) sim::fail_here("set-invariant", "untouched key vanished");
            if (!s->insert(5)) sim::fail_here("set-invariant", "fresh key insert failed");
        });
        e.on_quiesce([s, erased] {
            if ((*erased)[0] == (*erased)[1]) {
                sim::fail_here("set-invariant", "key 2 erased twice (or zero times)");
            }
            if (s->contains(2)) sim::fail_here("set-invariant", "erased key still present");
            if (!s->contains(1) || !s->contains(3) || !s->contains(5)) {
                sim::fail_here("set-invariant", "surviving keys wrong at quiescence");
            }
            expect_quiesced_drain();
        });
    });
    EXPECT_CLEAN(res);
}

TEST(SimBorrow, HashSetEraseContainsInsert_Mcas) { check_hash_set_races<mcas_dom>(901, 150); }
TEST(SimBorrow, HashSetEraseContainsInsert_IdealDcas) {
    check_hash_set_races<ideal_dom>(902, 300);
}

// flush_deferred_frees residual accounting: with every virtual thread
// finished (nothing pinned), the flush must reach zero — asserted, not
// assumed, on every explored schedule.
TEST(SimBorrow, FlushResidualIsZeroAtQuiescence) {
    using D = mcas_dom;
    struct shared_t {
        typename D::template ptr_field<node<D>> field;
    };
    const auto res = sim::explore(opts(1001, 250), [](sim::env& e) {
        auto s = std::make_shared<shared_t>();
        for (int t = 0; t < 2; ++t) {
            e.spawn([s, t] {
                for (int i = 0; i < 2; ++i) {
                    D::store_alloc(s->field, D::template make<node<D>>(t * 10 + i));
                }
            });
        }
        e.on_quiesce([s] {
            D::store(s->field, static_cast<node<D>*>(nullptr));
            const std::uint64_t residual = lfrc::flush_deferred_frees(64);
            if (residual != 0) {
                sim::fail_here("residual-pending",
                               "deferred frees did not reach zero at full quiescence");
            }
        });
    });
    EXPECT_CLEAN(res);
}

}  // namespace
