// Model check for the net server's drain ordering (net::drain_gate +
// kv_store::drain), DESIGN.md §14.
//
// kv_store::drain() severs bucket chains with reset_chain — exclusive
// walks, direct deletes, no grace period. Its contract is "writers must be
// quiesced first", and drain_gate IS the server's proof of that: workers
// wrap request batches in begin_op/end_op, the drain side flips draining
// and waits for in-flight batches before touching the store. Here fibers
// stand in for the epoll workers and drive REAL store operations (ebr
// policy: its reset_chain frees immediately, so an ordering bug is a
// genuine use-after-free, not a masked refcount save) through the real
// gate, under exhaustive-ish schedule exploration.
//
// The mutant leg compiles drain_gate's seeded drain-ordering bug
// (mutate_skip_await: proceed to the teardown without waiting) and proves
// the shadow heap catches it at preemption_bound=1 — per the validation
// discipline for sim regression tests, the clean test is only trusted
// because this leg demonstrates the harness would have seen the bug.
#include <gtest/gtest.h>

#include <memory>

#include "net/drain_gate.hpp"
#include "sim_test_support.hpp"
#include "smr/smr.hpp"
#include "store/store.hpp"

namespace {

using namespace sim_tests;
using lfrc::net::drain_gate;

using ebr_store = lfrc::store::kv_store<lfrc::smr::ebr<>, int, int>;

// One shard, one bucket: every operation collides with the drain walk.
std::shared_ptr<ebr_store> tiny_store() {
    return std::make_shared<ebr_store>(ebr_store::config{1, 1});
}

/// The server's shutdown choreography, miniaturized. Two worker fibers run
/// gated put/erase batches; the drain fiber requests quiescence and then
/// tears the store down. `schedules` at `bound` preemptions.
sim::result run_drain_race(std::uint64_t seed, int schedules, int bound) {
    auto o = opts(seed, schedules);
    o.preemption_bound = bound;
    return sim::explore(o, [](sim::env& e) {
        auto s = tiny_store();
        auto gate = std::make_shared<drain_gate>();
        s->put(1, 10);
        s->put(2, 20);

        const auto worker = [s, gate](int base) {
            for (int i = 0; i < 2; ++i) {
                if (!gate->begin_op()) return;  // drain mode: stop touching
                s->put(base, base + i);         // the store, head for exit
                s->erase(base + 1);
                gate->end_op();
            }
        };
        e.spawn("worker-a", [worker] { worker(1); });
        e.spawn("worker-b", [worker] { worker(2); });
        e.spawn("drain", [s, gate] {
            gate->await_quiescent();
            if (s->drain() != 0) {
                sim::fail_here("residual-pending",
                               "quiesced store drain left deferred frees");
            }
        });
        e.on_quiesce([gate] {
            if (!gate->draining()) {
                sim::fail_here("net-drain", "drain fiber finished without draining");
            }
            expect_quiesced_drain();
        });
    });
}

// The real protocol: no schedule may corrupt memory or leave a residual.
TEST(SimNetDrain, GatedDrainIsExclusive) {
    drain_gate::mutate_skip_await().store(false);
    EXPECT_CLEAN(run_drain_race(8001, 400, /*bound=*/-1));
}

// Low-preemption leg: the two-context-switch window (worker admitted,
// drainer runs to completion, worker resumes) is reachable at bound 1 —
// the cheap cell every CI run can afford.
TEST(SimNetDrain, GatedDrainIsExclusiveBounded) {
    drain_gate::mutate_skip_await().store(false);
    EXPECT_CLEAN(run_drain_race(8002, 400, /*bound=*/1));
}

// Mutant validation: skip the await and the same workload must blow up —
// a worker parked inside put/erase resumes onto entries reset_chain has
// already freed. If the harness stops catching this, the clean tests
// above are vacuous.
TEST(SimNetDrain, SkipAwaitMutantCaughtAtBoundOne) {
    drain_gate::mutate_skip_await().store(true);
    const auto res = run_drain_race(8003, 400, /*bound=*/1);
    drain_gate::mutate_skip_await().store(false);
    EXPECT_TRUE(res.failed)
        << "drain-ordering mutant survived " << res.schedules_run
        << " schedules at preemption_bound=1 — the sim harness lost its "
           "ability to see the race this gate exists to prevent";
}

}  // namespace
