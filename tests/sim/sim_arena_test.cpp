// Model check for the arena's remote-free vs. local-pop race (DESIGN.md
// §15). The owner's single-block remote pop REUSES ITS PRE-CAS-READ `next`
// link, which is only sound because every successful head CAS advances the
// 32-bit ABA tag: a thief can steal the owner's whole chain, recycle a
// block, and push it back so the head shows the SAME index again — only the
// tag distinguishes the reborn head from the one the owner read.
//
// The fibers drive a REAL lfrc::alloc::arena (fresh instance per schedule,
// so freelists and tags are deterministic) through the narrowest version of
// that interleaving. A shared outstanding-set turns any double-allocation
// into an immediate sim failure.
//
// The mutant leg compiles the arena's seeded strip-the-tag bug
// (mutate_strip_arena_tag: head CASes stop advancing the tag) and proves
// this harness catches it at preemption_bound=1 — per the validation
// discipline, the clean tests are only trusted because this leg shows the
// harness would have seen the classic recycled-freelist ABA.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>

#include "alloc/arena.hpp"
#include "sim_test_support.hpp"
#include "util/sim_hook.hpp"
#include "util/thread_registry.hpp"

namespace {

using namespace sim_tests;
using lfrc::alloc::arena;

/// The owner's shard starts with a remote list [y -> x] (seeded through
/// unscheduled accesses so the preconditions cost no scheduler steps), then
/// two fibers collide on it:
///
///   owner  pops its own remote list twice — each pop pre-reads `next`
///          before the head CAS, the window under test;
///   thief  steals the whole chain (ABA-safe by construction), frees y
///          back home so the head shows index y AGAIN, and KEEPS x.
///
/// If the owner parks between its head read and its head CAS while all of
/// that interference lands, only the advanced tag makes the owner's CAS
/// fail; with the tag stripped the CAS succeeds against the reborn head,
/// installs the stale pre-read x as the new head, and the owner's second
/// pop re-issues the block the thief is holding — caught by the shared
/// outstanding-set. The whole interference fits in ONE charged preemption:
/// once the bound is spent, the scheduler must run the thief to completion
/// before the parked owner resumes.
sim::result run_arena_race(std::uint64_t seed, int schedules, int bound) {
    auto o = opts(seed, schedules);
    o.preemption_bound = bound;
    return sim::explore(o, [](sim::env& e) {
        auto a = std::make_shared<arena>();
        auto outstanding = std::make_shared<std::set<void*>>();
        const auto track = [outstanding](void* p) {
            if (!outstanding->insert(p).second) {
                sim::fail_here("arena-double-alloc",
                               "arena handed one block to two owners — the "
                               "remote head recurred and a stale pre-read "
                               "next survived the pop CAS");
            }
        };
        const auto untrack = [outstanding](void* p) { outstanding->erase(p); };

        auto seeded = std::make_shared<std::atomic<bool>>(false);
        constexpr std::size_t sz = 48;
        const std::size_t k =
            static_cast<std::size_t>(lfrc::alloc::arena_testing::klass_of(sz));

        e.spawn("owner", [=] {
            // Build this shard's remote list as [y -> x] with zero
            // scheduler steps; home is this fiber's registry slot.
            const std::size_t s = lfrc::util::thread_registry::instance().slot();
            lfrc::alloc::arena_testing::seed_remote_block(*a, k, s);  // x
            lfrc::alloc::arena_testing::seed_remote_block(*a, k, s);  // y
            seeded->store(true, std::memory_order_relaxed);
            // The racy window: each allocate pops our own remote list with
            // a pre-read `next`; the scheduler may park us between the
            // head read and the CAS while the thief interferes.
            void* p = a->allocate(sz);
            track(p);
            void* q = a->allocate(sz);
            track(q);
            untrack(q);
            a->deallocate(q, sz);
            untrack(p);
            a->deallocate(p, sz);
        });

        e.spawn("thief", [=] {
            // Plain-atomic spin + voluntary yields: waiting costs no
            // preemption budget.
            while (!seeded->load(std::memory_order_relaxed)) {
                lfrc::util::cooperative_yield();
            }
            // Interfere: steal the owner's whole chain, which magazines x
            // and returns y; push y back home (the head index recurs);
            // then take x out of the magazine and HOLD it.
            void* s1 = a->allocate(sz);
            track(s1);
            untrack(s1);
            a->deallocate(s1, sz);
            void* s2 = a->allocate(sz);
            track(s2);
            // s2 stays allocated: if the owner's stale CAS wins, the owner
            // re-issues this exact block and the set flags it.
        });

        e.on_quiesce([outstanding] {
            if (outstanding->size() != 1) {  // only the thief's held block
                sim::fail_here("arena-lost-block",
                               "churn finished with an unexpected number of "
                               "outstanding blocks");
            }
        });
    });
}

// The real protocol: no schedule may double-issue or lose a block.
TEST(SimArena, RemotePopSurvivesChainRecycling) {
    arena::mutate_strip_arena_tag().store(false);
    EXPECT_CLEAN(run_arena_race(9101, 400, /*bound=*/-1));
}

// Low-preemption leg: the whole interference fits inside one charged
// preemption (owner parked between head read and head CAS) — the cheap
// cell every CI run can afford.
TEST(SimArena, RemotePopSurvivesChainRecyclingBounded) {
    arena::mutate_strip_arena_tag().store(false);
    EXPECT_CLEAN(run_arena_race(9102, 400, /*bound=*/1));
}

// Mutant validation: freeze the tag and the same workload must blow up —
// the owner's parked pop CAS succeeds against the reborn head and installs
// its stale `next`, handing the thief's held block out a second time. If
// the harness stops catching this, the clean tests above are vacuous.
TEST(SimArena, StripTagMutantCaughtAtBoundOne) {
    arena::mutate_strip_arena_tag().store(true);
    const auto res = run_arena_race(9103, 400, /*bound=*/1);
    arena::mutate_strip_arena_tag().store(false);
    EXPECT_TRUE(res.failed)
        << "strip-the-tag mutant survived " << res.schedules_run
        << " schedules at preemption_bound=1 — the sim harness lost its "
           "ability to see the freelist ABA the tag exists to prevent";
}

}  // namespace
