// Small-bound model check of the §4 Snark deque, on the paper's ideal DCAS
// (one atomic step per primitive — dense algorithm-level schedule spaces).
//
// Two tiers, deliberately different:
//  * snark_deque_fixed (the value-claiming corrected variant): full multiset
//    semantics — every pushed value pops exactly once, plus the harness's
//    memory invariants.
//  * snark_deque (paper-faithful): MEMORY SAFETY ONLY. The underlying Snark
//    algorithm has the Doherty et al. double-pop bug (DESIGN.md §3) — a
//    SEMANTIC defect orthogonal to LFRC, so a schedule that returns one
//    value twice must not fail CI here; what LFRC promises (no UAF, no
//    double retire, no leak, quiescent drain) is still asserted on every
//    schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim_test_support.hpp"
#include "snark/snark_fixed.hpp"
#include "snark/snark_lfrc.hpp"

namespace {

using namespace sim_tests;

TEST(SimSnark, FixedDequeKeepsMultisetSemantics) {
    using deque_t = lfrc::snark::snark_deque_fixed<ideal_dom>;
    const auto res = sim::explore(opts(1101, 300), [](sim::env& e) {
        auto dq = std::make_shared<deque_t>();
        auto popped = std::make_shared<std::vector<std::uint64_t>>();
        e.spawn("pusher", [dq] {
            dq->push_right(1);
            dq->push_left(2);
            dq->push_right(3);
        });
        e.spawn("popper", [dq, popped] {
            for (int i = 0; i < 2; ++i) {
                if (auto v = dq->pop_left()) popped->push_back(*v);
            }
            if (auto v = dq->pop_right()) popped->push_back(*v);
        });
        e.on_quiesce([dq, popped] {
            while (auto v = dq->pop_left()) popped->push_back(*v);  // drain rest
            std::sort(popped->begin(), popped->end());
            if (*popped != std::vector<std::uint64_t>{1, 2, 3}) {
                sim::fail_here("deque-multiset",
                               "pushed {1,2,3} but drained a different multiset");
            }
            expect_quiesced_drain();
        });
    });
    EXPECT_CLEAN(res);
}

TEST(SimSnark, PaperSnarkIsMemorySafeUnderExploration) {
    using deque_t = lfrc::snark::snark_deque<ideal_dom, std::uint64_t>;
    const auto res = sim::explore(opts(1102, 300), [](sim::env& e) {
        auto dq = std::make_shared<deque_t>();
        e.spawn("pusher", [dq] {
            dq->push_right(1);
            dq->push_left(2);
        });
        e.spawn("popL", [dq] {
            (void)dq->pop_left();
            (void)dq->pop_left();
        });
        e.spawn("popR", [dq] { (void)dq->pop_right(); });
        // No value assertions (known Doherty double-pop, semantic only);
        // the harness still enforces every memory-level invariant.
        e.on_quiesce([] { expect_quiesced_drain(); });
    });
    EXPECT_CLEAN(res);
}

}  // namespace
