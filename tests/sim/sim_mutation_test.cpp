// Mutation self-test: the harness is only trustworthy if it actually FINDS
// the bug class it exists for. This suite compiles the deliberately broken
// LFRCLoad variant (domain.hpp, -DLFRC_ENABLE_MUTATIONS: plain CAS on the
// count word instead of the Figure-2 DCAS — the Valois-style flaw §2 of the
// paper uses to motivate DCAS) and requires the explorer to catch it within
// a bounded schedule budget, while the correct operation sails through the
// identical harness and budget.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "containers/stack_core.hpp"
#include "lfrc_test_helpers.hpp"
#include "sim_test_support.hpp"
#include "smr/counted.hpp"
#include "smr/manual.hpp"

namespace {

using namespace sim_tests;

using D = mcas_dom;
using node = lfrc_tests::test_node<D>;

struct shared_t {
    typename D::template ptr_field<node> field;
};

constexpr int k_budget = 3000;  // schedules the mutant must be caught within

// The §2 scenario: one loader racing the final release of the only shared
// reference. With the mutant, the loader can read *A, get descheduled while
// the releaser drops the count to zero and retires the object, then CAS the
// count 0 -> 1 — resurrecting a dead object. The loader's later release
// retires it a second time: the shadow heap reports the double free (or a
// use-after-free if the resurrected object's cells are touched after the
// first deferred free runs).
template <bool Mutated>
sim::result run_load_race(std::uint64_t seed, int schedules) {
    return sim::explore(opts(seed, schedules), [](sim::env& e) {
        auto s = std::make_shared<shared_t>();
        D::store_alloc(s->field, D::make<node>(7));
        e.spawn("loader", [s] {
            typename D::local_ptr<node> got;
            if constexpr (Mutated) {
                D::load_mutated_plain_cas(s->field, got);
            } else {
                D::load(s->field, got);
            }
            // `got` (if any) is released here — the mutant's double retire.
        });
        e.spawn("releaser", [s] {
            D::store(s->field, static_cast<node*>(nullptr));
        });
        e.on_quiesce([] { expect_quiesced_drain(); });
    });
}

TEST(SimMutation, PlainCasLoadMutantIsCaughtWithinBudget) {
    const auto res = run_load_race</*Mutated=*/true>(4242, k_budget);
    ASSERT_TRUE(res.failed)
        << "the seeded LFRCLoad bug survived " << k_budget
        << " schedules — the explorer lost its teeth";
    EXPECT_TRUE(res.kind == "double-free" || res.kind == "use-after-free")
        << "unexpected violation kind '" << res.kind << "'\n"
        << res.report;
    EXPECT_LE(res.schedules_run, k_budget);
}

TEST(SimMutation, FailingSeedReplaysDeterministically) {
    const auto found = run_load_race</*Mutated=*/true>(4242, k_budget);
    ASSERT_TRUE(found.failed);
    // Replaying the reported seed must reproduce the same violation kind on
    // the first and only schedule — the README recipe, in test form.
    const auto replayed = sim::replay(found.failing_seed, opts(4242, 1), [](sim::env& e) {
        auto s = std::make_shared<shared_t>();
        D::store_alloc(s->field, D::make<node>(7));
        e.spawn("loader", [s] {
            typename D::local_ptr<node> got;
            D::load_mutated_plain_cas(s->field, got);
        });
        e.spawn("releaser", [s] {
            D::store(s->field, static_cast<node*>(nullptr));
        });
        e.on_quiesce([] { expect_quiesced_drain(); });
    });
    EXPECT_TRUE(replayed.failed) << "failing seed " << found.failing_seed
                                 << " did not reproduce";
    EXPECT_EQ(replayed.kind, found.kind);
}

// The same flaw, but injected through the smr policy layer and hunted
// through the GENERIC stack core: smr::counted_mutated swaps the guard's
// protect() onto the plain-CAS load, so two poppers racing on the last
// node reproduce §2's resurrection (count 0 -> 1 on a retired object) and
// its double retire — proving the unified core did not dilute the
// explorer's reach into the policy's load discipline.
//
// Full container ops walk far more instrumented steps than the minimal
// load race above, so unbounded random scheduling dilutes the window;
// a CHESS-style preemption bound (sim::options docs) recovers it — the
// mutant falls within single-digit schedules at bound 3.
template <bool Mutated>
sim::result run_core_pop_race(std::uint64_t seed, int schedules) {
    using P = std::conditional_t<Mutated, lfrc::smr::counted_mutated<D>,
                                 lfrc::smr::counted<D>>;
    auto o = opts(seed, schedules);
    o.preemption_bound = 3;
    return sim::explore(o, [](sim::env& e) {
        auto st = std::make_shared<lfrc::containers::stack_core<int, P>>();
        st->push(7);
        e.spawn("popper-a", [st] { st->pop(); });
        e.spawn("popper-b", [st] { st->pop(); });
        e.on_quiesce([] { expect_quiesced_drain(); });
    });
}

TEST(SimMutation, PlainCasMutantCaughtThroughGenericCore) {
    const auto res = run_core_pop_race</*Mutated=*/true>(9090, k_budget);
    ASSERT_TRUE(res.failed)
        << "the plain-CAS guard mutant survived " << k_budget
        << " schedules through stack_core — the policy layer hid the bug";
    EXPECT_TRUE(res.kind == "double-free" || res.kind == "use-after-free")
        << "unexpected violation kind '" << res.kind << "'\n"
        << res.report;
}

TEST(SimMutation, CountedPolicyPassesTheSameCoreHarness) {
    const auto res = run_core_pop_race</*Mutated=*/false>(9090, k_budget);
    EXPECT_CLEAN(res);
}

// ---------------------------------------------------------------------------
// Dynamic twins of the lfrc_lint fixture mutants (tools/lfrc_lint/fixtures).
// The linter proves each discipline violation is caught STATICALLY; these
// runs prove the same mutants are dynamically fatal under the explorer —
// the rule set is the memory-safety boundary, not style. Each twin mirrors
// its fixture (r2_bad / r3_bad / r5_bad) and has a clean control that runs
// the identical harness without the mutation.

namespace smr = lfrc::smr;

template <typename P>
struct mut_node : P::template node_base<mut_node<P>> {
    typename P::template link<mut_node> next;
    int value = 0;

    mut_node() = default;
    explicit mut_node(int v) : value(v) {}

    static constexpr std::size_t smr_link_count = 1;
    template <typename F>
    void smr_children(F&& f) {
        f(next);
    }
};

template <typename P>
void mut_push(P& policy, typename P::template link<mut_node<P>>& head, int v) {
    auto nd = policy.template make_owner<mut_node<P>>(v);
    typename P::guard g(policy);
    for (;;) {
        g.step();
        mut_node<P>* h = g.protect(0, head);
        policy.init_link(nd->next, h);
        if (policy.cas_link(head, h, nd.get())) {
            policy.publish_ok(nd);
            return;
        }
    }
}

template <bool RetireOnLoss, typename P>
bool mut_pop(P& policy, typename P::template link<mut_node<P>>& head) {
    typename P::guard g(policy);
    for (;;) {
        g.step();
        mut_node<P>* h = g.protect(0, head);
        if (h == nullptr) return false;
        mut_node<P>* n = g.protect(1, h->next);
        if (!policy.cas_link(head, h, n)) {
            // The r3_bad mutation: the CAS LOSER also hands the node to the
            // reclaimer. Another popper unlinked it and retires it too.
            if constexpr (RetireOnLoss) policy.retire_unlinked(h);
            continue;
        }
        policy.retire_unlinked(h);
        return true;
    }
}

// R3 twin — fixtures/r3_bad.hpp pop_retire_loser, executed: two poppers
// race on one node; whichever loses the unlink CAS retires the winner's
// node a second time, and the shadow heap reports the double free when the
// epoch domain drains.
template <bool Mutated>
sim::result run_retire_loser_race(std::uint64_t seed, int schedules) {
    using P = smr::ebr<>;
    auto o = opts(seed, schedules);
    o.preemption_bound = 3;
    return sim::explore(o, [](sim::env& e) {
        struct state {
            P policy{};
            typename P::template link<mut_node<P>> head;
            ~state() { policy.reset_chain(head); }
        };
        auto s = std::make_shared<state>();
        mut_push(s->policy, s->head, 7);
        e.spawn("popper-a", [s] { mut_pop<Mutated>(s->policy, s->head); });
        e.spawn("popper-b", [s] { mut_pop<Mutated>(s->policy, s->head); });
        e.on_quiesce([s] {
            s->policy.drain(64);
            expect_quiesced_drain();
        });
    });
}

TEST(SimMutation, RetireOnLoserMutantIsCaughtWithinBudget) {
    const auto res = run_retire_loser_race</*Mutated=*/true>(1313, k_budget);
    ASSERT_TRUE(res.failed)
        << "the R3 retire-on-loser mutant survived " << k_budget
        << " schedules — retire-once discipline is not being enforced";
    EXPECT_TRUE(res.kind == "double-free" || res.kind == "use-after-free")
        << "unexpected violation kind '" << res.kind << "'\n"
        << res.report;
}

TEST(SimMutation, WinnerOnlyRetirePassesTheSameHarness) {
    const auto res = run_retire_loser_race</*Mutated=*/false>(1313, k_budget);
    EXPECT_CLEAN(res);
}

// R2 twin — fixtures/r2_bad.hpp remember_top, executed: a reader stores a
// guard-protected pointer into state that outlives the guard, then touches
// the node's link cell after the guard died. A racing popper retires and
// drains; the late touch is the use-after-free.
template <bool Mutated>
sim::result run_guard_escape_race(std::uint64_t seed, int schedules) {
    using P = smr::ebr<>;
    auto o = opts(seed, schedules);
    o.preemption_bound = 3;
    return sim::explore(o, [](sim::env& e) {
        struct state {
            P policy{};
            typename P::template link<mut_node<P>> head;
            mut_node<P>* escaped = nullptr;
            ~state() { policy.reset_chain(head); }
        };
        auto s = std::make_shared<state>();
        mut_push(s->policy, s->head, 7);
        e.spawn("reader", [s] {
            if constexpr (Mutated) {
                {
                    typename P::guard g(s->policy);
                    s->escaped = g.protect(0, s->head);  // the R2 escape
                }
                if (s->escaped != nullptr) {
                    (void)s->policy.peek(s->escaped->next);  // after the guard
                }
            } else {
                typename P::guard g(s->policy);
                mut_node<P>* h = g.protect(0, s->head);
                if (h != nullptr) (void)s->policy.peek(h->next);  // in scope
            }
        });
        e.spawn("popper", [s] {
            mut_pop</*RetireOnLoss=*/false>(s->policy, s->head);
            s->policy.drain(64);
        });
        e.on_quiesce([s] {
            s->policy.drain(64);
            expect_quiesced_drain();
        });
    });
}

TEST(SimMutation, GuardEscapeMutantIsCaughtWithinBudget) {
    const auto res = run_guard_escape_race</*Mutated=*/true>(2727, k_budget);
    ASSERT_TRUE(res.failed)
        << "the R2 guard-escape mutant survived " << k_budget
        << " schedules — protection is outliving its guard unnoticed";
    EXPECT_EQ(res.kind, "use-after-free") << res.report;
}

TEST(SimMutation, InScopeReadPassesTheSameHarness) {
    const auto res = run_guard_escape_race</*Mutated=*/false>(2727, k_budget);
    EXPECT_CLEAN(res);
}

// R5 twin — fixtures/r5_bad.hpp r5_paper_missing, executed: a node whose
// child enumeration omits one link. The counted unravel never visits the
// missing child, so its count never reaches zero: a structural leak the
// shadow heap reports at quiescence. Deterministic — one fiber, one
// schedule; no race is needed to lose memory this way.
template <bool Mutated>
struct pair_node : D::object {
    typename D::template ptr_field<pair_node> left;
    typename D::template ptr_field<pair_node> right;

    void lfrc_visit_children(typename D::child_visitor& v) noexcept override {
        v.on_child(left.exclusive_get());
        if constexpr (!Mutated) v.on_child(right.exclusive_get());
    }
};

template <bool Mutated>
sim::result run_missing_child(std::uint64_t seed) {
    auto o = opts(seed, 1);
    o.check_leaks = true;
    return sim::explore(o, [](sim::env& e) {
        e.spawn("owner", [] {
            using node_t = pair_node<Mutated>;
            auto parent = D::make<node_t>();
            D::store_alloc(parent->right, D::make<node_t>());
            // Both local_ptrs die here; the child is reachable only through
            // `right`, which the mutated enumeration never reports.
        });
        e.on_quiesce([] { expect_quiesced_drain(); });
    });
}

TEST(SimMutation, MissingChildMutantLeaksDeterministically) {
    const auto res = run_missing_child</*Mutated=*/true>(5151);
    ASSERT_TRUE(res.failed)
        << "the R5 missing-child mutant leaked nothing — child enumeration "
        << "is not what reclamation actually walks";
    EXPECT_EQ(res.kind, "leak") << res.report;
}

TEST(SimMutation, CompleteEnumerationPassesTheSameHarness) {
    const auto res = run_missing_child</*Mutated=*/false>(5151);
    EXPECT_CLEAN(res);
}

TEST(SimMutation, CorrectLoadPassesTheSameHarness) {
    const auto res = run_load_race</*Mutated=*/false>(4242, k_budget);
    EXPECT_CLEAN(res);
    // The clean run must exhaust the budget actually in force — the CI
    // quick cell shrinks it via LFRC_SIM_SCHEDULES (sim::explore docs).
    int expected = k_budget;
    if (const char* cap = std::getenv("LFRC_SIM_SCHEDULES")) {
        const long v = std::atol(cap);
        if (v > 0 && v < expected) expected = static_cast<int>(v);
    }
    EXPECT_EQ(res.schedules_run, expected);
}

}  // namespace
