// Mutation self-test: the harness is only trustworthy if it actually FINDS
// the bug class it exists for. This suite compiles the deliberately broken
// LFRCLoad variant (domain.hpp, -DLFRC_ENABLE_MUTATIONS: plain CAS on the
// count word instead of the Figure-2 DCAS — the Valois-style flaw §2 of the
// paper uses to motivate DCAS) and requires the explorer to catch it within
// a bounded schedule budget, while the correct operation sails through the
// identical harness and budget.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "containers/stack_core.hpp"
#include "lfrc_test_helpers.hpp"
#include "sim_test_support.hpp"
#include "smr/counted.hpp"

namespace {

using namespace sim_tests;

using D = mcas_dom;
using node = lfrc_tests::test_node<D>;

struct shared_t {
    typename D::template ptr_field<node> field;
};

constexpr int k_budget = 3000;  // schedules the mutant must be caught within

// The §2 scenario: one loader racing the final release of the only shared
// reference. With the mutant, the loader can read *A, get descheduled while
// the releaser drops the count to zero and retires the object, then CAS the
// count 0 -> 1 — resurrecting a dead object. The loader's later release
// retires it a second time: the shadow heap reports the double free (or a
// use-after-free if the resurrected object's cells are touched after the
// first deferred free runs).
template <bool Mutated>
sim::result run_load_race(std::uint64_t seed, int schedules) {
    return sim::explore(opts(seed, schedules), [](sim::env& e) {
        auto s = std::make_shared<shared_t>();
        D::store_alloc(s->field, D::make<node>(7));
        e.spawn("loader", [s] {
            typename D::local_ptr<node> got;
            if constexpr (Mutated) {
                D::load_mutated_plain_cas(s->field, got);
            } else {
                D::load(s->field, got);
            }
            // `got` (if any) is released here — the mutant's double retire.
        });
        e.spawn("releaser", [s] {
            D::store(s->field, static_cast<node*>(nullptr));
        });
        e.on_quiesce([] { expect_quiesced_drain(); });
    });
}

TEST(SimMutation, PlainCasLoadMutantIsCaughtWithinBudget) {
    const auto res = run_load_race</*Mutated=*/true>(4242, k_budget);
    ASSERT_TRUE(res.failed)
        << "the seeded LFRCLoad bug survived " << k_budget
        << " schedules — the explorer lost its teeth";
    EXPECT_TRUE(res.kind == "double-free" || res.kind == "use-after-free")
        << "unexpected violation kind '" << res.kind << "'\n"
        << res.report;
    EXPECT_LE(res.schedules_run, k_budget);
}

TEST(SimMutation, FailingSeedReplaysDeterministically) {
    const auto found = run_load_race</*Mutated=*/true>(4242, k_budget);
    ASSERT_TRUE(found.failed);
    // Replaying the reported seed must reproduce the same violation kind on
    // the first and only schedule — the README recipe, in test form.
    const auto replayed = sim::replay(found.failing_seed, opts(4242, 1), [](sim::env& e) {
        auto s = std::make_shared<shared_t>();
        D::store_alloc(s->field, D::make<node>(7));
        e.spawn("loader", [s] {
            typename D::local_ptr<node> got;
            D::load_mutated_plain_cas(s->field, got);
        });
        e.spawn("releaser", [s] {
            D::store(s->field, static_cast<node*>(nullptr));
        });
        e.on_quiesce([] { expect_quiesced_drain(); });
    });
    EXPECT_TRUE(replayed.failed) << "failing seed " << found.failing_seed
                                 << " did not reproduce";
    EXPECT_EQ(replayed.kind, found.kind);
}

// The same flaw, but injected through the smr policy layer and hunted
// through the GENERIC stack core: smr::counted_mutated swaps the guard's
// protect() onto the plain-CAS load, so two poppers racing on the last
// node reproduce §2's resurrection (count 0 -> 1 on a retired object) and
// its double retire — proving the unified core did not dilute the
// explorer's reach into the policy's load discipline.
//
// Full container ops walk far more instrumented steps than the minimal
// load race above, so unbounded random scheduling dilutes the window;
// a CHESS-style preemption bound (sim::options docs) recovers it — the
// mutant falls within single-digit schedules at bound 3.
template <bool Mutated>
sim::result run_core_pop_race(std::uint64_t seed, int schedules) {
    using P = std::conditional_t<Mutated, lfrc::smr::counted_mutated<D>,
                                 lfrc::smr::counted<D>>;
    auto o = opts(seed, schedules);
    o.preemption_bound = 3;
    return sim::explore(o, [](sim::env& e) {
        auto st = std::make_shared<lfrc::containers::stack_core<int, P>>();
        st->push(7);
        e.spawn("popper-a", [st] { st->pop(); });
        e.spawn("popper-b", [st] { st->pop(); });
        e.on_quiesce([] { expect_quiesced_drain(); });
    });
}

TEST(SimMutation, PlainCasMutantCaughtThroughGenericCore) {
    const auto res = run_core_pop_race</*Mutated=*/true>(9090, k_budget);
    ASSERT_TRUE(res.failed)
        << "the plain-CAS guard mutant survived " << k_budget
        << " schedules through stack_core — the policy layer hid the bug";
    EXPECT_TRUE(res.kind == "double-free" || res.kind == "use-after-free")
        << "unexpected violation kind '" << res.kind << "'\n"
        << res.report;
}

TEST(SimMutation, CountedPolicyPassesTheSameCoreHarness) {
    const auto res = run_core_pop_race</*Mutated=*/false>(9090, k_budget);
    EXPECT_CLEAN(res);
}

TEST(SimMutation, CorrectLoadPassesTheSameHarness) {
    const auto res = run_load_race</*Mutated=*/false>(4242, k_budget);
    EXPECT_CLEAN(res);
    // The clean run must exhaust the budget actually in force — the CI
    // quick cell shrinks it via LFRC_SIM_SCHEDULES (sim::explore docs).
    int expected = k_budget;
    if (const char* cap = std::getenv("LFRC_SIM_SCHEDULES")) {
        const long v = std::atol(cap);
        if (v > 0 && v < expected) expected = static_cast<int>(v);
    }
    EXPECT_EQ(res.schedules_run, expected);
}

}  // namespace
