// The failure-injection scenarios of tests/test_failure_injection.cpp,
// ported onto the sim scheduler: no wall-clock sleeps, no OS-scheduler
// luck — the "parked thread" is a fiber the schedule provably parks, and
// every claim about reclamation stalling is asserted against epoch
// arithmetic instead of timing.
#include <gtest/gtest.h>

#include <memory>

#include "lfrc_test_helpers.hpp"
#include "reclaim/epoch.hpp"
#include "sim_test_support.hpp"

namespace {

using namespace sim_tests;

using D = mcas_dom;
using node = lfrc_tests::test_node<D>;

// A fiber parked inside an epoch guard stalls reclamation (a pin at epoch e
// allows at most one advance, and retires need grace_epochs = 3) but never
// blocks the other fiber's operations — the worker runs to completion while
// the pin is held, synchronized purely by sim-visible flags.
TEST(SimFailureInjection, PinnedFiberStallsReclamationNotProgress) {
    struct shared_t {
        typename D::template ptr_field<node> field;
        sim::atomic<std::uint64_t> pinned{0};
        sim::atomic<std::uint64_t> release{0};
    };
    const auto res = sim::explore(opts(1201, 60), [](sim::env& e) {
        auto s = std::make_shared<shared_t>();
        e.spawn("stalled", [s] {
            lfrc::reclaim::epoch_domain::guard g(lfrc::reclaim::epoch_domain::global());
            s->pinned.store(1);
            while (s->release.load() == 0) {
            }  // every load is a scheduler step; no wall clock
        });
        e.spawn("worker", [s] {
            while (s->pinned.load() == 0) {
            }  // park until the pin is provably held
            for (int i = 0; i < 3; ++i) {
                D::store_alloc(s->field, D::make<node>(i));  // retires the old value
            }
            D::store(s->field, static_cast<node*>(nullptr));
            // Progress happened (we got here); reclamation must NOT have:
            // everything retired above needs 3 epoch advances, and the pin
            // allows at most one.
            if (lfrc::flush_deferred_frees(8) == 0) {
                sim::fail_here("epoch-invariant",
                               "drain freed everything past a live pin");
            }
            s->release.store(1);
        });
        e.on_quiesce([] { expect_quiesced_drain(); });  // pin lifted: reaches zero
    });
    EXPECT_CLEAN(res);
}

// A reader holding a counted reference into a chain pins exactly what it
// can reach: dereferencing through the held reference is UAF-safe on every
// schedule even while the other fiber severs the chain's head — and once
// both fibers drop their references, everything drains (harness leak check
// plus quiescent flush).
TEST(SimFailureInjection, HeldReferenceKeepsSubgraphDereferenceable) {
    struct shared_t {
        typename D::template ptr_field<node> head;
    };
    const auto res = sim::explore(opts(1301, 250), [](sim::env& e) {
        auto s = std::make_shared<shared_t>();
        {
            // head -> n2 -> n1 -> n0
            typename D::local_ptr<node> chain;
            for (int i = 0; i < 3; ++i) {
                auto nd = D::make<node>(i);
                D::store(nd->next, chain);
                chain = std::move(nd);
            }
            D::store(s->head, chain);
        }
        e.spawn("reader", [s] {
            typename D::local_ptr<node> cursor = D::load_get(s->head);
            typename D::local_ptr<node> tmp;
            while (cursor) {
                const auto v = cursor->value;  // must be safe on EVERY schedule
                if (v < 0 || v > 2) sim::fail_here("corrupt", "chain payload mangled");
                D::load(cursor->next, tmp);
                cursor = std::move(tmp);
            }
        });
        e.spawn("severer", [s] {
            D::store(s->head, static_cast<node*>(nullptr));
        });
        e.on_quiesce([] { expect_quiesced_drain(); });
    });
    EXPECT_CLEAN(res);
}

// The shadow heap's live-block gauge observes the paper's footnote-3
// limitation directly: a permanently leaked counted reference (the "failed
// thread") keeps exactly its object alive through a full drain, and the
// world recovers the moment the reference is destroyed.
TEST(SimFailureInjection, LeakedReferencePinsExactlyItsObject) {
    const auto res = sim::explore(opts(1401, 40), [](sim::env& e) {
        auto leaked = std::make_shared<node*>(nullptr);
        e.spawn("failed-thread", [leaked] {
            *leaked = D::make<node>(777).release();  // never destroyed by this fiber
        });
        e.spawn("worker", [] {
            typename D::ptr_field<node> mine;
            for (int i = 0; i < 3; ++i) D::store_alloc(mine, D::make<node>(i));
            D::store(mine, static_cast<node*>(nullptr));
        });
        e.on_quiesce([leaked] {
            if (lfrc::flush_deferred_frees(64) != 0) {
                sim::fail_here("residual-pending", "drain blocked with no pins held");
                return;
            }
            if (sim::live_managed_blocks() != 1) {
                sim::fail_here("leak-accounting",
                               "expected exactly the leaked reference's object to survive");
                return;
            }
            D::destroy(*leaked);  // the failed thread's subgraph, recovered
            expect_quiesced_drain();
        });
    });
    EXPECT_CLEAN(res);
}

}  // namespace
