// Tests for the LFRC hash set: set semantics across buckets, bucket
// dispatch stability, differential testing against std::set, concurrent
// conservation, and leak-freedom.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "containers/lfrc_hash_set.hpp"
#include "lfrc_test_helpers.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"

namespace {

using namespace lfrc;
using lfrc_tests::drain_epochs;

template <typename D>
class HashSetTest : public ::testing::Test {
  protected:
    using set_t = containers::lfrc_hash_set<D, std::int64_t>;
};

using Domains = ::testing::Types<domain, locked_domain>;
TYPED_TEST_SUITE(HashSetTest, Domains);

TYPED_TEST(HashSetTest, BasicSemantics) {
    typename TestFixture::set_t s{8};
    EXPECT_EQ(s.bucket_count(), 8u);
    EXPECT_FALSE(s.contains(1));
    EXPECT_TRUE(s.insert(1));
    EXPECT_FALSE(s.insert(1));
    EXPECT_TRUE(s.contains(1));
    EXPECT_TRUE(s.erase(1));
    EXPECT_FALSE(s.erase(1));
    EXPECT_EQ(s.size(), 0u);
}

TYPED_TEST(HashSetTest, SpreadsAcrossBucketsAndFindsEverything) {
    typename TestFixture::set_t s{16};
    constexpr std::int64_t n = 2000;
    for (std::int64_t k = 0; k < n; ++k) EXPECT_TRUE(s.insert(k));
    EXPECT_EQ(s.size(), static_cast<std::size_t>(n));
    for (std::int64_t k = 0; k < n; ++k) EXPECT_TRUE(s.contains(k));
    EXPECT_FALSE(s.contains(n));
    for (std::int64_t k = 0; k < n; k += 2) EXPECT_TRUE(s.erase(k));
    EXPECT_EQ(s.size(), static_cast<std::size_t>(n / 2));
    for (std::int64_t k = 0; k < n; ++k) EXPECT_EQ(s.contains(k), k % 2 == 1);
}

TYPED_TEST(HashSetTest, SingleBucketDegeneratesToList) {
    typename TestFixture::set_t s{1};
    for (std::int64_t k : {9, 1, 5, 3, 7}) EXPECT_TRUE(s.insert(k));
    EXPECT_EQ(s.size(), 5u);
    EXPECT_TRUE(s.erase(5));
    EXPECT_FALSE(s.contains(5));
}

TYPED_TEST(HashSetTest, MatchesStdSetOnRandomTape) {
    typename TestFixture::set_t s{32};
    std::set<std::int64_t> model;
    util::xoshiro256 rng{2024};
    for (int i = 0; i < 8000; ++i) {
        const auto key = static_cast<std::int64_t>(rng.below(500));
        switch (rng.below(3)) {
            case 0: ASSERT_EQ(s.insert(key), model.insert(key).second) << "op " << i; break;
            case 1: ASSERT_EQ(s.erase(key), model.erase(key) > 0) << "op " << i; break;
            default: ASSERT_EQ(s.contains(key), model.count(key) > 0) << "op " << i; break;
        }
    }
    EXPECT_EQ(s.size(), model.size());
}

TYPED_TEST(HashSetTest, ConcurrentInsertEraseBalance) {
    typename TestFixture::set_t s{16};
    constexpr int threads = 4;
    constexpr int key_space = 64;
    constexpr int iters = 3000;
    std::vector<std::atomic<int>> balance(key_space);
    for (auto& b : balance) b.store(0);
    util::spin_barrier barrier{threads};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            util::xoshiro256 rng{static_cast<std::uint64_t>(t) * 37 + 5};
            barrier.arrive_and_wait();
            for (int i = 0; i < iters; ++i) {
                const auto key = static_cast<std::int64_t>(rng.below(key_space));
                if (rng.below(2) == 0) {
                    if (s.insert(key)) balance[static_cast<std::size_t>(key)].fetch_add(1);
                } else {
                    if (s.erase(key)) balance[static_cast<std::size_t>(key)].fetch_sub(1);
                }
            }
        });
    }
    for (auto& t : pool) t.join();
    std::size_t expected_size = 0;
    for (int k = 0; k < key_space; ++k) {
        const int b = balance[static_cast<std::size_t>(k)].load();
        ASSERT_TRUE(b == 0 || b == 1) << "key " << k;
        EXPECT_EQ(s.contains(k), b == 1) << "key " << k;
        expected_size += static_cast<std::size_t>(b);
    }
    EXPECT_EQ(s.size(), expected_size);
}

TYPED_TEST(HashSetTest, NoLeaksAfterChurn) {
    using D = TypeParam;
    drain_epochs();
    const auto before = D::counters().snapshot();
    {
        typename TestFixture::set_t s{8};
        util::xoshiro256 rng{404};
        for (int i = 0; i < 6000; ++i) {
            const auto key = static_cast<std::int64_t>(rng.below(256));
            if (rng.below(2) == 0) {
                s.insert(key);
            } else {
                s.erase(key);
            }
        }
    }
    drain_epochs();
    const auto after = D::counters().snapshot();
    EXPECT_EQ(after.objects_created - before.objects_created,
              after.objects_destroyed - before.objects_destroyed);
}

TEST(HashSetStringKeys, WorksWithNonTrivialKeyType) {
    containers::lfrc_hash_set<domain, std::string> s{8};
    EXPECT_TRUE(s.insert("alpha"));
    EXPECT_TRUE(s.insert("beta"));
    EXPECT_FALSE(s.insert("alpha"));
    EXPECT_TRUE(s.contains("beta"));
    EXPECT_TRUE(s.erase("alpha"));
    EXPECT_FALSE(s.contains("alpha"));
    EXPECT_EQ(s.size(), 1u);
}

}  // namespace
