// Failure-injection tests: the progress/memory trade-offs the paper and
// DESIGN.md promise, demonstrated under adversarial scheduling —
//  * a thread parked inside an engine operation's critical section delays
//    reclamation (memory grows) but never blocks other threads' operations;
//  * a thread holding counted references pins exactly the objects it can
//    reach, and everything collapses the moment it lets go;
//  * a permanently "leaked" reference (paper footnote 3: a thread that
//    fails permanently) keeps its subgraph as unreclaimed garbage — the
//    documented limitation, not a crash.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "lfrc_test_helpers.hpp"
#include "reclaim/epoch.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace lfrc;
using lfrc_tests::drain_epochs;
using lfrc_tests::test_node;

// A thread parked inside an epoch guard stalls reclamation but not the
// progress of other threads' LFRC operations.
TEST(FailureInjection, PinnedThreadDoesNotBlockOperations) {
    using D = domain;
    using node = test_node<D>;
    auto& dom = reclaim::epoch_domain::global();

    std::atomic<bool> pinned{false}, release{false};
    std::thread stalled([&] {
        reclaim::epoch_domain::guard g(dom);
        pinned = true;
        while (!release.load()) std::this_thread::yield();
    });
    while (!pinned.load()) std::this_thread::yield();

    // Other threads keep completing operations while the pin is held.
    typename D::ptr_field<node> shared;
    constexpr int ops = 5000;
    util::stopwatch clock;
    for (int i = 0; i < ops; ++i) {
        auto fresh = D::make<node>(i);
        D::store(shared, fresh);
        auto got = D::load_get(shared);
        ASSERT_TRUE(got);
        ASSERT_EQ(got->value, i);
    }
    D::store(shared, static_cast<node*>(nullptr));
    EXPECT_LT(clock.elapsed_seconds(), 30.0) << "operations stalled behind the pin";

    // Reclamation, however, is stalled: pending grows.
    const auto pending_during = dom.pending();
    EXPECT_GT(pending_during, 0u);
    drain_epochs();
    EXPECT_GT(dom.pending(), 0u) << "drain must not free past an active pin";

    release = true;
    stalled.join();
    drain_epochs();
    EXPECT_EQ(dom.pending(), 0u) << "everything reclaimed once the pin lifted";
}

// A slow reader holding a counted reference into the middle of a chain pins
// the chain's tail (reference chains are reachable garbage), and the whole
// thing collapses on release.
TEST(FailureInjection, SlowReaderPinsExactlyItsSubgraph) {
    using D = domain;
    using node = test_node<D>;
    drain_epochs();
    const auto live_before = node::live().load();
    {
        // Build a chain head -> n1 -> ... -> n100.
        typename D::local_ptr<node> head;
        for (int i = 0; i < 100; ++i) {
            auto nd = D::make<node>(i);
            D::store(nd->next, head);
            head = std::move(nd);
        }
        // "Slow reader": clone a reference to node 50.
        typename D::local_ptr<node> cursor = head;
        typename D::local_ptr<node> tmp;
        for (int i = 0; i < 50; ++i) {
            D::load(cursor->next, tmp);
            cursor = tmp;
        }
        // Drop the head: the first 50 nodes are garbage, the last 50 pinned
        // by the reader's counted reference.
        head.reset();
        tmp.reset();
        drain_epochs();
        EXPECT_EQ(node::live().load(), live_before + 50)
            << "exactly the reader-reachable suffix must survive";
        ASSERT_TRUE(cursor);
        EXPECT_EQ(cursor->value, 49);  // values were assigned in reverse
        cursor.reset();
    }
    drain_epochs();
    EXPECT_EQ(node::live().load(), live_before);
}

// Footnote 3 of the paper: "it is possible for garbage to exist and never
// be freed in the case where a thread fails permanently." A leaked counted
// reference models the failed thread; its subgraph stays allocated, the
// rest of the system is unaffected.
TEST(FailureInjection, PermanentlyFailedThreadLeaksOnlyItsReferences) {
    using D = domain;
    using node = test_node<D>;
    drain_epochs();
    const auto live_before = node::live().load();

    // The "failed thread" acquires a reference and never releases it.
    node* leaked = D::make<node>(777).release();

    // Unrelated work proceeds and reclaims normally.
    {
        typename D::ptr_field<node> shared;
        for (int i = 0; i < 500; ++i) {
            D::store_alloc(shared, D::make<node>(i));
        }
        D::store(shared, static_cast<node*>(nullptr));
    }
    drain_epochs();
    EXPECT_EQ(node::live().load(), live_before + 1)
        << "only the failed thread's object survives";

    // Cleanup so later tests see a balanced world.
    D::destroy(leaked);
    drain_epochs();
    EXPECT_EQ(node::live().load(), live_before);
}

// Many short-lived threads churning one structure: thread slots and epoch
// records are recycled across thread lifetimes without corruption.
TEST(FailureInjection, ThreadChurnRecyclesSlotsSafely) {
    using D = domain;
    using node = test_node<D>;
    drain_epochs();
    const auto live_before = node::live().load();
    {
        typename D::ptr_field<node> shared;
        D::store_alloc(shared, D::make<node>(0));
        for (int wave = 0; wave < 20; ++wave) {
            std::vector<std::thread> pool;
            for (int t = 0; t < 4; ++t) {
                pool.emplace_back([&] {
                    typename D::local_ptr<node> mine;
                    for (int i = 0; i < 200; ++i) {
                        D::load(shared, mine);
                        auto fresh = D::make<node>(i);
                        D::cas(shared, mine.get(), fresh.get());
                    }
                });
            }
            for (auto& t : pool) t.join();
        }
        D::store(shared, static_cast<node*>(nullptr));
    }
    drain_epochs();
    EXPECT_EQ(node::live().load(), live_before);
}

}  // namespace
