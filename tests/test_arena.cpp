// Unit tests for lfrc::alloc::arena — size-class routing, magazine
// refill/return, remote-free draining, whole-chain stealing, ABA-tag
// wraparound, and the >max_payload system-heap fallback. Each test builds
// its own arena instance so counters and freelists start empty; the
// process-wide instance() behind counted_base is exercised by every other
// test in the suite.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "alloc/arena.hpp"
#include "alloc/slab.hpp"
#include "util/thread_registry.hpp"

namespace {

using namespace lfrc::alloc;

std::unique_ptr<arena> fresh_arena() { return std::make_unique<arena>(); }

std::size_t my_slot() { return lfrc::util::thread_registry::instance().slot(); }

TEST(ArenaRouting, SizeClassLookup) {
    EXPECT_EQ(arena_testing::klass_of(1), 0);
    EXPECT_EQ(arena_testing::klass_of(48), 0);
    EXPECT_EQ(arena_testing::klass_of(49), 1);
    EXPECT_EQ(arena_testing::klass_of(64), 1);
    EXPECT_EQ(arena_testing::klass_of(65), 2);
    EXPECT_EQ(arena_testing::klass_of(2048), 11);
    EXPECT_EQ(arena_testing::klass_of(2049), -1);  // system-heap route
}

TEST(ArenaRouting, HeaderStampedAtCarve) {
    auto a = fresh_arena();
    void* p = a->allocate(100);  // class 3 (<=128)
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(arena_testing::klass_field_of(p), 3);
    EXPECT_EQ(arena_testing::home_of(p), my_slot());
    // Payloads are 16-aligned behind the 16-byte header.
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
    a->deallocate(p, 100);
}

TEST(ArenaRouting, OversizeFallsBackToSystemHeap) {
    auto a = fresh_arena();
    const auto before = a->snapshot();
    void* p = a->allocate(4096);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xab, 4096);
    a->deallocate(p, 4096);
    const auto after = a->snapshot();
    EXPECT_EQ(after.fallback_allocs, before.fallback_allocs + 1);
    EXPECT_EQ(after.carved, before.carved);  // no slab involvement
}

TEST(ArenaMagazine, LifoRefillAndReturn) {
    auto a = fresh_arena();
    const std::size_t k = static_cast<std::size_t>(arena_testing::klass_of(64));
    const std::size_t s = my_slot();

    std::vector<void*> ps;
    for (int i = 0; i < 8; ++i) ps.push_back(a->allocate(64));
    EXPECT_EQ(arena_testing::magazine_size(*a, k, s), 0u);

    for (void* p : ps) a->deallocate(p, 64);
    EXPECT_EQ(arena_testing::magazine_size(*a, k, s), 8u);

    // Reallocation drains the magazine LIFO — the most recently freed
    // (cache-hot) block comes back first, and nothing new is carved.
    const auto carved_before = a->snapshot().carved;
    for (int i = 7; i >= 0; --i) {
        void* p = a->allocate(64);
        EXPECT_EQ(p, ps[static_cast<std::size_t>(i)]);
    }
    EXPECT_EQ(arena_testing::magazine_size(*a, k, s), 0u);
    EXPECT_EQ(a->snapshot().carved, carved_before);
    EXPECT_GE(a->snapshot().magazine_hits, 8u);
    for (void* p : ps) a->deallocate(p, 64);
}

TEST(ArenaMagazine, OverflowSpillsToOwnRemoteList) {
    auto a = fresh_arena();
    const std::size_t k = static_cast<std::size_t>(arena_testing::klass_of(48));
    const std::size_t s = my_slot();

    const std::size_t n = arena::magazine_cap + 8;
    std::vector<void*> ps;
    for (std::size_t i = 0; i < n; ++i) ps.push_back(a->allocate(48));
    for (void* p : ps) a->deallocate(p, 48);

    EXPECT_EQ(arena_testing::magazine_size(*a, k, s), arena::magazine_cap);
    EXPECT_NE(tagged_head::index_of(arena_testing::remote_head(*a, k, s)),
              tagged_head::null_index);

    // Everything is recycled: reallocating n blocks carves nothing fresh.
    const auto carved_before = a->snapshot().carved;
    const std::set<void*> freed(ps.begin(), ps.end());
    std::set<void*> seen;
    for (std::size_t i = 0; i < n; ++i) {
        void* p = a->allocate(48);
        EXPECT_TRUE(seen.insert(p).second) << "block handed out twice";
        EXPECT_TRUE(freed.count(p)) << "allocation bypassed the recycled set";
    }
    EXPECT_EQ(a->snapshot().carved, carved_before);
    for (void* p : seen) a->deallocate(p, 48);
}

TEST(ArenaRemote, CrossThreadFreeRoutesToHomeShard) {
    auto a = fresh_arena();
    const std::size_t k = static_cast<std::size_t>(arena_testing::klass_of(96));
    const std::size_t home = my_slot();

    std::vector<void*> ps;
    for (int i = 0; i < 16; ++i) ps.push_back(a->allocate(96));

    // A different thread frees them: every block must land on the HOME
    // shard's remote list (home is immutable), not the freeing thread's.
    std::thread([&] {
        EXPECT_NE(my_slot(), home);
        for (void* p : ps) a->deallocate(p, 96);
    }).join();

    EXPECT_NE(tagged_head::index_of(arena_testing::remote_head(*a, k, home)),
              tagged_head::null_index);

    // The home thread drains its own remote list one tagged pop at a time.
    const auto carved_before = a->snapshot().carved;
    std::set<void*> seen;
    for (int i = 0; i < 16; ++i) seen.insert(a->allocate(96));
    EXPECT_EQ(seen.size(), 16u);
    EXPECT_EQ(a->snapshot().carved, carved_before);
    EXPECT_GE(a->snapshot().remote_pops, 16u);
    for (void* p : seen) a->deallocate(p, 96);
}

TEST(ArenaRemote, EmptyShardStealsPeerChain) {
    auto a = fresh_arena();
    const std::size_t home = my_slot();

    std::vector<void*> ps;
    for (int i = 0; i < 12; ++i) ps.push_back(a->allocate(128));
    // Free from a peer thread so the blocks pile up on OUR remote list...
    std::thread([&] { for (void* p : ps) a->deallocate(p, 128); }).join();

    // ...then a third thread with nothing local steals the whole chain.
    std::set<void*> stolen;
    std::thread([&] {
        EXPECT_NE(my_slot(), home);
        for (int i = 0; i < 12; ++i) stolen.insert(a->allocate(128));
        for (void* p : stolen) a->deallocate(p, 128);
    }).join();

    EXPECT_EQ(stolen.size(), 12u);
    for (void* p : ps) EXPECT_TRUE(stolen.count(p)) << "steal missed a block";
    EXPECT_GE(a->snapshot().chain_steals, 1u);
    // Freeing from the thief routed the blocks straight back home.
    const std::size_t k = static_cast<std::size_t>(arena_testing::klass_of(128));
    EXPECT_NE(tagged_head::index_of(arena_testing::remote_head(*a, k, home)),
              tagged_head::null_index);
}

TEST(ArenaRemote, TagWrapsAroundCleanly) {
    auto a = fresh_arena();
    const std::size_t k = static_cast<std::size_t>(arena_testing::klass_of(192));
    const std::size_t s = my_slot();

    // Park the shard's ABA tag just below 2^32, then force remote-path
    // traffic through it: only equality matters, so wrap must be invisible.
    arena_testing::set_remote_tag(*a, k, s, 0xfffffffdu);

    const std::size_t n = arena::magazine_cap + 6;  // 6 frees overflow to remote
    std::vector<void*> ps;
    for (std::size_t i = 0; i < n; ++i) ps.push_back(a->allocate(192));
    for (void* p : ps) a->deallocate(p, 192);

    const std::uint32_t tag_after =
        tagged_head::tag_of(arena_testing::remote_head(*a, k, s));
    EXPECT_LT(tag_after, 0xfffffffdu);  // wrapped past zero

    const auto carved_before = a->snapshot().carved;
    std::set<void*> seen;
    for (std::size_t i = 0; i < n; ++i) {
        void* p = a->allocate(192);
        EXPECT_TRUE(seen.insert(p).second) << "block handed out twice";
    }
    EXPECT_EQ(a->snapshot().carved, carved_before);
    for (void* p : seen) a->deallocate(p, 192);
}

TEST(ArenaConcurrent, ProducerConsumerChurnIsLossless) {
    auto a = fresh_arena();
    constexpr int kThreads = 4;
    constexpr int kIters = 4000;

    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&] {
            std::vector<void*> held;
            held.reserve(8);
            for (int i = 0; i < kIters; ++i) {
                void* p = a->allocate(64);
                std::memset(p, 0x5a, 64);
                held.push_back(p);
                if (held.size() == 8) {
                    for (void* q : held) a->deallocate(q, 64);
                    held.clear();
                }
            }
            for (void* q : held) a->deallocate(q, 64);
        });
    }
    for (auto& t : ts) t.join();

    // Churn of 16k allocations reused a small working set: fresh carves are
    // bounded by transient magazine/remote imbalance, not by traffic.
    EXPECT_LE(a->snapshot().carved, 1024u);
    // Every allocation took exactly one of the four paths.
    const auto st = a->snapshot();
    EXPECT_EQ(st.magazine_hits + st.remote_pops + st.chain_steals + st.carved,
              static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
