// Tests for the toy stop-the-world mark-sweep collector (src/gc/heap.hpp):
// reachability semantics, root kinds, cycle collection, destructor runs,
// threshold triggering, and multi-threaded stop-the-world handshakes.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "gc/heap.hpp"

namespace {

using namespace lfrc;

struct leaf {
    static inline std::atomic<int> live{0};
    int value = 0;
    leaf() { live.fetch_add(1); }
    explicit leaf(int v) : value(v) { live.fetch_add(1); }
    ~leaf() { live.fetch_sub(1); }
    void gc_trace(gc::marker&) const {}
};

struct link {
    static inline std::atomic<int> live{0};
    link* next = nullptr;
    link() { live.fetch_add(1); }
    ~link() { live.fetch_sub(1); }
    void gc_trace(gc::marker& m) const { m.mark_ptr(next); }
};

TEST(GcHeap, UnreachableObjectCollected) {
    gc::heap h;
    gc::heap::attach_scope attach(h);
    const int before = leaf::live.load();
    h.allocate<leaf>(1);  // immediately unreachable
    EXPECT_EQ(leaf::live.load(), before + 1);
    h.collect_now();
    EXPECT_EQ(leaf::live.load(), before);
    EXPECT_EQ(h.live_objects(), 0u);
}

TEST(GcHeap, LocalRootKeepsObjectAlive) {
    gc::heap h;
    gc::heap::attach_scope attach(h);
    {
        gc::local<leaf> root(h, h.allocate<leaf>(7));
        h.collect_now();
        ASSERT_TRUE(root);
        EXPECT_EQ(root->value, 7);
        EXPECT_EQ(h.live_objects(), 1u);
    }
    h.collect_now();
    EXPECT_EQ(h.live_objects(), 0u);
}

TEST(GcHeap, GlobalRootProviderKeepsObjectAlive) {
    gc::heap h;
    gc::heap::attach_scope attach(h);
    leaf* pinned = h.allocate<leaf>(3);
    h.add_root([&](gc::marker& m) { m.mark_ptr(pinned); });
    h.collect_now();
    EXPECT_EQ(h.live_objects(), 1u);
    EXPECT_EQ(pinned->value, 3);
    pinned = nullptr;
    h.collect_now();
    EXPECT_EQ(h.live_objects(), 0u);
}

TEST(GcHeap, TracesTransitively) {
    gc::heap h;
    gc::heap::attach_scope attach(h);
    gc::local<link> head(h, h.allocate<link>());
    link* cur = head.get();
    for (int i = 0; i < 99; ++i) {
        cur->next = h.allocate<link>();
        cur = cur->next;
    }
    h.collect_now();
    EXPECT_EQ(h.live_objects(), 100u);
    head = nullptr;
    h.collect_now();
    EXPECT_EQ(h.live_objects(), 0u);
}

TEST(GcHeap, CollectsCycles) {
    // The capability LFRC lacks by design (paper §2: Cycle-Free Garbage
    // criterion); a tracing collector reclaims cycles effortlessly.
    gc::heap h;
    gc::heap::attach_scope attach(h);
    {
        gc::local<link> a(h, h.allocate<link>());
        gc::local<link> b(h, h.allocate<link>());
        a->next = b.get();
        b->next = a.get();  // 2-cycle
    }
    h.collect_now();
    EXPECT_EQ(h.live_objects(), 0u);

    gc::local<link> self(h, h.allocate<link>());
    self->next = self.get();  // self-cycle, like Snark's sentinels
    self = nullptr;
    h.collect_now();
    EXPECT_EQ(h.live_objects(), 0u);
}

TEST(GcHeap, ThresholdTriggersCollection) {
    gc::heap h{1024};  // tiny threshold
    gc::heap::attach_scope attach(h);
    for (int i = 0; i < 1000; ++i) h.allocate<leaf>(i);  // all garbage
    const auto s = h.stats();
    EXPECT_GT(s.collections, 0u);
    EXPECT_GT(s.objects_freed, 0u);
    EXPECT_LT(h.live_objects(), 1000u);
}

TEST(GcHeap, PausesAreRecorded) {
    gc::heap h;
    gc::heap::attach_scope attach(h);
    h.allocate<leaf>(1);
    h.collect_now();
    const auto s = h.stats();
    EXPECT_EQ(s.collections, 1u);
    EXPECT_EQ(s.pauses.count(), 1u);
    EXPECT_GT(s.max_pause_ns, 0u);
}

TEST(GcHeap, HeapDestructorFreesEverything) {
    const int before = leaf::live.load();
    {
        gc::heap h;
        gc::heap::attach_scope attach(h);
        gc::local<leaf> root(h, h.allocate<leaf>(1));
        h.allocate<leaf>(2);
        root = nullptr;
    }
    EXPECT_EQ(leaf::live.load(), before);
}

// Stop-the-world handshake: several mutators allocate and poll safepoints
// while one forces collections. Reachable objects must survive; the run
// must terminate (no lost wakeups / deadlocks).
TEST(GcHeap, StopTheWorldWithConcurrentMutators) {
    gc::heap h{16 * 1024};
    constexpr int mutators = 3;
    constexpr int iters = 3000;
    std::atomic<int> bad_value{0};
    std::vector<std::thread> pool;
    for (int t = 0; t < mutators; ++t) {
        pool.emplace_back([&, t] {
            gc::heap::attach_scope attach(h);
            gc::local<link> keep(h);
            for (int i = 0; i < iters; ++i) {
                h.safepoint();
                // Build a small chain rooted in `keep`, then drop it.
                keep = h.allocate<link>();
                keep->next = h.allocate<link>();
                gc::local<leaf> value(h, h.allocate<leaf>(t * 1000));
                if (value->value != t * 1000) bad_value.fetch_add(1);
                if ((i & 255) == 0) h.collect_now();
                keep = nullptr;
            }
        });
    }
    for (auto& t : pool) t.join();
    EXPECT_EQ(bad_value.load(), 0);
    gc::heap::attach_scope attach(h);
    h.collect_now();
    EXPECT_EQ(h.live_objects(), 0u);
}

}  // namespace
