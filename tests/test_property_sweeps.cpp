// Parameterized property sweeps: the core invariants (token conservation,
// model equivalence, leak-freedom) re-checked across a grid of seeds,
// thread counts, and operation mixes, on both engines. These are the
// "many cheap randomized runs" layer on top of the targeted suites.
#include <gtest/gtest.h>

#include <deque>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "containers/lfrc_list.hpp"
#include "containers/ms_queue.hpp"
#include "containers/treiber_stack.hpp"
#include "lfrc_test_helpers.hpp"
#include "snark/snark_lfrc.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"

namespace {

using namespace lfrc;
using lfrc_tests::drain_epochs;

enum class engine_kind { mcas, locked };

std::string engine_name(engine_kind k) {
    return k == engine_kind::mcas ? "mcas" : "locked";
}

// ---- Concurrent deque conservation sweep --------------------------------------

struct deque_sweep_params {
    engine_kind engine;
    int threads;
    int push_percent;  // bias of the mix
    std::uint64_t seed;
};

class DequeConservationSweep : public ::testing::TestWithParam<deque_sweep_params> {};

template <typename D>
void run_deque_conservation(const deque_sweep_params& p) {
    snark::snark_deque<D, std::int64_t> dq;
    constexpr int per_thread = 1500;
    const std::int64_t total = static_cast<std::int64_t>(p.threads) * per_thread;
    std::vector<std::atomic<int>> seen(static_cast<std::size_t>(total));
    for (auto& s : seen) s.store(0);
    util::spin_barrier barrier{static_cast<std::size_t>(p.threads)};
    std::vector<std::thread> pool;
    for (int t = 0; t < p.threads; ++t) {
        pool.emplace_back([&, t] {
            util::xoshiro256 rng{p.seed * 977 + static_cast<std::uint64_t>(t)};
            barrier.arrive_and_wait();
            std::int64_t next = static_cast<std::int64_t>(t) * per_thread;
            const std::int64_t limit = next + per_thread;
            while (next < limit) {
                if (rng.below(100) < static_cast<std::uint64_t>(p.push_percent)) {
                    if (rng.below(2) == 0) {
                        dq.push_left(next);
                    } else {
                        dq.push_right(next);
                    }
                    ++next;
                } else {
                    const auto got = rng.below(2) == 0 ? dq.pop_left() : dq.pop_right();
                    if (got) seen[static_cast<std::size_t>(*got)].fetch_add(1);
                }
            }
        });
    }
    for (auto& t : pool) t.join();
    while (auto got = dq.pop_left()) seen[static_cast<std::size_t>(*got)].fetch_add(1);
    for (std::int64_t i = 0; i < total; ++i) {
        ASSERT_EQ(seen[static_cast<std::size_t>(i)].load(), 1)
            << "engine=" << engine_name(p.engine) << " threads=" << p.threads
            << " push%=" << p.push_percent << " seed=" << p.seed << " token=" << i;
    }
}

TEST_P(DequeConservationSweep, EveryTokenExactlyOnce) {
    const auto& p = GetParam();
    if (p.engine == engine_kind::mcas) {
        run_deque_conservation<domain>(p);
    } else {
        run_deque_conservation<locked_domain>(p);
    }
}

std::vector<deque_sweep_params> deque_grid() {
    std::vector<deque_sweep_params> grid;
    for (engine_kind e : {engine_kind::mcas, engine_kind::locked}) {
        for (int threads : {2, 4}) {
            for (int push_percent : {52, 70}) {
                for (std::uint64_t seed : {1ull, 42ull}) {
                    grid.push_back({e, threads, push_percent, seed});
                }
            }
        }
    }
    return grid;
}

INSTANTIATE_TEST_SUITE_P(Grid, DequeConservationSweep, ::testing::ValuesIn(deque_grid()),
                         [](const auto& name_info) {
                             const auto& p = name_info.param;
                             return engine_name(p.engine) + "_t" +
                                    std::to_string(p.threads) + "_p" +
                                    std::to_string(p.push_percent) + "_s" +
                                    std::to_string(p.seed);
                         });

// ---- Sequential model sweeps (deque / stack / queue / set) --------------------

class SequentialModelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SequentialModelSweep, DequeMatchesStdDeque) {
    snark::snark_deque<domain, std::int64_t> dq;
    std::deque<std::int64_t> model;
    util::xoshiro256 rng{GetParam()};
    std::int64_t token = 0;
    for (int i = 0; i < 2500; ++i) {
        switch (rng.below(4)) {
            case 0: dq.push_left(token); model.push_front(token++); break;
            case 1: dq.push_right(token); model.push_back(token++); break;
            case 2: {
                auto got = dq.pop_left();
                if (model.empty()) {
                    ASSERT_FALSE(got.has_value());
                } else {
                    ASSERT_EQ(got, model.front());
                    model.pop_front();
                }
                break;
            }
            default: {
                auto got = dq.pop_right();
                if (model.empty()) {
                    ASSERT_FALSE(got.has_value());
                } else {
                    ASSERT_EQ(got, model.back());
                    model.pop_back();
                }
                break;
            }
        }
    }
}

TEST_P(SequentialModelSweep, StackMatchesVector) {
    containers::treiber_stack<domain, std::int64_t> st;
    std::vector<std::int64_t> model;
    util::xoshiro256 rng{GetParam() ^ 0xabcdef};
    for (int i = 0; i < 2500; ++i) {
        if (rng.below(2) == 0) {
            st.push(i);
            model.push_back(i);
        } else {
            auto got = st.pop();
            if (model.empty()) {
                ASSERT_FALSE(got.has_value());
            } else {
                ASSERT_EQ(got, model.back());
                model.pop_back();
            }
        }
    }
}

TEST_P(SequentialModelSweep, QueueMatchesStdDeque) {
    containers::ms_queue<domain, std::int64_t> q;
    std::deque<std::int64_t> model;
    util::xoshiro256 rng{GetParam() ^ 0x123456};
    for (int i = 0; i < 2500; ++i) {
        if (rng.below(2) == 0) {
            q.enqueue(i);
            model.push_back(i);
        } else {
            auto got = q.dequeue();
            if (model.empty()) {
                ASSERT_FALSE(got.has_value());
            } else {
                ASSERT_EQ(got, model.front());
                model.pop_front();
            }
        }
    }
}

TEST_P(SequentialModelSweep, ListSetMatchesStdSet) {
    containers::lfrc_list_set<domain, std::int64_t> s;
    std::set<std::int64_t> model;
    util::xoshiro256 rng{GetParam() ^ 0x777};
    for (int i = 0; i < 2500; ++i) {
        const auto key = static_cast<std::int64_t>(rng.below(48));
        switch (rng.below(3)) {
            case 0: ASSERT_EQ(s.insert(key), model.insert(key).second); break;
            case 1: ASSERT_EQ(s.erase(key), model.erase(key) > 0); break;
            default: ASSERT_EQ(s.contains(key), model.count(key) > 0); break;
        }
    }
    ASSERT_EQ(s.size(), model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SequentialModelSweep,
                         ::testing::Values(3u, 17u, 99u, 256u, 1024u, 4711u, 31337u,
                                           65537u));

// ---- Refcount ledger sweep -----------------------------------------------------

// After any quiescent workload: births + increments == decrements when
// everything is destroyed (the §1 "eventually reaches zero" invariant).
class LedgerSweep : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(LedgerSweep, BalancesAfterConcurrentChurn) {
    const auto [threads, seed] = GetParam();
    drain_epochs();
    const auto before = domain::counters().snapshot();
    {
        snark::snark_deque<domain, std::int64_t> dq;
        containers::treiber_stack<domain, std::int64_t> st;
        util::spin_barrier barrier{static_cast<std::size_t>(threads)};
        std::vector<std::thread> pool;
        for (int t = 0; t < threads; ++t) {
            pool.emplace_back([&, t] {
                util::xoshiro256 rng{seed + static_cast<std::uint64_t>(t) * 13};
                barrier.arrive_and_wait();
                for (int i = 0; i < 2000; ++i) {
                    switch (rng.below(6)) {
                        case 0: dq.push_left(i); break;
                        case 1: dq.push_right(i); break;
                        case 2: dq.pop_left(); break;
                        case 3: dq.pop_right(); break;
                        case 4: st.push(i); break;
                        default: st.pop(); break;
                    }
                }
            });
        }
        for (auto& t : pool) t.join();
    }
    drain_epochs();
    const auto after = domain::counters().snapshot();
    const auto created = after.objects_created - before.objects_created;
    const auto destroyed = after.objects_destroyed - before.objects_destroyed;
    const auto incs = after.increments - before.increments;
    const auto decs = after.decrements - before.decrements;
    EXPECT_EQ(created, destroyed);
    EXPECT_EQ(created + incs, decs);
}

INSTANTIATE_TEST_SUITE_P(Grid, LedgerSweep,
                         ::testing::Combine(::testing::Values(2, 4),
                                            ::testing::Values(7u, 77u, 777u)));

}  // namespace
