// lfrc::store::kv_store — sequential semantics, TTL expiry, version-cas
// conflict rules, graceful drain, and a concurrent churn test; plus the
// same store body under the manual smr policies (DESIGN.md §9/§10).
//
// Time never comes from a clock here: every expiry test passes explicit
// now_ns values, which is the store's own contract (sim determinism).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "lfrc/lfrc.hpp"
#include "store/store.hpp"
#include "store/workload.hpp"

namespace {

using namespace lfrc;

template <typename D>
class StoreTest : public ::testing::Test {
  protected:
    using store_t = store::kv_store<D, std::uint64_t, std::string>;

    void TearDown() override {
        EXPECT_EQ(flush_deferred_frees(64), 0u)
            << "a store test leaked an epoch pin or a counted reference";
    }
};

using Domains = ::testing::Types<domain, locked_domain>;
TYPED_TEST_SUITE(StoreTest, Domains);

TYPED_TEST(StoreTest, GetOfAbsentKeyMisses) {
    typename TestFixture::store_t s;
    EXPECT_FALSE(s.get(1).has_value());
    EXPECT_FALSE(s.get_counted(1).has_value());
    EXPECT_FALSE(s.erase(1));
    EXPECT_EQ(s.size(), 0u);
    EXPECT_EQ(s.drain(), 0u);
}

TYPED_TEST(StoreTest, PutGetOverwriteErase) {
    typename TestFixture::store_t s;
    s.put(7, "seven");
    EXPECT_EQ(s.get(7).value_or(""), "seven");
    EXPECT_EQ(s.get_counted(7).value_or(""), "seven");
    s.put(7, "SEVEN");  // overwrite in place
    EXPECT_EQ(s.get(7).value_or(""), "SEVEN");
    EXPECT_EQ(s.size(), 1u);
    EXPECT_TRUE(s.erase(7));
    EXPECT_FALSE(s.get(7).has_value());
    EXPECT_FALSE(s.erase(7)) << "double erase must miss";
    EXPECT_EQ(s.size(), 0u);
    EXPECT_EQ(s.drain(), 0u);
}

TYPED_TEST(StoreTest, KeysSpreadAcrossShardsIndependently) {
    typename TestFixture::store_t s(
        typename TestFixture::store_t::config{4, 8});
    EXPECT_EQ(s.shard_count(), 4u);
    for (std::uint64_t k = 0; k < 200; ++k) s.put(k, std::to_string(k));
    EXPECT_EQ(s.size(), 200u);
    for (std::uint64_t k = 0; k < 200; ++k) {
        ASSERT_EQ(s.get(k).value_or("?"), std::to_string(k)) << k;
    }
    for (std::uint64_t k = 0; k < 200; k += 2) EXPECT_TRUE(s.erase(k));
    EXPECT_EQ(s.size(), 100u);
    EXPECT_EQ(s.drain(), 0u);
}

TYPED_TEST(StoreTest, VersionsStartAtZeroAndAdvancePerWrite) {
    typename TestFixture::store_t s;
    auto v = s.get_versioned(1);
    EXPECT_FALSE(v.found);
    EXPECT_EQ(v.version, 0u) << "absent key reads as version 0";
    s.put(1, "a");
    const auto v1 = s.get_versioned(1);
    ASSERT_TRUE(v1.found);
    EXPECT_GT(v1.version, 0u);
    s.put(1, "b");
    const auto v2 = s.get_versioned(1);
    EXPECT_GT(v2.version, v1.version) << "every put bumps the slot version";
    EXPECT_EQ(s.drain(), 0u);
}

TYPED_TEST(StoreTest, CasSucceedsOnCurrentVersionOnly) {
    typename TestFixture::store_t s;
    // Create-if-absent: version 0 means "no value ever written".
    EXPECT_TRUE(s.cas(1, 0, "first"));
    EXPECT_EQ(s.get(1).value_or(""), "first");
    EXPECT_FALSE(s.cas(1, 0, "dup")) << "create-if-absent must fail when present";

    const auto v = s.get_versioned(1);
    ASSERT_TRUE(v.found);
    EXPECT_TRUE(s.cas(1, v.version, "second"));
    EXPECT_EQ(s.get(1).value_or(""), "second");
    EXPECT_FALSE(s.cas(1, v.version, "stale"))
        << "a cas from a superseded version must fail";
    EXPECT_EQ(s.get(1).value_or(""), "second");
    EXPECT_EQ(s.drain(), 0u);
}

TYPED_TEST(StoreTest, CasConflictsInterleavedWithPutsAndErases) {
    typename TestFixture::store_t s;
    s.put(9, "v1");
    const auto v1 = s.get_versioned(9);
    s.put(9, "v2");  // moves the version past v1
    EXPECT_FALSE(s.cas(9, v1.version, "lost-update"))
        << "an intervening put must defeat the cas";
    const auto v2 = s.get_versioned(9);
    EXPECT_TRUE(s.erase(9));
    EXPECT_FALSE(s.cas(9, v2.version, "resurrect"))
        << "erase removed the entry: the version restarted at 0";
    EXPECT_TRUE(s.cas(9, 0, "fresh")) << "reincarnation is create-if-absent";
    EXPECT_EQ(s.get(9).value_or(""), "fresh");
    EXPECT_EQ(s.drain(), 0u);
}

TYPED_TEST(StoreTest, TtlValueExpiresLazilyOnRead) {
    typename TestFixture::store_t s;
    s.put(3, "mortal", /*ttl_ns=*/100, /*now_ns=*/1000);  // expires at 1100
    s.put(4, "immortal");                                 // ttl 0: never expires
    EXPECT_EQ(s.get(3, 1099).value_or(""), "mortal") << "not yet expired";
    EXPECT_FALSE(s.get(3, 1100).has_value()) << "deadline reached";
    EXPECT_FALSE(s.get_counted(3, 2000).has_value());
    EXPECT_EQ(s.get(4, ~std::uint64_t{0} - 1).value_or(""), "immortal");
    EXPECT_EQ(s.stats().expired, 1u) << "exactly one lazy expiry fired";
    // The expired value is gone, but the entry remains; a new put revives it.
    s.put(3, "reborn", 0, 3000);
    EXPECT_EQ(s.get(3, 4000).value_or(""), "reborn");
    EXPECT_EQ(s.drain(), 0u);
}

TYPED_TEST(StoreTest, ExpiredValueDoesNotCountAsErased) {
    typename TestFixture::store_t s;
    s.put(5, "soon-dead", /*ttl_ns=*/10, /*now_ns=*/0);
    EXPECT_FALSE(s.erase(5, /*now_ns=*/100))
        << "erasing an entry whose value already expired removes nothing "
           "user-visible";
    EXPECT_EQ(s.drain(), 0u);
}

TYPED_TEST(StoreTest, SweepClearsOnlyExpiredValues) {
    typename TestFixture::store_t s(
        typename TestFixture::store_t::config{2, 4});
    for (std::uint64_t k = 0; k < 20; ++k) {
        // Even keys expire at 50+k, odd keys live forever.
        s.put(k, "v", (k % 2 == 0) ? 50 + k : 0, /*now_ns=*/0);
    }
    EXPECT_EQ(s.size(/*now_ns=*/0), 20u);
    const std::size_t cleared = s.sweep_expired(/*now_ns=*/1000);
    EXPECT_EQ(cleared, 10u);
    EXPECT_EQ(s.stats().expired, 10u);
    EXPECT_EQ(s.size(1000), 10u);
    for (std::uint64_t k = 0; k < 20; ++k) {
        EXPECT_EQ(s.get(k, 1000).has_value(), k % 2 == 1) << k;
    }
    // Idempotent: a second sweep finds nothing left to clear.
    EXPECT_EQ(s.sweep_expired(1000), 0u);
    EXPECT_EQ(s.drain(), 0u);
}

TYPED_TEST(StoreTest, StatsCountEveryOperationKind) {
    typename TestFixture::store_t s;
    s.put(1, "x");
    (void)s.get(1);
    (void)s.get(2);  // miss
    const auto v = s.get_versioned(1);
    EXPECT_TRUE(s.cas(1, v.version, "y"));
    EXPECT_FALSE(s.cas(1, 12345, "n"));
    EXPECT_TRUE(s.erase(1));
    const auto st = s.stats();
    EXPECT_EQ(st.puts, 1u);
    EXPECT_EQ(st.gets, 3u);  // two gets + one get_versioned
    EXPECT_EQ(st.hits, 2u);
    EXPECT_EQ(st.cas_ok, 1u);
    EXPECT_EQ(st.cas_fail, 1u);
    EXPECT_EQ(st.erases, 1u);
    EXPECT_DOUBLE_EQ(st.hit_rate(), 2.0 / 3.0);
    EXPECT_EQ(s.drain(), 0u);
}

// Concurrent churn on a deliberately tiny store (2 shards × 2 buckets, 16
// keys) so every op collides: gets on the borrowed path race puts, erases,
// and version-cas on the same entries. 1-CPU shape: fixed work per thread,
// no standalone churn thread. TearDown's flush check plus ASan/TSan turn
// any protocol slip (lost update, UAF, leaked pin) into a failure.
TYPED_TEST(StoreTest, ConcurrentGetPutEraseCasChurn) {
    using churn_store = store::kv_store<TypeParam, std::uint64_t, std::uint64_t>;
    churn_store s(typename churn_store::config{2, 2});
    constexpr std::uint64_t keyspace = 16;
    constexpr int thread_count = 4;
    constexpr int iters = 3000;

    std::vector<std::thread> workers;
    for (int t = 0; t < thread_count; ++t) {
        workers.emplace_back([&, t] {
            for (int i = 0; i < iters; ++i) {
                const std::uint64_t k =
                    (static_cast<std::uint64_t>(i) * 7 + static_cast<std::uint64_t>(t)) %
                    keyspace;
                switch ((i + t) % 4) {
                    case 0:
                        s.put(k, static_cast<std::uint64_t>(i));
                        break;
                    case 1: {
                        const auto got = s.get(k);
                        if (got) {
                            ASSERT_LT(*got, static_cast<std::uint64_t>(iters))
                                << "a get returned a value no put ever wrote";
                        }
                        break;
                    }
                    case 2: {
                        const auto v = s.get_versioned(k);
                        (void)s.cas(k, v.version, static_cast<std::uint64_t>(i));
                        break;
                    }
                    default:
                        (void)s.erase(k);
                        break;
                }
            }
        });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(s.drain(), 0u) << "churn left unreclaimed garbage";
}

// ---- the same store body under the manual smr policies -----------------

template <typename P>
class PolicyStoreTest : public ::testing::Test {};

using Policies = ::testing::Types<smr::ebr<>, smr::hp<>, smr::leaky<>>;
TYPED_TEST_SUITE(PolicyStoreTest, Policies);

TYPED_TEST(PolicyStoreTest, SequentialContractMatchesCountedStore) {
    store::kv_store<TypeParam, std::uint64_t, std::string> s(
        typename store::kv_store<TypeParam, std::uint64_t, std::string>::config{2, 8});
    EXPECT_FALSE(s.get(1).has_value());
    s.put(1, "one");
    EXPECT_EQ(s.get(1).value_or(""), "one");
    EXPECT_EQ(s.get_versioned(1).version, 1u);
    s.put(1, "two");
    EXPECT_EQ(s.get_versioned(1).version, 2u);
    EXPECT_TRUE(s.cas(1, 2, "three"));
    EXPECT_FALSE(s.cas(1, 2, "stale"));
    EXPECT_EQ(s.get(1).value_or(""), "three");
    EXPECT_EQ(s.get_counted(1).value_or(""), "three");
    EXPECT_TRUE(s.erase(1));
    EXPECT_FALSE(s.get(1).has_value());
    EXPECT_TRUE(s.cas(1, 0, "reborn")) << "create-if-absent after erase";
    // TTL contract: expired values miss and don't count as erased.
    s.put(2, "mortal", /*ttl_ns=*/100, /*now_ns=*/0);
    EXPECT_TRUE(s.get(2, 99).has_value());
    EXPECT_FALSE(s.get(2, 100).has_value());
    EXPECT_FALSE(s.erase(2, 200));
    EXPECT_EQ(s.size(200), 1u);  // only key 1 ("reborn") is live
    s.drain();
}

// The workload driver itself, at a deterministic-ish smoke scale: it must
// run every op kind, produce consistent totals, and leave the epoch domain
// drainable (the clear_slot shutdown path).
TEST(WorkloadDriver, RunsMixAndLeavesEpochDomainDrainable) {
    using store_t = store::kv_store<domain, std::uint64_t, std::uint64_t>;
    store_t s(store_t::config{4, 16});
    store::kv_store_borrow_ops<domain> ops(s);
    store::workload_config cfg;
    cfg.threads = 3;
    cfg.duration_seconds = 0.05;
    cfg.keyspace = 128;
    cfg.get_percent = 60;
    cfg.erase_percent = 10;
    cfg.cas_percent = 10;
    const auto res = store::run_workload(ops, cfg);
    EXPECT_GT(res.total_ops, 0u);
    EXPECT_EQ(res.total_ops, res.gets + res.puts + res.erases + res.cas_tried);
    EXPECT_GT(res.gets, 0u);
    EXPECT_GT(res.puts, 0u);
    EXPECT_GT(res.hits, 0u);
    EXPECT_GE(res.seconds, cfg.duration_seconds);
    EXPECT_EQ(s.drain(), 0u)
        << "worker slots were cleared, so the drain must reach zero";
}

}  // namespace
