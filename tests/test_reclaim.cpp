// Unit + stress tests for the reclamation substrates: epoch-based
// reclamation (grace periods, nesting, steal-draining) and hazard pointers
// (protection, scanning, exactly-once frees).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "util/spin_barrier.hpp"

namespace {

using namespace lfrc;

struct tracked {
    static inline std::atomic<int> live{0};
    int value = 0;
    explicit tracked(int v = 0) : value(v) { live.fetch_add(1); }
    ~tracked() { live.fetch_sub(1); }
};

void drain(reclaim::epoch_domain& d) {
    for (int i = 0; i < 32 && d.pending() != 0; ++i) {
        d.try_advance();
        d.drain_all();
    }
}

TEST(Epoch, RetireFreesAfterGracePeriod) {
    reclaim::epoch_domain d;
    const int before = tracked::live.load();
    d.retire(new tracked(1));
    EXPECT_EQ(tracked::live.load(), before + 1) << "must not free immediately";
    drain(d);
    EXPECT_EQ(tracked::live.load(), before);
    EXPECT_EQ(d.pending(), 0u);
}

TEST(Epoch, ActiveGuardBlocksAdvanceOtherThread) {
    reclaim::epoch_domain d;
    std::atomic<bool> pinned{false}, release_thread{false};
    std::thread t([&] {
        reclaim::epoch_domain::guard g(d);
        pinned = true;
        while (!release_thread.load()) std::this_thread::yield();
    });
    while (!pinned.load()) std::this_thread::yield();

    const auto e = d.global_epoch();
    // The pinned thread announced epoch e (or e-1); after at most one
    // successful advance the next ones must fail while it stays pinned.
    d.try_advance();
    const auto e2 = d.global_epoch();
    EXPECT_LE(e2, e + 1);
    for (int i = 0; i < 8; ++i) d.try_advance();
    EXPECT_LE(d.global_epoch(), e + 1) << "epoch advanced past a pinned thread";

    release_thread = true;
    t.join();
    for (int i = 0; i < 8; ++i) d.try_advance();
    EXPECT_GT(d.global_epoch(), e + 1);
}

TEST(Epoch, PinnedObjectNotFreedUntilUnpinned) {
    reclaim::epoch_domain d;
    const int before = tracked::live.load();
    std::atomic<bool> holding{false}, release_thread{false};
    tracked* obj = new tracked(7);
    std::thread reader([&] {
        reclaim::epoch_domain::guard g(d);
        holding = true;
        // Simulates holding a reference across the retire below.
        while (!release_thread.load()) {
            EXPECT_EQ(obj->value, 7);  // must stay valid while pinned
            std::this_thread::yield();
        }
    });
    while (!holding.load()) std::this_thread::yield();
    d.retire(obj);
    for (int i = 0; i < 16; ++i) {
        d.try_advance();
        d.drain_all();
    }
    EXPECT_EQ(tracked::live.load(), before + 1) << "freed under an active guard";
    release_thread = true;
    reader.join();
    drain(d);
    EXPECT_EQ(tracked::live.load(), before);
}

TEST(Epoch, NestedGuardsAreReentrant) {
    reclaim::epoch_domain d;
    reclaim::epoch_domain::guard outer(d);
    {
        reclaim::epoch_domain::guard inner(d);
        reclaim::epoch_domain::guard innermost(d);
    }
    // Still pinned: retire + aggressive drain must not free.
    const int before = tracked::live.load();
    d.retire(new tracked(1));
    for (int i = 0; i < 8; ++i) {
        d.try_advance();
        d.drain_all();
    }
    EXPECT_EQ(tracked::live.load(), before + 1);
}

TEST(Epoch, LeftoversOfExitedThreadsAreDrained) {
    reclaim::epoch_domain d;
    const int before = tracked::live.load();
    std::thread t([&] {
        for (int i = 0; i < 10; ++i) d.retire(new tracked(i));
    });
    t.join();
    drain(d);  // main thread steals + drains the exited thread's stack
    EXPECT_EQ(tracked::live.load(), before);
}

TEST(Epoch, ConcurrentRetireStress) {
    reclaim::epoch_domain d;
    const int before = tracked::live.load();
    constexpr int threads = 4;
    constexpr int per_thread = 20000;
    util::spin_barrier barrier{threads};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            barrier.arrive_and_wait();
            for (int i = 0; i < per_thread; ++i) {
                reclaim::epoch_domain::guard g(d);
                d.retire(new tracked(i));
            }
        });
    }
    for (auto& t : pool) t.join();
    drain(d);
    EXPECT_EQ(tracked::live.load(), before);
    EXPECT_EQ(d.pending(), 0u);
}

// ---- Hazard pointers ---------------------------------------------------------

TEST(Hazard, UnprotectedRetireFrees) {
    auto& d = reclaim::hazard_domain::global();
    const int before = tracked::live.load();
    d.retire(new tracked(1));
    d.drain_all();
    EXPECT_EQ(tracked::live.load(), before);
}

TEST(Hazard, ProtectedObjectSurvivesScan) {
    auto& d = reclaim::hazard_domain::global();
    const int before = tracked::live.load();
    std::atomic<tracked*> shared{new tracked(5)};
    {
        reclaim::hazard_domain::hp hp(d);
        tracked* p = hp.protect(shared);
        ASSERT_NE(p, nullptr);
        d.retire(shared.exchange(nullptr));
        d.drain_all();
        EXPECT_EQ(tracked::live.load(), before + 1) << "freed while protected";
        EXPECT_EQ(p->value, 5);
    }
    d.drain_all();
    EXPECT_EQ(tracked::live.load(), before);
}

TEST(Hazard, ProtectReloadsUntilStable) {
    auto& d = reclaim::hazard_domain::global();
    std::atomic<tracked*> shared{nullptr};
    tracked obj{9};
    shared.store(&obj);
    reclaim::hazard_domain::hp hp(d);
    EXPECT_EQ(hp.protect(shared), &obj);
    hp.clear();
    shared.store(nullptr);
    EXPECT_EQ(hp.protect(shared), nullptr);
}

TEST(Hazard, SlotsRecycledWithinThread) {
    auto& d = reclaim::hazard_domain::global();
    for (int i = 0; i < 100; ++i) {
        reclaim::hazard_domain::hp a(d), b(d), c(d), e(d);
        // All four slots in use; destruction releases them for next round.
    }
    SUCCEED();
}

TEST(Hazard, ConcurrentProtectRetireStress) {
    auto& d = reclaim::hazard_domain::global();
    const int before = tracked::live.load();
    std::atomic<tracked*> shared{new tracked(0)};
    std::atomic<bool> stop{false};
    std::atomic<int> torn_reads{0};

    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) {
        readers.emplace_back([&] {
            reclaim::hazard_domain::hp hp(d);
            while (!stop.load()) {
                tracked* p = hp.protect(shared);
                if (p != nullptr && (p->value < 0 || p->value > 1'000'000)) {
                    torn_reads.fetch_add(1);
                }
                hp.clear();
            }
        });
    }
    std::thread writer([&] {
        for (int i = 1; i <= 20000; ++i) {
            tracked* fresh = new tracked(i);
            tracked* old = shared.exchange(fresh);
            d.retire(old);
        }
        stop = true;
    });
    writer.join();
    for (auto& r : readers) r.join();
    EXPECT_EQ(torn_reads.load(), 0);
    d.retire(shared.exchange(nullptr));
    d.drain_all();
    EXPECT_EQ(tracked::live.load(), before);
}

}  // namespace
