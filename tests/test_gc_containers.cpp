// Tests for the GC-dependent stack and queue (the §3 "before" forms):
// functional semantics, collector reclamation of popped nodes, concurrent
// conservation under forced collections, and the ABA-immunity the GC
// provides for free.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "containers/gc_containers.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"

namespace {

using namespace lfrc;

TEST(GcStack, LifoSemantics) {
    gc::heap h;
    containers::gc_stack<int> st{h};
    gc::heap::attach_scope attach(h);
    EXPECT_TRUE(st.empty());
    for (int i = 0; i < 10; ++i) st.push(i);
    for (int i = 9; i >= 0; --i) EXPECT_EQ(st.pop(), i);
    EXPECT_EQ(st.pop(), std::nullopt);
}

TEST(GcStack, CollectorReclaimsPoppedNodes) {
    gc::heap h;
    containers::gc_stack<int> st{h};
    gc::heap::attach_scope attach(h);
    for (int i = 0; i < 1000; ++i) st.push(i);
    for (int i = 0; i < 900; ++i) st.pop();
    h.collect_now();
    // 100 nodes still linked; popped 900 collected.
    EXPECT_EQ(h.live_objects(), 100u);
    while (st.pop()) {}
    h.collect_now();
    EXPECT_EQ(h.live_objects(), 0u);
}

TEST(GcStack, ConcurrentConservationWithCollections) {
    gc::heap h{32 * 1024};  // frequent collections
    containers::gc_stack<std::int64_t> st{h};
    constexpr int threads = 4;
    constexpr int per_thread = 3000;
    std::atomic<std::int64_t> push_sum{0}, pop_sum{0};
    util::spin_barrier barrier{threads};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            gc::heap::attach_scope attach(h);
            util::xoshiro256 rng{static_cast<std::uint64_t>(t) + 91};
            barrier.arrive_and_wait();
            for (int i = 0; i < per_thread; ++i) {
                if (rng.below(2) == 0) {
                    const std::int64_t v = t * per_thread + i + 1;
                    st.push(v);
                    push_sum.fetch_add(v);
                } else if (auto got = st.pop()) {
                    pop_sum.fetch_add(*got);
                }
            }
        });
    }
    for (auto& t : pool) t.join();
    {
        gc::heap::attach_scope attach(h);
        while (auto got = st.pop()) pop_sum.fetch_add(*got);
    }
    EXPECT_EQ(push_sum.load(), pop_sum.load());
    EXPECT_GT(h.stats().collections, 0u);
}

TEST(GcQueue, FifoSemantics) {
    gc::heap h;
    containers::gc_queue<int> q{h};
    gc::heap::attach_scope attach(h);
    EXPECT_TRUE(q.empty());
    for (int i = 0; i < 10; ++i) q.enqueue(i);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(q.dequeue(), i);
    EXPECT_EQ(q.dequeue(), std::nullopt);
}

TEST(GcQueue, DummyChainIsCollected) {
    gc::heap h;
    containers::gc_queue<int> q{h};
    gc::heap::attach_scope attach(h);
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 100; ++i) q.enqueue(i);
        for (int i = 0; i < 100; ++i) q.dequeue();
    }
    h.collect_now();
    // Only the current dummy survives.
    EXPECT_EQ(h.live_objects(), 1u);
}

TEST(GcQueue, SpscOrderAcrossCollections) {
    gc::heap h{32 * 1024};
    containers::gc_queue<int> q{h};
    constexpr int total = 8000;
    std::atomic<int> bad{0};
    std::thread producer([&] {
        gc::heap::attach_scope attach(h);
        for (int i = 0; i < total; ++i) q.enqueue(i);
    });
    std::thread consumer([&] {
        gc::heap::attach_scope attach(h);
        int expected = 0;
        while (expected < total) {
            if (auto got = q.dequeue()) {
                if (*got != expected) bad.fetch_add(1);
                ++expected;
            } else {
                h.safepoint();
                std::this_thread::yield();
            }
        }
    });
    producer.join();
    consumer.join();
    EXPECT_EQ(bad.load(), 0);
    EXPECT_GT(h.stats().collections, 0u);
}

}  // namespace
