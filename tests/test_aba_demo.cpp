// A deterministic reconstruction of the ABA problem the paper describes in
// §1, and the demonstration that LFRC prevents it:
//
//   "if a CAS or DCAS operation is about to operate on a pointer, and the
//    object to which it points is freed and then reallocated, then it is
//    possible for the CAS or DCAS to succeed even though it should fail."
//
// Part 1 stages the classic Treiber-stack ABA on recycled pool memory with a
// hand-scripted interleaving and shows the naive CAS *succeeds wrongly*,
// corrupting the stack. Part 2 replays the same interleaving move-for-move
// against LFRC shared pointers and shows the corrupting step is unreachable:
// the delayed thread's counted reference keeps node A alive, so its address
// cannot be reused and the stale CAS correctly fails.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>

#include "alloc/block_pool.hpp"
#include "lfrc_test_helpers.hpp"

namespace {

using namespace lfrc;

// A deliberately naive Treiber stack over a recycling pool: pop() frees the
// node back to the pool immediately — the textbook mistake.
template <typename V>
class naive_pool_stack {
  public:
    struct node {
        node* next = nullptr;
        V value{};
    };

    void push(V v) {
        node* nd = pool_.create();
        nd->value = v;
        node* h = head_.load();
        do {
            nd->next = h;
        } while (!head_.compare_exchange_weak(h, nd));
    }

    std::optional<V> pop() {
        for (;;) {
            node* h = head_.load();
            if (h == nullptr) return std::nullopt;
            node* next = h->next;
            if (head_.compare_exchange_strong(h, next)) {
                V v = h->value;
                pool_.recycle(h);  // immediate reuse: the ABA seed
                return v;
            }
        }
    }

    // Test hooks to stage the interleaving step by step.
    node* observe_head() { return head_.load(); }
    bool raw_cas_head(node* expected, node* desired) {
        return head_.compare_exchange_strong(expected, desired);
    }

  private:
    std::atomic<node*> head_{nullptr};
    alloc::typed_pool<node> pool_;
};

TEST(AbaDemo, NaiveCasSucceedsWronglyOnRecycledMemory) {
    naive_pool_stack<int> st;
    st.push(100);  // B
    st.push(200);  // A (top)

    // Thread 1 (simulated): begins pop. Reads head = A and next = B, then
    // is "preempted" before its CAS.
    auto* a = st.observe_head();
    ASSERT_NE(a, nullptr);
    auto* b = a->next;
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->value, 200);
    EXPECT_EQ(b->value, 100);

    // Thread 2 (simulated): pops A, pops B (recycled LIFO: freelist top is
    // now B, then A), then pushes 111 (lands in B's block) and 222 (lands
    // in A's block). Net effect: head holds the bit pattern "A" again and
    // even A->next is "B" again — but the values are now 222 and 111.
    EXPECT_EQ(st.pop(), 200);
    EXPECT_EQ(st.pop(), 100);
    st.push(111);  // reuses B's block
    st.push(222);  // reuses A's block -> top is A's address again: A-B-A
    ASSERT_EQ(st.observe_head(), a) << "pool must reuse A's address for the demo";
    EXPECT_EQ(st.observe_head()->value, 222);
    ASSERT_EQ(a->next, b);
    EXPECT_EQ(b->value, 111);

    // Thread 1 resumes: its CAS(head, A, B) SHOULD fail — its snapshot is
    // ancient, value 200 is long gone — but a raw pointer compare cannot
    // tell. Thread 1 would complete its pop and report the stale value 200,
    // a value another thread already popped (a duplicate), while 222 —
    // which actually occupied the top — is silently lost.
    EXPECT_TRUE(st.raw_cas_head(a, b)) << "the ABA CAS was expected to (wrongly) succeed";
    EXPECT_EQ(st.pop(), 111);
    EXPECT_EQ(st.pop(), std::nullopt) << "222 was lost: the stack is corrupted";
}

TEST(AbaDemo, LfrcMakesTheSameInterleavingHarmless) {
    using D = domain;
    using node = lfrc_tests::test_node<D>;
    alloc::scope_check leak_check;
    {
        // Shared pointer playing the role of the stack head.
        typename D::template ptr_field<node> head;

        // Build head -> A -> B as in part 1.
        auto b_owner = D::make<node>(100);
        auto a_owner = D::make<node>(200);
        D::store(a_owner->next, b_owner);
        D::store(head, a_owner);

        // Thread 1 (simulated): LFRCLoads head and next — taking COUNTED
        // references (the DCAS inside load is what makes this safe).
        auto t1_a = D::load_get(head);       // counted ref to A
        auto t1_b = D::load_get(t1_a->next); // counted ref to B
        ASSERT_EQ(t1_a->value, 200);
        ASSERT_EQ(t1_b->value, 100);
        node* a_address = t1_a.get();

        // Drop the creator's handles; thread 1's counts keep A and B alive.
        a_owner.reset();
        b_owner.reset();

        // Thread 2 (simulated): pops A, pops B, pushes replacements.
        EXPECT_TRUE(D::cas(head, t1_a.get(), t1_b.get()));            // pop A
        EXPECT_TRUE(D::cas(head, t1_b.get(), (node*)nullptr));        // pop B
        auto c = D::make<node>(111);
        auto d_node = D::make<node>(222);
        D::store(c->next, d_node);
        D::store(head, c);

        // With LFRC the A-B-A bit pattern cannot recur: A is still alive
        // (thread 1 holds a count), so no new node can occupy its address.
        lfrc_tests::drain_epochs();
        EXPECT_NE(c.get(), a_address);
        EXPECT_NE(d_node.get(), a_address);
        EXPECT_EQ(t1_a->value, 200) << "A must still be intact while referenced";

        // Thread 1 resumes its stale CAS(head, A, B): correctly FAILS.
        EXPECT_FALSE(D::cas(head, t1_a.get(), t1_b.get()));
        // And the structure is unharmed.
        auto top = D::load_get(head);
        EXPECT_EQ(top->value, 111);

        D::store(head, (node*)nullptr);
    }
    lfrc_tests::drain_epochs();
    EXPECT_EQ(leak_check.leaked_objects(), 0);
}

}  // namespace
