// Additional targeted coverage: cycle-collector concurrency at the suspect
// boundary, epoch pending() accounting, GC heap attach/detach churn, the
// fixed deque's claim marker edge, and snark destructor behaviour from a
// crossed-hats-like state.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "gc/heap.hpp"
#include "lfrc/cycle_collector.hpp"
#include "lfrc_test_helpers.hpp"
#include "snark/snark_fixed.hpp"
#include "snark/snark_lfrc.hpp"
#include "util/spin_barrier.hpp"

namespace {

using namespace lfrc;
using lfrc_tests::drain_epochs;
using lfrc_tests::test_node;

// suspect() is thread-safe; collect() runs at quiescence afterwards.
TEST(CycleCollectorConcurrency, ConcurrentSuspectsThenCollect) {
    using D = domain;
    using node = test_node<D>;
    drain_epochs();
    const auto live_before = node::live().load();
    cycle_collector<D> cc;
    constexpr int threads = 4;
    constexpr int cycles_per_thread = 50;
    {
        util::spin_barrier barrier{threads};
        std::vector<std::thread> pool;
        for (int t = 0; t < threads; ++t) {
            pool.emplace_back([&] {
                barrier.arrive_and_wait();
                for (int i = 0; i < cycles_per_thread; ++i) {
                    auto a = D::make<node>(i);
                    auto b = D::make<node>(i + 1000);
                    D::store(a->next, b.get());
                    D::store(b->next, a.get());
                    cc.suspect(a.get());
                }
            });
        }
        for (auto& t : pool) t.join();
    }
    EXPECT_EQ(cc.suspect_count(), static_cast<std::size_t>(threads) * cycles_per_thread);
    EXPECT_EQ(cc.collect(),
              static_cast<std::size_t>(threads) * cycles_per_thread * 2);
    drain_epochs();
    EXPECT_EQ(node::live().load(), live_before);
}

TEST(CycleCollectorConcurrency, DestructorReleasesUnprocessedSuspects) {
    using D = domain;
    using node = test_node<D>;
    drain_epochs();
    const auto live_before = node::live().load();
    {
        cycle_collector<D> cc;
        auto n = D::make<node>(1);  // acyclic
        cc.suspect(n.get());
    }  // collector dies with a pending suspect: pin released, node freed
    drain_epochs();
    EXPECT_EQ(node::live().load(), live_before);
}

TEST(EpochPending, CountsRetiredUntilFreed) {
    reclaim::epoch_domain d;
    struct blob {
        int x;
    };
    const auto base = d.pending();
    for (int i = 0; i < 10; ++i) d.retire(new blob{i});
    EXPECT_GE(d.pending(), base + 10);
    for (int i = 0; i < 16; ++i) {
        d.try_advance();
        d.drain_all();
    }
    EXPECT_EQ(d.pending(), 0u);
}

TEST(GcHeapChurn, RepeatedAttachDetachAcrossThreads) {
    gc::heap h{16 * 1024};
    std::atomic<int> failures{0};
    for (int wave = 0; wave < 10; ++wave) {
        std::vector<std::thread> pool;
        for (int t = 0; t < 3; ++t) {
            pool.emplace_back([&] {
                gc::heap::attach_scope attach(h);
                gc::local<int> dummy_root(h);  // int is never traced; type check only
                (void)dummy_root;
                struct leaf {
                    int v;
                    void gc_trace(gc::marker&) const {}
                };
                for (int i = 0; i < 300; ++i) {
                    gc::local<leaf> keep(h, h.allocate<leaf>());
                    keep->v = i;
                    if (keep->v != i) failures.fetch_add(1);
                    h.safepoint();
                }
            });
        }
        for (auto& t : pool) t.join();
    }
    EXPECT_EQ(failures.load(), 0);
    gc::heap::attach_scope attach(h);
    h.collect_now();
    EXPECT_EQ(h.live_objects(), 0u);
}

TEST(SnarkFixedEdge, DrainsFromBothEndsAfterMixedFill) {
    snark::snark_deque_fixed<domain> dq;
    for (std::uint64_t i = 0; i < 50; ++i) {
        if ((i & 1) != 0) {
            dq.push_left(i);
        } else {
            dq.push_right(i);
        }
    }
    std::uint64_t count = 0;
    while (true) {
        const bool left = (count & 1) != 0;
        const auto got = left ? dq.pop_left() : dq.pop_right();
        if (!got) break;
        ++count;
    }
    EXPECT_EQ(count, 50u);
    EXPECT_TRUE(dq.empty());
}

// Drive the deque into the "crossed hats" family of states via the exact
// two-element double-pop interleaving, using two threads that repeatedly
// stage a 2-element deque and pop one end each; then verify the deque
// remains fully usable and destructible.
TEST(SnarkCrossedHats, RecoversAndDestructsCleanly) {
    using D = domain;
    drain_epochs();
    const auto before = D::counters().snapshot();
    {
        snark::snark_deque<D, std::int64_t> dq;
        constexpr int rounds = 2000;
        util::spin_barrier barrier{2};
        std::atomic<std::int64_t> popped{0};
        std::thread right([&] {
            barrier.arrive_and_wait();
            for (int i = 0; i < rounds; ++i) {
                if (dq.pop_right()) popped.fetch_add(1);
            }
        });
        std::thread left([&] {
            barrier.arrive_and_wait();
            for (int i = 0; i < rounds; ++i) {
                dq.push_left(2 * i);
                dq.push_right(2 * i + 1);
                if (dq.pop_left()) popped.fetch_add(1);
            }
        });
        right.join();
        left.join();
        // Deque must still work after whatever states were reached.
        dq.push_left(-1);
        dq.push_right(-2);
        std::int64_t drained = 0;
        while (dq.pop_left()) ++drained;
        EXPECT_EQ(popped.load() + drained, 2 * rounds + 2);
    }
    drain_epochs();
    const auto after = D::counters().snapshot();
    EXPECT_EQ(after.objects_created - before.objects_created,
              after.objects_destroyed - before.objects_destroyed);
}

}  // namespace
