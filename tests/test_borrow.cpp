// Borrowed-reference fast path (docs/ALGORITHMS.md §8):
//  * load_borrowed pays zero refcount traffic — the pointee's count and the
//    global increment ledger are untouched;
//  * a borrow keeps the pointee's STORAGE mapped past logical death (the
//    epoch pin blocks physical free), and flush_deferred_frees reports the
//    resulting residual instead of lying about quiescence;
//  * promote() upgrades to a counted local_ptr iff the object is still
//    logically alive — zero is absorbing, so a borrow can never resurrect
//    a dead object;
//  * borrowers racing destroy on the last counted reference never observe
//    freed memory (the stress test's canary would explode under ASan/TSan
//    if they did).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "containers/lfrc_hash_set.hpp"
#include "lfrc_test_helpers.hpp"
#include "reclaim/epoch.hpp"

namespace {

using namespace lfrc;
using lfrc_tests::drain_epochs;
using lfrc_tests::test_node;

template <typename D>
class BorrowTest : public ::testing::Test {
  protected:
    using node_t = test_node<D>;
    void TearDown() override {
        EXPECT_EQ(drain_epochs(), 0u) << "a borrow leaked its epoch pin";
        EXPECT_EQ(node_t::live().load(), live_at_start_);
    }
    std::int64_t live_at_start_ = test_node<D>::live().load();
};

using Domains = ::testing::Types<domain, locked_domain>;
TYPED_TEST_SUITE(BorrowTest, Domains);

TYPED_TEST(BorrowTest, BorrowSeesTheStoredPointer) {
    using D = TypeParam;
    using node = test_node<D>;
    typename D::template ptr_field<node> shared;
    D::store_alloc(shared, D::template make<node>(42));
    {
        auto b = D::load_borrowed(shared);
        ASSERT_TRUE(b);
        EXPECT_EQ(b->value, 42);
        EXPECT_EQ(b.get(), D::load_get(shared).get());
    }
    D::store(shared, static_cast<node*>(nullptr));
}

TYPED_TEST(BorrowTest, NullFieldBorrowsNull) {
    using D = TypeParam;
    using node = test_node<D>;
    typename D::template ptr_field<node> shared;
    auto b = D::load_borrowed(shared);
    EXPECT_FALSE(b);
    EXPECT_EQ(b.get(), nullptr);
    EXPECT_FALSE(b.promote());
}

TYPED_TEST(BorrowTest, BorrowPaysNoCountTraffic) {
    using D = TypeParam;
    using node = test_node<D>;
    typename D::template ptr_field<node> shared;
    D::store_alloc(shared, D::template make<node>(1));
    {
        auto warm = D::load_borrowed(shared);  // touch the path once
        (void)warm;
    }
    auto held = D::load_get(shared);
    const auto rc_before = held->ref_count();
    const auto before = D::counters().snapshot();
    constexpr int reads = 1000;
    for (int i = 0; i < reads; ++i) {
        auto b = D::load_borrowed(shared);
        ASSERT_EQ(b->value, 1);
    }
    const auto after = D::counters().snapshot();
    EXPECT_EQ(after.increments, before.increments)
        << "a borrow must not touch any reference count";
    EXPECT_EQ(after.decrements, before.decrements);
    EXPECT_EQ(after.borrows, before.borrows + reads);
    EXPECT_EQ(held->ref_count(), rc_before);
    held.reset();
    D::store(shared, static_cast<node*>(nullptr));
}

TYPED_TEST(BorrowTest, CopyAndMoveKeepThePinBalanced) {
    using D = TypeParam;
    using node = test_node<D>;
    typename D::template ptr_field<node> shared;
    D::store_alloc(shared, D::template make<node>(5));
    {
        auto a = D::load_borrowed(shared);
        auto b = a;             // copy: second pin
        auto c = std::move(a);  // move: transfers the first pin
        EXPECT_EQ(b.get(), c.get());
        EXPECT_FALSE(a);  // moved-from is empty and unpinned
        b = c;            // self-overlapping reassign stays balanced
        c.reset();
        EXPECT_EQ(b->value, 5);
    }  // TearDown's residual check catches any pin imbalance
    D::store(shared, static_cast<node*>(nullptr));
}

TYPED_TEST(BorrowTest, PromoteLiveObjectYieldsCountedRef) {
    using D = TypeParam;
    using node = test_node<D>;
    typename D::template ptr_field<node> shared;
    D::store_alloc(shared, D::template make<node>(9));
    {
        auto b = D::load_borrowed(shared);
        auto p = b.promote();
        ASSERT_TRUE(p);
        EXPECT_EQ(p.get(), b.get());
        EXPECT_EQ(p->ref_count(), 2u);  // shared field + promoted local
        b.reset();
        EXPECT_EQ(p->value, 9);  // counted ref outlives the pin
    }
    D::store(shared, static_cast<node*>(nullptr));
}

TYPED_TEST(BorrowTest, BorrowOutlivesLogicalDeathAndPromoteFails) {
    using D = TypeParam;
    using node = test_node<D>;
    const auto live_before = node::live().load();
    typename D::template ptr_field<node> shared;
    D::store_alloc(shared, D::template make<node>(777));
    {
        auto b = D::load_borrowed(shared);
        // Drop the last counted reference: the node is logically dead
        // (count zero, children released) but our pin defers the free.
        D::store(shared, static_cast<node*>(nullptr));
        EXPECT_GT(drain_epochs(), 0u)
            << "drain must report the free it could not run past our pin";
        EXPECT_EQ(node::live().load(), live_before + 1)
            << "physical destruction must wait for the pin";
        EXPECT_EQ(b->value, 777);  // storage still mapped and intact
        EXPECT_FALSE(b.promote()) << "zero is absorbing: no resurrection";
    }
    EXPECT_EQ(drain_epochs(), 0u);
    EXPECT_EQ(node::live().load(), live_before);
}

// Borrowers race destroy on the last counted reference (the
// test_failure_injection pattern): a writer keeps replacing the only
// counted pointer to the hot node while borrowers read through it and
// occasionally promote. The canary value proves the storage they touch is
// never reused-or-freed under them; promote never yields a dead object.
TYPED_TEST(BorrowTest, BorrowersRacingDestroyNeverSeeFreedMemory) {
    using D = TypeParam;
    using node = test_node<D>;
    constexpr std::int64_t canary = 123456789;
    const auto live_before = node::live().load();
    {
        typename D::template ptr_field<node> shared;
        D::store_alloc(shared, D::template make<node>(canary));

        constexpr int borrower_count = 3;
        std::atomic<int> running{borrower_count};
        std::atomic<std::uint64_t> bad_reads{0}, promotes{0}, dead_promotes{0};

        std::vector<std::thread> borrowers;
        for (int t = 0; t < borrower_count; ++t) {
            borrowers.emplace_back([&, t] {
                for (int i = 0; i < 2000; ++i) {
                    auto b = D::load_borrowed(shared);
                    if (!b) continue;  // transient null during a swap
                    if (b->value != canary) bad_reads.fetch_add(1);
                    if ((i + t) % 7 == 0) {
                        auto p = b.promote();
                        if (p) {
                            promotes.fetch_add(1);
                            if (p->value != canary) bad_reads.fetch_add(1);
                        } else {
                            dead_promotes.fetch_add(1);
                        }
                    }
                }
                running.fetch_sub(1);
            });
        }

        // Writer: each store drops the previous node's LAST counted
        // reference, so every iteration logically destroys an object that
        // borrowers may still be reading. Churn until every borrower has
        // finished its quota so the race actually overlaps.
        while (running.load(std::memory_order_relaxed) != 0) {
            D::store_alloc(shared, D::template make<node>(canary));
        }
        for (auto& th : borrowers) th.join();

        D::store(shared, static_cast<node*>(nullptr));
        EXPECT_EQ(bad_reads.load(), 0u)
            << "a borrower observed freed or recycled storage";
        EXPECT_GT(promotes.load(), 0u) << "stress never exercised promote";
    }
    EXPECT_EQ(drain_epochs(), 0u);
    EXPECT_EQ(node::live().load(), live_before)
        << "borrow pins must not leak objects past the race";
}

// Snapshot semantics of the hash set's borrowed read path against a
// concurrent erase in the SAME bucket. A single-bucket set forces every key
// through one list, so the borrowed walk in contains() stands on exactly the
// nodes the eraser is unlinking. Two guarantees under test:
//
//  * a key that is present for the whole operation is always found — an
//    erase of a NEIGHBOUR must never cut the walker off (dead nodes keep a
//    frozen forward pointer, lazy-list style), and
//  * contains() of the churned key itself never crashes, never reads freed
//    storage (ASan/TSan would flag it), and only ever returns a value that
//    was true at some instant of the call (here: anything, since the key
//    toggles — the invariant is memory-safety plus the stable key's truth).
TYPED_TEST(BorrowTest, HashSetBorrowedContainsRacingSameBucketErase) {
    using D = TypeParam;
    constexpr int stable_low = 10;    // walked over before the churn keys
    constexpr int churn_a = 50;       // between the stable keys in sort order
    constexpr int stable_high = 100;  // proves the walk survives past churn_a
    constexpr int churn_b = 150;      // churn after the last stable key

    containers::lfrc_hash_set<D, int> set(/*bucket_count=*/1);
    ASSERT_TRUE(set.insert(stable_low));
    ASSERT_TRUE(set.insert(stable_high));

    constexpr int reader_count = 2;
    std::atomic<int> running{reader_count};
    std::atomic<std::uint64_t> lost_stable{0};

    std::vector<std::thread> readers;
    for (int t = 0; t < reader_count; ++t) {
        readers.emplace_back([&] {
            for (int i = 0; i < 4000; ++i) {
                // The stable keys never leave the set: a miss would mean the
                // borrowed walk was cut off by a concurrent unlink.
                if (!set.contains(stable_low)) lost_stable.fetch_add(1);
                if (!set.contains(stable_high)) lost_stable.fetch_add(1);
                // The churned keys may be present or absent; the read must
                // simply be safe in either phase.
                (void)set.contains(churn_a);
                (void)set.contains(churn_b);
            }
            running.fetch_sub(1);
        });
    }

    // Eraser: toggle both churn keys until every reader finished its quota,
    // so inserts and erases overlap every phase of the borrowed walks.
    while (running.load(std::memory_order_relaxed) != 0) {
        set.insert(churn_a);
        set.insert(churn_b);
        set.erase(churn_a);
        set.erase(churn_b);
    }
    for (auto& th : readers) th.join();

    EXPECT_EQ(lost_stable.load(), 0u)
        << "a concurrent same-bucket erase made a live key invisible";
    EXPECT_TRUE(set.contains(stable_low));
    EXPECT_TRUE(set.contains(stable_high));
    EXPECT_FALSE(set.contains(churn_a));
    EXPECT_FALSE(set.contains(churn_b));
    EXPECT_EQ(set.size(), 2u);
}

}  // namespace
