// Line-by-line exercise of the paper-literal API (Figure 2 / §2.2) through
// lfrc::paper_api — the names, argument shapes, and count effects the paper
// specifies, checked against both engines.
#include <gtest/gtest.h>

#include "lfrc_test_helpers.hpp"

namespace {

using namespace lfrc;
using lfrc_tests::drain_epochs;
using lfrc_tests::test_node;

template <typename D>
class PaperApiTest : public ::testing::Test {
  protected:
    using api = paper_api<D>;
    using node_t = test_node<D>;
    using shared = typename D::template ptr_field<node_t>;
    using local = typename D::template local_ptr<node_t>;
};

using Domains = ::testing::Types<domain, locked_domain>;
TYPED_TEST_SUITE(PaperApiTest, Domains);

TYPED_TEST(PaperApiTest, LFRCLoadCopiesSharedToLocal) {
    using F = TestFixture;
    typename F::shared A;
    auto v = TypeParam::template make<typename F::node_t>(5);
    F::api::LFRCStore(&A, v);

    typename F::local p;  // "initialized to NULL before use" (§3 step 6)
    F::api::LFRCLoad(&A, &p);
    ASSERT_TRUE(p);
    EXPECT_EQ(p->value, 5);
    EXPECT_EQ(v->ref_count(), 3u);  // v, A, p
    F::api::LFRCStore(&A, static_cast<typename F::node_t*>(nullptr));
}

TYPED_TEST(PaperApiTest, LFRCStoreReplacesAndCompensates) {
    using F = TestFixture;
    typename F::shared A;
    auto x = TypeParam::template make<typename F::node_t>(1);
    auto y = TypeParam::template make<typename F::node_t>(2);
    F::api::LFRCStore(&A, x);
    EXPECT_EQ(x->ref_count(), 2u);
    F::api::LFRCStore(&A, y);
    EXPECT_EQ(x->ref_count(), 1u) << "the overwritten pointer must be destroyed (line 27)";
    EXPECT_EQ(y->ref_count(), 2u);
    F::api::LFRCStore(&A, static_cast<typename F::node_t*>(nullptr));
}

TYPED_TEST(PaperApiTest, LFRCCopyAdjustsBothCounts) {
    using F = TestFixture;
    auto x = TypeParam::template make<typename F::node_t>(1);
    auto y = TypeParam::template make<typename F::node_t>(2);
    typename F::local p;
    F::api::LFRCCopy(&p, x);
    EXPECT_EQ(x->ref_count(), 2u);  // lines 29..30
    F::api::LFRCCopy(&p, y);
    EXPECT_EQ(x->ref_count(), 1u);  // line 31: destroy previous
    EXPECT_EQ(y->ref_count(), 2u);
}

TYPED_TEST(PaperApiTest, LFRCDestroyMultiArgShorthand) {
    using F = TestFixture;
    using node = typename F::node_t;
    drain_epochs();  // flush earlier tests' deferred frees first
    const auto live_before = node::live().load();
    auto a = TypeParam::template make<node>(1);
    auto b = TypeParam::template make<node>(2);
    node* ra = a.release();
    node* rb = b.release();
    F::api::LFRCDestroy(ra, rb, static_cast<node*>(nullptr));
    drain_epochs();
    EXPECT_EQ(node::live().load(), live_before);
}

TYPED_TEST(PaperApiTest, LFRCCASBehavesPerFigure2) {
    using F = TestFixture;
    typename F::shared A;
    auto x = TypeParam::template make<typename F::node_t>(1);
    auto y = TypeParam::template make<typename F::node_t>(2);
    F::api::LFRCStore(&A, x);
    EXPECT_FALSE(F::api::LFRCCAS(&A, y.get(), y.get()));
    EXPECT_EQ(y->ref_count(), 1u) << "failed CAS must compensate its early increment";
    EXPECT_TRUE(F::api::LFRCCAS(&A, x.get(), y.get()));
    EXPECT_EQ(x->ref_count(), 1u);
    EXPECT_EQ(y->ref_count(), 2u);
    F::api::LFRCStore(&A, static_cast<typename F::node_t*>(nullptr));
}

TYPED_TEST(PaperApiTest, LFRCDCASBehavesPerFigure2) {
    using F = TestFixture;
    typename F::shared A0, A1;
    auto x = TypeParam::template make<typename F::node_t>(1);
    auto y = TypeParam::template make<typename F::node_t>(2);
    F::api::LFRCStore(&A0, x);
    F::api::LFRCStore(&A1, y);

    // Failure: lines 38..39 — both new counts compensated.
    EXPECT_FALSE(F::api::LFRCDCAS(&A0, &A1, x.get(), x.get(), y.get(), x.get()));
    EXPECT_EQ(x->ref_count(), 2u);
    EXPECT_EQ(y->ref_count(), 2u);

    // Success: lines 36..37 — old pointers destroyed, new ones counted.
    EXPECT_TRUE(F::api::LFRCDCAS(&A0, &A1, x.get(), y.get(), y.get(), x.get()));
    EXPECT_EQ(x->ref_count(), 2u);  // now in A1
    EXPECT_EQ(y->ref_count(), 2u);  // now in A0
    F::api::LFRCStore(&A0, static_cast<typename F::node_t*>(nullptr));
    F::api::LFRCStore(&A1, static_cast<typename F::node_t*>(nullptr));
    EXPECT_EQ(x->ref_count(), 1u);
    EXPECT_EQ(y->ref_count(), 1u);
}

TYPED_TEST(PaperApiTest, LFRCStoreAllocSkipsIncrement) {
    using F = TestFixture;
    typename F::shared A;
    F::api::LFRCStoreAlloc(&A, TypeParam::template make<typename F::node_t>(9));
    typename F::local p;
    F::api::LFRCLoad(&A, &p);
    EXPECT_EQ(p->ref_count(), 2u);  // A (birth count, transferred) + p
    F::api::LFRCStore(&A, static_cast<typename F::node_t*>(nullptr));
}

TYPED_TEST(PaperApiTest, AddToRcReturnsOldCount) {
    using F = TestFixture;
    auto x = TypeParam::template make<typename F::node_t>(3);
    EXPECT_EQ(F::api::add_to_rc(x.get(), 1), 1);
    EXPECT_EQ(F::api::add_to_rc(x.get(), 1), 2);
    EXPECT_EQ(F::api::add_to_rc(x.get(), -1), 3);
    EXPECT_EQ(F::api::add_to_rc(x.get(), -1), 2);
    EXPECT_EQ(x->ref_count(), 1u);
}

// Table 1, row by row: original pointer operation -> LFRC replacement.
TYPED_TEST(PaperApiTest, Table1ReplacementsCompose) {
    using F = TestFixture;
    using node = typename F::node_t;
    typename F::shared A0;
    typename F::local x0, x1;

    // x0 = *A0;               ->  LFRCLoad(A0, &x0);
    F::api::LFRCLoad(&A0, &x0);
    EXPECT_FALSE(x0);

    // *A0 = x0;               ->  LFRCStore(A0, x0);
    auto fresh = TypeParam::template make<node>(4);
    F::api::LFRCCopy(&x0, fresh);     // x0 = x1 -> LFRCCopy(&x0, x1)
    F::api::LFRCStore(&A0, x0);
    // CAS(A0, old0, new0)     ->  LFRCCAS(A0, old0, new0)
    EXPECT_TRUE(F::api::LFRCCAS(&A0, x0.get(), x0.get()));

    // *A0 = *A1 (non-atomic!) ->  the explicit load/store/destroy sequence
    // from §3 step 5's note:
    typename F::shared A1;
    F::api::LFRCStore(&A1, x0);
    {
        node* x = nullptr;
        typename F::local tmp;
        F::api::LFRCLoad(&A1, &tmp);
        x = tmp.release();
        F::api::LFRCStore(&A0, x);
        F::api::LFRCDestroy(x);
    }
    typename F::local check;
    F::api::LFRCLoad(&A0, &check);
    EXPECT_EQ(check.get(), x0.get());

    F::api::LFRCStore(&A0, static_cast<node*>(nullptr));
    F::api::LFRCStore(&A1, static_cast<node*>(nullptr));
}

}  // namespace
