// Negative probe for the arena/ASan interop (scripts/ci.sh asan cell).
//
// Arena recycling never returns node storage to the system allocator, which
// would silently blind AddressSanitizer to use-after-free on nodes — unless
// the arena manually poisons payloads on free and unpoisons on allocate
// (alloc/arena.hpp). This probe performs exactly the bug that poisoning
// must keep visible: allocate a block, free it, read through the stale
// pointer. Under LFRC_SANITIZE=address it MUST die (the CI cell inverts the
// exit status); anywhere else it exits 2 (probe inconclusive) so it can
// never masquerade as a passing test in an unsanitized tree.
#include <cstdio>
#include <cstring>

#include "alloc/arena.hpp"

int main() {
#if !defined(LFRC_ARENA_ASAN)
    std::fprintf(stderr,
                 "arena_uaf_probe: built without AddressSanitizer — "
                 "inconclusive\n");
    return 2;
#else
    auto& a = lfrc::alloc::arena::instance();
    char* p = static_cast<char*>(a.allocate(64));
    std::memset(p, 0x5a, 64);
    a.deallocate(p, 64);
    // Use-after-free: the payload is poisoned until its next allocation,
    // so this read must trigger an ASan report and abort the process.
    volatile char stale = p[0];
    std::fprintf(stderr,
                 "arena_uaf_probe: read freed arena payload (0x%02x) without "
                 "ASan objecting — manual poisoning is broken\n",
                 static_cast<unsigned char>(stale));
    return 1;
#endif
}
