// Unit tests for the utility kit: RNG, histogram, backoff, barrier, table.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/backoff.hpp"
#include "util/cacheline.hpp"
#include "util/histogram.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace lfrc::util;

TEST(Random, SplitmixAdvancesState) {
    std::uint64_t s = 42;
    const auto a = splitmix64(s);
    const auto b = splitmix64(s);
    EXPECT_NE(a, b);
    EXPECT_NE(s, 42u);
}

TEST(Random, XoshiroDeterministicPerSeed) {
    xoshiro256 a{7}, b{7}, c{8};
    for (int i = 0; i < 100; ++i) {
        const auto va = a();
        EXPECT_EQ(va, b());
        // Different seeds diverge almost surely.
        if (va != c()) return;
    }
    FAIL() << "seeds 7 and 8 produced identical 100-value streams";
}

TEST(Random, BelowStaysInRange) {
    xoshiro256 rng{123};
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
    }
    EXPECT_EQ(rng.below(1), 0u);
}

TEST(Random, BelowCoversRange) {
    xoshiro256 rng{99};
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(rng.below(4));
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Random, ChancePercentExtremes) {
    xoshiro256 rng{5};
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance_percent(0));
        EXPECT_TRUE(rng.chance_percent(100));
    }
}

TEST(Random, ThreadRngDistinctAcrossThreads) {
    std::uint64_t main_value = thread_rng()();
    std::uint64_t other_value = 0;
    std::thread t([&] { other_value = thread_rng()(); });
    t.join();
    EXPECT_NE(main_value, other_value);
}

TEST(Histogram, BucketIndexMonotonic) {
    int last = -1;
    for (std::uint64_t v : {0ull, 1ull, 15ull, 16ull, 17ull, 100ull, 1000ull, 1ull << 20,
                            1ull << 40}) {
        const int idx = latency_histogram::bucket_index(v);
        EXPECT_GE(idx, last);
        last = idx;
        EXPECT_GE(latency_histogram::bucket_upper_bound(idx), v);
    }
}

TEST(Histogram, PercentilesOrdered) {
    latency_histogram h;
    xoshiro256 rng{11};
    for (int i = 0; i < 100000; ++i) h.record(rng.below(1'000'000) + 1);
    EXPECT_EQ(h.count(), 100000u);
    const auto p50 = h.percentile(0.50);
    const auto p99 = h.percentile(0.99);
    EXPECT_LE(p50, p99);
    EXPECT_LE(p99, h.max() * 2);  // bucket upper bounds may round up
    // Uniform distribution: median should land near 500k within bucket error.
    EXPECT_GT(p50, 400'000u);
    EXPECT_LT(p50, 600'000u);
}

TEST(Histogram, MergeAccumulates) {
    latency_histogram a, b;
    a.record(10);
    b.record(1000);
    b.record(2000);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.max(), 2000u);
}

TEST(Histogram, EmptyIsZero) {
    latency_histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.99), 0u);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(Backoff, DoesNotHang) {
    backoff bo{16};
    for (int i = 0; i < 20; ++i) bo();
    bo.reset();
    bo();
    SUCCEED();
}

TEST(SpinBarrier, SynchronizesThreads) {
    constexpr int threads = 4;
    constexpr int rounds = 50;
    spin_barrier barrier{threads};
    std::atomic<int> arrivals{0};
    std::vector<std::thread> pool;
    std::atomic<bool> failed{false};
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (int r = 0; r < rounds; ++r) {
                arrivals.fetch_add(1);
                barrier.arrive_and_wait();
                // After the barrier every thread of round r has arrived.
                if (arrivals.load() < threads * (r + 1)) failed = true;
                barrier.arrive_and_wait();
            }
        });
    }
    for (auto& t : pool) t.join();
    EXPECT_FALSE(failed.load());
    EXPECT_EQ(arrivals.load(), threads * rounds);
}

TEST(Stopwatch, MeasuresElapsed) {
    stopwatch sw;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_GE(sw.elapsed_ns(), 1'000'000u);
    sw.restart();
    EXPECT_LT(sw.elapsed_seconds(), 1.0);
}

TEST(Table, PrintsAlignedMarkdown) {
    table t{{"name", "ops"}};
    t.add_row({"lfrc", "12345"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| name |"), std::string::npos);
    EXPECT_NE(out.find("| lfrc |"), std::string::npos);
    EXPECT_NE(out.find("|------|"), std::string::npos);
}

TEST(Table, FormatHelpers) {
    EXPECT_EQ(table::fmt(1.2345, 2), "1.23");
    EXPECT_EQ(table::fmt_count(999), "999");
    EXPECT_EQ(table::fmt_count(50'000), "50.0k");
    EXPECT_EQ(table::fmt_count(12'000'000), "12.0M");
}

TEST(Cacheline, PaddedSeparatesElements) {
    padded<std::atomic<int>> arr[2];
    const auto a = reinterpret_cast<std::uintptr_t>(&arr[0].value);
    const auto b = reinterpret_cast<std::uintptr_t>(&arr[1].value);
    EXPECT_GE(b - a, cacheline_size);
}

}  // namespace
