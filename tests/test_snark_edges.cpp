// Edge-state tests for the LFRC Snark deque: sentinel transitions, crossed
// hats, refcount expectations on internal nodes, destructor behaviour on
// every reachable shape, and the mutex baseline's semantics.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "lfrc_test_helpers.hpp"
#include "snark/mutex_deque.hpp"
#include "snark/snark_lfrc.hpp"
#include "util/spin_barrier.hpp"

namespace {

using namespace lfrc;
using lfrc_tests::drain_epochs;

template <typename D>
class SnarkEdgeTest : public ::testing::Test {
  protected:
    using deque_t = snark::snark_deque<D, std::int64_t>;
};

using Domains = ::testing::Types<domain, locked_domain>;
TYPED_TEST_SUITE(SnarkEdgeTest, Domains);

TYPED_TEST(SnarkEdgeTest, EmptyPopsFromBothEndsRepeatedly) {
    typename TestFixture::deque_t dq;
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(dq.pop_left(), std::nullopt);
        EXPECT_EQ(dq.pop_right(), std::nullopt);
    }
    EXPECT_TRUE(dq.empty());
}

TYPED_TEST(SnarkEdgeTest, AlternatingSingleElementAllPaths) {
    // Drives every single-node transition: push from each side followed by
    // pop from each side, repeatedly, so both hats repeatedly pass through
    // Dummy in all four combinations.
    typename TestFixture::deque_t dq;
    for (int round = 0; round < 200; ++round) {
        switch (round % 4) {
            case 0:
                dq.push_left(round);
                EXPECT_EQ(dq.pop_left(), round);
                break;
            case 1:
                dq.push_left(round);
                EXPECT_EQ(dq.pop_right(), round);
                break;
            case 2:
                dq.push_right(round);
                EXPECT_EQ(dq.pop_left(), round);
                break;
            default:
                dq.push_right(round);
                EXPECT_EQ(dq.pop_right(), round);
                break;
        }
        EXPECT_TRUE(dq.empty()) << "round " << round;
    }
}

TYPED_TEST(SnarkEdgeTest, TwoElementCrossPops) {
    typename TestFixture::deque_t dq;
    for (int round = 0; round < 100; ++round) {
        dq.push_left(1);
        dq.push_right(2);
        EXPECT_EQ(dq.pop_right(), 2);
        EXPECT_EQ(dq.pop_right(), 1);
        dq.push_right(3);
        dq.push_left(4);
        EXPECT_EQ(dq.pop_left(), 4);
        EXPECT_EQ(dq.pop_left(), 3);
    }
}

TYPED_TEST(SnarkEdgeTest, DrainFromOppositeEndOfFill) {
    typename TestFixture::deque_t dq;
    constexpr int n = 300;
    for (int i = 0; i < n; ++i) dq.push_left(i);
    for (int i = 0; i < n; ++i) EXPECT_EQ(dq.pop_right(), i);
    for (int i = 0; i < n; ++i) dq.push_right(i);
    for (int i = 0; i < n; ++i) EXPECT_EQ(dq.pop_left(), i);
}

TYPED_TEST(SnarkEdgeTest, DestructorOnEveryShape) {
    using D = TypeParam;
    // Destroy deques in: empty, 1-node, many-node, and popped-back-to-empty
    // states; the ledger must balance every time.
    for (int shape = 0; shape < 4; ++shape) {
        drain_epochs();
        const auto before = D::counters().snapshot();
        {
            typename TestFixture::deque_t dq;
            switch (shape) {
                case 0: break;  // empty
                case 1: dq.push_right(1); break;
                case 2:
                    for (int i = 0; i < 100; ++i) dq.push_left(i);
                    break;
                default:
                    for (int i = 0; i < 50; ++i) dq.push_right(i);
                    while (dq.pop_left()) {}
                    break;
            }
        }
        drain_epochs();
        const auto after = D::counters().snapshot();
        EXPECT_EQ(after.objects_created - before.objects_created,
                  after.objects_destroyed - before.objects_destroyed)
            << "shape " << shape;
    }
}

TYPED_TEST(SnarkEdgeTest, ValuesSurviveHeavyInterleaving) {
    // Two threads ping-pong values through a 1-2 element deque; values must
    // never be corrupted (would indicate a node freed while referenced).
    typename TestFixture::deque_t dq;
    std::atomic<int> corrupt{0};
    std::atomic<bool> stop{false};
    std::thread a([&] {
        for (int i = 0; i < 20000; ++i) {
            dq.push_left(1000 + (i % 100));
            const auto got = dq.pop_right();
            if (got && (*got < 1000 || *got >= 1100)) corrupt.fetch_add(1);
        }
        stop = true;
    });
    std::thread b([&] {
        while (!stop.load()) {
            dq.push_right(1000 + 50);
            const auto got = dq.pop_left();
            if (got && (*got < 1000 || *got >= 1100)) corrupt.fetch_add(1);
        }
    });
    a.join();
    b.join();
    EXPECT_EQ(corrupt.load(), 0);
    while (dq.pop_left()) {}
}

// ---- mutex_deque baseline ------------------------------------------------------

TEST(MutexDeque, BasicSemantics) {
    snark::mutex_deque<int> dq;
    EXPECT_TRUE(dq.empty());
    EXPECT_EQ(dq.size(), 0u);
    dq.push_left(1);
    dq.push_right(2);
    dq.push_left(0);
    EXPECT_EQ(dq.size(), 3u);
    EXPECT_EQ(dq.pop_left(), 0);
    EXPECT_EQ(dq.pop_right(), 2);
    EXPECT_EQ(dq.pop_right(), 1);
    EXPECT_EQ(dq.pop_left(), std::nullopt);
}

TEST(MutexDeque, ConcurrentConservation) {
    snark::mutex_deque<std::int64_t> dq;
    constexpr int threads = 4;
    constexpr int per_thread = 5000;
    std::atomic<std::int64_t> pushed{0}, popped{0};
    util::spin_barrier barrier{threads};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            barrier.arrive_and_wait();
            for (int i = 0; i < per_thread; ++i) {
                if ((i + t) % 2 == 0) {
                    dq.push_right(i);
                    pushed.fetch_add(1);
                } else if (dq.pop_left()) {
                    popped.fetch_add(1);
                }
            }
        });
    }
    for (auto& t : pool) t.join();
    while (dq.pop_left()) popped.fetch_add(1);
    EXPECT_EQ(pushed.load(), popped.load());
}

}  // namespace
