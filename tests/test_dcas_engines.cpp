// Typed tests run against BOTH DCAS engines (locked oracle and lock-free
// MCAS): single-cell semantics, double-cell semantics, and multi-threaded
// atomicity invariants. The MCAS engine additionally gets descriptor-
// specific checks (tag hygiene, helping under contention).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "dcas/cell.hpp"
#include "dcas/engine.hpp"
#include "dcas/locked_engine.hpp"
#include "dcas/mcas_engine.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"

namespace {

using namespace lfrc;
using dcas::cell;

template <typename Engine>
class DcasEngineTest : public ::testing::Test {};

using Engines = ::testing::Types<dcas::locked_engine, dcas::mcas_engine>;
TYPED_TEST_SUITE(DcasEngineTest, Engines);

static_assert(dcas::dcas_engine<dcas::locked_engine>);
static_assert(dcas::dcas_engine<dcas::mcas_engine>);

TYPED_TEST(DcasEngineTest, ReadInitialValue) {
    cell c{dcas::encode_count(5)};
    EXPECT_EQ(TypeParam::read(c), dcas::encode_count(5));
}

TYPED_TEST(DcasEngineTest, CasSucceedsOnMatch) {
    cell c{dcas::encode_count(1)};
    EXPECT_TRUE(TypeParam::cas(c, dcas::encode_count(1), dcas::encode_count(2)));
    EXPECT_EQ(TypeParam::read(c), dcas::encode_count(2));
}

TYPED_TEST(DcasEngineTest, CasFailsOnMismatchAndLeavesValue) {
    cell c{dcas::encode_count(1)};
    EXPECT_FALSE(TypeParam::cas(c, dcas::encode_count(9), dcas::encode_count(2)));
    EXPECT_EQ(TypeParam::read(c), dcas::encode_count(1));
}

TYPED_TEST(DcasEngineTest, DcasSucceedsWhenBothMatch) {
    cell a{dcas::encode_count(10)};
    cell b{dcas::encode_count(20)};
    EXPECT_TRUE(TypeParam::dcas(a, b, dcas::encode_count(10), dcas::encode_count(20),
                                dcas::encode_count(11), dcas::encode_count(21)));
    EXPECT_EQ(TypeParam::read(a), dcas::encode_count(11));
    EXPECT_EQ(TypeParam::read(b), dcas::encode_count(21));
}

TYPED_TEST(DcasEngineTest, DcasFailsIfFirstMismatches) {
    cell a{dcas::encode_count(10)};
    cell b{dcas::encode_count(20)};
    EXPECT_FALSE(TypeParam::dcas(a, b, dcas::encode_count(99), dcas::encode_count(20),
                                 dcas::encode_count(11), dcas::encode_count(21)));
    EXPECT_EQ(TypeParam::read(a), dcas::encode_count(10));
    EXPECT_EQ(TypeParam::read(b), dcas::encode_count(20));
}

TYPED_TEST(DcasEngineTest, DcasFailsIfSecondMismatches) {
    cell a{dcas::encode_count(10)};
    cell b{dcas::encode_count(20)};
    EXPECT_FALSE(TypeParam::dcas(a, b, dcas::encode_count(10), dcas::encode_count(99),
                                 dcas::encode_count(11), dcas::encode_count(21)));
    EXPECT_EQ(TypeParam::read(a), dcas::encode_count(10));
    EXPECT_EQ(TypeParam::read(b), dcas::encode_count(20));
}

TYPED_TEST(DcasEngineTest, DcasWithPointers) {
    int x = 0, y = 0;
    cell a{dcas::encode_ptr(&x)};
    cell b{dcas::encode_ptr(&x)};
    EXPECT_TRUE(TypeParam::dcas(a, b, dcas::encode_ptr(&x), dcas::encode_ptr(&x),
                                dcas::encode_ptr(&y), dcas::encode_ptr(&y)));
    EXPECT_EQ(dcas::decode_ptr<int>(TypeParam::read(a)), &y);
    EXPECT_EQ(dcas::decode_ptr<int>(TypeParam::read(b)), &y);
}

TYPED_TEST(DcasEngineTest, DcasNoopTransition) {
    // old == new is a legal DCAS (used by validation-style reads).
    cell a{dcas::encode_count(3)};
    cell b{dcas::encode_count(4)};
    EXPECT_TRUE(TypeParam::dcas(a, b, dcas::encode_count(3), dcas::encode_count(4),
                                dcas::encode_count(3), dcas::encode_count(4)));
    EXPECT_EQ(TypeParam::read(a), dcas::encode_count(3));
}

// --- Concurrency properties -------------------------------------------------

// Counter-increment race: N threads CAS-increment one cell; total must be
// exact (each success is one increment).
TYPED_TEST(DcasEngineTest, ConcurrentCasIncrementExact) {
    constexpr int threads = 4;
    constexpr int per_thread = 5000;
    cell c{dcas::encode_count(0)};
    util::spin_barrier barrier{threads};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            barrier.arrive_and_wait();
            for (int i = 0; i < per_thread; ++i) {
                for (;;) {
                    const auto cur = TypeParam::read(c);
                    if (TypeParam::cas(c, cur,
                                       dcas::encode_count(dcas::decode_count(cur) + 1))) {
                        break;
                    }
                }
            }
        });
    }
    for (auto& t : pool) t.join();
    EXPECT_EQ(dcas::decode_count(TypeParam::read(c)),
              static_cast<std::uint64_t>(threads) * per_thread);
}

// Conservation: random DCAS transfers between cells preserve the total sum.
// Any torn (non-atomic) DCAS would create or destroy value.
TYPED_TEST(DcasEngineTest, DcasTransfersConserveSum) {
    constexpr int threads = 4;
    constexpr int per_thread = 4000;
    constexpr int num_cells = 8;
    constexpr std::uint64_t initial = 1000;

    std::vector<cell> cells(num_cells);
    for (auto& c : cells) c.raw().store(dcas::encode_count(initial));

    util::spin_barrier barrier{threads};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            util::xoshiro256 rng{static_cast<std::uint64_t>(t) + 1};
            barrier.arrive_and_wait();
            for (int i = 0; i < per_thread; ++i) {
                const auto from = rng.below(num_cells);
                auto to = rng.below(num_cells);
                if (from == to) to = (to + 1) % num_cells;
                const auto vf = TypeParam::read(cells[from]);
                const auto vt = TypeParam::read(cells[to]);
                const auto cf = dcas::decode_count(vf);
                const auto ct = dcas::decode_count(vt);
                if (cf == 0) continue;
                TypeParam::dcas(cells[from], cells[to], vf, vt,
                                dcas::encode_count(cf - 1), dcas::encode_count(ct + 1));
            }
        });
    }
    for (auto& t : pool) t.join();

    std::uint64_t sum = 0;
    for (auto& c : cells) sum += dcas::decode_count(TypeParam::read(c));
    EXPECT_EQ(sum, initial * num_cells);
}

// Pair-equality invariant: writers keep a == b via DCAS; validating readers
// use a no-op DCAS to take an atomic snapshot of the pair. A successful
// snapshot with a != b means some DCAS was not atomic.
TYPED_TEST(DcasEngineTest, PairEqualityInvariantUnderContention) {
    constexpr int writers = 3;
    constexpr int per_thread = 4000;
    cell a{dcas::encode_count(0)};
    cell b{dcas::encode_count(0)};
    std::atomic<bool> stop{false};
    std::atomic<int> violations{0};
    std::atomic<std::uint64_t> snapshots{0};

    std::thread reader([&] {
        while (!stop.load(std::memory_order_acquire)) {
            const auto va = TypeParam::read(a);
            const auto vb = TypeParam::read(b);
            if (TypeParam::dcas(a, b, va, vb, va, vb)) {
                snapshots.fetch_add(1, std::memory_order_relaxed);
                if (va != vb) violations.fetch_add(1);
            }
        }
    });
    std::vector<std::thread> pool;
    for (int t = 0; t < writers; ++t) {
        pool.emplace_back([&] {
            for (int i = 0; i < per_thread; ++i) {
                for (;;) {
                    const auto va = TypeParam::read(a);
                    const auto vb = TypeParam::read(b);
                    if (va != vb) continue;  // writer raced; re-read
                    const auto next = dcas::encode_count(dcas::decode_count(va) + 1);
                    if (TypeParam::dcas(a, b, va, vb, next, next)) break;
                }
            }
        });
    }
    for (auto& t : pool) t.join();
    stop = true;
    reader.join();

    EXPECT_EQ(violations.load(), 0);
    EXPECT_GT(snapshots.load(), 0u);
    EXPECT_EQ(TypeParam::read(a), TypeParam::read(b));
    EXPECT_EQ(dcas::decode_count(TypeParam::read(a)),
              static_cast<std::uint64_t>(writers) * per_thread);
}

// --- Value-encoding helpers --------------------------------------------------

TEST(CellEncoding, TagsAreDisjoint) {
    EXPECT_TRUE(dcas::is_clean_value(0));
    EXPECT_TRUE(dcas::is_clean_value(dcas::encode_count(123)));
    EXPECT_FALSE(dcas::is_rdcss(dcas::encode_count(123)));
    EXPECT_FALSE(dcas::is_mcas(dcas::encode_count(123)));
    EXPECT_TRUE(dcas::is_rdcss(0x1001));
    EXPECT_TRUE(dcas::is_mcas(0x1002));
}

TEST(CellEncoding, CountRoundTrips) {
    for (std::uint64_t c : {0ull, 1ull, 77ull, 1ull << 40}) {
        EXPECT_EQ(dcas::decode_count(dcas::encode_count(c)), c);
    }
}

TEST(CellEncoding, PointerRoundTrips) {
    int x;
    EXPECT_EQ(dcas::decode_ptr<int>(dcas::encode_ptr(&x)), &x);
    EXPECT_EQ(dcas::decode_ptr<int>(dcas::encode_ptr<int>(nullptr)), nullptr);
}

// --- MCAS-specific -----------------------------------------------------------

TEST(McasEngine, HelpingOccursUnderContention) {
    const auto helps_before = dcas::mcas_engine::stats().helps.load();
    constexpr int threads = 4;
    cell a{dcas::encode_count(0)};
    cell b{dcas::encode_count(0)};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (int i = 0; i < 20000; ++i) {
                const auto va = dcas::mcas_engine::read(a);
                const auto vb = dcas::mcas_engine::read(b);
                dcas::mcas_engine::dcas(a, b, va, vb, dcas::encode_count(1),
                                        dcas::encode_count(1));
                dcas::mcas_engine::dcas(a, b, dcas::encode_count(1), dcas::encode_count(1),
                                        dcas::encode_count(0), dcas::encode_count(0));
            }
        });
    }
    for (auto& t : pool) t.join();
    // On a preemptive single-core box helping still happens whenever a thread
    // is descheduled mid-DCAS; don't require it, but record the counter moved
    // coherently.
    EXPECT_GE(dcas::mcas_engine::stats().helps.load(), helps_before);
    const auto started = dcas::mcas_engine::stats().dcas_started.load();
    const auto succeeded = dcas::mcas_engine::stats().dcas_succeeded.load();
    EXPECT_GE(started, succeeded);
}

TEST(McasEngine, ReadNeverReturnsDescriptor) {
    constexpr int threads = 3;
    cell a{dcas::encode_count(0)};
    cell b{dcas::encode_count(0)};
    std::atomic<bool> stop{false};
    std::atomic<int> tagged_reads{0};
    std::thread reader([&] {
        while (!stop.load()) {
            const auto va = dcas::mcas_engine::read(a);
            const auto vb = dcas::mcas_engine::read(b);
            if (!dcas::is_clean_value(va) || !dcas::is_clean_value(vb)) {
                tagged_reads.fetch_add(1);
            }
        }
    });
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (int i = 0; i < 30000; ++i) {
                const auto va = dcas::mcas_engine::read(a);
                const auto vb = dcas::mcas_engine::read(b);
                dcas::mcas_engine::dcas(
                    a, b, va, vb, dcas::encode_count(dcas::decode_count(va) + 1),
                    dcas::encode_count(dcas::decode_count(vb) + 1));
            }
        });
    }
    for (auto& t : pool) t.join();
    stop = true;
    reader.join();
    EXPECT_EQ(tagged_reads.load(), 0);
}

TEST(McasEngine, DescriptorsEventuallyReclaimed) {
    auto& domain = lfrc::reclaim::epoch_domain::global();
    cell a{dcas::encode_count(0)};
    cell b{dcas::encode_count(0)};
    for (int i = 0; i < 1000; ++i) {
        const auto va = dcas::mcas_engine::read(a);
        const auto vb = dcas::mcas_engine::read(b);
        dcas::mcas_engine::dcas(a, b, va, vb,
                                dcas::encode_count(dcas::decode_count(va) + 1),
                                dcas::encode_count(dcas::decode_count(vb) + 1));
    }
    for (int i = 0; i < 16; ++i) {
        domain.try_advance();
        domain.drain_all();
    }
    EXPECT_EQ(domain.pending(), 0u);
}

}  // namespace
