// Tests for the Valois-style CAS-only reference-counted stack: semantics,
// claim-bit protocol, conservation under contention, and the monotone
// footprint that motivates LFRC (paper §1).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "containers/valois_stack.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"

namespace {

using lfrc::containers::valois_stack;

TEST(ValoisStack, LifoOrder) {
    valois_stack<int> st;
    EXPECT_TRUE(st.empty());
    for (int i = 0; i < 10; ++i) st.push(i);
    for (int i = 9; i >= 0; --i) EXPECT_EQ(st.pop(), i);
    EXPECT_EQ(st.pop(), std::nullopt);
}

TEST(ValoisStack, NodesAreRecycledNotLeaked) {
    valois_stack<int> st;
    for (int i = 0; i < 100; ++i) st.push(i);
    for (int i = 0; i < 100; ++i) st.pop();
    const auto footprint_after_first_wave = st.footprint_bytes();
    // Same again: recycled nodes suffice, footprint must not grow.
    for (int i = 0; i < 100; ++i) st.push(i);
    for (int i = 0; i < 100; ++i) st.pop();
    EXPECT_EQ(st.footprint_bytes(), footprint_after_first_wave);
}

TEST(ValoisStack, FootprintIsMonotone) {
    // The drawback the paper names: freeing everything returns nothing to
    // the system while the structure lives.
    valois_stack<int> st;
    std::size_t previous = 0;
    for (int wave = 1; wave <= 4; ++wave) {
        for (int i = 0; i < wave * 2000; ++i) st.push(i);
        const auto grown = st.footprint_bytes();
        EXPECT_GE(grown, previous);
        for (int i = 0; i < wave * 2000; ++i) st.pop();
        EXPECT_EQ(st.footprint_bytes(), grown) << "popping everything must not shrink";
        previous = grown;
    }
    EXPECT_GT(previous, 0u);
}

TEST(ValoisStack, ConcurrentConservation) {
    valois_stack<std::int64_t> st;
    constexpr int threads = 4;
    constexpr int per_thread = 5000;
    const auto total = static_cast<std::int64_t>(threads) * per_thread;
    std::vector<std::atomic<int>> seen(static_cast<std::size_t>(total));
    for (auto& s : seen) s.store(0);
    lfrc::util::spin_barrier barrier{threads};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            lfrc::util::xoshiro256 rng{static_cast<std::uint64_t>(t) * 31 + 3};
            barrier.arrive_and_wait();
            std::int64_t next = static_cast<std::int64_t>(t) * per_thread;
            const std::int64_t limit = next + per_thread;
            while (next < limit) {
                if (rng.below(100) < 55) {
                    st.push(next++);
                } else if (auto got = st.pop()) {
                    seen[static_cast<std::size_t>(*got)].fetch_add(1);
                }
            }
        });
    }
    for (auto& t : pool) t.join();
    while (auto got = st.pop()) seen[static_cast<std::size_t>(*got)].fetch_add(1);
    for (std::int64_t i = 0; i < total; ++i) {
        ASSERT_EQ(seen[static_cast<std::size_t>(i)].load(), 1)
            << "token " << i << ": stale-increment handling is broken";
    }
}

TEST(ValoisStack, HighContentionPopOnlyRace) {
    // Many threads all popping the same few nodes maximizes stale
    // increments landing on recycled nodes.
    valois_stack<std::int64_t> st;
    constexpr int threads = 4;
    constexpr int rounds = 2000;
    std::atomic<std::int64_t> pushed{0}, popped{0};
    lfrc::util::spin_barrier barrier{threads};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            barrier.arrive_and_wait();
            for (int r = 0; r < rounds; ++r) {
                st.push(1);
                pushed.fetch_add(1);
                if (auto got = st.pop()) popped.fetch_add(1);
                if (auto got = st.pop()) popped.fetch_add(1);
            }
        });
    }
    for (auto& t : pool) t.join();
    while (st.pop()) popped.fetch_add(1);
    EXPECT_EQ(pushed.load(), popped.load());
}

}  // namespace
