// Concurrent stress for the LFRC Snark deque: token conservation (every
// pushed token popped at most once, all accounted for at the end), memory
// reclamation at quiescence, and mixed producer/consumer shapes.
//
// NOTE on the published algorithm: Snark has a post-publication double-pop
// bug (Doherty et al. 2004) requiring a very specific 2+-thread interleaving.
// These tests check conservation exactly; if the bug ever reproduces here it
// fails loudly — see snark_fixed.hpp and DESIGN.md §3.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "lfrc_test_helpers.hpp"
#include "snark/snark_lfrc.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"

namespace {

using namespace lfrc;
using lfrc_tests::drain_epochs;

template <typename D>
class SnarkConcurrentTest : public ::testing::Test {
  protected:
    using deque_t = snark::snark_deque<D, std::int64_t>;
};

using Domains = ::testing::Types<domain, locked_domain>;
TYPED_TEST_SUITE(SnarkConcurrentTest, Domains);

// Each thread pushes tokens with a unique tag and everyone pops; at the end
// every token must be seen exactly once across pops + leftovers.
template <typename deque_t>
void conservation_run(int threads, int per_thread, std::uint64_t seed_base) {
    deque_t dq;
    const std::int64_t total = static_cast<std::int64_t>(threads) * per_thread;
    std::vector<std::atomic<int>> seen(static_cast<std::size_t>(total));
    for (auto& s : seen) s.store(0);
    std::atomic<std::int64_t> popped{0};

    util::spin_barrier barrier{static_cast<std::size_t>(threads)};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            util::xoshiro256 rng{seed_base + static_cast<std::uint64_t>(t)};
            barrier.arrive_and_wait();
            std::int64_t next = static_cast<std::int64_t>(t) * per_thread;
            const std::int64_t limit = next + per_thread;
            while (next < limit) {
                // Bias towards pushes so the deque keeps content.
                if (rng.below(100) < 55) {
                    if (rng.below(2) == 0) {
                        dq.push_left(next);
                    } else {
                        dq.push_right(next);
                    }
                    ++next;
                } else {
                    const auto got = rng.below(2) == 0 ? dq.pop_left() : dq.pop_right();
                    if (got) {
                        seen[static_cast<std::size_t>(*got)].fetch_add(1);
                        popped.fetch_add(1);
                    }
                }
            }
        });
    }
    for (auto& t : pool) t.join();

    // Drain the remainder single-threaded.
    while (auto got = dq.pop_left()) {
        seen[static_cast<std::size_t>(*got)].fetch_add(1);
        popped.fetch_add(1);
    }
    EXPECT_EQ(popped.load(), total);
    for (std::int64_t i = 0; i < total; ++i) {
        ASSERT_EQ(seen[static_cast<std::size_t>(i)].load(), 1)
            << "token " << i << " popped " << seen[static_cast<std::size_t>(i)].load()
            << " times (duplicate or lost)";
    }
}

TYPED_TEST(SnarkConcurrentTest, TokenConservationMixedEnds) {
    conservation_run<typename TestFixture::deque_t>(4, 4000, 101);
}

TYPED_TEST(SnarkConcurrentTest, TokenConservationManySmallRounds) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        conservation_run<typename TestFixture::deque_t>(3, 1200, 500 + seed * 97);
    }
}

// Dedicated producers on one end, consumers on the other: FIFO pipeline
// shape; per-producer order must be preserved.
TYPED_TEST(SnarkConcurrentTest, PipelinePreservesPerProducerOrder) {
    typename TestFixture::deque_t dq;
    constexpr int producers = 2;
    constexpr int consumers = 2;
    constexpr int per_producer = 5000;

    std::atomic<std::int64_t> consumed{0};
    std::vector<std::atomic<std::int64_t>> last_seen(producers);
    for (auto& l : last_seen) l.store(-1);
    std::atomic<int> order_violations{0};
    util::spin_barrier barrier{producers + consumers};

    std::vector<std::thread> pool;
    for (int p = 0; p < producers; ++p) {
        pool.emplace_back([&, p] {
            barrier.arrive_and_wait();
            for (int i = 0; i < per_producer; ++i) {
                dq.push_right(static_cast<std::int64_t>(p) * per_producer + i);
            }
        });
    }
    for (int c = 0; c < consumers; ++c) {
        pool.emplace_back([&] {
            barrier.arrive_and_wait();
            while (consumed.load() < static_cast<std::int64_t>(producers) * per_producer) {
                const auto got = dq.pop_left();
                if (!got) {
                    std::this_thread::yield();
                    continue;
                }
                consumed.fetch_add(1);
                const auto producer = *got / per_producer;
                const auto index = *got % per_producer;
                // Monotonically record the max index per producer; with
                // multiple consumers pops may complete out of order, so only
                // gross violations (same index twice) are detectable here.
                auto& last = last_seen[static_cast<std::size_t>(producer)];
                std::int64_t prev = last.load();
                while (prev < index && !last.compare_exchange_weak(prev, index)) {}
                if (prev == index) order_violations.fetch_add(1);  // duplicate pop
            }
        });
    }
    for (auto& t : pool) t.join();
    EXPECT_EQ(order_violations.load(), 0);
    EXPECT_EQ(consumed.load(), static_cast<std::int64_t>(producers) * per_producer);
    EXPECT_TRUE(dq.empty());
}

// All nodes must be reclaimed once the deque is destroyed and epochs drain,
// even after heavy concurrent churn (the paper's "no memory leaks" claim).
TYPED_TEST(SnarkConcurrentTest, NoLeaksAfterConcurrentChurn) {
    using D = TypeParam;
    const auto before = D::counters().snapshot();
    {
        typename TestFixture::deque_t dq;
        constexpr int threads = 4;
        util::spin_barrier barrier{threads};
        std::vector<std::thread> pool;
        for (int t = 0; t < threads; ++t) {
            pool.emplace_back([&, t] {
                util::xoshiro256 rng{static_cast<std::uint64_t>(t) + 31};
                barrier.arrive_and_wait();
                for (int i = 0; i < 6000; ++i) {
                    switch (rng.below(4)) {
                        case 0: dq.push_left(i); break;
                        case 1: dq.push_right(i); break;
                        case 2: dq.pop_left(); break;
                        default: dq.pop_right(); break;
                    }
                }
            });
        }
        for (auto& t : pool) t.join();
    }
    drain_epochs();
    const auto after = D::counters().snapshot();
    EXPECT_EQ(after.objects_created - before.objects_created,
              after.objects_destroyed - before.objects_destroyed)
        << "some snodes were never reclaimed";
}

// Alternating empty/full transitions under concurrency: exercises the
// Dummy<->node sentinel hand-offs where hats can cross.
TYPED_TEST(SnarkConcurrentTest, EmptyTransitionChurn) {
    typename TestFixture::deque_t dq;
    constexpr int threads = 4;
    constexpr int iters = 5000;
    std::atomic<std::int64_t> pushed{0}, popped{0};
    util::spin_barrier barrier{threads};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            barrier.arrive_and_wait();
            for (int i = 0; i < iters; ++i) {
                if ((i + t) & 1) {
                    if ((i & 2) != 0) {
                        dq.push_left(1);
                    } else {
                        dq.push_right(1);
                    }
                    pushed.fetch_add(1);
                } else {
                    const auto got = (i & 2) != 0 ? dq.pop_left() : dq.pop_right();
                    if (got) popped.fetch_add(1);
                }
            }
        });
    }
    for (auto& t : pool) t.join();
    std::int64_t rest = 0;
    while (dq.pop_right()) ++rest;
    EXPECT_EQ(pushed.load(), popped.load() + rest);
}

}  // namespace
