// Sequential correctness of the LFRC Snark deque, typed over both engines:
// basic transitions, sentinel states, and randomized differential testing
// against std::deque as the model.
#include <gtest/gtest.h>

#include <deque>
#include <optional>

#include "lfrc_test_helpers.hpp"
#include "snark/snark_lfrc.hpp"
#include "util/random.hpp"

namespace {

using namespace lfrc;
using lfrc_tests::drain_epochs;

template <typename D>
class SnarkSeqTest : public ::testing::Test {
  protected:
    using deque_t = snark::snark_deque<D, std::int64_t>;
};

using Domains = ::testing::Types<domain, locked_domain>;
TYPED_TEST_SUITE(SnarkSeqTest, Domains);

TYPED_TEST(SnarkSeqTest, NewDequeIsEmpty) {
    typename TestFixture::deque_t dq;
    EXPECT_TRUE(dq.empty());
    EXPECT_EQ(dq.pop_left(), std::nullopt);
    EXPECT_EQ(dq.pop_right(), std::nullopt);
}

TYPED_TEST(SnarkSeqTest, PushRightPopRightLifo) {
    typename TestFixture::deque_t dq;
    dq.push_right(1);
    dq.push_right(2);
    dq.push_right(3);
    EXPECT_EQ(dq.pop_right(), 3);
    EXPECT_EQ(dq.pop_right(), 2);
    EXPECT_EQ(dq.pop_right(), 1);
    EXPECT_EQ(dq.pop_right(), std::nullopt);
}

TYPED_TEST(SnarkSeqTest, PushLeftPopLeftLifo) {
    typename TestFixture::deque_t dq;
    dq.push_left(1);
    dq.push_left(2);
    dq.push_left(3);
    EXPECT_EQ(dq.pop_left(), 3);
    EXPECT_EQ(dq.pop_left(), 2);
    EXPECT_EQ(dq.pop_left(), 1);
    EXPECT_EQ(dq.pop_left(), std::nullopt);
}

TYPED_TEST(SnarkSeqTest, PushRightPopLeftFifo) {
    typename TestFixture::deque_t dq;
    for (int i = 1; i <= 5; ++i) dq.push_right(i);
    for (int i = 1; i <= 5; ++i) EXPECT_EQ(dq.pop_left(), i);
    EXPECT_TRUE(dq.empty());
}

TYPED_TEST(SnarkSeqTest, PushLeftPopRightFifo) {
    typename TestFixture::deque_t dq;
    for (int i = 1; i <= 5; ++i) dq.push_left(i);
    for (int i = 1; i <= 5; ++i) EXPECT_EQ(dq.pop_right(), i);
    EXPECT_TRUE(dq.empty());
}

TYPED_TEST(SnarkSeqTest, MixedEndsInterleaved) {
    typename TestFixture::deque_t dq;
    dq.push_left(2);    // [2]
    dq.push_right(3);   // [2,3]
    dq.push_left(1);    // [1,2,3]
    dq.push_right(4);   // [1,2,3,4]
    EXPECT_EQ(dq.pop_left(), 1);
    EXPECT_EQ(dq.pop_right(), 4);
    EXPECT_EQ(dq.pop_left(), 2);
    EXPECT_EQ(dq.pop_right(), 3);
    EXPECT_TRUE(dq.empty());
}

TYPED_TEST(SnarkSeqTest, EmptyRefillCycles) {
    // Exercises the sentinel transitions (Dummy <-> nodes) repeatedly.
    typename TestFixture::deque_t dq;
    for (int round = 0; round < 50; ++round) {
        dq.push_right(round);
        EXPECT_EQ(dq.pop_left(), round);
        EXPECT_TRUE(dq.empty());
        dq.push_left(round);
        EXPECT_EQ(dq.pop_right(), round);
        EXPECT_TRUE(dq.empty());
    }
}

TYPED_TEST(SnarkSeqTest, SingleElementAllFourCombinations) {
    typename TestFixture::deque_t dq;
    dq.push_left(1);
    EXPECT_EQ(dq.pop_left(), 1);
    dq.push_left(2);
    EXPECT_EQ(dq.pop_right(), 2);
    dq.push_right(3);
    EXPECT_EQ(dq.pop_left(), 3);
    dq.push_right(4);
    EXPECT_EQ(dq.pop_right(), 4);
    EXPECT_TRUE(dq.empty());
}

TYPED_TEST(SnarkSeqTest, DestructorReclaimsRemainingNodes) {
    using D = TypeParam;
    const auto before = D::counters().snapshot();
    {
        typename TestFixture::deque_t dq;
        for (int i = 0; i < 500; ++i) dq.push_right(i);
    }  // destructor drains + nulls the shared roots (Figure 1 lines 40..44)
    drain_epochs();
    const auto after = D::counters().snapshot();
    EXPECT_EQ(after.objects_created - before.objects_created,
              after.objects_destroyed - before.objects_destroyed);
}

// Randomized differential test against std::deque, multiple seeds.
class SnarkModelTest : public ::testing::TestWithParam<std::uint64_t> {};

template <typename D>
void run_model_tape(std::uint64_t seed, int ops) {
    snark::snark_deque<D, std::int64_t> dq;
    std::deque<std::int64_t> model;
    util::xoshiro256 rng{seed};
    std::int64_t next_token = 0;
    for (int i = 0; i < ops; ++i) {
        switch (rng.below(4)) {
            case 0:
                dq.push_left(next_token);
                model.push_front(next_token);
                ++next_token;
                break;
            case 1:
                dq.push_right(next_token);
                model.push_back(next_token);
                ++next_token;
                break;
            case 2: {
                const auto got = dq.pop_left();
                if (model.empty()) {
                    ASSERT_EQ(got, std::nullopt) << "seed " << seed << " op " << i;
                } else {
                    ASSERT_EQ(got, model.front()) << "seed " << seed << " op " << i;
                    model.pop_front();
                }
                break;
            }
            default: {
                const auto got = dq.pop_right();
                if (model.empty()) {
                    ASSERT_EQ(got, std::nullopt) << "seed " << seed << " op " << i;
                } else {
                    ASSERT_EQ(got, model.back()) << "seed " << seed << " op " << i;
                    model.pop_back();
                }
                break;
            }
        }
    }
    // Drain and compare the remainder.
    while (!model.empty()) {
        ASSERT_EQ(dq.pop_left(), model.front());
        model.pop_front();
    }
    EXPECT_TRUE(dq.empty());
}

TEST_P(SnarkModelTest, MatchesStdDequeMcas) { run_model_tape<domain>(GetParam(), 4000); }
TEST_P(SnarkModelTest, MatchesStdDequeLocked) {
    run_model_tape<locked_domain>(GetParam(), 4000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnarkModelTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

}  // namespace
