// Conformance suite for the lfrc::smr policy layer (DESIGN.md §10).
//
// Every policy — counted, borrowed, ebr, hp, leaky, gc_heap, deferred —
// must drive the SAME generic cores (stack_core, queue_core,
// hash_set_core) through the same semantic contract: LIFO/FIFO order,
// linearizable membership, conservation under concurrency, and the
// policy's own reclamation story at quiescence (reclaimers reach zero,
// leaky demonstrably leaks, the GC collects, deferred's review queue
// empties). This is the test that makes "one core, seven policies" an
// enforced property instead of a slogan.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <type_traits>
#include <vector>

#include "alloc/stats.hpp"
#include "containers/hash_set_core.hpp"
#include "containers/queue_core.hpp"
#include "containers/stack_core.hpp"
#include "gc/heap.hpp"
#include "lfrc/lfrc.hpp"
#include "lfrc_test_helpers.hpp"
#include "smr/smr.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"

namespace {

using namespace lfrc;
using lfrc_tests::drain_epochs;

// Per-policy construction harness. Containers are always built OUTSIDE the
// worker scope (allocating core constructors bring their own
// P::thread_scope, and gc::heap::attach_scope does not nest); threads that
// touch a gc container enter a scope first. For every other policy the
// scope is a no-op and thread registration is automatic.
template <typename P>
struct harness {
    P policy{};
    struct scope {
        explicit scope(harness&) {}
    };
};

template <>
struct harness<smr::gc_heap> {
    gc::heap heap{1 << 22};  // threshold above test churn: no surprise STW
    smr::gc_heap policy{heap};
    struct scope {
        gc::heap::attach_scope attach;
        explicit scope(harness& h) : attach(h.heap) {}
    };
};

template <typename P>
class SmrConformance : public ::testing::Test {};

using AllPolicies =
    ::testing::Types<smr::counted<domain>, smr::borrowed<domain>, smr::ebr<>,
                     smr::hp<>, smr::leaky<>, smr::gc_heap, smr::deferred<>>;
TYPED_TEST_SUITE(SmrConformance, AllPolicies);

TYPED_TEST(SmrConformance, PolicySurface) {
    using P = TypeParam;
    static_assert(smr::policy<P>, "every implementation models smr::policy");
    static_assert(P::guard_slots == 4);
    // hp is the one scheme where walking a link of an already-dead node is
    // unsafe (its successor pointer is frozen, not protected).
    static_assert(P::has_lazy_traverse == !std::is_same_v<P, smr::hp<>>);
    // Standalone guard so a future hp refactor cannot flip the flag without
    // tripping a named assertion: cores key their unsafe-walk avoidance
    // (traverse degrading to protect) off exactly this being false.
    static_assert(!smr::hp<>::has_lazy_traverse,
                  "smr::hp must not advertise lazy traverse — a hazard "
                  "pointer protects one node, never a frozen successor");
    // R5's compile-time face (lfrc_lint checks the same at source level):
    // every core node declares smr_link_count and a visitor-invocable
    // smr_children; debug/sim builds assert the visit count matches.
    static_assert(smr::detail::children_cover_all_links_v<
                      typename containers::stack_core<int, P>::node>);
    static_assert(smr::detail::children_cover_all_links_v<
                      typename containers::queue_core<int, P>::node>);
    static_assert(smr::detail::children_cover_all_links_v<
                      containers::set_node<P, int>>);
    EXPECT_NE(P::name(), nullptr);
    EXPECT_GT(std::char_traits<char>::length(P::name()), 0u);
}

TYPED_TEST(SmrConformance, StackLifo) {
    harness<TypeParam> h;
    containers::stack_core<int, TypeParam> st(h.policy);
    typename harness<TypeParam>::scope ws(h);
    EXPECT_TRUE(st.empty());
    for (int i = 0; i < 50; ++i) st.push(i);
    for (int i = 49; i >= 0; --i) EXPECT_EQ(st.pop(), i);
    EXPECT_EQ(st.pop(), std::nullopt);
    EXPECT_TRUE(st.empty());
}

TYPED_TEST(SmrConformance, QueueFifoAndRefill) {
    harness<TypeParam> h;
    containers::queue_core<int, TypeParam> q(h.policy);
    typename harness<TypeParam>::scope ws(h);
    EXPECT_TRUE(q.empty());
    for (int i = 0; i < 50; ++i) q.enqueue(i);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(q.dequeue(), i);
    EXPECT_EQ(q.dequeue(), std::nullopt);
    for (int round = 0; round < 20; ++round) {
        q.enqueue(round);
        EXPECT_EQ(q.dequeue(), round);
        EXPECT_EQ(q.dequeue(), std::nullopt);
    }
}

TYPED_TEST(SmrConformance, HashSetMembership) {
    harness<TypeParam> h;
    containers::hash_set_core<TypeParam, int> set(8, h.policy);
    typename harness<TypeParam>::scope ws(h);
    for (int i = 0; i < 100; ++i) EXPECT_TRUE(set.insert(i));
    EXPECT_FALSE(set.insert(42));
    for (int i = 0; i < 100; ++i) EXPECT_TRUE(set.contains(i));
    EXPECT_FALSE(set.contains(100));
    EXPECT_EQ(set.size(), 100u);
    for (int i = 0; i < 100; i += 2) EXPECT_TRUE(set.erase(i));
    EXPECT_FALSE(set.erase(2));
    for (int i = 0; i < 100; ++i) EXPECT_EQ(set.contains(i), i % 2 == 1);
    EXPECT_EQ(set.size(), 50u);
}

TYPED_TEST(SmrConformance, StackConcurrentSumConserved) {
    harness<TypeParam> h;
    containers::stack_core<std::int64_t, TypeParam> st(h.policy);
    constexpr int threads = 4;
    constexpr int per_thread = 3000;
    std::atomic<std::int64_t> push_sum{0};
    std::atomic<std::int64_t> pop_sum{0};
    util::spin_barrier barrier{threads};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            typename harness<TypeParam>::scope ws(h);
            util::xoshiro256 rng{static_cast<std::uint64_t>(t) + 11};
            barrier.arrive_and_wait();
            for (int i = 0; i < per_thread; ++i) {
                if (rng.below(2) == 0) {
                    const std::int64_t v = t * per_thread + i + 1;
                    st.push(v);
                    push_sum.fetch_add(v);
                } else if (auto got = st.pop()) {
                    pop_sum.fetch_add(*got);
                }
            }
        });
    }
    for (auto& t : pool) t.join();
    typename harness<TypeParam>::scope ws(h);
    while (auto got = st.pop()) pop_sum.fetch_add(*got);
    EXPECT_EQ(push_sum.load(), pop_sum.load());
}

TYPED_TEST(SmrConformance, HashSetConcurrentChurnStaysConsistent) {
    harness<TypeParam> h;
    containers::hash_set_core<TypeParam, int> set(16, h.policy);
    constexpr int threads = 4;
    constexpr int per_thread = 2000;
    constexpr int keyspace = 64;
    std::atomic<std::int64_t> net{0};  // inserts-won minus erases-won
    util::spin_barrier barrier{threads};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            typename harness<TypeParam>::scope ws(h);
            util::xoshiro256 rng{static_cast<std::uint64_t>(t) + 23};
            barrier.arrive_and_wait();
            for (int i = 0; i < per_thread; ++i) {
                const int key = static_cast<int>(rng.below(keyspace));
                const auto roll = rng.below(100);
                if (roll < 40) {
                    if (set.insert(key)) net.fetch_add(1);
                } else if (roll < 80) {
                    if (set.erase(key)) net.fetch_sub(1);
                } else {
                    set.contains(key);
                }
            }
        });
    }
    for (auto& t : pool) t.join();
    // Successful inserts and erases alternate per key, so the surviving
    // membership must equal the net insert/erase balance exactly.
    typename harness<TypeParam>::scope ws(h);
    EXPECT_EQ(static_cast<std::int64_t>(set.size()), net.load());
    for (int k = 0; k < keyspace; ++k) {
        if (set.contains(k)) set.erase(k);
    }
    EXPECT_EQ(set.size(), 0u);
}

// The policy-specific half of the contract: what happens to retired memory
// once the structure is quiet.
TYPED_TEST(SmrConformance, ReclamationStoryAtQuiescence) {
    using P = TypeParam;
    constexpr int churn = 2000;
    if constexpr (std::is_same_v<P, smr::gc_heap>) {
        // GC: popped nodes become garbage; a forced collection frees them
        // all (an empty stack keeps nothing live — no sentinel).
        harness<P> h;
        containers::stack_core<int, P> st(h.policy);
        typename harness<P>::scope ws(h);
        for (int i = 0; i < churn; ++i) st.push(i);
        for (int i = 0; i < churn; ++i) st.pop();
        h.heap.collect_now();
        EXPECT_EQ(h.heap.live_objects(), 0u);
    } else if constexpr (std::is_same_v<P, smr::leaky<>>) {
        // Leaky: every popped node is lost, measurably.
        alloc::scope_check check;
        harness<P> h;
        containers::stack_core<int, P> st(h.policy);
        for (int i = 0; i < churn; ++i) st.push(i);
        for (int i = 0; i < churn; ++i) st.pop();
        EXPECT_GE(check.leaked_objects(), static_cast<std::int64_t>(churn));
    } else if constexpr (std::is_same_v<P, smr::deferred<>>) {
        // deferred RC: counts are thread-local until guard exit, frees wait
        // in the review queue for a grace period — but at quiescence a
        // bounded drain must reconcile everything and reach zero backlog.
        // (Pre-drain clears review-queue leftovers from earlier typed tests
        // so the allocation census below starts from a clean slate.)
        for (int i = 0; i < 40; ++i) {
            reclaim::epoch_domain::global().try_advance();
            reclaim::epoch_domain::global().drain_all();
        }
        alloc::scope_check check;
        {
            harness<P> h;
            containers::stack_core<int, P> st(h.policy);
            for (int i = 0; i < churn; ++i) st.push(i);
            for (int i = 0; i < churn; ++i) st.pop();
            st.policy().drain(40);
            EXPECT_EQ(st.policy().pending(), 0u);
        }
        EXPECT_EQ(check.leaked_objects(), 0);
    } else if constexpr (P::counted_links) {
        // counted/borrowed: the domain's object census must balance once
        // deferred frees flush.
        const auto before = domain::counters().snapshot();
        {
            harness<P> h;
            containers::stack_core<int, P> st(h.policy);
            for (int i = 0; i < churn; ++i) st.push(i);
            for (int i = 0; i < churn; ++i) st.pop();
        }
        drain_epochs();
        const auto after = domain::counters().snapshot();
        EXPECT_EQ(after.objects_created - before.objects_created,
                  after.objects_destroyed - before.objects_destroyed);
    } else {
        // ebr/hp: a bounded drain at quiescence reclaims everything.
        for (int i = 0; i < 40; ++i) {
            reclaim::epoch_domain::global().try_advance();
            reclaim::epoch_domain::global().drain_all();
        }
        reclaim::hazard_domain::global().drain_all();
        alloc::scope_check check;
        {
            harness<P> h;
            containers::stack_core<int, P> st(h.policy);
            for (int i = 0; i < churn; ++i) st.push(i);
            for (int i = 0; i < churn; ++i) st.pop();
            st.policy().drain(40);
            EXPECT_EQ(st.policy().pending(), 0u);
        }
        EXPECT_EQ(check.leaked_objects(), 0);
    }
}

}  // namespace
