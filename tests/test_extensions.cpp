// Tests for the §7 extensions: incremental destruction (bounded teardown
// slices) and the occasional trial-deletion cycle collector.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "lfrc/cycle_collector.hpp"
#include "lfrc/incremental.hpp"
#include "lfrc_test_helpers.hpp"
#include "util/spin_barrier.hpp"

namespace {

using namespace lfrc;
using lfrc_tests::drain_epochs;
using lfrc_tests::test_node;
using lfrc_tests::test_pair_node;

template <typename D>
class IncrementalTest : public ::testing::Test {};
using Domains = ::testing::Types<domain, locked_domain>;
TYPED_TEST_SUITE(IncrementalTest, Domains);

template <typename D>
typename D::template local_ptr<test_node<D>> build_chain(int n) {
    typename D::template local_ptr<test_node<D>> head;
    for (int i = 0; i < n; ++i) {
        auto nd = D::template make<test_node<D>>(i);
        D::store(nd->next, head);
        head = std::move(nd);
    }
    return head;
}

TYPED_TEST(IncrementalTest, DestroyParksInsteadOfTearingDown) {
    using D = TypeParam;
    using node = test_node<D>;
    drain_epochs();
    const auto live_before = node::live().load();
    incremental_destroyer<D> destroyer;
    {
        auto head = build_chain<D>(1000);
        destroyer.destroy(head.release());
    }
    // Nothing torn down yet: the whole chain is still live, one pending.
    EXPECT_EQ(node::live().load(), live_before + 1000);
    EXPECT_EQ(destroyer.pending(), 1u);
}

TYPED_TEST(IncrementalTest, StepHonoursBudget) {
    using D = TypeParam;
    using node = test_node<D>;
    drain_epochs();
    const auto live_before = node::live().load();
    incremental_destroyer<D> destroyer;
    {
        auto head = build_chain<D>(1000);
        destroyer.destroy(head.release());
    }
    EXPECT_EQ(destroyer.step(100), 100u);
    EXPECT_EQ(destroyer.step(250), 250u);
    // 350 objects logically destroyed; the rest still pending.
    EXPECT_EQ(destroyer.step(10'000), 650u);
    EXPECT_EQ(destroyer.step(10), 0u) << "backlog must be exhausted";
    drain_epochs();
    EXPECT_EQ(node::live().load(), live_before);
}

TYPED_TEST(IncrementalTest, NonZeroCountObjectsAreNotParked) {
    using D = TypeParam;
    incremental_destroyer<D> destroyer;
    auto keep = D::template make<test_node<D>>(7);
    D::add_to_rc(keep.get(), 1);
    destroyer.destroy(keep.get());  // count 2 -> 1: stays alive
    EXPECT_EQ(destroyer.pending(), 0u);
    EXPECT_EQ(keep->ref_count(), 1u);
}

TYPED_TEST(IncrementalTest, SharedTailCountedOncePerChain) {
    using D = TypeParam;
    using node = test_node<D>;
    drain_epochs();
    const auto live_before = node::live().load();
    incremental_destroyer<D> destroyer;
    {
        auto tail = D::template make<node>(0);
        auto a = D::template make<node>(1);
        auto b = D::template make<node>(2);
        D::store(a->next, tail);
        D::store(b->next, tail);
        destroyer.destroy(a.release());
        destroyer.destroy(b.release());
        // Tail still held by `tail` local + both parked chains.
        destroyer.step(100);
        drain_epochs();  // physical frees are deferred; flush before counting
        EXPECT_EQ(node::live().load(), live_before + 1);  // only tail left
        EXPECT_EQ(tail->ref_count(), 1u);
    }
    destroyer.step(100);
    EXPECT_EQ(drain_epochs(), 0u) << "deferred frees failed to quiesce";
    EXPECT_EQ(node::live().load(), live_before);
}

TYPED_TEST(IncrementalTest, ConcurrentStepsShareBacklog) {
    using D = TypeParam;
    using node = test_node<D>;
    drain_epochs();
    const auto live_before = node::live().load();
    incremental_destroyer<D> destroyer;
    for (int c = 0; c < 8; ++c) {
        auto head = build_chain<D>(500);
        destroyer.destroy(head.release());
    }
    constexpr int workers = 4;
    std::atomic<std::size_t> total{0};
    util::spin_barrier barrier{workers};
    std::vector<std::thread> pool;
    for (int w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            barrier.arrive_and_wait();
            for (;;) {
                const std::size_t n = destroyer.step(64);
                total.fetch_add(n);
                if (n == 0 && destroyer.pending() == 0) break;
                std::this_thread::yield();
            }
        });
    }
    for (auto& t : pool) t.join();
    EXPECT_EQ(total.load(), 8u * 500u);
    drain_epochs();
    EXPECT_EQ(node::live().load(), live_before);
}

// ---- Cycle collector ----------------------------------------------------------

template <typename D>
class CycleTest : public ::testing::Test {};
TYPED_TEST_SUITE(CycleTest, Domains);

TYPED_TEST(CycleTest, SelfCycleIsCollected) {
    using D = TypeParam;
    using node = test_node<D>;
    drain_epochs();
    const auto live_before = node::live().load();
    cycle_collector<D> cc;
    {
        auto n = D::template make<node>(1);
        D::store(n->next, n.get());  // self-cycle: rc == 2 (local + self-edge)
        cc.suspect(n.get());
    }  // local released: rc == 2 (self-edge + pin); plain destroy can't reach 0
    EXPECT_EQ(node::live().load(), live_before + 1) << "cycle must leak without the collector";
    EXPECT_EQ(cc.collect(), 1u);
    drain_epochs();
    EXPECT_EQ(node::live().load(), live_before);
}

TYPED_TEST(CycleTest, TwoNodeCycleIsCollected) {
    using D = TypeParam;
    using node = test_node<D>;
    drain_epochs();
    const auto live_before = node::live().load();
    cycle_collector<D> cc;
    {
        auto a = D::template make<node>(1);
        auto b = D::template make<node>(2);
        D::store(a->next, b.get());
        D::store(b->next, a.get());
        cc.suspect(a.get());
    }
    EXPECT_EQ(node::live().load(), live_before + 2);
    EXPECT_EQ(cc.collect(), 2u);
    drain_epochs();
    EXPECT_EQ(node::live().load(), live_before);
}

TYPED_TEST(CycleTest, ExternallyReferencedCycleSurvives) {
    using D = TypeParam;
    using node = test_node<D>;
    cycle_collector<D> cc;
    auto a = D::template make<node>(1);
    auto b = D::template make<node>(2);
    D::store(a->next, b.get());
    D::store(b->next, a.get());
    cc.suspect(a.get());
    // `a` and `b` locals still hold counts: the cycle is reachable.
    EXPECT_EQ(cc.collect(), 0u);
    EXPECT_EQ(a->value, 1);
    EXPECT_EQ(b->value, 2);
    // Break the cycle manually; normal destruction then suffices.
    D::store(b->next, static_cast<node*>(nullptr));
}

TYPED_TEST(CycleTest, CycleWithLiveTailReleasesTheTail) {
    using D = TypeParam;
    using node = test_pair_node<D>;
    drain_epochs();
    const auto live_before = node::live().load();
    cycle_collector<D> cc;
    auto tail = D::template make<node>(99);
    {
        // a <-> b cycle, with a.right -> tail (live outside the cycle).
        auto a = D::template make<node>(1);
        auto b = D::template make<node>(2);
        D::store(a->left, b.get());
        D::store(b->left, a.get());
        D::store(a->right, tail.get());
        cc.suspect(a.get());
    }
    EXPECT_EQ(node::live().load(), live_before + 3);
    EXPECT_EQ(tail->ref_count(), 2u);  // local + a.right
    EXPECT_EQ(cc.collect(), 2u);       // a and b reclaimed, tail survives
    drain_epochs();
    EXPECT_EQ(node::live().load(), live_before + 1);
    EXPECT_EQ(tail->ref_count(), 1u) << "garbage's edge into the tail must be returned";
}

TYPED_TEST(CycleTest, AcyclicSuspectIsReclaimedToo) {
    using D = TypeParam;
    using node = test_node<D>;
    drain_epochs();
    const auto live_before = node::live().load();
    cycle_collector<D> cc;
    {
        auto n = D::template make<node>(5);
        cc.suspect(n.get());
    }  // only the pin keeps it: trial deletion should reclaim it
    EXPECT_EQ(cc.collect(), 1u);
    drain_epochs();
    EXPECT_EQ(node::live().load(), live_before);
}

TYPED_TEST(CycleTest, SurvivingSuspectPinIsReleased) {
    using D = TypeParam;
    using node = test_node<D>;
    cycle_collector<D> cc;
    auto n = D::template make<node>(5);
    cc.suspect(n.get());
    EXPECT_EQ(n->ref_count(), 2u);
    EXPECT_EQ(cc.collect(), 0u);
    EXPECT_EQ(n->ref_count(), 1u) << "pin must be dropped after the pass";
}

TYPED_TEST(CycleTest, LongCycleChainCollected) {
    using D = TypeParam;
    using node = test_node<D>;
    drain_epochs();
    const auto live_before = node::live().load();
    cycle_collector<D> cc;
    {
        // Ring of 100 nodes.
        auto first = D::template make<node>(0);
        auto prev = first;
        for (int i = 1; i < 100; ++i) {
            auto nd = D::template make<node>(i);
            D::store(prev->next, nd.get());
            prev = nd;
        }
        D::store(prev->next, first.get());
        cc.suspect(first.get());
    }
    EXPECT_EQ(cc.collect(), 100u);
    drain_epochs();
    EXPECT_EQ(node::live().load(), live_before);
}

TYPED_TEST(CycleTest, RepeatedSuspectsOfSameObject) {
    using D = TypeParam;
    using node = test_node<D>;
    drain_epochs();
    const auto live_before = node::live().load();
    cycle_collector<D> cc;
    {
        auto n = D::template make<node>(1);
        D::store(n->next, n.get());
        cc.suspect(n.get());
        cc.suspect(n.get());
        cc.suspect(n.get());
    }
    EXPECT_EQ(cc.collect(), 1u);
    drain_epochs();
    EXPECT_EQ(node::live().load(), live_before);
}

}  // namespace
