// Operation-level tests for the LFRC core (Figure 2 semantics), typed over
// both DCAS engines. Reference-count bookkeeping is checked deterministically
// in single-threaded scenarios; multi-threaded churn validates the weakened
// invariants of §1 (no premature free, eventual reclamation).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "lfrc_test_helpers.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"

namespace {

using namespace lfrc;
using lfrc_tests::drain_epochs;
using lfrc_tests::test_node;

template <typename D>
class LfrcOpsTest : public ::testing::Test {
  protected:
    using node_t = test_node<D>;
    void TearDown() override {
        EXPECT_EQ(drain_epochs(), 0u) << "deferred frees failed to quiesce";
        EXPECT_EQ(node_t::live().load(), live_at_start_);
    }
    std::int64_t live_at_start_ = test_node<D>::live().load();
};

using Domains = ::testing::Types<domain, locked_domain>;
TYPED_TEST_SUITE(LfrcOpsTest, Domains);

TYPED_TEST(LfrcOpsTest, MakeStartsWithCountOne) {
    using D = TypeParam;
    auto p = D::template make<test_node<D>>(42);
    ASSERT_TRUE(p);
    EXPECT_EQ(p->value, 42);
    EXPECT_EQ(p->ref_count(), 1u);
}

TYPED_TEST(LfrcOpsTest, DestroyAtZeroFreesObject) {
    using D = TypeParam;
    const auto live_before = test_node<D>::live().load();
    {
        auto p = D::template make<test_node<D>>(1);
        EXPECT_EQ(test_node<D>::live().load(), live_before + 1);
    }
    drain_epochs();
    EXPECT_EQ(test_node<D>::live().load(), live_before);
}

TYPED_TEST(LfrcOpsTest, StoreIncrementsLoadIncrements) {
    using D = TypeParam;
    using node = test_node<D>;
    typename D::template ptr_field<node> shared;

    auto p = D::template make<node>(7);
    D::store(shared, p);  // shared pointer now also counts
    EXPECT_EQ(p->ref_count(), 2u);

    typename D::template local_ptr<node> q;
    D::load(shared, q);
    ASSERT_TRUE(q);
    EXPECT_EQ(q.get(), p.get());
    EXPECT_EQ(p->ref_count(), 3u);

    D::store(shared, static_cast<node*>(nullptr));  // destroys shared's count
    EXPECT_EQ(p->ref_count(), 2u);
    q.reset();
    EXPECT_EQ(p->ref_count(), 1u);
}

TYPED_TEST(LfrcOpsTest, LoadFromNullGivesNullAndDropsOld) {
    using D = TypeParam;
    using node = test_node<D>;
    typename D::template ptr_field<node> shared;  // null-initialized (step 6)

    auto p = D::template make<node>(3);
    typename D::template local_ptr<node> dest = p;  // copy: count 2
    EXPECT_EQ(p->ref_count(), 2u);
    D::load(shared, dest);
    EXPECT_FALSE(dest);
    EXPECT_EQ(p->ref_count(), 1u) << "old value of dest must be destroyed (line 12)";
}

TYPED_TEST(LfrcOpsTest, LoadOverwritesAndDestroysPrevious) {
    using D = TypeParam;
    using node = test_node<D>;
    typename D::template ptr_field<node> shared;
    auto a = D::template make<node>(1);
    auto b = D::template make<node>(2);
    D::store(shared, a);

    typename D::template local_ptr<node> dest = b;
    EXPECT_EQ(b->ref_count(), 2u);
    D::load(shared, dest);
    EXPECT_EQ(dest.get(), a.get());
    EXPECT_EQ(a->ref_count(), 3u);
    EXPECT_EQ(b->ref_count(), 1u);
    D::store(shared, static_cast<node*>(nullptr));
}

TYPED_TEST(LfrcOpsTest, CopySemantics) {
    using D = TypeParam;
    using node = test_node<D>;
    auto a = D::template make<node>(1);
    auto b = D::template make<node>(2);

    typename D::template local_ptr<node> x = a;  // copy ctor = LFRCCopy
    EXPECT_EQ(a->ref_count(), 2u);
    D::copy(x, b.get());
    EXPECT_EQ(a->ref_count(), 1u);
    EXPECT_EQ(b->ref_count(), 2u);
    D::copy(x, static_cast<node*>(nullptr));
    EXPECT_EQ(b->ref_count(), 1u);
    EXPECT_FALSE(x);
}

TYPED_TEST(LfrcOpsTest, MoveTransfersWithoutCountChange) {
    using D = TypeParam;
    using node = test_node<D>;
    auto a = D::template make<node>(1);
    EXPECT_EQ(a->ref_count(), 1u);
    typename D::template local_ptr<node> b = std::move(a);
    EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): asserting post-move state
    EXPECT_EQ(b->ref_count(), 1u);
}

TYPED_TEST(LfrcOpsTest, CasSuccessDestroysOldFailureCompensates) {
    using D = TypeParam;
    using node = test_node<D>;
    typename D::template ptr_field<node> shared;
    auto a = D::template make<node>(1);
    auto b = D::template make<node>(2);
    D::store(shared, a);
    EXPECT_EQ(a->ref_count(), 2u);

    // Failure: counts unchanged afterwards.
    EXPECT_FALSE(D::cas(shared, b.get(), b.get()));
    EXPECT_EQ(a->ref_count(), 2u);
    EXPECT_EQ(b->ref_count(), 1u);

    // Success: old's shared count destroyed, new's raised.
    EXPECT_TRUE(D::cas(shared, a.get(), b.get()));
    EXPECT_EQ(a->ref_count(), 1u);
    EXPECT_EQ(b->ref_count(), 2u);
    D::store(shared, static_cast<node*>(nullptr));
}

TYPED_TEST(LfrcOpsTest, CasToNullAndFromNull) {
    using D = TypeParam;
    using node = test_node<D>;
    typename D::template ptr_field<node> shared;
    auto a = D::template make<node>(1);
    EXPECT_TRUE(D::cas(shared, static_cast<node*>(nullptr), a.get()));
    EXPECT_EQ(a->ref_count(), 2u);
    EXPECT_TRUE(D::cas(shared, a.get(), static_cast<node*>(nullptr)));
    EXPECT_EQ(a->ref_count(), 1u);
}

TYPED_TEST(LfrcOpsTest, DcasSuccessAndFailureBookkeeping) {
    using D = TypeParam;
    using node = test_node<D>;
    typename D::template ptr_field<node> f0;
    typename D::template ptr_field<node> f1;
    auto a = D::template make<node>(1);
    auto b = D::template make<node>(2);
    auto c = D::template make<node>(3);
    D::store(f0, a);
    D::store(f1, b);
    EXPECT_EQ(a->ref_count(), 2u);
    EXPECT_EQ(b->ref_count(), 2u);

    // Failure (f1 mismatch): all counts restored.
    EXPECT_FALSE(D::dcas(f0, f1, a.get(), c.get(), c.get(), c.get()));
    EXPECT_EQ(a->ref_count(), 2u);
    EXPECT_EQ(b->ref_count(), 2u);
    EXPECT_EQ(c->ref_count(), 1u);

    // Success: both old counts dropped, both new counts raised.
    EXPECT_TRUE(D::dcas(f0, f1, a.get(), b.get(), c.get(), c.get()));
    EXPECT_EQ(a->ref_count(), 1u);
    EXPECT_EQ(b->ref_count(), 1u);
    EXPECT_EQ(c->ref_count(), 3u);
    D::store(f0, static_cast<node*>(nullptr));
    D::store(f1, static_cast<node*>(nullptr));
}

TYPED_TEST(LfrcOpsTest, StoreAllocTransfersBirthCount) {
    using D = TypeParam;
    using node = test_node<D>;
    typename D::template ptr_field<node> shared;
    D::store_alloc(shared, D::template make<node>(9));
    auto p = D::load_get(shared);
    ASSERT_TRUE(p);
    EXPECT_EQ(p->value, 9);
    // Count: 1 (shared, from birth) + 1 (our load) — store_alloc added none.
    EXPECT_EQ(p->ref_count(), 2u);
    D::store(shared, static_cast<node*>(nullptr));
}

TYPED_TEST(LfrcOpsTest, DestroyChainIterativeNoOverflow) {
    using D = TypeParam;
    using node = test_node<D>;
    constexpr int chain = 200'000;  // recursion would overflow the stack
    const auto live_before = node::live().load();
    {
        typename D::template local_ptr<node> head;
        for (int i = 0; i < chain; ++i) {
            auto n = D::template make<node>(i);
            D::store(n->next, head);
            head = std::move(n);
        }
        EXPECT_EQ(node::live().load(), live_before + chain);
    }  // head's destructor tears down the whole chain
    drain_epochs();
    EXPECT_EQ(node::live().load(), live_before);
}

TYPED_TEST(LfrcOpsTest, SharedTailDestroyedOnlyWhenLastChainDies) {
    using D = TypeParam;
    using node = test_node<D>;
    // Two chains converging on a shared tail (DAG, not a cycle).
    auto tail = D::template make<node>(0);
    auto a = D::template make<node>(1);
    auto b = D::template make<node>(2);
    D::store(a->next, tail);
    D::store(b->next, tail);
    EXPECT_EQ(tail->ref_count(), 3u);
    node* tail_raw = tail.get();
    tail.reset();
    a.reset();
    drain_epochs();
    // b still reaches the tail.
    EXPECT_EQ(tail_raw->ref_count(), 1u);
    ASSERT_TRUE(b->next.exclusive_get() == tail_raw);
    b.reset();
    drain_epochs();
}

TYPED_TEST(LfrcOpsTest, CounterLedgerBalancesAtQuiescence) {
    using D = TypeParam;
    using node = test_node<D>;
    const auto before = D::counters().snapshot();
    {
        typename D::template ptr_field<node> shared;
        for (int i = 0; i < 100; ++i) {
            auto p = D::template make<node>(i);
            D::store(shared, p);
            auto q = D::load_get(shared);
            D::cas(shared, q.get(), p.get());
        }
        D::store(shared, static_cast<node*>(nullptr));
    }
    drain_epochs();
    const auto after = D::counters().snapshot();
    const auto created = after.objects_created - before.objects_created;
    const auto destroyed = after.objects_destroyed - before.objects_destroyed;
    const auto incs = after.increments - before.increments;
    const auto decs = after.decrements - before.decrements;
    EXPECT_EQ(created, destroyed);
    // Every object is born with one count (not an "increment"); at
    // quiescence with zero live objects: births + increments == decrements.
    EXPECT_EQ(created + incs, decs);
}

// Multi-threaded churn on a single shared pointer: loads, stores, CASes.
// Checks the two §1 invariants: objects never freed while referenced
// (use-after-free would crash / corrupt `value`), and everything reclaimed
// at quiescence.
TYPED_TEST(LfrcOpsTest, ConcurrentChurnPreservesInvariants) {
    using D = TypeParam;
    using node = test_node<D>;
    constexpr int threads = 4;
    constexpr int iters = 8000;
    const auto live_before = node::live().load();
    {
        typename D::template ptr_field<node> shared;
        D::store_alloc(shared, D::template make<node>(0));
        util::spin_barrier barrier{threads};
        std::atomic<int> corrupt{0};
        std::vector<std::thread> pool;
        for (int t = 0; t < threads; ++t) {
            pool.emplace_back([&, t] {
                util::xoshiro256 rng{static_cast<std::uint64_t>(t) * 7919 + 1};
                barrier.arrive_and_wait();
                typename D::template local_ptr<node> mine;
                for (int i = 0; i < iters; ++i) {
                    switch (rng.below(3)) {
                        case 0: {
                            D::load(shared, mine);
                            if (mine && (mine->value < 0 || mine->value > 1'000'000)) {
                                corrupt.fetch_add(1);
                            }
                            break;
                        }
                        case 1: {
                            auto fresh = D::template make<node>(t * 10000 + i % 1000);
                            D::store(shared, fresh);
                            break;
                        }
                        default: {
                            D::load(shared, mine);
                            auto fresh = D::template make<node>(i % 1000);
                            D::cas(shared, mine.get(), fresh.get());
                            break;
                        }
                    }
                }
            });
        }
        for (auto& t : pool) t.join();
        EXPECT_EQ(corrupt.load(), 0);
        D::store(shared, static_cast<node*>(nullptr));
    }
    drain_epochs();
    EXPECT_EQ(node::live().load(), live_before);
}

// Two fields, concurrent DCAS swaps between them plus loads; at the end the
// two originally stored objects must both still be alive exactly once.
TYPED_TEST(LfrcOpsTest, ConcurrentDcasSwapKeepsBothObjects) {
    using D = TypeParam;
    using node = test_node<D>;
    constexpr int threads = 4;
    constexpr int iters = 4000;
    typename D::template ptr_field<node> f0;
    typename D::template ptr_field<node> f1;
    auto a = D::template make<node>(111);
    auto b = D::template make<node>(222);
    D::store(f0, a);
    D::store(f1, b);

    util::spin_barrier barrier{threads};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            barrier.arrive_and_wait();
            typename D::template local_ptr<node> x, y;
            for (int i = 0; i < iters; ++i) {
                D::load(f0, x);
                D::load(f1, y);
                D::dcas(f0, f1, x.get(), y.get(), y.get(), x.get());
            }
        });
    }
    for (auto& t : pool) t.join();

    auto final0 = D::load_get(f0);
    auto final1 = D::load_get(f1);
    ASSERT_TRUE(final0);
    ASSERT_TRUE(final1);
    EXPECT_NE(final0.get(), final1.get());
    EXPECT_EQ(final0->value + final1->value, 333);
    D::store(f0, static_cast<node*>(nullptr));
    D::store(f1, static_cast<node*>(nullptr));
}

}  // namespace
