// Shared helpers for LFRC test suites: a generic managed node type and
// quiescent drain utilities.
#pragma once

#include <cstdint>

#include "lfrc/lfrc.hpp"

namespace lfrc_tests {

/// Simple managed node with one child link and a payload, usable with any
/// domain. Also counts live instances of itself for leak assertions that do
/// not depend on global allocator state.
template <typename D>
struct test_node : D::object {
    using domain = D;

    typename D::template ptr_field<test_node> next;
    std::int64_t value = 0;

    static std::atomic<std::int64_t>& live() {
        static std::atomic<std::int64_t> count{0};
        return count;
    }

    explicit test_node(std::int64_t v = 0) : value(v) { live().fetch_add(1); }
    ~test_node() override { live().fetch_sub(1); }

    void lfrc_visit_children(typename D::child_visitor& v) noexcept override {
        v.on_child(next.exclusive_get());
    }
};

/// Two-child node for tree/dag-shaped destruction tests.
template <typename D>
struct test_pair_node : D::object {
    typename D::template ptr_field<test_pair_node> left;
    typename D::template ptr_field<test_pair_node> right;
    std::int64_t value = 0;

    static std::atomic<std::int64_t>& live() {
        static std::atomic<std::int64_t> count{0};
        return count;
    }

    explicit test_pair_node(std::int64_t v = 0) : value(v) { live().fetch_add(1); }
    ~test_pair_node() override { live().fetch_sub(1); }

    void lfrc_visit_children(typename D::child_visitor& v) noexcept override {
        v.on_child(left.exclusive_get());
        v.on_child(right.exclusive_get());
    }
};

/// Flush deferred frees until the epoch domain reports nothing pending.
/// Call only at quiescence. Returns the residual pending count (0 when the
/// drain fully quiesced); footprint tests assert on it.
inline std::uint64_t drain_epochs() { return lfrc::flush_deferred_frees(64); }

}  // namespace lfrc_tests
