// lfrc::net protocol codec — round-trips for every message type, rejection
// of truncated and malformed frames (the decoder's close-the-connection
// contract), and a seeded pipelined-stream fuzz that re-chunks a valid
// frame sequence at random boundaries (the read()-returns-whatever-it-wants
// reality the server's connection buffer must survive).
//
// Determinism: the fuzz loops seed from util::global_seed(), so LFRC_SEED
// replays a failure exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/proto.hpp"
#include "util/random.hpp"

namespace {

using namespace lfrc;
using net::decode_result;

net::request make_request(net::op o) {
    net::request r;
    r.op = o;
    r.id = 0x1122334455667788ULL;
    r.key = 0xdeadbeefcafef00dULL;
    if (o == net::op::put || o == net::op::cas) {
        r.value = 0x0102030405060708ULL;
        r.ttl_ns = 42;
    }
    if (o == net::op::cas) r.expected_version = 7;
    return r;
}

constexpr net::op kAllOps[] = {net::op::get, net::op::put, net::op::erase,
                               net::op::cas, net::op::stat};

TEST(NetProto, RequestRoundTripEveryOp) {
    for (const net::op o : kAllOps) {
        const net::request in = make_request(o);
        std::vector<std::uint8_t> buf;
        net::encode_request(buf, in);
        ASSERT_EQ(buf.size(), 4u + net::request_payload_size(o));

        net::request out;
        std::size_t consumed = 0;
        ASSERT_EQ(net::decode_request(buf.data(), buf.size(), out, consumed),
                  decode_result::ok);
        EXPECT_EQ(consumed, buf.size());
        EXPECT_EQ(out.op, in.op);
        EXPECT_EQ(out.id, in.id);
        EXPECT_EQ(out.key, in.key);
        EXPECT_EQ(out.value, in.value);
        EXPECT_EQ(out.expected_version, in.expected_version);
        EXPECT_EQ(out.ttl_ns, in.ttl_ns);
    }
}

TEST(NetProto, ResponseRoundTripEveryOp) {
    for (const net::op o : kAllOps) {
        net::response in;
        in.op = o;
        in.st = o == net::op::erase ? net::status::not_found : net::status::ok;
        in.id = 99;
        if (o == net::op::get) {
            in.value = 123456;
            in.version = 17;
        }
        if (o == net::op::stat) {
            in.stats = {1, 2, 3, 4, 5, 6, 7, 8};
        }
        std::vector<std::uint8_t> buf;
        net::encode_response(buf, in);
        ASSERT_EQ(buf.size(), 4u + net::response_payload_size(o));

        net::response out;
        std::size_t consumed = 0;
        ASSERT_EQ(net::decode_response(buf.data(), buf.size(), out, consumed),
                  decode_result::ok);
        EXPECT_EQ(consumed, buf.size());
        EXPECT_EQ(out.op, in.op);
        EXPECT_EQ(out.st, in.st);
        EXPECT_EQ(out.id, in.id);
        EXPECT_EQ(out.value, in.value);
        EXPECT_EQ(out.version, in.version);
        EXPECT_EQ(out.stats.gets, in.stats.gets);
        EXPECT_EQ(out.stats.hits, in.stats.hits);
        EXPECT_EQ(out.stats.reclaimer_pending, in.stats.reclaimer_pending);
    }
}

// Every proper prefix of a valid frame is need_more — the decoder must
// neither reject a frame merely for being mid-flight nor claim bytes it
// has not validated.
TEST(NetProto, TruncatedFramesWantMoreBytes) {
    for (const net::op o : kAllOps) {
        std::vector<std::uint8_t> buf;
        net::encode_request(buf, make_request(o));
        for (std::size_t cut = 0; cut < buf.size(); ++cut) {
            net::request out;
            std::size_t consumed = 0;
            EXPECT_EQ(net::decode_request(buf.data(), cut, out, consumed),
                      decode_result::need_more)
                << "op " << int(o) << " prefix " << cut;
        }
    }
}

// A frame that can already be judged malformed from its first 5 bytes is
// rejected without waiting for the rest — a flood of "long frame coming,
// trust me" headers must not park garbage in connection buffers.
TEST(NetProto, EarlyRejectionOnPartialFrames) {
    // Valid length (20) but an opcode that doesn't exist.
    std::vector<std::uint8_t> buf = {20, 0, 0, 0, 0x7f};
    net::request out;
    std::size_t consumed = 0;
    EXPECT_EQ(net::decode_request(buf.data(), buf.size(), out, consumed),
              decode_result::bad_frame);

    // Real opcode whose exact size disagrees with the declared length.
    buf = {36, 0, 0, 0, static_cast<std::uint8_t>(net::op::get)};
    EXPECT_EQ(net::decode_request(buf.data(), buf.size(), out, consumed),
              decode_result::bad_frame);
}

TEST(NetProto, GarbageFramesAreRejected) {
    net::request rq;
    net::response rs;
    std::size_t consumed = 0;

    const auto bad_rq = [&](std::vector<std::uint8_t> buf) {
        return net::decode_request(buf.data(), buf.size(), rq, consumed) ==
               decode_result::bad_frame;
    };

    // Declared length below the minimum payload (op + id word missing).
    EXPECT_TRUE(bad_rq({4, 0, 0, 0, 1, 0, 0, 0}));
    // Declared length beyond the protocol maximum (a 16 MiB "frame").
    EXPECT_TRUE(bad_rq({0, 0, 0, 1, 1, 0, 0, 0}));
    // Opcode zero.
    {
        std::vector<std::uint8_t> buf;
        net::encode_request(buf, make_request(net::op::get));
        buf[4] = 0;
        EXPECT_TRUE(bad_rq(buf));
    }
    // Nonzero reserved bytes.
    {
        std::vector<std::uint8_t> buf;
        net::encode_request(buf, make_request(net::op::put));
        buf[5] = 0xcc;
        EXPECT_TRUE(bad_rq(buf));
    }
    // A response with an out-of-range status byte.
    {
        std::vector<std::uint8_t> buf;
        net::response in;
        in.op = net::op::put;
        net::encode_response(buf, in);
        buf[5] = 0x40;
        EXPECT_EQ(net::decode_response(buf.data(), buf.size(), rs, consumed),
                  decode_result::bad_frame);
    }
}

// Pipelined stream fuzz: many frames concatenated, delivered to a
// streaming decode loop in random-sized chunks. Every frame must come out
// exactly once, in order, regardless of where the chunk boundaries fall.
TEST(NetProto, PipelinedRandomChunkStream) {
    util::xoshiro256 rng(util::mix_seed(util::global_seed(), 0xe11, 1));
    for (int round = 0; round < 32; ++round) {
        std::vector<net::request> sent;
        std::vector<std::uint8_t> stream;
        const std::size_t frames = 1 + rng.below(64);
        for (std::size_t i = 0; i < frames; ++i) {
            net::request r = make_request(kAllOps[rng.below(5)]);
            r.id = rng();
            r.key = rng();
            sent.push_back(r);
            net::encode_request(stream, r);
        }

        std::vector<std::uint8_t> window;  // the "connection buffer"
        std::vector<net::request> got;
        std::size_t fed = 0;
        while (fed < stream.size() || !window.empty()) {
            if (fed < stream.size()) {
                const std::size_t chunk =
                    std::min<std::size_t>(1 + rng.below(23), stream.size() - fed);
                window.insert(window.end(), stream.begin() + fed,
                              stream.begin() + fed + chunk);
                fed += chunk;
            }
            std::size_t off = 0;
            for (;;) {
                net::request out;
                std::size_t consumed = 0;
                const auto r = net::decode_request(window.data() + off,
                                                   window.size() - off, out, consumed);
                ASSERT_NE(r, decode_result::bad_frame) << "round " << round;
                if (r == decode_result::need_more) break;
                off += consumed;
                got.push_back(out);
            }
            window.erase(window.begin(),
                         window.begin() + static_cast<std::ptrdiff_t>(off));
            if (fed == stream.size() && off == 0 && !window.empty()) {
                FAIL() << "decoder stalled with " << window.size() << " bytes left";
            }
        }

        ASSERT_EQ(got.size(), sent.size());
        for (std::size_t i = 0; i < sent.size(); ++i) {
            EXPECT_EQ(got[i].op, sent[i].op);
            EXPECT_EQ(got[i].id, sent[i].id);
            EXPECT_EQ(got[i].key, sent[i].key);
            EXPECT_EQ(got[i].value, sent[i].value);
        }
    }
}

// Random byte-noise must never crash or over-consume — it either decodes
// (some noise is a valid frame by chance: harmless) or rejects. The
// decoder's only obligations under garbage are memory safety and progress.
TEST(NetProto, GarbageNoiseFuzzNeverOverconsumes) {
    util::xoshiro256 rng(util::mix_seed(util::global_seed(), 0xe11, 2));
    for (int round = 0; round < 256; ++round) {
        std::vector<std::uint8_t> buf(rng.below(160));
        for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
        net::request out;
        std::size_t consumed = 0;
        const auto r = net::decode_request(buf.data(), buf.size(), out, consumed);
        if (r == decode_result::ok) {
            EXPECT_LE(consumed, buf.size());
            EXPECT_GE(consumed, 4u + 20u);
        }
    }
}

}  // namespace
