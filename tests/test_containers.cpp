// Tests for the LFRC-converted containers (Treiber stack, Michael-Scott
// queue) over both engines, and the manual-reclamation baselines
// (smr::leaky / smr::ebr / smr::hp on the same generic cores) — sequential
// semantics plus concurrent conservation and leak checks.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "containers/ms_queue.hpp"
#include "containers/reclaim_queue.hpp"
#include "containers/reclaim_stack.hpp"
#include "containers/treiber_stack.hpp"
#include "lfrc_test_helpers.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"

namespace {

using namespace lfrc;
using lfrc_tests::drain_epochs;

// ---- LFRC stack --------------------------------------------------------------

template <typename D>
class LfrcStackTest : public ::testing::Test {};
using Domains = ::testing::Types<domain, locked_domain>;
TYPED_TEST_SUITE(LfrcStackTest, Domains);

TYPED_TEST(LfrcStackTest, LifoOrder) {
    containers::treiber_stack<TypeParam, int> st;
    EXPECT_TRUE(st.empty());
    for (int i = 0; i < 10; ++i) st.push(i);
    for (int i = 9; i >= 0; --i) EXPECT_EQ(st.pop(), i);
    EXPECT_EQ(st.pop(), std::nullopt);
}

TYPED_TEST(LfrcStackTest, NoLeakAfterChurn) {
    using D = TypeParam;
    const auto before = D::counters().snapshot();
    {
        containers::treiber_stack<D, int> st;
        for (int round = 0; round < 10; ++round) {
            for (int i = 0; i < 200; ++i) st.push(i);
            for (int i = 0; i < 150; ++i) st.pop();
        }
    }
    drain_epochs();
    const auto after = D::counters().snapshot();
    EXPECT_EQ(after.objects_created - before.objects_created,
              after.objects_destroyed - before.objects_destroyed);
}

TYPED_TEST(LfrcStackTest, ConcurrentConservation) {
    containers::treiber_stack<TypeParam, std::int64_t> st;
    constexpr int threads = 4;
    constexpr int per_thread = 5000;
    const auto total = static_cast<std::int64_t>(threads) * per_thread;
    std::vector<std::atomic<int>> seen(static_cast<std::size_t>(total));
    for (auto& s : seen) s.store(0);
    util::spin_barrier barrier{threads};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            util::xoshiro256 rng{static_cast<std::uint64_t>(t) + 77};
            barrier.arrive_and_wait();
            std::int64_t next = static_cast<std::int64_t>(t) * per_thread;
            const std::int64_t limit = next + per_thread;
            while (next < limit) {
                if (rng.below(100) < 55) {
                    st.push(next++);
                } else if (auto got = st.pop()) {
                    seen[static_cast<std::size_t>(*got)].fetch_add(1);
                }
            }
        });
    }
    for (auto& t : pool) t.join();
    while (auto got = st.pop()) seen[static_cast<std::size_t>(*got)].fetch_add(1);
    for (std::int64_t i = 0; i < total; ++i) {
        ASSERT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "token " << i;
    }
}

// ---- LFRC queue --------------------------------------------------------------

template <typename D>
class LfrcQueueTest : public ::testing::Test {};
TYPED_TEST_SUITE(LfrcQueueTest, Domains);

TYPED_TEST(LfrcQueueTest, FifoOrder) {
    containers::ms_queue<TypeParam, int> q;
    EXPECT_TRUE(q.empty());
    for (int i = 0; i < 10; ++i) q.enqueue(i);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(q.dequeue(), i);
    EXPECT_EQ(q.dequeue(), std::nullopt);
    EXPECT_TRUE(q.empty());
}

TYPED_TEST(LfrcQueueTest, EmptyRefillCycles) {
    containers::ms_queue<TypeParam, int> q;
    for (int round = 0; round < 100; ++round) {
        q.enqueue(round);
        EXPECT_EQ(q.dequeue(), round);
        EXPECT_EQ(q.dequeue(), std::nullopt);
    }
}

TYPED_TEST(LfrcQueueTest, NoLeakAfterChurn) {
    using D = TypeParam;
    const auto before = D::counters().snapshot();
    {
        containers::ms_queue<D, int> q;
        for (int round = 0; round < 10; ++round) {
            for (int i = 0; i < 200; ++i) q.enqueue(i);
            for (int i = 0; i < 150; ++i) q.dequeue();
        }
    }
    drain_epochs();
    const auto after = D::counters().snapshot();
    EXPECT_EQ(after.objects_created - before.objects_created,
              after.objects_destroyed - before.objects_destroyed);
}

TYPED_TEST(LfrcQueueTest, MpmcConservationAndPerProducerOrder) {
    containers::ms_queue<TypeParam, std::int64_t> q;
    constexpr int producers = 2;
    constexpr int consumers = 2;
    constexpr int per_producer = 5000;
    std::atomic<std::int64_t> consumed{0};
    std::vector<std::atomic<std::int64_t>> last_index(producers);
    for (auto& l : last_index) l.store(-1);
    std::atomic<int> violations{0};
    util::spin_barrier barrier{producers + consumers};
    std::vector<std::thread> pool;
    for (int p = 0; p < producers; ++p) {
        pool.emplace_back([&, p] {
            barrier.arrive_and_wait();
            for (int i = 0; i < per_producer; ++i) {
                q.enqueue(static_cast<std::int64_t>(p) * per_producer + i);
            }
        });
    }
    // Single consumer checks strict per-producer FIFO; the second consumer
    // only counts (multi-consumer pops interleave).
    for (int c = 0; c < consumers; ++c) {
        pool.emplace_back([&] {
            barrier.arrive_and_wait();
            while (consumed.load() < static_cast<std::int64_t>(producers) * per_producer) {
                auto got = q.dequeue();
                if (!got) {
                    std::this_thread::yield();
                    continue;
                }
                consumed.fetch_add(1);
                const auto p = *got / per_producer;
                const auto idx = *got % per_producer;
                auto& last = last_index[static_cast<std::size_t>(p)];
                std::int64_t prev = last.load();
                while (prev < idx && !last.compare_exchange_weak(prev, idx)) {}
                if (prev == idx) violations.fetch_add(1);  // duplicate dequeue
            }
        });
    }
    for (auto& t : pool) t.join();
    EXPECT_EQ(violations.load(), 0);
    EXPECT_TRUE(q.empty());
}

// ---- Reclaimer-policy baselines -----------------------------------------------

template <typename P>
class ReclaimStackTest : public ::testing::Test {};
using Policies = ::testing::Types<smr::leaky<>, smr::ebr<>, smr::hp<>>;
TYPED_TEST_SUITE(ReclaimStackTest, Policies);

TYPED_TEST(ReclaimStackTest, LifoOrder) {
    containers::reclaim_stack<int, TypeParam> st;
    for (int i = 0; i < 10; ++i) st.push(i);
    for (int i = 9; i >= 0; --i) EXPECT_EQ(st.pop(), i);
    EXPECT_EQ(st.pop(), std::nullopt);
}

TYPED_TEST(ReclaimStackTest, ConcurrentSumConserved) {
    containers::reclaim_stack<std::int64_t, TypeParam> st;
    constexpr int threads = 4;
    constexpr int per_thread = 4000;
    std::atomic<std::int64_t> pop_sum{0};
    std::atomic<std::int64_t> push_sum{0};
    util::spin_barrier barrier{threads};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            util::xoshiro256 rng{static_cast<std::uint64_t>(t) + 5};
            barrier.arrive_and_wait();
            for (int i = 0; i < per_thread; ++i) {
                if (rng.below(2) == 0) {
                    const std::int64_t v = t * per_thread + i + 1;
                    st.push(v);
                    push_sum.fetch_add(v);
                } else if (auto got = st.pop()) {
                    pop_sum.fetch_add(*got);
                }
            }
        });
    }
    for (auto& t : pool) t.join();
    while (auto got = st.pop()) pop_sum.fetch_add(*got);
    EXPECT_EQ(push_sum.load(), pop_sum.load());
}

template <typename P>
class ReclaimQueueTest : public ::testing::Test {};
TYPED_TEST_SUITE(ReclaimQueueTest, Policies);

TYPED_TEST(ReclaimQueueTest, FifoOrder) {
    containers::reclaim_queue<int, TypeParam> q;
    EXPECT_TRUE(q.empty());
    for (int i = 0; i < 10; ++i) q.enqueue(i);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(q.dequeue(), i);
    EXPECT_EQ(q.dequeue(), std::nullopt);
}

TYPED_TEST(ReclaimQueueTest, SpscOrderPreserved) {
    containers::reclaim_queue<int, TypeParam> q;
    constexpr int total = 20000;
    std::atomic<int> bad_order{0};
    std::thread producer([&] {
        for (int i = 0; i < total; ++i) q.enqueue(i);
    });
    std::thread consumer([&] {
        int expected = 0;
        while (expected < total) {
            if (auto got = q.dequeue()) {
                if (*got != expected) bad_order.fetch_add(1);
                ++expected;
            } else {
                std::this_thread::yield();
            }
        }
    });
    producer.join();
    consumer.join();
    EXPECT_EQ(bad_order.load(), 0);
}

// EBR/HP baselines must actually reclaim: after churn and a drain, the
// number of live tracked bytes should drop back near the baseline.
// Flush both global domains so earlier suites' retirements don't skew the
// scope accounting.
void flush_global_domains() {
    for (int i = 0; i < 40; ++i) {
        reclaim::epoch_domain::global().try_advance();
        reclaim::epoch_domain::global().drain_all();
    }
    reclaim::hazard_domain::global().drain_all();
}

TEST(ReclaimStackMemory, EbrReclaimsAtQuiescence) {
    flush_global_domains();
    alloc::scope_check check;
    {
        containers::reclaim_stack<int, smr::ebr<>> st;
        for (int i = 0; i < 5000; ++i) st.push(i);
        for (int i = 0; i < 5000; ++i) st.pop();
        st.policy().drain(40);
    }
    EXPECT_EQ(check.leaked_objects(), 0);
}

TEST(ReclaimStackMemory, HpReclaimsAtQuiescence) {
    flush_global_domains();
    alloc::scope_check check;
    {
        containers::reclaim_stack<int, smr::hp<>> st;
        for (int i = 0; i < 5000; ++i) st.push(i);
        for (int i = 0; i < 5000; ++i) st.pop();
        st.policy().drain(40);
    }
    EXPECT_EQ(check.leaked_objects(), 0);
}

TEST(ReclaimStackMemory, LeakyLeaksByDesign) {
    alloc::scope_check check;
    containers::reclaim_stack<int, smr::leaky<>> st;
    for (int i = 0; i < 1000; ++i) st.push(i);
    for (int i = 0; i < 1000; ++i) st.pop();
    // 1000 nodes popped, none freed: the "GC will get it" fiction.
    EXPECT_GE(check.leaked_objects(), 1000);
}

}  // namespace
