// Edge-case tests for the LFRC core operations: aliasing, self-assignment,
// idempotent-looking transitions, null-heavy paths, and count behaviour at
// the boundaries — the inputs most likely to expose bookkeeping slips.
#include <gtest/gtest.h>

#include "lfrc_test_helpers.hpp"

namespace {

using namespace lfrc;
using lfrc_tests::drain_epochs;
using lfrc_tests::test_node;

template <typename D>
class LfrcEdgeTest : public ::testing::Test {
  protected:
    using node_t = test_node<D>;
};

using Domains = ::testing::Types<domain, locked_domain>;
TYPED_TEST_SUITE(LfrcEdgeTest, Domains);

TYPED_TEST(LfrcEdgeTest, CopySelfAssignmentKeepsCount) {
    using D = TypeParam;
    auto a = D::template make<typename TestFixture::node_t>(1);
    typename D::template local_ptr<typename TestFixture::node_t> x = a;
    EXPECT_EQ(a->ref_count(), 2u);
    // LFRCCopy(x, x's own value): increments then decrements — net zero.
    D::copy(x, x.get());
    EXPECT_EQ(a->ref_count(), 2u);
    EXPECT_EQ(x.get(), a.get());
    // Smart-pointer self-assignment path.
    x = x;  // NOLINT(misc-redundant-expression)
    EXPECT_EQ(a->ref_count(), 2u);
}

TYPED_TEST(LfrcEdgeTest, StoreSameValueIsANoopForCounts) {
    using D = TypeParam;
    using node = typename TestFixture::node_t;
    typename D::template ptr_field<node> A;
    auto a = D::template make<node>(1);
    D::store(A, a.get());
    EXPECT_EQ(a->ref_count(), 2u);
    D::store(A, a.get());  // same value again: +1 then destroy(old=same) = net 0
    EXPECT_EQ(a->ref_count(), 2u);
    D::store(A, static_cast<node*>(nullptr));
    EXPECT_EQ(a->ref_count(), 1u);
}

TYPED_TEST(LfrcEdgeTest, StoreNullOverNullIsSafe) {
    using D = TypeParam;
    using node = typename TestFixture::node_t;
    typename D::template ptr_field<node> A;
    D::store(A, static_cast<node*>(nullptr));
    D::store(A, static_cast<node*>(nullptr));
    auto got = D::load_get(A);
    EXPECT_FALSE(got);
}

TYPED_TEST(LfrcEdgeTest, CasIdentityTransition) {
    using D = TypeParam;
    using node = typename TestFixture::node_t;
    typename D::template ptr_field<node> A;
    auto a = D::template make<node>(1);
    D::store(A, a.get());
    // CAS a -> a: destroys old (a) but counted new (a) first — net zero.
    EXPECT_TRUE(D::cas(A, a.get(), a.get()));
    EXPECT_EQ(a->ref_count(), 2u);
    D::store(A, static_cast<node*>(nullptr));
}

TYPED_TEST(LfrcEdgeTest, DcasSwappingSameObjectBetweenFields) {
    using D = TypeParam;
    using node = typename TestFixture::node_t;
    typename D::template ptr_field<node> f0, f1;
    auto a = D::template make<node>(1);
    D::store(f0, a.get());
    D::store(f1, a.get());
    EXPECT_EQ(a->ref_count(), 3u);
    // Both fields hold `a`; DCAS rotating a->a is a quadruple inc/dec on
    // one object — any imbalance shows immediately.
    EXPECT_TRUE(D::dcas(f0, f1, a.get(), a.get(), a.get(), a.get()));
    EXPECT_EQ(a->ref_count(), 3u);
    D::store(f0, static_cast<node*>(nullptr));
    D::store(f1, static_cast<node*>(nullptr));
    EXPECT_EQ(a->ref_count(), 1u);
}

TYPED_TEST(LfrcEdgeTest, LoadIntoAliasedDestination) {
    using D = TypeParam;
    using node = typename TestFixture::node_t;
    typename D::template ptr_field<node> A;
    auto a = D::template make<node>(1);
    D::store(A, a.get());
    typename D::template local_ptr<node> dest = a;  // dest already holds a
    EXPECT_EQ(a->ref_count(), 3u);
    D::load(A, dest);  // loads a over a: +1 (load) then -1 (old dest) = net 0
    EXPECT_EQ(dest.get(), a.get());
    EXPECT_EQ(a->ref_count(), 3u);
    D::store(A, static_cast<node*>(nullptr));
}

TYPED_TEST(LfrcEdgeTest, SelfLinkedNodeNeedsNoSpecialCase) {
    using D = TypeParam;
    using node = typename TestFixture::node_t;
    // A node pointing at itself is a 1-cycle: LFRC alone cannot reclaim it
    // (documented); verify the counts behave and nothing crashes, then break
    // the cycle manually.
    auto a = D::template make<node>(1);
    D::store(a->next, a.get());
    EXPECT_EQ(a->ref_count(), 2u);
    node* raw = a.get();
    a.reset();  // count drops to 1 (the self-edge); object lives on
    EXPECT_EQ(raw->ref_count(), 1u);
    D::store(raw->next, static_cast<node*>(nullptr));  // break the cycle: frees it
    drain_epochs();
}

TYPED_TEST(LfrcEdgeTest, MoveIntoOccupiedLocalDestroysOld) {
    using D = TypeParam;
    using node = typename TestFixture::node_t;
    auto a = D::template make<node>(1);
    auto b = D::template make<node>(2);
    node* a_raw = a.get();
    D::add_to_rc(a_raw, 1);  // keep a observable after the move clobbers it
    a = std::move(b);        // must destroy a's old referent's count
    EXPECT_EQ(a_raw->ref_count(), 1u);
    EXPECT_EQ(a->value, 2);
    D::destroy(a_raw);
}

TYPED_TEST(LfrcEdgeTest, ReleaseThenManualDestroyBalances) {
    using D = TypeParam;
    using node = typename TestFixture::node_t;
    drain_epochs();
    const auto live_before = node::live().load();
    auto a = D::template make<node>(1);
    node* raw = a.release();
    EXPECT_FALSE(a);
    EXPECT_EQ(raw->ref_count(), 1u);
    D::destroy(raw);
    drain_epochs();
    EXPECT_EQ(node::live().load(), live_before);
}

TYPED_TEST(LfrcEdgeTest, DestroyNullIsANoop) {
    using D = TypeParam;
    D::destroy(nullptr);
    D::destroy_all(static_cast<typename TestFixture::node_t*>(nullptr),
                   static_cast<typename TestFixture::node_t*>(nullptr));
    SUCCEED();
}

TYPED_TEST(LfrcEdgeTest, LoadGetChainsThroughStructure) {
    using D = TypeParam;
    using node = typename TestFixture::node_t;
    // load_get temporaries must each hold their own count; walking a chain
    // through temporaries is safe.
    auto head = D::template make<node>(0);
    auto mid = D::template make<node>(1);
    auto tail = D::template make<node>(2);
    D::store(head->next, mid.get());
    D::store(mid->next, tail.get());
    const auto walked = D::load_get(D::load_get(head->next)->next);
    EXPECT_EQ(walked.get(), tail.get());
    EXPECT_EQ(tail->ref_count(), 3u);  // tail local + mid.next + walked
}

TYPED_TEST(LfrcEdgeTest, FlagFieldBasics) {
    using D = TypeParam;
    typename D::flag_field f;
    EXPECT_FALSE(f.load());
    EXPECT_TRUE(f.cas(false, true));
    EXPECT_TRUE(f.load());
    EXPECT_FALSE(f.cas(false, true)) << "CAS must fail on wrong expected";
    EXPECT_TRUE(f.cas(true, false));
    typename D::flag_field g{true};
    EXPECT_TRUE(g.load());
}

TYPED_TEST(LfrcEdgeTest, DcasPtrFlagBookkeeping) {
    using D = TypeParam;
    using node = typename TestFixture::node_t;
    typename D::template ptr_field<node> A;
    typename D::flag_field F;
    auto a = D::template make<node>(1);
    auto b = D::template make<node>(2);
    D::store(A, a.get());

    // Failure on flag mismatch: counts restored.
    EXPECT_FALSE(D::dcas_ptr_flag(A, F, a.get(), true, b.get(), true));
    EXPECT_EQ(a->ref_count(), 2u);
    EXPECT_EQ(b->ref_count(), 1u);

    // Success: pointer swapped, flag set, counts moved.
    EXPECT_TRUE(D::dcas_ptr_flag(A, F, a.get(), false, b.get(), true));
    EXPECT_TRUE(F.load());
    EXPECT_EQ(a->ref_count(), 1u);
    EXPECT_EQ(b->ref_count(), 2u);
    D::store(A, static_cast<node*>(nullptr));
}

// ---- flush_deferred_frees drain-loop bounds --------------------------------
//
// The flush loop is doubly bounded: `rounds` caps iterations, and a stall
// detector exits once several consecutive rounds make no progress. These
// tests pin down both behaviours — convergence when nothing is pinned, and
// prompt bounded return (not a spin) when a pin blocks the drain.

TYPED_TEST(LfrcEdgeTest, RepeatedFlushConvergesToZeroAndStaysThere) {
    using D = TypeParam;
    using node = typename TestFixture::node_t;
    // Retire a batch: every store-null drops the last counted reference.
    for (int i = 0; i < 64; ++i) {
        typename D::template ptr_field<node> A;
        D::store_alloc(A, D::template make<node>(i));
        D::store(A, static_cast<node*>(nullptr));
    }
    const std::uint64_t first = flush_deferred_frees(64);
    EXPECT_EQ(first, 0u) << "unpinned retirees must all drain";
    // Convergence is stable: repeated flushes at any budget stay at zero
    // (each is a handful of pending() reads, not a rounds-long spin).
    for (int budget : {1, 4, 16, 1 << 20}) {
        EXPECT_EQ(flush_deferred_frees(budget), 0u);
    }
}

TYPED_TEST(LfrcEdgeTest, FlushIsBoundedWhileAPinBlocksTheDrain) {
    using D = TypeParam;
    using node = typename TestFixture::node_t;
    const auto live_before = node::live().load();
    typename D::template ptr_field<node> A;
    D::store_alloc(A, D::template make<node>(7));
    {
        auto pin = D::load_borrowed(A);  // epoch pin: blocks physical frees
        D::store(A, static_cast<node*>(nullptr));  // logical death, free deferred
        // An absurd budget must still return promptly: the stall detector
        // sees no progress past the grace period and gives up instead of
        // walking the pending list ~10^9 times.
        const std::uint64_t residual = flush_deferred_frees(1 << 30);
        EXPECT_GT(residual, 0u) << "flush must report what the pin blocked";
        EXPECT_EQ(node::live().load(), live_before + 1);
        // Successive stalled flushes are stable, not decreasing.
        EXPECT_EQ(flush_deferred_frees(1 << 30), residual);
    }
    // Pin released: the same loop now converges to zero.
    EXPECT_EQ(flush_deferred_frees(64), 0u);
    EXPECT_EQ(node::live().load(), live_before);
}

TYPED_TEST(LfrcEdgeTest, FlushDrainsOnlyAfterTheLastPinReleases) {
    using D = TypeParam;
    using node = typename TestFixture::node_t;
    // Overlapping pins from the same epoch neighbourhood: releasing one pin
    // must not unblock the drain (the other still holds the epoch back);
    // releasing the last one must let repeated flushes reach zero. Residuals
    // are monotone non-decreasing while any pin is held.
    typename D::template ptr_field<node> A;
    typename D::template ptr_field<node> B;
    D::store_alloc(A, D::template make<node>(1));
    D::store_alloc(B, D::template make<node>(2));
    auto pin_a = D::load_borrowed(A);
    D::store(A, static_cast<node*>(nullptr));
    const std::uint64_t with_one_pin = flush_deferred_frees(64);
    EXPECT_GT(with_one_pin, 0u);
    auto pin_b = D::load_borrowed(B);
    D::store(B, static_cast<node*>(nullptr));
    const std::uint64_t with_two_pins = flush_deferred_frees(64);
    EXPECT_GE(with_two_pins, with_one_pin);
    pin_a.reset();
    const std::uint64_t after_partial_release = flush_deferred_frees(64);
    EXPECT_GT(after_partial_release, 0u)
        << "a remaining pin must keep blocking the drain";
    pin_b.reset();
    EXPECT_EQ(flush_deferred_frees(64), 0u)
        << "full release must let the flush converge";
}

}  // namespace
