// Negative probe for R6's dynamic twin (scripts/ci.sh tsan cell).
//
// The static rule (R6, tools/lfrc_lint) makes every non-seq_cst atomic op
// name its pairing; this probe demonstrates WHY for one load-bearing
// pairing, `remote-head` (docs/fence_pairings.md): a cross-slot free
// release-publishes the freed block's last payload writes via the tagged
// remote-head push, and the owner's single-block pop acquire-reads them.
// The seeded mutation (arena::mutate_weaken_pop_acquire, compiled under
// LFRC_ENABLE_MUTATIONS) weakens BOTH ends of the pop — the head pre-read
// and the claiming CAS — to relaxed. That is invisible to every value
// assertion and to the seq_cst sim model (sim atomics run seq_cst), but
// the recycled payload now reaches its next owner with no happens-before
// edge from the freer's writes: a data race only ThreadSanitizer can see.
//
//   ./order_race_probe            clean orders: the same choreography must
//                                 run race-free (exit 0, TSan silent)
//   ./order_race_probe --mutant   weakened orders: under LFRC_SANITIZE=
//                                 thread TSan MUST report the race (the CI
//                                 cell inverts the exit status)
//
// Without TSan the mutant leg exits 2 (inconclusive), mirroring
// arena_uaf_probe's contract, so it can never masquerade as a passing
// test in an unsanitized tree.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>

#include "alloc/arena.hpp"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PROBE_TSAN 1
#endif
#endif
#if !defined(PROBE_TSAN) && defined(__SANITIZE_THREAD__)
#define PROBE_TSAN 1
#endif

namespace {

constexpr std::size_t payload_bytes = 64;

// The conflicting payload accesses, kept out of line ON PURPOSE: a literal
// std::memset(p, v, 64) gets expanded by the compiler into raw vector
// stores that carry no TSan instrumentation (no interceptor call, no
// __tsan_write*), making the racing accesses invisible to the tool this
// probe exists to arm. A noinline word-store loop always instruments.
__attribute__((noinline)) void scribble(char* p, unsigned long v) {
    auto* w = reinterpret_cast<unsigned long*>(p);
    for (std::size_t i = 0; i < payload_bytes / sizeof(unsigned long); ++i) {
        w[i] = v;
    }
}

// B -> A pointer handoff (seq_cst: A's use of the pointer is ordered).
std::atomic<char*> g_handoff{nullptr};
// A -> B "free landed" signal. Relaxed ON PURPOSE: the only happens-before
// edge back to the owner must be the remote-head pop under test.
std::atomic<bool> g_freed{false};

}  // namespace

int main(int argc, char** argv) {
    const bool mutant = argc > 1 && std::strcmp(argv[1], "--mutant") == 0;
#if !defined(LFRC_ENABLE_MUTATIONS)
    (void)mutant;
    std::fprintf(stderr,
                 "order_race_probe: built without LFRC_ENABLE_MUTATIONS — "
                 "inconclusive\n");
    return 2;
#else
    if (mutant) {
#if !defined(PROBE_TSAN)
        std::fprintf(stderr,
                     "order_race_probe: --mutant without ThreadSanitizer — "
                     "inconclusive\n");
        return 2;
#else
        lfrc::alloc::arena::mutate_weaken_pop_acquire().store(true);
#endif
    }
    auto& a = lfrc::alloc::arena::instance();

    // B, the owner: carves the block (home = B's registry slot), hands it
    // to A, then re-allocates until the remote pop recycles it back.
    std::thread owner([&a] {
        char* p = static_cast<char*>(a.allocate(payload_bytes));
        g_handoff.store(p);
        while (!g_freed.load(std::memory_order_relaxed)) {
        }
        char* q = nullptr;
        for (int i = 0; i < 4096 && q == nullptr; ++i) {
            char* c = static_cast<char*>(a.allocate(payload_bytes));
            if (c == p) q = c;
            // Non-matching blocks are freshly carved; park them (freeing
            // would feed the magazine and starve the remote pop).
        }
        if (q == nullptr) {
            std::fprintf(stderr,
                         "order_race_probe: recycled block never came back "
                         "through the remote pop — choreography broke\n");
            std::_Exit(3);
        }
        // The conflicting access: without the pop's acquire edge this
        // write races with the freer's last payload writes.
        scribble(q, 0x2b2b2b2b2b2b2b2bUL);
    });

    // A, the freer: writes the payload, then frees cross-slot — a tagged
    // release push onto B's remote head.
    std::thread freer([&a] {
        // Register this thread's arena slot FIRST: registration
        // release-publishes the registry's slot table, and the owner's
        // peer-steal scan acquire-reads it (high_water) every allocate.
        // Registering lazily inside deallocate would put that incidental
        // happens-before edge AFTER the payload writes and mask the
        // seeded race this probe exists to surface.
        (void)lfrc::util::thread_registry::instance().slot();
        char* p = nullptr;
        while ((p = g_handoff.load()) == nullptr) {
        }
        scribble(p, 0x5a5a5a5a5a5a5a5aUL);  // the freer's last writes
        a.deallocate(p, payload_bytes);
        g_freed.store(true, std::memory_order_relaxed);
    });

    freer.join();
    owner.join();

    if (mutant) {
        // TSan reports the race above; with halt_on_error it never gets
        // here, and without it the TSan runtime forces a failing exit code.
        std::fprintf(stderr,
                     "order_race_probe: weakened remote-pop orders survived "
                     "TSan — the remote-head pairing is not being "
                     "exercised\n");
        return 1;
    }
    std::puts("order_race_probe: clean orders, no race");
    return 0;
#endif
}
