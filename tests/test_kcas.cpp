// Tests for the generalized N-word CAS (mcas_engine::casn): semantics for
// N in {1,2,3,4}, argument-order independence, and multi-threaded atomicity
// invariants (sum conservation across 3-way transfers, all-equal snapshots).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "dcas/cell.hpp"
#include "dcas/mcas_engine.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"

namespace {

using namespace lfrc;
using dcas::cell;
using dcas::mcas_engine;
using op = mcas_engine::casn_op;

std::uint64_t count_of(cell& c) { return dcas::decode_count(mcas_engine::read(c)); }
std::uint64_t enc(std::uint64_t v) { return dcas::encode_count(v); }

TEST(Kcas, SingleWordDegeneratesToCas) {
    cell c{enc(5)};
    op ops[] = {{&c, enc(5), enc(6)}};
    EXPECT_TRUE(mcas_engine::casn(ops, 1));
    EXPECT_EQ(count_of(c), 6u);
    op bad[] = {{&c, enc(5), enc(7)}};
    EXPECT_FALSE(mcas_engine::casn(bad, 1));
    EXPECT_EQ(count_of(c), 6u);
}

TEST(Kcas, ThreeWordAllMatchSucceeds) {
    cell a{enc(1)}, b{enc(2)}, c{enc(3)};
    op ops[] = {{&a, enc(1), enc(10)}, {&b, enc(2), enc(20)}, {&c, enc(3), enc(30)}};
    EXPECT_TRUE(mcas_engine::casn(ops, 3));
    EXPECT_EQ(count_of(a), 10u);
    EXPECT_EQ(count_of(b), 20u);
    EXPECT_EQ(count_of(c), 30u);
}

TEST(Kcas, AnySingleMismatchFailsAtomically) {
    for (int wrong = 0; wrong < 4; ++wrong) {
        cell cells[4] = {cell{enc(1)}, cell{enc(2)}, cell{enc(3)}, cell{enc(4)}};
        op ops[4];
        for (int i = 0; i < 4; ++i) {
            const std::uint64_t expected =
                (i == wrong) ? enc(99) : enc(static_cast<std::uint64_t>(i) + 1);
            ops[i] = {&cells[i], expected, enc(100 + static_cast<std::uint64_t>(i))};
        }
        EXPECT_FALSE(mcas_engine::casn(ops, 4)) << "wrong index " << wrong;
        for (int i = 0; i < 4; ++i) {
            EXPECT_EQ(count_of(cells[i]), static_cast<std::uint64_t>(i) + 1)
                << "cell " << i << " modified by failed casn";
        }
    }
}

TEST(Kcas, ArgumentOrderDoesNotMatter) {
    cell a{enc(1)}, b{enc(2)}, c{enc(3)};
    // Deliberately unsorted target order.
    op ops[] = {{&c, enc(3), enc(33)}, {&a, enc(1), enc(11)}, {&b, enc(2), enc(22)}};
    EXPECT_TRUE(mcas_engine::casn(ops, 3));
    EXPECT_EQ(count_of(a), 11u);
    EXPECT_EQ(count_of(b), 22u);
    EXPECT_EQ(count_of(c), 33u);
}

TEST(Kcas, NoopTransitionAllowed) {
    cell a{enc(7)}, b{enc(8)}, c{enc(9)};
    op ops[] = {{&a, enc(7), enc(7)}, {&b, enc(8), enc(8)}, {&c, enc(9), enc(9)}};
    EXPECT_TRUE(mcas_engine::casn(ops, 3));
    EXPECT_EQ(count_of(a), 7u);
}

// Conservation: concurrent 3-way transfers (take 2 from one cell, give 1 to
// each of two others) must conserve the total.
TEST(Kcas, ConcurrentThreeWayTransfersConserveSum) {
    constexpr int threads = 4;
    constexpr int per_thread = 3000;
    constexpr int num_cells = 6;
    constexpr std::uint64_t initial = 1000;
    std::vector<cell> cells(num_cells);
    for (auto& c : cells) c.raw().store(enc(initial));

    util::spin_barrier barrier{threads};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            util::xoshiro256 rng{static_cast<std::uint64_t>(t) * 311 + 7};
            barrier.arrive_and_wait();
            for (int i = 0; i < per_thread; ++i) {
                std::uint64_t idx[3];
                idx[0] = rng.below(num_cells);
                idx[1] = (idx[0] + 1 + rng.below(num_cells - 1)) % num_cells;
                do {
                    idx[2] = rng.below(num_cells);
                } while (idx[2] == idx[0] || idx[2] == idx[1]);
                const auto v0 = mcas_engine::read(cells[idx[0]]);
                const auto v1 = mcas_engine::read(cells[idx[1]]);
                const auto v2 = mcas_engine::read(cells[idx[2]]);
                const auto c0 = dcas::decode_count(v0);
                if (c0 < 2) continue;
                op ops[] = {{&cells[idx[0]], v0, enc(c0 - 2)},
                            {&cells[idx[1]], v1, enc(dcas::decode_count(v1) + 1)},
                            {&cells[idx[2]], v2, enc(dcas::decode_count(v2) + 1)}};
                mcas_engine::casn(ops, 3);
            }
        });
    }
    for (auto& t : pool) t.join();

    std::uint64_t sum = 0;
    for (auto& c : cells) sum += count_of(c);
    EXPECT_EQ(sum, initial * num_cells);
}

// All-equal invariant over 4 cells: writers bump all four together; readers
// snapshot via a no-op casn. Any successful snapshot with unequal values
// means the 4-word CAS tore.
TEST(Kcas, FourWordAllEqualInvariant) {
    constexpr int writers = 3;
    constexpr int per_thread = 2000;
    std::vector<cell> cells(4);
    for (auto& c : cells) c.raw().store(enc(0));
    std::atomic<bool> stop{false};
    std::atomic<int> violations{0};

    std::thread reader([&] {
        while (!stop.load()) {
            std::uint64_t vals[4];
            op ops[4];
            for (int i = 0; i < 4; ++i) {
                vals[i] = mcas_engine::read(cells[static_cast<std::size_t>(i)]);
                ops[i] = {&cells[static_cast<std::size_t>(i)], vals[i], vals[i]};
            }
            if (mcas_engine::casn(ops, 4)) {
                for (int i = 1; i < 4; ++i) {
                    if (vals[i] != vals[0]) violations.fetch_add(1);
                }
            }
        }
    });
    std::vector<std::thread> pool;
    for (int w = 0; w < writers; ++w) {
        pool.emplace_back([&] {
            for (int i = 0; i < per_thread; ++i) {
                for (;;) {
                    const auto v = mcas_engine::read(cells[0]);
                    const auto next = enc(dcas::decode_count(v) + 1);
                    op ops[] = {{&cells[0], v, next},
                                {&cells[1], v, next},
                                {&cells[2], v, next},
                                {&cells[3], v, next}};
                    if (mcas_engine::casn(ops, 4)) break;
                }
            }
        });
    }
    for (auto& t : pool) t.join();
    stop = true;
    reader.join();
    EXPECT_EQ(violations.load(), 0);
    EXPECT_EQ(count_of(cells[0]), static_cast<std::uint64_t>(writers) * per_thread);
    for (int i = 1; i < 4; ++i) {
        EXPECT_EQ(count_of(cells[static_cast<std::size_t>(i)]), count_of(cells[0]));
    }
}

}  // namespace
