// Tests for the generalized N-word CAS (mcas_engine::casn): semantics for
// N in {1,2,3,4}, argument-order independence, and multi-threaded atomicity
// invariants (sum conservation across 3-way transfers, all-equal snapshots).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "dcas/cell.hpp"
#include "dcas/mcas_engine.hpp"
#include "reclaim/epoch.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"
#include "util/thread_registry.hpp"

namespace {

using namespace lfrc;
using dcas::cell;
using dcas::mcas_engine;
using op = mcas_engine::casn_op;

std::uint64_t count_of(cell& c) { return dcas::decode_count(mcas_engine::read(c)); }
std::uint64_t enc(std::uint64_t v) { return dcas::encode_count(v); }

TEST(Kcas, SingleWordDegeneratesToCas) {
    cell c{enc(5)};
    op ops[] = {{&c, enc(5), enc(6)}};
    EXPECT_TRUE(mcas_engine::casn(ops, 1));
    EXPECT_EQ(count_of(c), 6u);
    op bad[] = {{&c, enc(5), enc(7)}};
    EXPECT_FALSE(mcas_engine::casn(bad, 1));
    EXPECT_EQ(count_of(c), 6u);
}

TEST(Kcas, ThreeWordAllMatchSucceeds) {
    cell a{enc(1)}, b{enc(2)}, c{enc(3)};
    op ops[] = {{&a, enc(1), enc(10)}, {&b, enc(2), enc(20)}, {&c, enc(3), enc(30)}};
    EXPECT_TRUE(mcas_engine::casn(ops, 3));
    EXPECT_EQ(count_of(a), 10u);
    EXPECT_EQ(count_of(b), 20u);
    EXPECT_EQ(count_of(c), 30u);
}

TEST(Kcas, AnySingleMismatchFailsAtomically) {
    for (int wrong = 0; wrong < 4; ++wrong) {
        cell cells[4] = {cell{enc(1)}, cell{enc(2)}, cell{enc(3)}, cell{enc(4)}};
        op ops[4];
        for (int i = 0; i < 4; ++i) {
            const std::uint64_t expected =
                (i == wrong) ? enc(99) : enc(static_cast<std::uint64_t>(i) + 1);
            ops[i] = {&cells[i], expected, enc(100 + static_cast<std::uint64_t>(i))};
        }
        EXPECT_FALSE(mcas_engine::casn(ops, 4)) << "wrong index " << wrong;
        for (int i = 0; i < 4; ++i) {
            EXPECT_EQ(count_of(cells[i]), static_cast<std::uint64_t>(i) + 1)
                << "cell " << i << " modified by failed casn";
        }
    }
}

TEST(Kcas, ArgumentOrderDoesNotMatter) {
    cell a{enc(1)}, b{enc(2)}, c{enc(3)};
    // Deliberately unsorted target order.
    op ops[] = {{&c, enc(3), enc(33)}, {&a, enc(1), enc(11)}, {&b, enc(2), enc(22)}};
    EXPECT_TRUE(mcas_engine::casn(ops, 3));
    EXPECT_EQ(count_of(a), 11u);
    EXPECT_EQ(count_of(b), 22u);
    EXPECT_EQ(count_of(c), 33u);
}

TEST(Kcas, NoopTransitionAllowed) {
    cell a{enc(7)}, b{enc(8)}, c{enc(9)};
    op ops[] = {{&a, enc(7), enc(7)}, {&b, enc(8), enc(8)}, {&c, enc(9), enc(9)}};
    EXPECT_TRUE(mcas_engine::casn(ops, 3));
    EXPECT_EQ(count_of(a), 7u);
}

// Conservation: concurrent 3-way transfers (take 2 from one cell, give 1 to
// each of two others) must conserve the total.
TEST(Kcas, ConcurrentThreeWayTransfersConserveSum) {
    constexpr int threads = 4;
    constexpr int per_thread = 3000;
    constexpr int num_cells = 6;
    constexpr std::uint64_t initial = 1000;
    std::vector<cell> cells(num_cells);
    for (auto& c : cells) c.raw().store(enc(initial));

    util::spin_barrier barrier{threads};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            util::xoshiro256 rng{static_cast<std::uint64_t>(t) * 311 + 7};
            barrier.arrive_and_wait();
            for (int i = 0; i < per_thread; ++i) {
                std::uint64_t idx[3];
                idx[0] = rng.below(num_cells);
                idx[1] = (idx[0] + 1 + rng.below(num_cells - 1)) % num_cells;
                do {
                    idx[2] = rng.below(num_cells);
                } while (idx[2] == idx[0] || idx[2] == idx[1]);
                const auto v0 = mcas_engine::read(cells[idx[0]]);
                const auto v1 = mcas_engine::read(cells[idx[1]]);
                const auto v2 = mcas_engine::read(cells[idx[2]]);
                const auto c0 = dcas::decode_count(v0);
                if (c0 < 2) continue;
                op ops[] = {{&cells[idx[0]], v0, enc(c0 - 2)},
                            {&cells[idx[1]], v1, enc(dcas::decode_count(v1) + 1)},
                            {&cells[idx[2]], v2, enc(dcas::decode_count(v2) + 1)}};
                mcas_engine::casn(ops, 3);
            }
        });
    }
    for (auto& t : pool) t.join();

    std::uint64_t sum = 0;
    for (auto& c : cells) sum += count_of(c);
    EXPECT_EQ(sum, initial * num_cells);
}

// All-equal invariant over 4 cells: writers bump all four together; readers
// snapshot via a no-op casn. Any successful snapshot with unequal values
// means the 4-word CAS tore.
TEST(Kcas, FourWordAllEqualInvariant) {
    constexpr int writers = 3;
    constexpr int per_thread = 2000;
    std::vector<cell> cells(4);
    for (auto& c : cells) c.raw().store(enc(0));
    std::atomic<bool> stop{false};
    std::atomic<int> violations{0};

    std::thread reader([&] {
        while (!stop.load()) {
            std::uint64_t vals[4];
            op ops[4];
            for (int i = 0; i < 4; ++i) {
                vals[i] = mcas_engine::read(cells[static_cast<std::size_t>(i)]);
                ops[i] = {&cells[static_cast<std::size_t>(i)], vals[i], vals[i]};
            }
            if (mcas_engine::casn(ops, 4)) {
                for (int i = 1; i < 4; ++i) {
                    if (vals[i] != vals[0]) violations.fetch_add(1);
                }
            }
        }
    });
    std::vector<std::thread> pool;
    for (int w = 0; w < writers; ++w) {
        pool.emplace_back([&] {
            for (int i = 0; i < per_thread; ++i) {
                for (;;) {
                    const auto v = mcas_engine::read(cells[0]);
                    const auto next = enc(dcas::decode_count(v) + 1);
                    op ops[] = {{&cells[0], v, next},
                                {&cells[1], v, next},
                                {&cells[2], v, next},
                                {&cells[3], v, next}};
                    if (mcas_engine::casn(ops, 4)) break;
                }
            }
        });
    }
    for (auto& t : pool) t.join();
    stop = true;
    reader.join();
    EXPECT_EQ(violations.load(), 0);
    EXPECT_EQ(count_of(cells[0]), static_cast<std::uint64_t>(writers) * per_thread);
    for (int i = 1; i < 4; ++i) {
        EXPECT_EQ(count_of(cells[static_cast<std::size_t>(i)]), count_of(cells[0]));
    }
}

// ---------------------------------------------------------------------------
// Descriptor-reuse machinery (the "Reuse, don't Recycle" rework): permanent
// per-slot descriptors, sequence-tagged words, zero retirements.

// The pool is a round-robin over pool_entries descriptors, and it supports
// pool_entries simultaneously outstanding operations from one thread (the
// nested-help headroom the pool exists for) — begun in order, completed out
// of order.
TEST(KcasReuse, PoolRoundRobinAndOutstandingOps) {
    constexpr std::size_t pool = mcas_engine::testing::pool_entries;
    std::vector<cell> cells(2 * pool);
    for (std::size_t i = 0; i < cells.size(); ++i) cells[i].raw().store(enc(i));

    std::vector<std::uint64_t> words;
    for (std::size_t k = 0; k < pool; ++k) {
        op ops[] = {{&cells[2 * k], enc(2 * k), enc(100 + 2 * k)},
                    {&cells[2 * k + 1], enc(2 * k + 1), enc(100 + 2 * k + 1)}};
        words.push_back(mcas_engine::testing::begin_op(ops, 2));
    }
    // One descriptor per pool index (round-robin from wherever earlier ops
    // left the cursor), every word from the calling slot.
    const std::size_t first = mcas_engine::testing::index_of(words[0]);
    for (std::size_t k = 0; k < pool; ++k) {
        EXPECT_EQ(mcas_engine::testing::index_of(words[k]), (first + k) % pool);
        EXPECT_EQ(mcas_engine::testing::slot_of(words[k]),
                  mcas_engine::testing::slot_of(words[0]));
    }
    // Complete out of order; every operation lands.
    for (std::size_t k = pool; k-- > 0;) {
        EXPECT_TRUE(mcas_engine::testing::complete_op(words[k]));
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(count_of(cells[i]), 100 + i);
    }
    // The next acquire wraps the cursor back around to the first index.
    op again[] = {{&cells[0], enc(100), enc(200)}, {&cells[1], enc(101), enc(201)}};
    const std::uint64_t w = mcas_engine::testing::begin_op(again, 2);
    EXPECT_EQ(mcas_engine::testing::index_of(w), first);
    EXPECT_TRUE(mcas_engine::testing::complete_op(w));
}

// A stale tagged word (the descriptor was recycled for a new operation)
// must be inert: helping through it returns false, perturbs no cell, and
// counts a sequence abort; the descriptor's live operation then completes
// untouched. Exercises the 3-word path under forced reuse.
TEST(KcasReuse, StaleHelpIsInertAfterForcedReuse) {
    constexpr std::size_t pool = mcas_engine::testing::pool_entries;
    cell a{enc(1)}, b{enc(2)}, c{enc(3)}, d{enc(4)};
    cell f0{enc(50)}, f1{enc(60)};

    op op1[] = {{&a, enc(1), enc(10)}, {&b, enc(2), enc(20)}};
    const std::uint64_t md1 = mcas_engine::testing::begin_op(op1, 2);
    EXPECT_TRUE(mcas_engine::testing::complete_op(md1));

    // Walk the cursor around the pool so the next acquire recycles md1's
    // descriptor object.
    for (std::uint64_t k = 0; k < pool - 1; ++k) {
        op fill[] = {{&f0, enc(50 + k), enc(50 + k + 1)}, {&f1, enc(60 + k), enc(60 + k + 1)}};
        ASSERT_TRUE(mcas_engine::casn(fill, 2));
    }
    op op2[] = {{&b, enc(20), enc(21)}, {&c, enc(3), enc(30)}, {&d, enc(4), enc(40)}};
    const std::uint64_t md2 = mcas_engine::testing::begin_op(op2, 3);
    ASSERT_EQ(mcas_engine::testing::index_of(md2), mcas_engine::testing::index_of(md1));
    ASSERT_EQ(mcas_engine::testing::slot_of(md2), mcas_engine::testing::slot_of(md1));
    EXPECT_NE(mcas_engine::testing::seq_of(md2), mcas_engine::testing::seq_of(md1));
    EXPECT_EQ(mcas_engine::testing::live_sequence_of(md2),
              mcas_engine::testing::seq_of(md2));

    // md1 is now a stale name for md2's descriptor: helping through it must
    // refuse (sequence mismatch), touch nothing, and bump seq_aborts.
    const std::uint64_t aborts_before =
        mcas_engine::stats().seq_aborts.load(std::memory_order_relaxed);
    EXPECT_FALSE(mcas_engine::testing::help(md1));
    EXPECT_GT(mcas_engine::stats().seq_aborts.load(std::memory_order_relaxed),
              aborts_before);
    EXPECT_EQ(count_of(a), 10u);

    // The live 3-word operation is unharmed by the stale attempt.
    EXPECT_TRUE(mcas_engine::testing::complete_op(md2));
    EXPECT_EQ(count_of(b), 21u);
    EXPECT_EQ(count_of(c), 30u);
    EXPECT_EQ(count_of(d), 40u);
}

// Sequence wraparound: sequences live in 53 bits and are compared for
// equality only, so crossing desc_seq_mask -> 0 must be invisible to
// correctness — including to the staleness check.
TEST(KcasReuse, SequenceWraparoundIsBenign) {
    constexpr std::size_t pool = mcas_engine::testing::pool_entries;
    const std::size_t slot = util::thread_registry::instance().slot();
    // Park every descriptor of this slot one step below the wrap point
    // (quiescent: this test owns the slot and nothing is in flight).
    for (std::size_t i = 0; i < pool; ++i) {
        mcas_engine::testing::set_mcas_sequence(slot, i, dcas::desc_seq_mask - 1);
    }
    cell a{enc(1)}, b{enc(2)};
    op op1[] = {{&a, enc(1), enc(10)}, {&b, enc(2), enc(20)}};
    const std::uint64_t md1 = mcas_engine::testing::begin_op(op1, 2);  // seq = mask
    EXPECT_EQ(mcas_engine::testing::seq_of(md1), dcas::desc_seq_mask);
    EXPECT_TRUE(mcas_engine::testing::complete_op(md1));

    cell f0{enc(50)}, f1{enc(60)};
    for (std::uint64_t k = 0; k < pool - 1; ++k) {
        op fill[] = {{&f0, enc(50 + k), enc(50 + k + 1)}, {&f1, enc(60 + k), enc(60 + k + 1)}};
        ASSERT_TRUE(mcas_engine::casn(fill, 2));
    }
    // The reuse crosses the wrap: live sequence is 0, and the pre-wrap word
    // md1 (seq = mask) is correctly recognized as stale.
    op op2[] = {{&a, enc(10), enc(11)}, {&b, enc(20), enc(22)}};
    const std::uint64_t md2 = mcas_engine::testing::begin_op(op2, 2);
    EXPECT_EQ(mcas_engine::testing::seq_of(md2), 0u);
    EXPECT_FALSE(mcas_engine::testing::help(md1));
    EXPECT_TRUE(mcas_engine::testing::complete_op(md2));
    EXPECT_EQ(count_of(a), 11u);
    EXPECT_EQ(count_of(b), 22u);
}

// The headline property of the rework: dcas/casn perform ZERO epoch
// retirements (and zero allocations — descriptors are permanent), even
// under cross-thread contention with helping. The reclaimer's pending count
// must not move at all.
TEST(KcasReuse, SteadyStateCasnRetiresNothing) {
    auto& dom = reclaim::epoch_domain::global();
    const std::uint64_t pending_before = dom.pending();
    const std::uint64_t helps_before =
        mcas_engine::stats().helps.load(std::memory_order_relaxed);

    constexpr int threads = 4;
    constexpr int per_thread = 5000;
    cell a{enc(0)}, b{enc(0)}, c{enc(0)};
    util::spin_barrier barrier{threads};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            barrier.arrive_and_wait();
            for (int i = 0; i < per_thread; ++i) {
                for (;;) {
                    const auto va = mcas_engine::read(a);
                    const auto vb = mcas_engine::read(b);
                    const auto vc = mcas_engine::read(c);
                    const auto n = enc(dcas::decode_count(va) + 1);
                    op ops[] = {{&a, va, n}, {&b, vb, n}, {&c, vc, n}};
                    if (mcas_engine::casn(ops, 3)) break;
                }
            }
        });
    }
    for (auto& t : pool) t.join();

    EXPECT_EQ(count_of(a), static_cast<std::uint64_t>(threads) * per_thread);
    EXPECT_EQ(dom.pending(), pending_before)
        << "casn retired into the epoch domain — descriptors are supposed "
        << "to be permanent";

    // The scheduler may or may not have produced helping above, so force
    // one cross-thread help deterministically: park a descriptor in a cell
    // and make another thread read() through it. The help path must not
    // retire anything either.
    cell h{enc(7)};
    op hop[] = {{&h, enc(7), enc(8)}};
    const std::uint64_t md = mcas_engine::testing::begin_op(hop, 1);
    std::thread helper{[&] { EXPECT_EQ(count_of(h), 8u); }};
    helper.join();
    EXPECT_GT(mcas_engine::stats().helps.load(std::memory_order_relaxed), helps_before);
    EXPECT_TRUE(mcas_engine::testing::complete_op(md));
    EXPECT_EQ(dom.pending(), pending_before);
}

}  // namespace
