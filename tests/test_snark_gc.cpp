// Tests for the GC-dependent Snark (Figure 1 left) running under the toy
// stop-the-world collector: functional equivalence with the LFRC version,
// and the reclamation behaviour only a tracing GC provides (self-pointer
// sentinel cycles in garbage).
#include <gtest/gtest.h>

#include <deque>
#include <thread>
#include <vector>

#include "gc/heap.hpp"
#include "snark/snark_gc.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"

namespace {

using namespace lfrc;
using deque_t = snark::snark_deque_gc<std::int64_t>;

TEST(SnarkGc, BasicSequentialSemantics) {
    gc::heap h;
    deque_t dq{h};
    gc::heap::attach_scope attach(h);
    EXPECT_TRUE(dq.empty());
    dq.push_right(1);
    dq.push_left(0);
    dq.push_right(2);
    EXPECT_EQ(dq.pop_left(), 0);
    EXPECT_EQ(dq.pop_left(), 1);
    EXPECT_EQ(dq.pop_right(), 2);
    EXPECT_EQ(dq.pop_right(), std::nullopt);
}

TEST(SnarkGc, MatchesModelOnRandomTape) {
    gc::heap h;
    deque_t dq{h};
    gc::heap::attach_scope attach(h);
    std::deque<std::int64_t> model;
    util::xoshiro256 rng{42};
    std::int64_t token = 0;
    for (int i = 0; i < 4000; ++i) {
        switch (rng.below(4)) {
            case 0: dq.push_left(token); model.push_front(token); ++token; break;
            case 1: dq.push_right(token); model.push_back(token); ++token; break;
            case 2: {
                const auto got = dq.pop_left();
                if (model.empty()) {
                    ASSERT_EQ(got, std::nullopt);
                } else {
                    ASSERT_EQ(got, model.front());
                    model.pop_front();
                }
                break;
            }
            default: {
                const auto got = dq.pop_right();
                if (model.empty()) {
                    ASSERT_EQ(got, std::nullopt);
                } else {
                    ASSERT_EQ(got, model.back());
                    model.pop_back();
                }
                break;
            }
        }
    }
}

TEST(SnarkGc, CollectorReclaimsPoppedNodes) {
    gc::heap h;
    deque_t dq{h};
    gc::heap::attach_scope attach(h);
    for (int i = 0; i < 1000; ++i) dq.push_right(i);
    for (int i = 0; i < 1000; ++i) dq.pop_left();
    // Popped nodes are unreachable garbage — including the self-linked
    // sentinel cycles the original algorithm leaves behind.
    h.collect_now();
    // Survivors: Dummy plus at most the handful of nodes still hat-reachable
    // as sentinels.
    EXPECT_LE(h.live_objects(), 4u);
}

TEST(SnarkGc, GarbageCyclesDoNotAccumulate) {
    gc::heap h;
    deque_t dq{h};
    gc::heap::attach_scope attach(h);
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 100; ++i) dq.push_left(i);
        for (int i = 0; i < 100; ++i) dq.pop_right();
        h.collect_now();
        EXPECT_LE(h.live_objects(), 4u) << "round " << round;
    }
}

TEST(SnarkGc, ConcurrentConservationUnderCollection) {
    gc::heap h{64 * 1024};  // small threshold: collections happen mid-run
    deque_t dq{h};
    constexpr int threads = 4;
    constexpr int per_thread = 3000;
    const std::int64_t total = static_cast<std::int64_t>(threads) * per_thread;
    std::vector<std::atomic<int>> seen(static_cast<std::size_t>(total));
    for (auto& s : seen) s.store(0);
    util::spin_barrier barrier{threads};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            gc::heap::attach_scope attach(h);
            util::xoshiro256 rng{static_cast<std::uint64_t>(t) * 13 + 7};
            barrier.arrive_and_wait();
            std::int64_t next = static_cast<std::int64_t>(t) * per_thread;
            const std::int64_t limit = next + per_thread;
            while (next < limit) {
                if (rng.below(100) < 55) {
                    if (rng.below(2) == 0) {
                        dq.push_left(next);
                    } else {
                        dq.push_right(next);
                    }
                    ++next;
                } else {
                    const auto got = rng.below(2) == 0 ? dq.pop_left() : dq.pop_right();
                    if (got) seen[static_cast<std::size_t>(*got)].fetch_add(1);
                }
            }
        });
    }
    for (auto& t : pool) t.join();
    {
        gc::heap::attach_scope attach(h);
        while (auto got = dq.pop_left()) seen[static_cast<std::size_t>(*got)].fetch_add(1);
    }
    for (std::int64_t i = 0; i < total; ++i) {
        ASSERT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "token " << i;
    }
    const auto s = h.stats();
    EXPECT_GT(s.collections, 0u) << "threshold should have forced collections mid-run";
}

}  // namespace
