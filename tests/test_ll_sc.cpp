// Tests for the LL/SC extension (§2.1): semantics, version discipline,
// ABA immunity, reference-count bookkeeping, and a lock-free update loop.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "lfrc_test_helpers.hpp"
#include "util/spin_barrier.hpp"

namespace {

using namespace lfrc;
using lfrc_tests::drain_epochs;
using lfrc_tests::test_node;

template <typename D>
class LlScTest : public ::testing::Test {
  protected:
    using node_t = test_node<D>;
    using field = typename D::template ll_field<node_t>;
    using local = typename D::template local_ptr<node_t>;
};

using Domains = ::testing::Types<domain, locked_domain>;
TYPED_TEST_SUITE(LlScTest, Domains);

TYPED_TEST(LlScTest, LoadLinkedReadsAndCounts) {
    using F = TestFixture;
    typename F::field A;
    auto v = TypeParam::template make<typename F::node_t>(9);
    TypeParam::ll_store(A, v.get());
    EXPECT_EQ(v->ref_count(), 2u);

    typename F::local p;
    TypeParam::load_linked(A, p);
    ASSERT_TRUE(p);
    EXPECT_EQ(p->value, 9);
    EXPECT_EQ(v->ref_count(), 3u);
    TypeParam::ll_store(A, static_cast<typename F::node_t*>(nullptr));
}

TYPED_TEST(LlScTest, StoreConditionalSucceedsUndisturbed) {
    using F = TestFixture;
    typename F::field A;
    auto v = TypeParam::template make<typename F::node_t>(1);
    auto w = TypeParam::template make<typename F::node_t>(2);
    TypeParam::ll_store(A, v.get());

    typename F::local p;
    const auto token = TypeParam::load_linked(A, p);
    EXPECT_TRUE(TypeParam::store_conditional(A, token, p.get(), w.get()));
    EXPECT_EQ(v->ref_count(), 2u);  // v: local v + local p (A's count destroyed)
    EXPECT_EQ(w->ref_count(), 2u);  // w: local w + A
    TypeParam::ll_store(A, static_cast<typename F::node_t*>(nullptr));
}

TYPED_TEST(LlScTest, StoreConditionalFailsAfterInterveningWrite) {
    using F = TestFixture;
    typename F::field A;
    auto v = TypeParam::template make<typename F::node_t>(1);
    auto w = TypeParam::template make<typename F::node_t>(2);
    TypeParam::ll_store(A, v.get());

    typename F::local p;
    const auto token = TypeParam::load_linked(A, p);
    TypeParam::ll_store(A, w.get());  // intervening write
    EXPECT_FALSE(TypeParam::store_conditional(A, token, p.get(), v.get()));
    EXPECT_EQ(w->ref_count(), 2u) << "failed SC must leave the field untouched";
    EXPECT_EQ(v->ref_count(), 2u) << "failed SC must compensate its increment";
    TypeParam::ll_store(A, static_cast<typename F::node_t*>(nullptr));
}

TYPED_TEST(LlScTest, AbaRewriteIsDetected) {
    // The scenario plain CAS cannot catch: A -> B -> A again. The version
    // cell makes the second store visible to the stale SC.
    using F = TestFixture;
    typename F::field A;
    auto v = TypeParam::template make<typename F::node_t>(1);
    auto w = TypeParam::template make<typename F::node_t>(2);
    TypeParam::ll_store(A, v.get());

    typename F::local p;
    const auto token = TypeParam::load_linked(A, p);
    TypeParam::ll_store(A, w.get());  // A -> w
    TypeParam::ll_store(A, v.get());  // w -> v: same pointer value as at LL!
    EXPECT_FALSE(TypeParam::store_conditional(A, token, p.get(), w.get()))
        << "SC must fail on ABA even though the pointer compares equal";
    TypeParam::ll_store(A, static_cast<typename F::node_t*>(nullptr));
}

TYPED_TEST(LlScTest, SecondScWithSameTokenFails) {
    using F = TestFixture;
    typename F::field A;
    auto v = TypeParam::template make<typename F::node_t>(1);
    TypeParam::ll_store(A, v.get());
    typename F::local p;
    const auto token = TypeParam::load_linked(A, p);
    EXPECT_TRUE(TypeParam::store_conditional(A, token, p.get(), p.get()));
    EXPECT_FALSE(TypeParam::store_conditional(A, token, p.get(), p.get()))
        << "a token is good for at most one successful SC";
    TypeParam::ll_store(A, static_cast<typename F::node_t*>(nullptr));
}

TYPED_TEST(LlScTest, NullFieldRoundTrip) {
    using F = TestFixture;
    typename F::field A;
    typename F::local p = TypeParam::template make<typename F::node_t>(3);
    typename F::local got;
    const auto token = TypeParam::load_linked(A, got);
    EXPECT_FALSE(got);
    EXPECT_TRUE(TypeParam::store_conditional(
        A, token, static_cast<typename F::node_t*>(nullptr), p.get()));
    TypeParam::load_linked(A, got);
    EXPECT_EQ(got.get(), p.get());
    TypeParam::ll_store(A, static_cast<typename F::node_t*>(nullptr));
}

// LL/SC update loop under contention: N threads replace the shared node
// with one carrying value+1; total increments must be exact and no node
// may leak.
TYPED_TEST(LlScTest, ConcurrentUpdateLoopExactAndLeakFree) {
    using F = TestFixture;
    using node = typename F::node_t;
    drain_epochs();
    const auto live_before = node::live().load();
    constexpr int threads = 4;
    constexpr int per_thread = 3000;
    {
        typename F::field A;
        TypeParam::ll_store(A, TypeParam::template make<node>(0).get());
        util::spin_barrier barrier{threads};
        std::vector<std::thread> pool;
        for (int t = 0; t < threads; ++t) {
            pool.emplace_back([&] {
                barrier.arrive_and_wait();
                typename F::local cur;
                for (int i = 0; i < per_thread; ++i) {
                    for (;;) {
                        const auto token = TypeParam::load_linked(A, cur);
                        auto next = TypeParam::template make<node>(cur->value + 1);
                        if (TypeParam::store_conditional(A, token, cur.get(),
                                                         next.get())) {
                            break;
                        }
                    }
                }
            });
        }
        for (auto& t : pool) t.join();
        typename F::local final_node;
        TypeParam::load_linked(A, final_node);
        EXPECT_EQ(final_node->value, static_cast<std::int64_t>(threads) * per_thread);
        TypeParam::ll_store(A, static_cast<node*>(nullptr));
    }
    drain_epochs();
    EXPECT_EQ(node::live().load(), live_before);
}

}  // namespace
